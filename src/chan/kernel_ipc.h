// Cost model of synchronous kernel IPC (the mechanism the channels replace).
//
// Classic multiserver systems route every inter-server message through the
// kernel: trap, argument copy, scheduler hand-off, context switch, and the
// same again for the reply. The paper's motivation is the gap between this
// and polled user-space channels; Fig. 1 regenerates that comparison using
// these constants and a simulated ping-pong on two cores.

#ifndef SRC_CHAN_KERNEL_IPC_H_
#define SRC_CHAN_KERNEL_IPC_H_

#include <cstddef>

#include "src/chan/sim_channel.h"
#include "src/sim/time.h"

namespace newtos {

struct KernelIpcCosts {
  Cycles trap_cycles = 700;            // user->kernel entry + exit
  Cycles context_switch_cycles = 1700; // address-space switch + scheduler
  Cycles kernel_copy_setup_cycles = 250;
  double copy_cycles_per_byte = 0.5;   // message body copy through the kernel

  // One-way cost of delivering a `bytes`-sized message to another process.
  Cycles OneWayCycles(size_t bytes) const;

  // Full request/reply rendezvous (two one-ways).
  Cycles RoundTripCycles(size_t bytes) const;
};

// One-way cost of the asynchronous channel path for comparison: enqueue on
// the producer plus dequeue on the consumer (no kernel involvement; the
// copy stays in shared memory, so only the cache-line transfers matter —
// folded into the per-op constants for small messages, plus a per-byte term
// for larger payloads).
Cycles ChannelOneWayCycles(const ChannelCostModel& cost, size_t bytes,
                           double copy_cycles_per_byte = 0.25);

}  // namespace newtos

#endif  // SRC_CHAN_KERNEL_IPC_H_
