// Lock-free single-producer/single-consumer ring buffer.
//
// This is the paper's fast-path artifact built for real: NewtOS replaced
// kernel IPC on the network fast path with shared-memory channels exactly
// like this one — a fixed-size power-of-two ring where the producer only
// writes `head_` and the consumer only writes `tail_`, so steady-state
// communication needs no atomic RMW, no syscalls, and no kernel at all.
//
// Memory ordering: the producer publishes a slot with a release store of
// `head_`; the consumer observes it with an acquire load, and vice versa for
// `tail_`. Head and tail live on separate cache lines to avoid false sharing,
// and each side keeps a cached copy of the other's index so the common case
// touches a single shared line only when the cache runs dry (the classic
// optimization from Lee et al. / FastForward / Lamport queues).
//
// The same class is used from real threads (tests, bench/tab3, src/host) —
// it is a genuinely concurrent structure, not simulation-only code.

#ifndef SRC_CHAN_SPSC_RING_H_
#define SRC_CHAN_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#if NEWTOS_CHECKERS
#include <functional>
#include <thread>
#endif

namespace newtos {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLineBytes = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineBytes = 64;
#endif

template <typename T>
class SpscRing {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SpscRing requires nothrow-movable elements");

 public:
  // Capacity is rounded up to a power of two; the ring holds `capacity`
  // elements (one slot is not wasted: indices are free-running counters).
  explicit SpscRing(size_t capacity) : mask_(RoundUpPow2(capacity) - 1) {
    slots_ = std::allocator<Slot>().allocate(mask_ + 1);
  }

  ~SpscRing() {
    // Drain remaining elements (single-threaded at destruction time).
    const size_t head = head_.load(std::memory_order_relaxed);
    for (size_t i = tail_.load(std::memory_order_relaxed); i != head; ++i) {
      slots_[i & mask_].Destroy();
    }
    std::allocator<Slot>().deallocate(slots_, mask_ + 1);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // --- Producer side (one thread only) ---

  // Attempts to enqueue; returns false if the ring is full.
  bool TryPush(T value) {
#if NEWTOS_CHECKERS
    CheckSide(producer_thread_);
#endif
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) {
        return false;
      }
    }
    slots_[head & mask_].Construct(std::move(value));
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Constructs in place; returns false if full.
  template <typename... Args>
  bool TryEmplace(Args&&... args) {
#if NEWTOS_CHECKERS
    CheckSide(producer_thread_);
#endif
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) {
        return false;
      }
    }
    slots_[head & mask_].Construct(T(std::forward<Args>(args)...));
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer-side occupancy estimate (exact for the producer).
  size_t SizeProducer() const {
    return head_.load(std::memory_order_relaxed) - tail_.load(std::memory_order_acquire);
  }

  // --- Consumer side (one thread only) ---

  // Attempts to dequeue.
  std::optional<T> TryPop() {
#if NEWTOS_CHECKERS
    CheckSide(consumer_thread_);
#endif
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) {
        return std::nullopt;
      }
    }
    Slot& slot = slots_[tail & mask_];
    std::optional<T> out(std::move(slot.value()));
    slot.Destroy();
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  // Peeks without consuming (consumer thread only). Pointer valid until the
  // next TryPop.
  const T* Front() {
#if NEWTOS_CHECKERS
    CheckSide(consumer_thread_);
#endif
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (cached_head_ == tail) {
        return nullptr;
      }
    }
    return &slots_[tail & mask_].value();
  }

  // True if the consumer currently sees an empty ring.
  bool EmptyConsumer() {
#if NEWTOS_CHECKERS
    CheckSide(consumer_thread_);
#endif
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (cached_head_ == tail) {
      cached_head_ = head_.load(std::memory_order_acquire);
    }
    return cached_head_ == tail;
  }

  // Consumer-side occupancy estimate (exact for the consumer).
  size_t SizeConsumer() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_relaxed);
  }

#if NEWTOS_CHECKERS
  // --- Thread-identity check (debug gate) ---
  //
  // The first thread to touch each side owns it for the ring's lifetime; a
  // different thread showing up on an owned side is the SPSC contract
  // violation that turns this lock-free structure into a data race. Counted,
  // not asserted: the TSan harness (tests/spsc_tsan_test.cc) reads the
  // counter, and release builds compile asserts out anyway. Costs one
  // relaxed load per operation; compiled away entirely without the macro.

  uint64_t check_violations() const {
    return check_violations_.load(std::memory_order_relaxed);
  }

  // Forgets the side owners (e.g. between the single-threaded fill phase of
  // a test and its threaded phase). Call only while no other thread is
  // touching the ring.
  void ResetCheckOwners() {
    producer_thread_.store(0, std::memory_order_relaxed);
    consumer_thread_.store(0, std::memory_order_relaxed);
  }
#endif

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    void Construct(T&& v) { ::new (static_cast<void*>(storage)) T(std::move(v)); }
    T& value() { return *std::launder(reinterpret_cast<T*>(storage)); }
    void Destroy() { value().~T(); }
  };

  static size_t RoundUpPow2(size_t v) {
    assert(v > 0);
    size_t p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  const size_t mask_;
  Slot* slots_;

  // Producer-owned line.
  alignas(kCacheLineBytes) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;

  // Consumer-owned line.
  alignas(kCacheLineBytes) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;

#if NEWTOS_CHECKERS
  static uint64_t ThreadToken() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
  }

  void CheckSide(std::atomic<uint64_t>& owner) {
    const uint64_t self = ThreadToken();
    if (owner.load(std::memory_order_relaxed) == self) {
      return;  // the common case: the bound owner calling again
    }
    uint64_t expected = 0;
    if (!owner.compare_exchange_strong(expected, self, std::memory_order_relaxed) &&
        expected != self) {
      check_violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::atomic<uint64_t> producer_thread_{0};
  std::atomic<uint64_t> consumer_thread_{0};
  std::atomic<uint64_t> check_violations_{0};
#endif
};

}  // namespace newtos

#endif  // SRC_CHAN_SPSC_RING_H_
