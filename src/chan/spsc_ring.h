// Lock-free single-producer/single-consumer ring buffer.
//
// This is the paper's fast-path artifact built for real: NewtOS replaced
// kernel IPC on the network fast path with shared-memory channels exactly
// like this one — a fixed-size power-of-two ring where the producer only
// writes `prod_.head` and the consumer only writes `cons_.tail`, so steady-state
// communication needs no atomic RMW, no syscalls, and no kernel at all.
//
// Memory ordering: the producer publishes a slot with a release store of
// `prod_.head`; the consumer observes it with an acquire load, and vice versa for
// `cons_.tail`. Head and tail live on separate cache lines to avoid false sharing,
// and each side keeps a cached copy of the other's index so the common case
// touches a single shared line only when the cache runs dry (the classic
// optimization from Lee et al. / FastForward / Lamport queues).
//
// The same class is used from real threads (tests, bench/tab3, src/host) —
// it is a genuinely concurrent structure, not simulation-only code.

#ifndef SRC_CHAN_SPSC_RING_H_
#define SRC_CHAN_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>

#if NEWTOS_CHECKERS
#include <functional>
#include <thread>
#endif

namespace newtos {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLineBytes = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineBytes = 64;
#endif

#if NEWTOS_CHECKERS
// The calling thread's SPSC identity token — the value the ring's first-touch
// check binds to each side. A thread records this for itself so post-join
// audits can map a ring's bound producer_token()/consumer_token() back to a
// named role (the live stack's wiring export does exactly that). Never 0, so
// 0 stays the "side never touched" sentinel.
inline uint64_t CurrentSpscThreadToken() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
}
#endif

template <typename T>
class SpscRing {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SpscRing requires nothrow-movable elements");

 public:
  // Capacity is rounded up to a power of two; the ring holds `capacity`
  // elements (one slot is not wasted: indices are free-running counters).
  explicit SpscRing(size_t capacity) : mask_(RoundUpPow2(capacity) - 1) {
    slots_ = std::allocator<Slot>().allocate(mask_ + 1);
  }

  ~SpscRing() {
    // Drain remaining elements (single-threaded at destruction time).
    const size_t head = prod_.head.load(std::memory_order_relaxed);
    for (size_t i = cons_.tail.load(std::memory_order_relaxed); i != head; ++i) {
      slots_[i & mask_].Destroy();
    }
    std::allocator<Slot>().deallocate(slots_, mask_ + 1);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // --- Producer side (one thread only) ---

  // Attempts to enqueue; returns false if the ring is full.
  bool TryPush(T value) {
#if NEWTOS_CHECKERS
    CheckSide(check_state_.producer_thread);
#endif
    const size_t head = prod_.head.load(std::memory_order_relaxed);
    if (head - prod_.cached_tail > mask_) {
      prod_.cached_tail = cons_.tail.load(std::memory_order_acquire);
      if (head - prod_.cached_tail > mask_) {
        return false;
      }
    }
    slots_[head & mask_].Construct(std::move(value));
    prod_.head.store(head + 1, std::memory_order_release);
    return true;
  }

  // Constructs in place; returns false if full.
  template <typename... Args>
  bool TryEmplace(Args&&... args) {
#if NEWTOS_CHECKERS
    CheckSide(check_state_.producer_thread);
#endif
    const size_t head = prod_.head.load(std::memory_order_relaxed);
    if (head - prod_.cached_tail > mask_) {
      prod_.cached_tail = cons_.tail.load(std::memory_order_acquire);
      if (head - prod_.cached_tail > mask_) {
        return false;
      }
    }
    slots_[head & mask_].Construct(T(std::forward<Args>(args)...));
    prod_.head.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer-side occupancy estimate (exact for the producer).
  size_t SizeProducer() const {
    return prod_.head.load(std::memory_order_relaxed) - cons_.tail.load(std::memory_order_acquire);
  }

  // --- Consumer side (one thread only) ---

  // Attempts to dequeue.
  std::optional<T> TryPop() {
#if NEWTOS_CHECKERS
    CheckSide(check_state_.consumer_thread);
#endif
    const size_t tail = cons_.tail.load(std::memory_order_relaxed);
    if (cons_.cached_head == tail) {
      cons_.cached_head = prod_.head.load(std::memory_order_acquire);
      if (cons_.cached_head == tail) {
        return std::nullopt;
      }
    }
    Slot& slot = slots_[tail & mask_];
    std::optional<T> out(std::move(slot.value()));
    slot.Destroy();
    cons_.tail.store(tail + 1, std::memory_order_release);
    return out;
  }

  // Peeks without consuming (consumer thread only). Pointer valid until the
  // next TryPop.
  const T* Front() {
#if NEWTOS_CHECKERS
    CheckSide(check_state_.consumer_thread);
#endif
    const size_t tail = cons_.tail.load(std::memory_order_relaxed);
    if (cons_.cached_head == tail) {
      cons_.cached_head = prod_.head.load(std::memory_order_acquire);
      if (cons_.cached_head == tail) {
        return nullptr;
      }
    }
    return &slots_[tail & mask_].value();
  }

  // True if the consumer currently sees an empty ring.
  bool EmptyConsumer() {
#if NEWTOS_CHECKERS
    CheckSide(check_state_.consumer_thread);
#endif
    const size_t tail = cons_.tail.load(std::memory_order_relaxed);
    if (cons_.cached_head == tail) {
      cons_.cached_head = prod_.head.load(std::memory_order_acquire);
    }
    return cons_.cached_head == tail;
  }

  // Consumer-side occupancy estimate (exact for the consumer).
  size_t SizeConsumer() const {
    return prod_.head.load(std::memory_order_acquire) - cons_.tail.load(std::memory_order_relaxed);
  }

#if NEWTOS_CHECKERS
  // --- Thread-identity check (debug gate) ---
  //
  // The first thread to touch each side owns it for the ring's lifetime; a
  // different thread showing up on an owned side is the SPSC contract
  // violation that turns this lock-free structure into a data race. Counted,
  // not asserted: the TSan harness (tests/spsc_tsan_test.cc) reads the
  // counter, and release builds compile asserts out anyway. Costs one
  // relaxed load per operation; compiled away entirely without the macro.

  uint64_t check_violations() const {
    return check_state_.check_violations.load(std::memory_order_relaxed);
  }

  // Bound side owners (0 = side never touched). Read post-join, when the
  // worker threads are gone and the bindings are final.
  uint64_t producer_token() const {
    return check_state_.producer_thread.load(std::memory_order_relaxed);
  }
  uint64_t consumer_token() const {
    return check_state_.consumer_thread.load(std::memory_order_relaxed);
  }

  // Forgets the side owners (e.g. between the single-threaded fill phase of
  // a test and its threaded phase). Call only while no other thread is
  // touching the ring.
  void ResetCheckOwners() {
    check_state_.producer_thread.store(0, std::memory_order_relaxed);
    check_state_.consumer_thread.store(0, std::memory_order_relaxed);
  }
#endif

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    void Construct(T&& v) { ::new (static_cast<void*>(storage)) T(std::move(v)); }
    T& value() { return *std::launder(reinterpret_cast<T*>(storage)); }
    void Destroy() { value().~T(); }
  };

  static size_t RoundUpPow2(size_t v) {
    assert(v > 0);
    size_t p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  // Each cursor group owns a full cache line: the alignas on the struct both
  // aligns it to a line boundary and pads sizeof up to a line multiple, so
  // the producer's head/cached_tail can never share a line with the
  // consumer's tail/cached_head — or with whatever object the allocator
  // places after the ring. The static_asserts pin that: if a field is ever
  // added that pushes a group past one line (silently giving it two, with
  // the neighbour group starting mid-way through an even cadence on some
  // toolchain), the build fails instead of the bench quietly regressing.
  struct alignas(kCacheLineBytes) ProducerCursor {
    std::atomic<size_t> head{0};
    size_t cached_tail = 0;
  };
  struct alignas(kCacheLineBytes) ConsumerCursor {
    std::atomic<size_t> tail{0};
    size_t cached_head = 0;
  };
  static_assert(sizeof(ProducerCursor) == kCacheLineBytes,
                "producer cursor group must occupy exactly one cache line");
  static_assert(sizeof(ConsumerCursor) == kCacheLineBytes,
                "consumer cursor group must occupy exactly one cache line");
  static_assert(alignof(ProducerCursor) == kCacheLineBytes &&
                    alignof(ConsumerCursor) == kCacheLineBytes,
                "cursor groups must start on a cache-line boundary");

  const size_t mask_;
  Slot* slots_;

  ProducerCursor prod_;
  ConsumerCursor cons_;

#if NEWTOS_CHECKERS
  static uint64_t ThreadToken() { return CurrentSpscThreadToken(); }

  void CheckSide(std::atomic<uint64_t>& owner) {
    const uint64_t self = ThreadToken();
    if (owner.load(std::memory_order_relaxed) == self) {
      return;  // the common case: the bound owner calling again
    }
    uint64_t expected = 0;
    if (!owner.compare_exchange_strong(expected, self, std::memory_order_relaxed) &&
        expected != self) {
      check_state_.check_violations.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // The identity tokens get their own line: the producer token is read on
  // every producer-side call, so leaving it on the consumer's line (where it
  // used to sit, right after cached_head) made every producer op pull a line
  // the consumer dirties on every Pop — false sharing the checker build paid
  // on the hot path it was checking.
  struct alignas(kCacheLineBytes) CheckState {
    std::atomic<uint64_t> producer_thread{0};
    std::atomic<uint64_t> consumer_thread{0};
    std::atomic<uint64_t> check_violations{0};
  };
  static_assert(sizeof(CheckState) == kCacheLineBytes,
                "checker identity tokens must occupy exactly one cache line");
  CheckState check_state_;
#endif
};

}  // namespace newtos

#endif  // SRC_CHAN_SPSC_RING_H_
