#include "src/chan/kernel_ipc.h"

#include <cmath>

namespace newtos {

Cycles KernelIpcCosts::OneWayCycles(size_t bytes) const {
  const Cycles copy =
      kernel_copy_setup_cycles + static_cast<Cycles>(std::llround(copy_cycles_per_byte *
                                                                  static_cast<double>(bytes)));
  // Sender traps, kernel copies, scheduler switches to the receiver, which
  // returns from its blocked receive (second trap exit is folded into
  // trap_cycles).
  return 2 * trap_cycles + context_switch_cycles + copy;
}

Cycles KernelIpcCosts::RoundTripCycles(size_t bytes) const { return 2 * OneWayCycles(bytes); }

Cycles ChannelOneWayCycles(const ChannelCostModel& cost, size_t bytes,
                           double copy_cycles_per_byte) {
  return cost.enqueue_cycles + cost.dequeue_cycles +
         static_cast<Cycles>(std::llround(copy_cycles_per_byte * static_cast<double>(bytes)));
}

}  // namespace newtos
