// Simulated asynchronous channel between two pinned servers.
//
// This is the DES counterpart of SpscRing: a bounded FIFO whose *costs* are
// modeled instead of executed. The cycle costs of enqueueing, dequeueing and
// polling are carried in the CostModel and charged by the servers to their
// cores; the channel itself models capacity, occupancy, and the cache-line
// visibility latency between cores (a consumer learns of a message only
// after the line crosses the interconnect).

#ifndef SRC_CHAN_SIM_CHANNEL_H_
#define SRC_CHAN_SIM_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "src/sim/ring_deque.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {

struct ChannelCostModel {
  Cycles enqueue_cycles = 120;      // producer: slot write + head publish
  Cycles dequeue_cycles = 100;      // consumer: slot read + tail publish
  Cycles poll_empty_cycles = 40;    // consumer: checking an empty ring
  SimTime visibility_latency = 80 * kNanosecond;  // cross-core cache-line transfer
};

struct ChannelStats {
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t full_drops = 0;
  size_t max_depth = 0;
};

template <typename T>
class SimChannel {
 public:
  SimChannel(Simulation* sim, std::string name, size_t capacity, ChannelCostModel cost = {})
      : sim_(sim), name_(std::move(name)), capacity_(capacity), cost_(cost) {}

  SimChannel(const SimChannel&) = delete;
  SimChannel& operator=(const SimChannel&) = delete;

  const std::string& name() const { return name_; }
  const ChannelCostModel& cost() const { return cost_; }
  const ChannelStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }

  // `fn` fires (after the visibility latency) when the channel transitions
  // empty -> non-empty. This models the consumer's poll loop noticing the
  // head index change, or a doorbell if the consumer's core is halted.
  void SetNotify(std::function<void()> fn) { notify_ = std::move(fn); }

  // Enqueues; returns false if the channel is full (message dropped, counted).
  bool Push(T msg) {
    if (full()) {
      ++stats_.full_drops;
      return false;
    }
    const bool was_empty = queue_.empty();
    queue_.push_back(std::move(msg));
    ++stats_.pushes;
    stats_.max_depth = std::max(stats_.max_depth, queue_.size());
    if (was_empty && notify_) {
      sim_->Schedule(cost_.visibility_latency, [this] {
        // Re-check: the consumer may have drained it via a direct Pop already.
        if (!queue_.empty() && notify_) {
          notify_();
        }
      });
    }
    return true;
  }

  std::optional<T> Pop() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(queue_.front()));
    queue_.pop_front();
    ++stats_.pops;
    return out;
  }

  const T* Front() const { return queue_.empty() ? nullptr : &queue_.front(); }

 private:
  Simulation* sim_;
  std::string name_;
  size_t capacity_;
  ChannelCostModel cost_;
  RingDeque<T> queue_;
  std::function<void()> notify_;
  ChannelStats stats_;
};

}  // namespace newtos

#endif  // SRC_CHAN_SIM_CHANNEL_H_
