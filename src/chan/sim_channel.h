// Simulated asynchronous channel between two pinned servers.
//
// This is the DES counterpart of SpscRing: a bounded FIFO whose *costs* are
// modeled instead of executed. The cycle costs of enqueueing, dequeueing and
// polling are carried in the CostModel and charged by the servers to their
// cores; the channel itself models capacity, occupancy, and the cache-line
// visibility latency between cores (a consumer learns of a message only
// after the line crosses the interconnect).
//
// Fault taps: an optional tap (src/fault/fault_injector.h installs them)
// observes every Push and may drop the message in transit, duplicate it,
// delay its delivery, or mutate it in place (corruption). The tap models the
// shared-memory ring misbehaving — a torn write, a stale head index, a
// producer bug — which is exactly the fault surface a multiserver OS must
// survive. With no tap installed, Push is the original fast path.

#ifndef SRC_CHAN_SIM_CHANNEL_H_
#define SRC_CHAN_SIM_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "src/sim/ring_deque.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/trace/recorder.h"

#if NEWTOS_CHECKERS
#include "src/check/channel_checker.h"
#endif

namespace newtos {

struct ChannelCostModel {
  Cycles enqueue_cycles = 120;      // producer: slot write + head publish
  Cycles dequeue_cycles = 100;      // consumer: slot read + tail publish
  Cycles poll_empty_cycles = 40;    // consumer: checking an empty ring
  SimTime visibility_latency = 80 * kNanosecond;  // cross-core cache-line transfer
};

struct ChannelStats {
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t full_drops = 0;
  size_t max_depth = 0;
  // Fault-tap outcomes (all zero unless an injector tap is installed).
  uint64_t injected_drops = 0;
  uint64_t injected_dups = 0;
  uint64_t injected_delays = 0;
};

// What a fault tap decided for one message. kPass delivers normally (the tap
// may still have mutated the message — corruption); kDrop swallows it; kDup
// delivers it twice; kDelay holds it for `delay` before delivery.
enum class ChanTapAction : uint8_t { kPass, kDrop, kDuplicate, kDelay };

struct ChanTapDecision {
  ChanTapAction action = ChanTapAction::kPass;
  SimTime delay = 0;  // kDelay only
};

template <typename T>
class SimChannel {
 public:
  SimChannel(Simulation* sim, std::string name, size_t capacity, ChannelCostModel cost = {})
      : sim_(sim), name_(std::move(name)), capacity_(capacity), cost_(cost) {}

  SimChannel(const SimChannel&) = delete;
  SimChannel& operator=(const SimChannel&) = delete;

  const std::string& name() const { return name_; }
  const ChannelCostModel& cost() const { return cost_; }
  const ChannelStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }

  // `fn` fires (after the visibility latency) when the channel transitions
  // empty -> non-empty. This models the consumer's poll loop noticing the
  // head index change, or a doorbell if the consumer's core is halted.
  void SetNotify(std::function<void()> fn) { notify_ = std::move(fn); }

  // Installs (or clears, with nullptr) the fault tap. The tap runs on every
  // Push before the message enters the ring and may mutate the message.
  void SetTap(std::function<ChanTapDecision(T&)> tap) { tap_ = std::move(tap); }
  bool has_tap() const { return static_cast<bool>(tap_); }

  // Tracing: once wired, every traceable message (TraceIdsOf(msg).hop != 0)
  // records an async begin at enqueue and the matching end at dequeue, paired
  // by the hop id — the enqueue→dequeue edge is the message's residence in
  // this ring. Recording is allocation-free and off until the recorder is
  // enabled.
  void EnableTrace(TraceRecorder* rec, TrackId track, NameId hop_name) {
    trace_rec_ = rec;
    trace_track_ = track;
    trace_hop_ = hop_name;
  }

#if NEWTOS_CHECKERS
  // Protocol checker (src/check/channel_checker.h): validates the SPSC
  // discipline and FIFO order on this channel. Wired once at setup; with no
  // checker attached every hook is one predictable branch, and with the
  // macro off the hooks (and the push cursor) are not compiled at all.
  void EnableCheck(ChannelChecker* check) {
    check_ = check;
    if (check_ != nullptr) {
      check_->Register(this, name_);
    }
  }
  ChannelChecker* check() const { return check_; }
#endif

  // Enqueues; returns false if the channel is full (message dropped, counted).
  // A tap-injected drop returns true: the producer's enqueue succeeded, the
  // message was lost in transit — indistinguishable from the producer's side.
  bool Push(T msg) {
    uint64_t seq = 0;
#if NEWTOS_CHECKERS
    seq = ++check_seq_;
    if (check_ != nullptr) {
      check_->OnProducerPush(this, seq, TraceIdsOf(msg).hop);
    }
#endif
    if (tap_) {
      const ChanTapDecision d = tap_(msg);
      switch (d.action) {
        case ChanTapAction::kPass:
          break;
        case ChanTapAction::kDrop:
          ++stats_.injected_drops;
#if NEWTOS_CHECKERS
          if (check_ != nullptr) {
            check_->OnDrop(this, TraceIdsOf(msg).hop);
          }
#endif
          return true;
        case ChanTapAction::kDuplicate:
          ++stats_.injected_dups;
          EnqueueInOrder(msg, seq);  // the copy; capacity full_drops apply as usual
          break;
        case ChanTapAction::kDelay:
          ++stats_.injected_delays;
          delayed_.push_back(Delayed{sim_->Now() + d.delay, std::move(msg), seq});
          sim_->Schedule(d.delay, [this] { ReleaseDelayed(); });
          return true;
      }
    }
    return EnqueueInOrder(std::move(msg), seq);
  }

  std::optional<T> Pop() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(queue_.front()));
    queue_.pop_front();
    ++stats_.pops;
#if NEWTOS_CHECKERS
    if (check_ != nullptr) {
      check_->OnPop(this, TraceIdsOf(*out).hop);
    }
#endif
    if (TraceOn(trace_rec_)) {
      const TraceIds ids = TraceIdsOf(*out);
      if (ids.hop != 0) {
        trace_rec_->AsyncEnd(sim_->Now(), trace_track_, trace_hop_, ids.hop);
      }
    }
    return out;
  }

  const T* Front() const { return queue_.empty() ? nullptr : &queue_.front(); }

 private:
  struct Delayed {
    SimTime due = 0;
    T msg;
    uint64_t check_seq = 0;  // push-cursor value, for the protocol checker
  };

  // A message that arrives while earlier ones are held back by a delay tap
  // must not overtake them: the ring is a FIFO, and a stalled slot blocks
  // everything behind it. Queue it behind the held messages, already due;
  // the pending release event delivers the whole run in push order.
  bool EnqueueInOrder(T msg, [[maybe_unused]] uint64_t seq) {
    if (!delayed_.empty()) {
      delayed_.push_back(Delayed{sim_->Now(), std::move(msg), seq});
      return true;  // accepted; capacity is accounted at release, like kDelay
    }
    return PushDirect(std::move(msg), seq);
  }

  bool PushDirect(T msg, [[maybe_unused]] uint64_t seq = 0) {
    if (full()) {
      ++stats_.full_drops;
#if NEWTOS_CHECKERS
      if (check_ != nullptr) {
        check_->OnDrop(this, TraceIdsOf(msg).hop);
      }
#endif
      return false;
    }
    if (TraceOn(trace_rec_)) {
      const TraceIds ids = TraceIdsOf(msg);
      if (ids.hop != 0) {
        trace_rec_->AsyncBegin(sim_->Now(), trace_track_, trace_hop_, ids.hop);
      }
    }
#if NEWTOS_CHECKERS
    if (check_ != nullptr) {
      check_->OnDeliver(this, seq);
    }
#endif
    const bool was_empty = queue_.empty();
    queue_.push_back(std::move(msg));
    ++stats_.pushes;
    stats_.max_depth = std::max(stats_.max_depth, queue_.size());
    if (was_empty && notify_) {
      sim_->Schedule(cost_.visibility_latency, [this] {
        // Re-check: the consumer may have drained it via a direct Pop already.
        if (!queue_.empty() && notify_) {
          notify_();
        }
      });
    }
    return true;
  }

  // Delivers every held-back message that has come due. Delayed messages
  // release strictly in hold order: a message delayed longer blocks later,
  // shorter-delayed ones behind it (head-of-line blocking, like a stalled
  // ring slot); each pending entry has its own scheduled release event, so
  // nothing is ever stranded.
  void ReleaseDelayed() {
    while (!delayed_.empty() && delayed_.front().due <= sim_->Now()) {
      PushDirect(std::move(delayed_.front().msg), delayed_.front().check_seq);
      delayed_.pop_front();
    }
  }

  Simulation* sim_;
  std::string name_;
  size_t capacity_;
  ChannelCostModel cost_;
  RingDeque<T> queue_;
  RingDeque<Delayed> delayed_;  // tap-held messages awaiting release
  std::function<void()> notify_;
  std::function<ChanTapDecision(T&)> tap_;
  ChannelStats stats_;

  TraceRecorder* trace_rec_ = nullptr;
  TrackId trace_track_ = 0;
  NameId trace_hop_ = 0;

#if NEWTOS_CHECKERS
  ChannelChecker* check_ = nullptr;
  uint64_t check_seq_ = 0;  // push cursor: strictly monotone per channel
#endif
};

}  // namespace newtos

#endif  // SRC_CHAN_SIM_CHANNEL_H_
