// ThreadChannel: the live backend's channel — a bare SpscRing plus the
// doorbells and counters the engine needs, presenting the same vocabulary as
// the simulated SimChannel (Push/Pop/Front, per-side stats, checker hook).
//
// The DES wrapper modeled a shared-memory ring; this IS one. No cost model,
// no taps, no scheduled delivery: a push is a release store into the ring
// and (when the consumer might be parked) a doorbell ring on its IdleGate.
// Stats are split per side into cache-line-aligned groups for the same
// reason the ring's cursors are: the producer's counters must never bounce
// on the consumer's line.
//
// Threading contract: exactly one producer thread and one consumer thread,
// the same contract the underlying SpscRing enforces (and, under
// NEWTOS_CHECKERS, actually checks — imposters() surfaces the ring's
// first-touch identity violations so the live stack can report them through
// the ChannelChecker).

#ifndef SRC_RUNTIME_THREAD_CHANNEL_H_
#define SRC_RUNTIME_THREAD_CHANNEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/chan/spsc_ring.h"
#include "src/runtime/park.h"

namespace newtos {

template <typename T>
class ThreadChannel {
 public:
  ThreadChannel(std::string name, size_t capacity) : ring_(capacity), name_(std::move(name)) {}

  ThreadChannel(const ThreadChannel&) = delete;
  ThreadChannel& operator=(const ThreadChannel&) = delete;

  const std::string& name() const { return name_; }
  size_t capacity() const { return ring_.capacity(); }

  // Doorbells. The consumer gate is rung after every successful push (so a
  // parked consumer wakes); the producer gate after every successful pop (so
  // a producer parked on backpressure wakes). Either may stay null.
  void BindConsumerGate(IdleGate* gate) { consumer_gate_ = gate; }
  void BindProducerGate(IdleGate* gate) { producer_gate_ = gate; }
  IdleGate* consumer_gate() const { return consumer_gate_; }
  IdleGate* producer_gate() const { return producer_gate_; }

  // --- Producer side ---

  bool TryPush(T value) {
    if (!ring_.TryPush(std::move(value))) {
      ++prod_stats_.full_retries;
      return false;
    }
    ++prod_stats_.pushes;
    if (consumer_gate_ != nullptr) {
      consumer_gate_->Notify();
    }
    return true;
  }

  // True if a push could currently succeed (producer thread only; exact for
  // the producer). Used by park rechecks on backpressured producers.
  bool HasSpaceProducer() const { return ring_.SizeProducer() < ring_.capacity(); }

  // --- Consumer side ---

  std::optional<T> TryPop() {
    std::optional<T> out = ring_.TryPop();
    if (out.has_value()) {
      ++cons_stats_.pops;
      if (producer_gate_ != nullptr) {
        producer_gate_->Notify();
      }
    }
    return out;
  }

  // Peek without consuming (consumer thread only; pointer valid until the
  // next TryPop).
  const T* Front() { return ring_.Front(); }

  bool EmptyConsumer() { return ring_.EmptyConsumer(); }

  // --- Post-join accounting (single-threaded once workers are joined) ---

  uint64_t pushes() const { return prod_stats_.pushes; }
  uint64_t pops() const { return cons_stats_.pops; }
  uint64_t full_retries() const { return prod_stats_.full_retries; }
  size_t Residue() const { return ring_.SizeProducer(); }

  uint64_t imposters() const {
#if NEWTOS_CHECKERS
    return ring_.check_violations();
#else
    return 0;
#endif
  }

#if NEWTOS_CHECKERS
  // First-touch side owners from the ring's identity check (0 = never
  // touched). Post-join, these map back to role names via the tokens each
  // server thread recorded for itself — the observed-wiring export.
  uint64_t producer_token() const { return ring_.producer_token(); }
  uint64_t consumer_token() const { return ring_.consumer_token(); }
#endif

 private:
  SpscRing<T> ring_;

  // Plain counters, one side each — no atomics needed under the SPSC
  // contract, but they must live on distinct lines (see spsc_ring.h).
  struct alignas(kCacheLineBytes) ProducerStats {
    uint64_t pushes = 0;
    uint64_t full_retries = 0;
  };
  struct alignas(kCacheLineBytes) ConsumerStats {
    uint64_t pops = 0;
  };
  static_assert(sizeof(ProducerStats) == kCacheLineBytes &&
                    sizeof(ConsumerStats) == kCacheLineBytes,
                "per-side stats must occupy exactly one cache line each");

  ProducerStats prod_stats_;
  ConsumerStats cons_stats_;

  IdleGate* consumer_gate_ = nullptr;
  IdleGate* producer_gate_ = nullptr;
  std::string name_;
};

}  // namespace newtos

#endif  // SRC_RUNTIME_THREAD_CHANNEL_H_
