#include "src/runtime/live_stack.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include "src/check/channel_checker.h"
#include "src/os/stack.h"
#include "src/runtime/clock.h"
#include "src/runtime/live_wiring.h"

namespace newtos {
namespace {

// Watchdog attachment for one server: heartbeats arrive on `in`, acks leave
// on `out`. Inactive (nullptr) for the mini stack and for the watchdog
// itself.
struct WdPort {
  ThreadChannel<RtMsg>* in = nullptr;
  ThreadChannel<RtMsg>* out = nullptr;
  bool active() const { return in != nullptr; }
};

// Drains the heartbeat ring: acks every kHeartbeat, latches kShutdown.
// The ack push loops on the full ring — safe because the watchdog always
// drains its ack rings and never blocks on this server (the stop check only
// matters on the deadline-abort path, where the watchdog may be gone).
bool ServiceWd(ServerContext& ctx, WdPort& wd, bool* wd_done) {
  if (!wd.active()) {
    return false;
  }
  bool work = false;
  while (std::optional<RtMsg> m = wd.in->TryPop()) {
    work = true;
    if (m->type == RtMsg::Type::kHeartbeat) {
      RtMsg ack;
      ack.type = RtMsg::Type::kHeartbeatAck;
      ack.seq = m->seq;
      // The one sanctioned spin: the watchdog always drains its ack rings and
      // never blocks back on this server, so the wait is bounded (mirrored by
      // the [[blocking]] entry in tools/analyze/analyze.toml).
      // lint:allow(blocking-push): watchdog always drains acks; bounded wait
      while (!wd.out->TryPush(ack)) {
        if (ctx.StopRequested()) {
          return work;
        }
      }
    } else if (m->type == RtMsg::Type::kShutdown) {
      *wd_done = true;
    }
  }
  return work;
}

bool WdHasInput(WdPort& wd) { return wd.active() && !wd.in->EmptyConsumer(); }

// State shared across server threads. Everything here is either atomic or
// owned by exactly one thread until after Join().
struct SharedState {
  const LiveStackConfig* cfg = nullptr;
  RuntimeClock clock;
  std::atomic<bool> transfer_done{false};
  std::atomic<int> exited{0};
  IdleGate* wd_gate = nullptr;  // rung when transfer_done flips
};

// Results a server thread writes before exiting; read post-join only.
struct PeerOut {
  uint64_t delivered = 0;
  uint64_t chunks = 0;
  uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
  uint64_t payload_errors = 0;
  bool saw_shutdown = false;
  LatencyHistogram latency;
};

struct WdOut {
  uint64_t rounds = 0;
};

// --- Server bodies -------------------------------------------------------
//
// Every body follows the same shape: a non-blocking service loop (full
// outputs land in a one-slot pending buffer, never a blocked push), a
// ServiceWd step, and ctx.Idle() with a recheck that mirrors exactly the
// conditions under which the loop could make progress.

void AppBody(ServerContext& ctx, SharedState* sh, ThreadChannel<RtMsg>* out, WdPort wd,
             TraceRecorder* rec, TrackId track, NameId e2e) {
  const uint64_t total = sh->cfg->transfer_bytes;
  const uint32_t mss = sh->cfg->mss;
  uint64_t off = 0;
  uint32_t seq = 0;
  bool shutdown_sent = false;
  bool wd_done = !wd.active();
  RtMsg m;
  bool msg_ready = false;

  while (!(shutdown_sent && wd_done)) {
    if (ctx.StopRequested()) {
      return;
    }
    bool work = false;
    if (off < total) {
      if (!msg_ready) {
        const uint32_t len =
            static_cast<uint32_t>(std::min<uint64_t>(mss, total - off));
        m.type = RtMsg::Type::kData;
        m.len = static_cast<uint16_t>(len);
        m.seq = seq;
        m.stream_off = off;
        for (uint32_t i = 0; i < len; ++i) {
          m.payload[i] = RtPatternByte(off + i);
        }
        msg_ready = true;
      }
      m.born_ns = sh->clock.NowNs();
      if (out->TryPush(m)) {
        if (TraceOn(rec)) {
          rec->AsyncBegin(sh->clock.NowPs(), track, e2e, seq + 1);
        }
        off += m.len;
        ++seq;
        msg_ready = false;
        work = true;
      }
    } else if (!shutdown_sent) {
      RtMsg s;
      s.type = RtMsg::Type::kShutdown;
      s.seq = seq;
      if (out->TryPush(s)) {
        shutdown_sent = true;
        work = true;
      }
    }
    work |= ServiceWd(ctx, wd, &wd_done);
    ctx.Idle(work, [&] {
      return (!shutdown_sent && out->HasSpaceProducer()) || WdHasInput(wd);
    });
  }
}

void TcpBody(ServerContext& ctx, SharedState* sh, ThreadChannel<RtMsg>* data_in,
             ThreadChannel<RtMsg>* data_out, ThreadChannel<RtMsg>* ack_in, WdPort wd) {
  const uint64_t window = sh->cfg->window_bytes;
  uint64_t acked_bytes = 0;
  bool fwd_shutdown = false;   // data-path shutdown forwarded downstream
  bool ack_shutdown = false;   // ack-path shutdown received (all data acked)
  bool wd_done = !wd.active();
  std::optional<RtMsg> pending;

  // A data segment is admissible when it fits the in-flight window (acks
  // are cumulative byte counts from the peer). Shutdown rides behind the
  // last segment and is never window-gated — but FIFO order means it can
  // never overtake a withheld segment either.
  auto admissible = [&](const RtMsg& f) {
    return f.type != RtMsg::Type::kData || f.stream_off + f.len <= acked_bytes + window;
  };

  while (!(fwd_shutdown && ack_shutdown && wd_done)) {
    if (ctx.StopRequested()) {
      return;
    }
    bool work = false;
    while (std::optional<RtMsg> a = ack_in->TryPop()) {
      work = true;
      if (a->type == RtMsg::Type::kAck) {
        acked_bytes = std::max(acked_bytes, a->stream_off);
      } else if (a->type == RtMsg::Type::kShutdown) {
        ack_shutdown = true;
      }
    }
    if (pending && data_out->TryPush(*pending)) {
      if (pending->type == RtMsg::Type::kShutdown) {
        fwd_shutdown = true;
      }
      pending.reset();
      work = true;
    }
    while (!pending && !fwd_shutdown) {
      const RtMsg* front = data_in->Front();
      if (front == nullptr || !admissible(*front)) {
        break;
      }
      RtMsg msg = *data_in->TryPop();
      work = true;
      const bool is_shutdown = msg.type == RtMsg::Type::kShutdown;
      if (!data_out->TryPush(msg)) {
        pending = msg;
      } else if (is_shutdown) {
        fwd_shutdown = true;
      }
    }
    work |= ServiceWd(ctx, wd, &wd_done);
    ctx.Idle(work, [&] {
      if (!ack_in->EmptyConsumer() || WdHasInput(wd)) {
        return true;
      }
      if (pending) {
        return data_out->HasSpaceProducer();
      }
      if (!fwd_shutdown) {
        const RtMsg* front = data_in->Front();
        return front != nullptr && admissible(*front) && data_out->HasSpaceProducer();
      }
      return false;
    });
  }
}

// Bidirectional store-and-forward: the live ip server shuttles data down
// and acks up, one pending slot per direction.
struct ForwardDir {
  ThreadChannel<RtMsg>* in = nullptr;
  ThreadChannel<RtMsg>* out = nullptr;
  std::optional<RtMsg> pending;
  bool shutdown_forwarded = false;
};

bool ForwardStep(ForwardDir& d) {
  bool work = false;
  if (d.pending && d.out->TryPush(*d.pending)) {
    if (d.pending->type == RtMsg::Type::kShutdown) {
      d.shutdown_forwarded = true;
    }
    d.pending.reset();
    work = true;
  }
  while (!d.pending && !d.shutdown_forwarded) {
    std::optional<RtMsg> m = d.in->TryPop();
    if (!m) {
      break;
    }
    work = true;
    const bool is_shutdown = m->type == RtMsg::Type::kShutdown;
    if (!d.out->TryPush(*m)) {
      d.pending = *m;
    } else if (is_shutdown) {
      d.shutdown_forwarded = true;
    }
  }
  return work;
}

bool ForwardCanProgress(ForwardDir& d) {
  if (d.pending) {
    return d.out->HasSpaceProducer();
  }
  return !d.shutdown_forwarded && !d.in->EmptyConsumer() && d.out->HasSpaceProducer();
}

void IpBody(ServerContext& ctx, ForwardDir down, ForwardDir up, WdPort wd) {
  bool wd_done = !wd.active();
  while (!(down.shutdown_forwarded && up.shutdown_forwarded && wd_done)) {
    if (ctx.StopRequested()) {
      return;
    }
    bool work = ForwardStep(down);
    work |= ForwardStep(up);
    work |= ServiceWd(ctx, wd, &wd_done);
    ctx.Idle(work, [&] {
      return ForwardCanProgress(down) || ForwardCanProgress(up) || WdHasInput(wd);
    });
  }
}

void PeerBody(ServerContext& ctx, SharedState* sh, ThreadChannel<RtMsg>* data_in,
              ThreadChannel<RtMsg>* ack_out, WdPort wd, PeerOut* out, TraceRecorder* rec,
              TrackId track, NameId e2e) {
  const bool verify = sh->cfg->verify_payload;
  bool wd_done = !wd.active();
  std::optional<RtMsg> pending_ack;

  while (!((out->saw_shutdown && !pending_ack) && wd_done)) {
    if (ctx.StopRequested()) {
      return;
    }
    bool work = false;
    if (pending_ack && ack_out->TryPush(*pending_ack)) {
      pending_ack.reset();
      work = true;
    }
    while (!pending_ack) {
      std::optional<RtMsg> m = data_in->TryPop();
      if (!m) {
        break;
      }
      work = true;
      if (m->type == RtMsg::Type::kData) {
        if (verify) {
          for (uint32_t i = 0; i < m->len; ++i) {
            if (m->payload[i] != RtPatternByte(m->stream_off + i)) {
              ++out->payload_errors;
            }
          }
        }
        out->delivered += m->len;
        ++out->chunks;
        // Same FNV-1a fold as StreamIntegrityChecker::OnChunk — the digest
        // is directly comparable to the DES reference.
        out->digest ^= m->len;
        out->digest *= 1099511628211ULL;
        out->latency.Record(RuntimeClock::NsToPs(sh->clock.NowNs() - m->born_ns));
        if (TraceOn(rec)) {
          rec->AsyncEnd(sh->clock.NowPs(), track, e2e, m->seq + 1);
        }
        RtMsg ack;
        ack.type = RtMsg::Type::kAck;
        ack.seq = m->seq;
        ack.stream_off = out->delivered;
        if (!ack_out->TryPush(ack)) {
          pending_ack = ack;
        }
      } else if (m->type == RtMsg::Type::kShutdown) {
        out->saw_shutdown = true;
        // Wake the watchdog so it can broadcast the quiesce.
        sh->transfer_done.store(true, std::memory_order_release);
        if (sh->wd_gate != nullptr) {
          sh->wd_gate->Notify();
        }
        RtMsg echo;
        echo.type = RtMsg::Type::kShutdown;
        if (!ack_out->TryPush(echo)) {
          pending_ack = echo;
        }
        break;
      }
    }
    work |= ServiceWd(ctx, wd, &wd_done);
    ctx.Idle(work, [&] {
      if (!data_in->EmptyConsumer() || WdHasInput(wd)) {
        return true;
      }
      return pending_ack.has_value() && ack_out->HasSpaceProducer();
    });
  }
}

void UdpBody(ServerContext& ctx, WdPort wd) {
  // The live udp server carries no fig2 traffic; it exists to be watched —
  // an idle server parked on its gate, woken only by heartbeats. Exactly
  // the paper's "dedicated core idling at low power" case.
  bool wd_done = !wd.active();
  while (!wd_done) {
    if (ctx.StopRequested()) {
      return;
    }
    const bool work = ServiceWd(ctx, wd, &wd_done);
    ctx.Idle(work, [&] { return WdHasInput(wd); });
  }
}

void WatchdogBody(ServerContext& ctx, SharedState* sh,
                  std::vector<ThreadChannel<RtMsg>*> out_rings,
                  std::vector<ThreadChannel<RtMsg>*> in_rings, WdOut* wd_out) {
  const size_t n = out_rings.size();
  const uint32_t max_rounds = sh->cfg->heartbeat_rounds;
  std::vector<uint64_t> sent(n, 0);
  std::vector<uint64_t> acked(n, 0);
  std::vector<bool> outstanding(n, false);
  std::vector<bool> shutdown_pushed(n, false);
  uint32_t round = 0;

  auto all_quiesced = [&] {
    for (size_t i = 0; i < n; ++i) {
      if (!shutdown_pushed[i] || acked[i] != sent[i]) {
        return false;
      }
    }
    return true;
  };

  while (true) {
    if (ctx.StopRequested()) {
      return;
    }
    bool work = false;
    for (size_t i = 0; i < n; ++i) {
      while (std::optional<RtMsg> m = in_rings[i]->TryPop()) {
        work = true;
        if (m->type == RtMsg::Type::kHeartbeatAck) {
          ++acked[i];
          outstanding[i] = false;
        }
      }
    }
    const bool quiesce = sh->transfer_done.load(std::memory_order_acquire);
    if (quiesce) {
      for (size_t i = 0; i < n; ++i) {
        if (!shutdown_pushed[i]) {
          RtMsg s;
          s.type = RtMsg::Type::kShutdown;
          if (out_rings[i]->TryPush(s)) {
            shutdown_pushed[i] = true;
            work = true;
          }
        }
      }
      if (all_quiesced()) {
        wd_out->rounds = round;
        return;
      }
    } else if (round < max_rounds) {
      // Self-clocked ping-pong: a fresh heartbeat goes out only once the
      // previous one was acked, so liveness checking can never flood a
      // server's ring or starve the data path.
      bool round_complete = true;
      for (size_t i = 0; i < n; ++i) {
        if (!outstanding[i] && sent[i] <= round) {
          RtMsg hb;
          hb.type = RtMsg::Type::kHeartbeat;
          hb.seq = round;
          if (out_rings[i]->TryPush(hb)) {
            outstanding[i] = true;
            ++sent[i];
            work = true;
          }
        }
        if (sent[i] <= round || outstanding[i]) {
          round_complete = false;
        }
      }
      if (round_complete) {
        ++round;
        work = true;
      }
    }
    ctx.Idle(work, [&] {
      for (size_t i = 0; i < n; ++i) {
        if (!in_rings[i]->EmptyConsumer()) {
          return true;
        }
      }
      return sh->transfer_done.load(std::memory_order_acquire) && !all_quiesced();
    });
  }
}

}  // namespace

LiveStackResult RunLiveFig2(const LiveStackConfig& config) {
  LiveStackResult result;
  SharedState sh;
  sh.cfg = &config;

  using Chan = ThreadChannel<RtMsg>;
  auto make_chan = [](std::string name, size_t cap) {
    return std::make_unique<Chan>(std::move(name), cap);
  };

  // Role order fixes the pin layout (role i -> cpu first_cpu + i) and the
  // trace track order; names come from the canonical list both backends
  // share (src/os/stack.h).
  std::vector<std::string> roles;
  if (config.mini) {
    roles = {kStackRoleNames[0], kStackRoleNames[1], kStackRoleNames[3]};  // app, tcp, peer
  } else {
    roles.assign(kStackRoleNames, kStackRoleNames + kStackRoleCount);
  }

  std::vector<std::unique_ptr<Chan>> chans;
  auto add_chan = [&](std::string name, size_t cap) {
    chans.push_back(make_chan(std::move(name), cap));
    return chans.back().get();
  };
  // Data rings come from the canonical topology table (live_wiring.h): the
  // row must exist and be flagged for this stack flavour, so the code cannot
  // instantiate a ring the table (and the static analyzer reading it) does
  // not know about.
  auto add_spec = [&](std::string_view name) -> Chan* {
    for (const LiveRingSpec& s : kLiveRingSpecs) {
      if (name == s.name) {
        assert((config.mini ? s.in_mini : s.in_full) &&
               "live ring not declared for this stack flavour in live_wiring.h");
        return add_chan(s.name, config.ring_capacity);
      }
    }
    assert(false && "live ring missing from kLiveRingSpecs (live_wiring.h)");
    return nullptr;
  };

  Chan* a2t = add_spec("app/tcp");
  Chan* t2down = add_spec(config.mini ? "tcp/peer" : "tcp/ip");
  Chan* i2p = config.mini ? nullptr : add_spec("ip/peer");
  Chan* p2up = add_spec(config.mini ? "peer/tcp" : "peer/ip");
  Chan* i2t = config.mini ? nullptr : add_spec("ip/tcp");

  // Watchdog rings (full stack only): one heartbeat + one ack ring per
  // watched server, SPSC preserved — the watchdog is sole producer on every
  // /wd ring and sole consumer on every /ack ring.
  const std::vector<std::string> watched =
      config.mini
          ? std::vector<std::string>{}
          : std::vector<std::string>(kLiveWatchedRoles, kLiveWatchedRoles + kLiveWatchedRoleCount);
  std::vector<Chan*> wd_tx;  // watchdog -> server
  std::vector<Chan*> wd_rx;  // server -> watchdog
  for (const std::string& w : watched) {
    wd_tx.push_back(add_chan("wd/" + w, 16));
    wd_rx.push_back(add_chan(w + "/wd", 16));
  }
  auto wd_port = [&](size_t watched_idx) {
    WdPort p;
    if (watched_idx < wd_tx.size()) {
      p.in = wd_tx[watched_idx];
      p.out = wd_rx[watched_idx];
    }
    return p;
  };

  // Trace wiring: one single-threaded recorder per server thread.
  std::vector<TraceRecorder*> recs(roles.size(), nullptr);
  std::vector<TrackId> tracks(roles.size(), 0);
  NameId e2e_app = 0;
  NameId e2e_peer = 0;
  if (config.enable_trace) {
    for (size_t i = 0; i < roles.size(); ++i) {
      auto rec = std::make_unique<TraceRecorder>(config.trace_capacity);
      tracks[i] = rec->RegisterTrack(roles[i], static_cast<int>(i));
      rec->set_enabled(true);
      recs[i] = rec.get();
      result.recorders.push_back(std::move(rec));
    }
    const size_t app_i = 0;
    const size_t peer_i = config.mini ? 2 : 3;
    e2e_app = recs[app_i]->InternName("seg");
    e2e_peer = recs[peer_i]->InternName("seg");
  }

  RuntimeEngine engine(config.poll);
  PeerOut peer_out;
  WdOut wd_out;

  auto cpu_for = [&](size_t i) {
    if (!config.pin_threads) {
      return -1;
    }
    const int cpu = config.first_cpu + static_cast<int>(i);
    // A pin budget below the role count means the surplus roles float (the
    // scheduler timeslices them) rather than aliasing onto already-taken
    // cores — modulo-pinning two servers to one core is strictly worse than
    // letting the kernel balance them.
    if (config.pin_cpu_limit >= 0 && cpu >= config.pin_cpu_limit) {
      return -1;
    }
    return cpu;
  };

  std::vector<ServerContext*> ctxs;
#if NEWTOS_CHECKERS
  // Each thread records its SPSC identity token under its role index before
  // its body runs (distinct slots; read only after Join()), so the post-join
  // audit can map each ring's first-touch owners back to role names.
  std::vector<uint64_t> role_tokens(roles.size(), 0);
  size_t next_role = 0;
  auto finish = [&sh, &role_tokens, &next_role](auto body) {
    const size_t idx = next_role++;
    return [&sh, &role_tokens, idx, body = std::move(body)](ServerContext& ctx) {
      role_tokens[idx] = CurrentSpscThreadToken();
      body(ctx);
      sh.exited.fetch_add(1, std::memory_order_release);
    };
  };
#else
  auto finish = [&sh](auto body) {
    return [&sh, body = std::move(body)](ServerContext& ctx) {
      body(ctx);
      sh.exited.fetch_add(1, std::memory_order_release);
    };
  };
#endif

  if (config.mini) {
    ctxs.push_back(&engine.Add("app", cpu_for(0), finish([&](ServerContext& ctx) {
      AppBody(ctx, &sh, a2t, WdPort{}, recs[0], tracks[0], e2e_app);
    })));
    ctxs.push_back(&engine.Add("tcp", cpu_for(1), finish([&](ServerContext& ctx) {
      TcpBody(ctx, &sh, a2t, t2down, p2up, WdPort{});
    })));
    ctxs.push_back(&engine.Add("peer", cpu_for(2), finish([&](ServerContext& ctx) {
      PeerBody(ctx, &sh, t2down, p2up, WdPort{}, &peer_out, recs[2], tracks[2], e2e_peer);
    })));
  } else {
    ctxs.push_back(&engine.Add("app", cpu_for(0), finish([&](ServerContext& ctx) {
      AppBody(ctx, &sh, a2t, wd_port(0), recs[0], tracks[0], e2e_app);
    })));
    ctxs.push_back(&engine.Add("tcp", cpu_for(1), finish([&](ServerContext& ctx) {
      TcpBody(ctx, &sh, a2t, t2down, i2t, wd_port(1));
    })));
    ctxs.push_back(&engine.Add("ip", cpu_for(2), finish([&](ServerContext& ctx) {
      ForwardDir down{t2down, i2p, std::nullopt, false};
      ForwardDir up{p2up, i2t, std::nullopt, false};
      IpBody(ctx, std::move(down), std::move(up), wd_port(2));
    })));
    ctxs.push_back(&engine.Add("peer", cpu_for(3), finish([&](ServerContext& ctx) {
      PeerBody(ctx, &sh, i2p, p2up, wd_port(3), &peer_out, recs[3], tracks[3], e2e_peer);
    })));
    ctxs.push_back(&engine.Add("udp", cpu_for(4), finish([&](ServerContext& ctx) {
      UdpBody(ctx, wd_port(4));
    })));
    ctxs.push_back(&engine.Add("watchdog", cpu_for(5), finish([&](ServerContext& ctx) {
      WatchdogBody(ctx, &sh,
                   std::vector<Chan*>(wd_tx.begin(), wd_tx.end()),
                   std::vector<Chan*>(wd_rx.begin(), wd_rx.end()), &wd_out);
    })));
    sh.wd_gate = &ctxs.back()->gate();
  }

  // Doorbell wiring: consumer/producer gates per ring, by topology.
  auto bind = [&](Chan* c, ServerContext* producer, ServerContext* consumer) {
    if (c == nullptr) {
      return;
    }
    c->BindProducerGate(&producer->gate());
    c->BindConsumerGate(&consumer->gate());
  };
  if (config.mini) {
    bind(a2t, ctxs[0], ctxs[1]);
    bind(t2down, ctxs[1], ctxs[2]);
    bind(p2up, ctxs[2], ctxs[1]);
  } else {
    bind(a2t, ctxs[0], ctxs[1]);
    bind(t2down, ctxs[1], ctxs[2]);
    bind(i2p, ctxs[2], ctxs[3]);
    bind(p2up, ctxs[3], ctxs[2]);
    bind(i2t, ctxs[2], ctxs[1]);
    // Watched order equals role order (app, tcp, ip, peer, udp), so watched
    // index i is context index i; the watchdog is context 5.
    for (size_t i = 0; i < watched.size(); ++i) {
      bind(wd_tx[i], ctxs[5], ctxs[i]);
      bind(wd_rx[i], ctxs[i], ctxs[5]);
    }
  }

  engine.Start();
  const uint64_t t0 = sh.clock.NowNs();

  // Deadline monitor: the quiesce protocol ends the run in the happy path;
  // the deadline turns a protocol bug into a failed result instead of a
  // hung process.
  const int n_threads = static_cast<int>(roles.size());
  bool timed_out = false;
  while (sh.exited.load(std::memory_order_acquire) < n_threads) {
    if (sh.clock.NowNs() - t0 > config.timeout_ns) {
      timed_out = true;
      engine.RequestStop();
      break;
    }
    SleepNs(200'000);
  }
  engine.Join();
  result.wall_seconds = static_cast<double>(sh.clock.NowNs() - t0) / 1e9;

  // --- Post-join audit (single-threaded again) ---
  result.delivered = peer_out.delivered;
  result.chunks = peer_out.chunks;
  result.digest = peer_out.digest;
  result.payload_errors = peer_out.payload_errors;
  result.heartbeat_rounds = wd_out.rounds;
  result.latency = peer_out.latency;
  result.completed =
      !timed_out && peer_out.saw_shutdown && result.delivered == config.transfer_bytes;
  result.threads = engine.Stats();

  result.conservation_ok = true;
  for (const auto& c : chans) {
    LiveRingStats rs;
    rs.name = c->name();
    rs.pushes = c->pushes();
    rs.pops = c->pops();
    rs.full_retries = c->full_retries();
    rs.residue = c->Residue();
    rs.imposters = c->imposters();
    if (rs.pushes != rs.pops || rs.residue != 0) {
      result.conservation_ok = false;
    }
    result.rings.push_back(std::move(rs));
  }

#if NEWTOS_CHECKERS
  {
    auto role_of = [&](uint64_t token) -> std::string {
      for (size_t i = 0; i < roles.size(); ++i) {
        if (token != 0 && role_tokens[i] == token) {
          return roles[i];
        }
      }
      return std::string();
    };
    std::vector<const Chan*> by_name;
    by_name.reserve(chans.size());
    for (const auto& c : chans) {
      by_name.push_back(c.get());
    }
    std::sort(by_name.begin(), by_name.end(),
              [](const Chan* a, const Chan* b) { return a->name() < b->name(); });
    std::ostringstream os;
    for (const Chan* c : by_name) {
      os << "ring " << c->name() << " consumer=" << role_of(c->consumer_token())
         << " producers=" << role_of(c->producer_token()) << "\n";
    }
    result.wiring = os.str();
  }
#endif
  return result;
}

void FoldIntoChecker(const LiveStackResult& result, ChannelChecker* checker) {
  if (checker == nullptr) {
    return;
  }
  for (const LiveRingStats& r : result.rings) {
    checker->OnLiveRingSummary(r.name, r.pushes, r.pops, r.imposters);
  }
}

}  // namespace newtos
