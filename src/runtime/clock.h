// RuntimeClock: the real-thread backend's time source.
//
// The simulator's model time is SimTime picoseconds advanced by the event
// queue; the live backend has no event queue, so time comes from the host's
// monotonic clock. This header is the ONLY sanctioned wall-clock read in
// src/ (outside the pre-existing src/host harness): the runtime-clock lint
// rule bans std::chrono / clock_gettime everywhere else under src/, so model
// code cannot quietly grow a wall-clock dependency that would break
// determinism. Everything in src/runtime that needs "now" goes through here.
//
// Timestamps are nanoseconds from an arbitrary epoch (CLOCK_MONOTONIC), so
// they are comparable within a process run but meaningless across runs —
// exactly the property the live stack needs (latency = pop_ns - push_ns) and
// exactly the property the simulator must never depend on.

#ifndef SRC_RUNTIME_CLOCK_H_
#define SRC_RUNTIME_CLOCK_H_

#include <cstdint>
#include <ctime>

#include "src/sim/time.h"

namespace newtos {

// Nanoseconds on the host's monotonic clock.
inline uint64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Blocks the calling thread for ~ns (nanosleep; EINTR rounds down — callers
// poll in a loop anyway). For coarse waits like the run-deadline monitor,
// never for anything on a message path.
inline void SleepNs(uint64_t ns) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ns / 1'000'000'000ULL);
  ts.tv_nsec = static_cast<long>(ns % 1'000'000'000ULL);
  nanosleep(&ts, nullptr);
}

// A clock with a captured epoch, so live timestamps can be rendered on the
// same axis the trace tooling uses (SimTime picoseconds since "start").
class RuntimeClock {
 public:
  RuntimeClock() : epoch_ns_(MonotonicNowNs()) {}

  uint64_t NowNs() const { return MonotonicNowNs() - epoch_ns_; }

  // Live nanoseconds rendered as the trace subsystem's SimTime picoseconds.
  SimTime NowPs() const { return static_cast<SimTime>(NowNs()) * 1000; }

  static SimTime NsToPs(uint64_t ns) { return static_cast<SimTime>(ns) * 1000; }

  uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  uint64_t epoch_ns_;
};

}  // namespace newtos

#endif  // SRC_RUNTIME_CLOCK_H_
