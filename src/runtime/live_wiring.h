// The live stack's ring topology as data: one row per ring, naming its
// producing and consuming role and which stack flavours (mini/full) carry it.
//
// This table is the single source of truth for the live wiring. RunLiveFig2
// instantiates its ThreadChannels from these rows, and the static analyzer
// (tools/analyze) parses this header to build the live half of its ring
// graph — so a ring added in code without a row here fails the
// static-vs-dynamic equivalence gate instead of silently widening the
// topology. Watchdog rings are not listed row-by-row: every role in
// kLiveWatchedRoles gets a "wd/<role>" heartbeat ring (watchdog -> role) and
// a "<role>/wd" ack ring (role -> watchdog), full stack only.

#ifndef SRC_RUNTIME_LIVE_WIRING_H_
#define SRC_RUNTIME_LIVE_WIRING_H_

#include <cstddef>

namespace newtos {

struct LiveRingSpec {
  const char* name;      // channel name, "producer/consumer" by convention
  const char* producer;  // role of the one thread that pushes
  const char* consumer;  // role of the one thread that pops
  bool in_mini;          // present in the 3-server mini stack
  bool in_full;          // present in the full stack
};

inline constexpr LiveRingSpec kLiveRingSpecs[] = {
    {"app/tcp", "app", "tcp", true, true},
    {"tcp/peer", "tcp", "peer", true, false},
    {"peer/tcp", "peer", "tcp", true, false},
    {"tcp/ip", "tcp", "ip", false, true},
    {"ip/peer", "ip", "peer", false, true},
    {"peer/ip", "peer", "ip", false, true},
    {"ip/tcp", "ip", "tcp", false, true},
};
inline constexpr size_t kLiveRingSpecCount = sizeof(kLiveRingSpecs) / sizeof(kLiveRingSpecs[0]);

// Roles the watchdog heartbeats (full stack only); the watchdog thread
// itself carries the role below.
inline constexpr const char* kLiveWatchedRoles[] = {"app", "tcp", "ip", "peer", "udp"};
inline constexpr size_t kLiveWatchedRoleCount =
    sizeof(kLiveWatchedRoles) / sizeof(kLiveWatchedRoles[0]);
inline constexpr const char* kLiveWatchdogRole = "watchdog";

}  // namespace newtos

#endif  // SRC_RUNTIME_LIVE_WIRING_H_
