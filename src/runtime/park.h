// IdleGate: park/unpark for live server threads.
//
// Mirrors the paper's poll-vs-halt axis (src/core/poll_policy.h) on real
// threads: kPollAlways spins on the rings forever (minimum latency, a whole
// core burned per server — the NewtOS fast-path default); kHaltWhenIdle
// spins a grace budget and then parks on a futex (C++20 atomic wait), paying
// a wake-up on the next message — the "halt" the paper prices in fig 7.
//
// The sleep/wake race is the classic lost-wakeup: the consumer checks its
// rings, finds them empty, and parks — but the producer pushed in between.
// The gate closes it with the Dekker store-fence-load pattern:
//
//   consumer                           producer
//   --------                           --------
//   e = PrepareWait()                  ring.TryPush(...)   (release store)
//     parked = true                    Notify():
//     seq_cst fence                      seq_cst fence
//   recheck rings                        if (parked) { ++epoch; notify }
//   empty? Wait(e)
//
// The two seq_cst fences totally order the four accesses: either the
// consumer's recheck observes the push (it cancels the wait), or the
// producer's parked-load observes true (it bumps the epoch, and Wait(e)
// returns immediately because the epoch moved). Both sides touch only
// atomics, so the pattern is exactly as TSan-clean as it is correct.
//
// The parked flag is the fast-path filter: a producer whose consumer is
// running costs one relaxed load per push, no RMW, no syscall.

#ifndef SRC_RUNTIME_PARK_H_
#define SRC_RUNTIME_PARK_H_

#include <atomic>
#include <cstdint>

#include "src/chan/spsc_ring.h"
#include "src/core/poll_policy.h"

namespace newtos {

class IdleGate {
 public:
  IdleGate() = default;
  IdleGate(const IdleGate&) = delete;
  IdleGate& operator=(const IdleGate&) = delete;

  // Consumer: announce intent to park and capture the epoch. MUST be
  // followed by a recheck of every input ring before Wait().
  uint32_t PrepareWait() {
    const uint32_t e = epoch_.load(std::memory_order_relaxed);
    parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return e;
  }

  // Consumer: the recheck found work — stand down.
  void CancelWait() { parked_.store(false, std::memory_order_relaxed); }

  // Consumer: park until the epoch moves past `e` (or a spurious wake; the
  // caller's loop rechecks either way).
  void Wait(uint32_t e) {
    epoch_.wait(e, std::memory_order_relaxed);
    parked_.store(false, std::memory_order_relaxed);
  }

  // Producer: call after publishing work the gated thread might be asleep
  // for. Cheap when the consumer is awake (one fence + one relaxed load).
  void Notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed)) {
      epoch_.fetch_add(1, std::memory_order_relaxed);
      epoch_.notify_all();
    }
  }

  uint64_t wakes() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint32_t> epoch_{0};
  std::atomic<bool> parked_{false};
};

// The live backend's poll policy: reuses the simulator's PollMode axis, with
// the grace period expressed in empty loop iterations instead of SimTime
// (the live loop has no event queue to measure against; iterations are the
// natural spin unit and translate to roughly tens of nanoseconds each).
struct RuntimePollPolicy {
  PollMode mode = PollMode::kHaltWhenIdle;
  uint32_t spin_iterations = 4096;  // empty loops before parking
};

}  // namespace newtos

#endif  // SRC_RUNTIME_PARK_H_
