#include "src/runtime/engine.h"

#include <cassert>
#include <utility>

#include "src/host/affinity.h"

namespace newtos {

RuntimeEngine::RuntimeEngine(RuntimePollPolicy policy) : policy_(policy) {}

RuntimeEngine::~RuntimeEngine() {
  if (started_ && !joined_) {
    RequestStop();
    Join();
  }
}

ServerContext& RuntimeEngine::Add(std::string name, int cpu,
                                  std::function<void(ServerContext&)> body) {
  assert(!started_ && "Add() after Start() would race the running threads");
  auto entry = std::make_unique<Entry>();
  entry->ctx.name_ = std::move(name);
  entry->ctx.engine_ = this;
  entry->ctx.requested_cpu_ = cpu;
  entry->body = std::move(body);
  entries_.push_back(std::move(entry));
  return entries_.back()->ctx;
}

void RuntimeEngine::Start() {
  assert(!started_);
  started_ = true;
  const int ncpu = AvailableCpuCount();
  for (auto& e : entries_) {
    Entry* entry = e.get();
    entry->thread = std::thread([entry, ncpu] {
      ServerContext& ctx = entry->ctx;
      // Pin only when the requested CPU genuinely exists: on a host with
      // fewer cores than servers the modulo alias would stack two servers
      // on one core *and* forbid the scheduler from fixing it — strictly
      // worse than timeslicing. Fall back and record it.
      if (ctx.requested_cpu_ >= 0 && ctx.requested_cpu_ < ncpu) {
        ctx.pinned_ = PinThisThreadToCpu(ctx.requested_cpu_);
      }
      entry->body(ctx);
    });
  }
}

void RuntimeEngine::RequestStop() {
  stop_.store(true, std::memory_order_release);
  // Ring every doorbell: a server parked on its gate must wake to observe
  // the flag (its Idle() recheck includes StopRequested()).
  for (auto& e : entries_) {
    e->ctx.gate_.Notify();
  }
}

void RuntimeEngine::Join() {
  if (joined_) {
    return;
  }
  for (auto& e : entries_) {
    if (e->thread.joinable()) {
      e->thread.join();
    }
  }
  joined_ = true;
}

std::vector<ThreadStats> RuntimeEngine::Stats() const {
  std::vector<ThreadStats> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    ThreadStats s;
    s.name = e->ctx.name_;
    s.requested_cpu = e->ctx.requested_cpu_;
    s.pinned = e->ctx.pinned_;
    s.loops = e->ctx.loops_;
    s.parks = e->ctx.parks_;
    s.gate_wakes = e->ctx.gate_.wakes();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace newtos
