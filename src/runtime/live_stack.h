// LiveStack: the multiserver stack on real pinned OS threads.
//
// This is the paper's architecture run for real instead of modeled: each
// server role is an OS thread on (ideally) its own core, and every hop is a
// lock-free SPSC ring (ThreadChannel) — the same topology the simulator
// wires with SimChannels:
//
//   app ──data──▶ tcp ──data──▶ ip ──data──▶ peer        (full stack)
//                  ◀───acks──── ip ◀───acks───┘
//   wd ◀──ack── {app,tcp,ip,peer,udp} ◀──heartbeat── wd
//
//   app ──data──▶ tcp ──data──▶ peer                      (mini, 3 servers)
//                  ◀────────acks─────────────┘
//
// Messages are fixed-size PODs with inline payload (RtMsg), faithful to
// NewtOS's fixed-slot shared-memory channels — and unlike the simulator,
// the payload bytes are real: the app fills each segment with a
// deterministic pattern and the peer verifies every byte, so "byte-identical
// stream" is checked against actual memory, not just chunk sizes.
//
// Flow control mirrors TCP's: the tcp thread forwards a segment only when
// it fits the advertised window (in-flight bytes), advancing on cumulative
// acks from the peer; the app↔tcp ring provides backpressure upstream. Every
// server loop is non-blocking (a full output parks the message in a pending
// slot and the loop keeps servicing its other inputs), so the ring graph
// cannot deadlock.
//
// Shutdown is a quiesce protocol, not a cancellation: a kShutdown token
// rides the data path behind the last segment, bounces back along the ack
// path, and the watchdog broadcasts it over the heartbeat rings once the
// peer reports the transfer done. Each server exits only after seeing
// shutdown on every input it owns — post-join, every ring must satisfy
// pushes == pops with zero residue, and Run() reports that conservation
// check in the result.

#ifndef SRC_RUNTIME_LIVE_STACK_H_
#define SRC_RUNTIME_LIVE_STACK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/runtime/engine.h"
#include "src/runtime/thread_channel.h"
#include "src/trace/recorder.h"

namespace newtos {

class ChannelChecker;

// Fixed-size live message: one cache-friendly POD slot per ring entry, no
// pointers, no pool — a message is wholly owned by whichever side of the
// ring it is on, so crossing threads never shares memory.
struct RtMsg {
  enum class Type : uint8_t {
    kData = 0,
    kAck = 1,
    kShutdown = 2,
    kHeartbeat = 3,
    kHeartbeatAck = 4,
  };
  static constexpr uint32_t kMaxPayload = 1460;  // one MSS of real bytes

  Type type = Type::kData;
  uint16_t len = 0;         // payload bytes (kData only)
  uint32_t seq = 0;         // segment index / heartbeat round
  uint64_t stream_off = 0;  // kData: byte offset; kAck: cumulative acked bytes
  uint64_t born_ns = 0;     // RuntimeClock stamp at first push (latency)
  unsigned char payload[kMaxPayload];
};
static_assert(std::is_trivially_copyable_v<RtMsg>, "RtMsg must stay a POD slot");

// The deterministic payload byte at absolute stream offset `off` — both ends
// compute it independently, so verification needs no reference copy.
inline unsigned char RtPatternByte(uint64_t off) {
  return static_cast<unsigned char>((off * 131) ^ (off >> 7));
}

struct LiveStackConfig {
  uint64_t transfer_bytes = 1 << 20;  // fig2-small default: 1 MiB
  uint32_t mss = 1460;                // must match the DES TcpParams::mss
  size_t ring_capacity = 256;         // slots per data/ack ring
  uint32_t window_bytes = 64 * 1460;  // tcp in-flight cap (cumulative acks)
  bool mini = false;                  // 3-server stack (app, tcp, peer)
  bool pin_threads = true;            // role i -> cpu first_cpu + i, if it exists
  int first_cpu = 0;
  // Pin budget for core sweeps: roles whose cpu would be >= the limit run
  // unpinned instead (never aliased onto a taken core). -1 = no limit.
  int pin_cpu_limit = -1;
  RuntimePollPolicy poll;
  bool verify_payload = true;         // peer checks every byte vs the pattern
  bool enable_trace = false;          // per-thread recorders, e2e async hops
  size_t trace_capacity = 1 << 14;
  uint64_t timeout_ns = 30'000'000'000ULL;  // watchdog deadline for the run
  // Self-clocked heartbeat rounds the watchdog drives before going quiet
  // (bounded so the liveness traffic cannot starve the transfer on small
  // hosts; 0 disables heartbeats entirely).
  uint32_t heartbeat_rounds = 64;
};

// Post-join counters for one ring, for reporting and the ChannelChecker.
struct LiveRingStats {
  std::string name;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t full_retries = 0;
  uint64_t residue = 0;    // slots still occupied post-join (must be 0)
  uint64_t imposters = 0;  // SpscRing identity violations (NEWTOS_CHECKERS)
};

struct LiveStackResult {
  // Delivered-stream fingerprint — directly comparable to Fig2DesResult.
  uint64_t delivered = 0;
  uint64_t chunks = 0;
  uint64_t digest = 0;

  uint64_t payload_errors = 0;    // bytes that mismatched the pattern
  uint64_t heartbeat_rounds = 0;  // completed watchdog ping-pong rounds
  bool completed = false;         // transfer finished before the deadline
  bool conservation_ok = false;   // every ring: pushes == pops, residue 0
  double wall_seconds = 0.0;

  // Observed wiring in the canonical text format ("ring <name> consumer=<c>
  // producers=<p>", sorted by ring name): each ring's first-touch thread
  // tokens mapped back to role names. Empty when NEWTOS_CHECKERS is off, or
  // for a side no thread ever touched. The wiring-equivalence gate compares
  // this against the static table (src/runtime/live_wiring.h).
  std::string wiring;

  LatencyHistogram latency;  // app-push -> peer-pop, per data segment
  std::vector<ThreadStats> threads;
  std::vector<LiveRingStats> rings;
  // Per-server trace recorders (empty unless config.enable_trace); export
  // with WriteChromeTraceMerged.
  std::vector<std::unique_ptr<TraceRecorder>> recorders;

  uint64_t TotalImposters() const {
    uint64_t n = 0;
    for (const LiveRingStats& r : rings) {
      n += r.imposters;
    }
    return n;
  }
};

// Runs the fig2 bulk transfer on the live stack and returns the result.
// Synchronous: spawns the server threads, waits for the quiesce protocol
// (or the deadline), joins, and audits the rings single-threaded.
LiveStackResult RunLiveFig2(const LiveStackConfig& config);

// Folds a live run's post-join ring summaries into a ChannelChecker, so
// both backends answer "did anything violate the channel protocol?" through
// the same reporting surface. No-op when checkers are compiled out.
void FoldIntoChecker(const LiveStackResult& result, ChannelChecker* checker);

}  // namespace newtos

#endif  // SRC_RUNTIME_LIVE_STACK_H_
