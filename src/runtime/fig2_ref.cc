#include "src/runtime/fig2_ref.h"

#include "src/core/testbed.h"
#include "src/fault/invariants.h"
#include "src/net/tcp_host.h"
#include "src/os/socket_api.h"
#include "src/os/stack.h"
#include "src/os/tcp_server.h"
#include "src/workload/iperf.h"

namespace newtos {

Fig2DesResult RunFig2Des(uint64_t transfer_bytes) {
  Testbed tb;
  SocketApi* api = tb.stack()->CreateApp("fig2ref", tb.machine().core(0));

  Fig2DesResult r;
  StreamIntegrityChecker integrity;
  SimTime last_delivery = -1;
  TcpHost::AppHooks hooks;
  hooks.on_data = [&integrity, &r, &last_delivery, &tb](TcpConnection*, uint32_t bytes) {
    integrity.OnChunk(bytes);
    const SimTime now = tb.sim().Now();
    if (last_delivery >= 0) {
      r.delivery_gap.Record(now - last_delivery);
    }
    last_delivery = now;
  };
  tb.peer().tcp().Listen(kIperfPort, hooks, tb.peer().tcp_params());

  // Submit the whole transfer in one Send: segmentation is then TCP's alone
  // (full-MSS segments and one tail), not an artifact of burst re-arming.
  api->SetEventHandler([api, transfer_bytes](const Msg& m) {
    if (m.type == MsgType::kEvtEstablished) {
      api->Send(m.handle, transfer_bytes);
    }
  });
  api->Connect(tb.peer_addr(), kIperfPort);

  const SimTime t0 = tb.sim().Now();
  // Generously bounded run, checked in slices so completion ends it early.
  for (int slice = 0; slice < 200 && integrity.delivered() < transfer_bytes; ++slice) {
    tb.sim().RunFor(10 * kMillisecond);
  }
  r.delivered = integrity.delivered();
  r.chunks = integrity.chunks();
  r.digest = integrity.digest();
  r.completed = r.delivered == transfer_bytes;
  r.sim_seconds = ToSeconds(tb.sim().Now() - t0);
  r.sim_events = tb.sim().events_processed();
  for (const TcpConnection* c : tb.stack()->tcp()->host().Connections()) {
    r.retransmits += c->stats().retransmits;
  }
  return r;
}

}  // namespace newtos
