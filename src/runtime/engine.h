// RuntimeEngine: thread lifecycle for the live multiserver stack.
//
// The engine owns one OS thread per server role. Construction is two-phase,
// like the testbed: Add() declares a server (allocating its IdleGate so
// channels can bind doorbells), wiring happens single-threaded, Start()
// spawns everything at once. Shutdown is cooperative: RequestStop() raises a
// flag and rings every gate (so parked servers wake to observe it), and
// Join() waits for the bodies to drain their rings and return — the engine
// never cancels a thread, so no message is ever lost to teardown.
//
// Pinning: each server may request a CPU. On hosts with enough cores the
// thread is pinned there (pthread_setaffinity_np, via src/host/affinity);
// when cores < servers or affinity is denied, the engine falls back to
// letting the scheduler timeslice — recorded honestly in ThreadStats.pinned,
// never fatal. A 1-core CI container runs the full stack correctly, just
// slower, which is exactly the paper's point about correctness being a
// property of the architecture and speed a property of the placement.

#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/park.h"

namespace newtos {

class RuntimeEngine;

// Handed to each server body; also the engine's per-thread bookkeeping.
// The stats fields are written by the owning thread only and read by the
// engine after Join() — no concurrent access by construction.
class ServerContext {
 public:
  const std::string& name() const { return name_; }
  IdleGate& gate() { return gate_; }
  int requested_cpu() const { return requested_cpu_; }
  bool pinned() const { return pinned_; }
  uint64_t loops() const { return loops_; }
  uint64_t parks() const { return parks_; }

  bool StopRequested() const;

  // Call once per server-loop iteration. `did_work` resets the idle streak;
  // an exhausted spin budget parks on the gate (kHaltWhenIdle only) until a
  // producer's doorbell or RequestStop() rings it. `recheck` must return
  // true if any input ring is non-empty: it runs between PrepareWait and
  // Wait and is what makes the park race-free (see park.h).
  template <typename Recheck>
  void Idle(bool did_work, Recheck&& recheck) {
    ++loops_;
    if (did_work) {
      idle_streak_ = 0;
      return;
    }
    if (PollAlways() || ++idle_streak_ < SpinBudget()) {
      return;
    }
    const uint32_t e = gate_.PrepareWait();
    if (recheck() || StopRequested()) {
      gate_.CancelWait();
      return;
    }
    ++parks_;
    gate_.Wait(e);
    idle_streak_ = 0;
  }

 private:
  friend class RuntimeEngine;

  bool PollAlways() const;
  uint32_t SpinBudget() const;

  std::string name_;
  RuntimeEngine* engine_ = nullptr;
  IdleGate gate_;
  int requested_cpu_ = -1;
  bool pinned_ = false;
  uint64_t loops_ = 0;
  uint64_t parks_ = 0;
  uint32_t idle_streak_ = 0;
};

struct ThreadStats {
  std::string name;
  int requested_cpu = -1;
  bool pinned = false;
  uint64_t loops = 0;
  uint64_t parks = 0;
  uint64_t gate_wakes = 0;
};

class RuntimeEngine {
 public:
  explicit RuntimeEngine(RuntimePollPolicy policy = {});
  ~RuntimeEngine();

  RuntimeEngine(const RuntimeEngine&) = delete;
  RuntimeEngine& operator=(const RuntimeEngine&) = delete;

  // Declares a server. Valid only before Start(); the returned context is
  // stable (bind channel doorbells to its gate during wiring). `cpu` < 0
  // means "don't pin".
  ServerContext& Add(std::string name, int cpu, std::function<void(ServerContext&)> body);

  // Spawns every declared server. Each thread pins itself (or records the
  // fallback) before running its body.
  void Start();

  // Raises the stop flag and wakes every parked server. Safe from any
  // thread, idempotent.
  void RequestStop();

  bool stop_requested() const { return stop_.load(std::memory_order_acquire); }

  // Waits for all server bodies to return. Idempotent.
  void Join();

  bool started() const { return started_; }
  const RuntimePollPolicy& policy() const { return policy_; }

  // Valid after Join().
  std::vector<ThreadStats> Stats() const;

 private:
  friend class ServerContext;

  struct Entry {
    ServerContext ctx;
    std::function<void(ServerContext&)> body;
    std::thread thread;
  };

  RuntimePollPolicy policy_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;
  std::vector<std::unique_ptr<Entry>> entries_;
};

inline bool ServerContext::StopRequested() const { return engine_->stop_requested(); }
inline bool ServerContext::PollAlways() const {
  return engine_->policy().mode == PollMode::kPollAlways;
}
inline uint32_t ServerContext::SpinBudget() const { return engine_->policy().spin_iterations; }

}  // namespace newtos

#endif  // SRC_RUNTIME_ENGINE_H_
