// DES reference run of the fig2 bulk-TCP workload, bounded to an exact
// transfer size — the oracle the live backend's byte stream is checked
// against.
//
// The equivalence contract (DESIGN.md §10): both backends deliver the same
// application byte stream — same total, same in-order chunk sequence, hence
// the same StreamIntegrityChecker digest. Counters, timings, and power
// differ by construction (one is a model, the other is wall-clock reality);
// bytes may not. The DES side here is the unmodified simulator: a Testbed,
// one TCP connection, the application submitting the whole transfer in a
// single Send(), and the peer's on_data hook folding every delivered chunk
// into the digest. Loss-free, in-order delivery makes the chunk sequence a
// pure function of (transfer_bytes, mss) — the result carries the
// retransmit count as a tripwire so a lossy run can never masquerade as a
// reference.

#ifndef SRC_RUNTIME_FIG2_REF_H_
#define SRC_RUNTIME_FIG2_REF_H_

#include <cstdint>

#include "src/metrics/histogram.h"

namespace newtos {

struct Fig2DesResult {
  uint64_t delivered = 0;        // application bytes the peer accepted
  uint64_t chunks = 0;           // on_data invocations (delivered segments)
  uint64_t digest = 0;           // StreamIntegrityChecker FNV-1a fold
  uint64_t retransmits = 0;      // must be 0 for a valid reference
  bool completed = false;        // delivered == transfer_bytes in time
  double sim_seconds = 0.0;      // simulated time the transfer took
  uint64_t sim_events = 0;       // DES events processed
  // Simulated gap between successive chunk deliveries at the peer — the
  // model's per-message service interval. (The live backend's histogram is
  // end-to-end app-push -> peer-pop latency; the two are different views of
  // "per-message timing" and are labeled distinctly in BENCH_runtime.json.)
  LatencyHistogram delivery_gap;
};

// Runs the bounded fig2 workload (SUT app -> peer over one TCP connection)
// in the simulator and returns the delivered-stream fingerprint.
Fig2DesResult RunFig2Des(uint64_t transfer_bytes);

}  // namespace newtos

#endif  // SRC_RUNTIME_FIG2_REF_H_
