#include "src/sim/simulation.h"

#include <cassert>
#include <utility>

namespace newtos {

void Simulation::Step() {
  auto [when, fn] = queue_.Pop();
  assert(when >= now_ && "event queue went backwards in time");
  now_ = when;
  ++events_processed_;
  fn();
}

uint64_t Simulation::Run() {
  stop_requested_ = false;
  const uint64_t before = events_processed_;
  while (!stop_requested_ && !queue_.Empty()) {
    Step();
  }
  return events_processed_ - before;
}

uint64_t Simulation::RunUntil(SimTime until) {
  stop_requested_ = false;
  const uint64_t before = events_processed_;
  while (!stop_requested_ && !queue_.Empty() && queue_.NextTime() <= until) {
    Step();
  }
  if (!stop_requested_ && now_ < until) {
    now_ = until;
  }
  return events_processed_ - before;
}

}  // namespace newtos
