// The discrete-event simulation driver.
//
// A `Simulation` owns the clock and the event queue. Model components keep a
// pointer to it and schedule callbacks; the main loop pops events in time
// order and advances the clock. Everything downstream (cores, NICs, servers)
// is built on this single primitive.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace newtos {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` from now. Negative delays clamp to zero
  // (fire "immediately", after already-queued events at the current instant).
  EventHandle Schedule(SimTime delay, InlineCallback fn) {
    if (delay < 0) {
      delay = 0;
    }
    return queue_.Push(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `when`; clamps to Now() if in the past.
  EventHandle ScheduleAt(SimTime when, InlineCallback fn) {
    if (when < now_) {
      when = now_;
    }
    return queue_.Push(when, std::move(fn));
  }

  // Pre-sizes the event queue for a known concurrent-event high-water mark,
  // avoiding mid-run regrowth. Safe to call at any time.
  void ReserveEvents(size_t n) { queue_.Reserve(n); }

  // Runs until the queue is empty or Stop() is called. Returns the number of
  // events processed by this call.
  uint64_t Run();

  // Runs all events with time <= `until`, then advances the clock to exactly
  // `until` (even if idle). Returns events processed. Stop() also ends it.
  uint64_t RunUntil(SimTime until);

  // Convenience: RunUntil(Now() + duration).
  uint64_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  // Requests the current Run*() call to return after the in-flight event.
  void Stop() { stop_requested_ = true; }

  // True if Stop() ended the last Run*() call.
  bool stopped() const { return stop_requested_; }

  // Total events processed over the simulation's lifetime.
  uint64_t events_processed() const { return events_processed_; }

  // Live (uncancelled) events currently queued. For diagnostics and the
  // tracing subsystem's event-queue-depth sampler.
  size_t PendingEvents() const { return queue_.LiveSize(); }

  // Destroys every pending event without running it. Teardown-only: see
  // EventQueue::Clear() for why multi-lane owners must drain all lanes
  // before destroying any of them.
  void DiscardPendingEvents() { queue_.Clear(); }

  // Simulation-lane identity (src/fabric/lane.h). 0 for standalone
  // simulations; set once by LaneEngine at construction. Diagnostic only:
  // checker reports and traces use it to say *which* lane misbehaved.
  int lane() const { return lane_; }
  void set_lane(int lane) { lane_ = lane; }

 private:
  // Pops and runs one event; advances the clock. Precondition: queue not empty.
  void Step();

  EventQueue queue_;
  SimTime now_ = 0;
  bool stop_requested_ = false;
  uint64_t events_processed_ = 0;
  int lane_ = 0;
};

}  // namespace newtos

#endif  // SRC_SIM_SIMULATION_H_
