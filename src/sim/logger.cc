#include "src/sim/logger.h"

#include <iostream>

namespace newtos {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logger::level() { return g_level; }

void Logger::SetSink(std::ostream* sink) { g_sink = sink; }

void Logger::Log(LogLevel level, SimTime now, const std::string& component,
                 const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::ostream& out = g_sink != nullptr ? *g_sink : std::clog;
  out << "[" << FormatTime(now) << "] " << LevelName(level) << " " << component << ": " << message
      << "\n";
}

}  // namespace newtos
