// InlineCallback: a fixed-capacity, move-only callable for the simulator
// fast path.
//
// std::function heap-allocates any capture larger than its tiny SBO, which
// put one malloc/free pair on every scheduled event. InlineCallback stores
// the callable in-place in a 48-byte buffer and has *no heap fallback*: a
// capture that does not fit is a compile error (static_assert), so the
// engine's allocation-free guarantee is enforced at every callsite rather
// than discovered in a profile. All simulator callsites capture at most a
// couple of pointers plus a std::function-sized continuation, which fits.

#ifndef SRC_SIM_INLINE_CALLBACK_H_
#define SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace newtos {

class InlineCallback {
 public:
  // In-place capture budget. server.cc's restart continuation ([this, gen,
  // std::function]) is the largest simulator capture at 48 bytes.
  static constexpr size_t kCapacity = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "callback capture exceeds InlineCallback's inline buffer: shrink the "
                  "capture (capture pointers, not values) — there is deliberately no "
                  "heap fallback on the simulator fast path");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callback capture is over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callback captures must be nothrow-movable (the event heap relocates "
                  "entries while sifting)");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    invoke_ = [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); };
    manage_ = [](void* dst, void* src) {
      D* s = std::launder(reinterpret_cast<D*>(src));
      if (dst != nullptr) {
        ::new (dst) D(std::move(*s));
      }
      s->~D();
    };
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(buf_); }

 private:
  // Moves the callable out of `other` (which becomes empty).
  void MoveFrom(InlineCallback& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(buf_, other.buf_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(nullptr, buf_);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  // manage_(dst, src): move-construct *dst from *src when dst != nullptr,
  // then destroy *src. With dst == nullptr it is a plain destroy.
  void (*manage_)(void* dst, void* src) = nullptr;
};

}  // namespace newtos

#endif  // SRC_SIM_INLINE_CALLBACK_H_
