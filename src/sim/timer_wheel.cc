#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <limits>

namespace newtos {

namespace {

constexpr SimTime kNoWake = -1;

inline uint64_t RotateRight(uint64_t bits, int n) {
  n &= 63;
  if (n == 0) {
    return bits;
  }
  return (bits >> n) | (bits << (64 - n));
}

inline int CountTrailingZeros(uint64_t bits) { return __builtin_ctzll(bits); }

}  // namespace

void TimerWheel::ScheduleWake(SimTime at) {
  wake_.Cancel();
  wake_time_ = at;
  wake_scheduled_ = true;
  wake_ = sim_->ScheduleAt(at, [this] { OnWake(); });
}

void TimerWheel::AdvanceTo(SimTime t) {
  // Invariant: t is at or below every armed deadline (the wake is always a
  // lower bound), so every slot the cursors jump past is empty — only the
  // slot each new cursor lands *in* can hold nodes, and those cascade down.
  now_ = t;
  for (int level = kLevels - 1; level >= 1; --level) {
    const int slot =
        static_cast<int>((static_cast<uint64_t>(t) >> Shift(level)) & (kSlots - 1));
    TimerNode* node = heads_[level][slot];
    if (node == nullptr) {
      continue;
    }
    heads_[level][slot] = nullptr;
    occupied_[level] &= ~(1ULL << slot);
    while (node != nullptr) {
      TimerNode* next = node->next;
      node->next = nullptr;
      node->pprev = nullptr;
      // delta < the level's slot span now, so Place() drops the node at
      // least one level; far-future parked nodes may re-park further out.
      Place(node);
      ++cascades_;
      node = next;
    }
  }
}

SimTime TimerWheel::NextWakeCandidate() {
  SimTime best = std::numeric_limits<SimTime>::max();
  // Level 0: exact minimum over the first non-empty slot at/after the
  // cursor. Every level-0 node is within the 64-slot window ahead of the
  // cursor, so circular distance maps directly to absolute slot index.
  if (occupied_[0] != 0) {
    const int cursor =
        static_cast<int>((static_cast<uint64_t>(now_) >> kLevel0Shift) & (kSlots - 1));
    const int dist = CountTrailingZeros(RotateRight(occupied_[0], cursor));
    const int slot = (cursor + dist) & (kSlots - 1);
    for (TimerNode* n = heads_[0][slot]; n != nullptr; n = n->next) {
      best = std::min(best, n->deadline_);
    }
  }
  // Higher levels: the range *start* of the first non-empty slot is a lower
  // bound on every deadline stored there. Waking there cascades the slot
  // down and refines the bound — at most one extra wake per level.
  for (int level = 1; level < kLevels; ++level) {
    if (occupied_[level] == 0) {
      continue;
    }
    const int64_t cursor = static_cast<int64_t>(static_cast<uint64_t>(now_) >> Shift(level));
    const int dist =
        CountTrailingZeros(RotateRight(occupied_[level], static_cast<int>(cursor & (kSlots - 1))));
    SimTime start = (cursor + dist) << Shift(level);
    if (start < now_) {
      start = now_;  // defensive: a cursor-slot resident is due no earlier than now
    }
    best = std::min(best, start);
  }
  return best == std::numeric_limits<SimTime>::max() ? kNoWake : best;
}

void TimerWheel::RescheduleFromWheel() {
  const SimTime candidate = NextWakeCandidate();
  if (candidate == kNoWake) {
    wake_.Cancel();
    wake_scheduled_ = false;
    return;
  }
  ScheduleWake(candidate);
}

void TimerWheel::OnWake() {
  ++wakes_;
  wake_scheduled_ = false;
  in_wake_ = true;
  const SimTime t = sim_->Now();
  AdvanceTo(t);

  // Collect the level-0 cursor slot's exactly-due nodes. A slot spans ~1 us,
  // so this touches only timers due within that window; later residents stay.
  const int slot =
      static_cast<int>((static_cast<uint64_t>(t) >> kLevel0Shift) & (kSlots - 1));
  due_.clear();
  TimerNode* n = heads_[0][slot];
  while (n != nullptr) {
    TimerNode* next = n->next;
    if (n->deadline_ == t) {
      *n->pprev = n->next;
      if (n->next != nullptr) {
        n->next->pprev = n->pprev;
      }
      n->next = nullptr;
      n->pprev = nullptr;
      due_.push_back(n);
    }
    n = next;
  }
  if (heads_[0][slot] == nullptr) {
    occupied_[0] &= ~(1ULL << slot);
  }
  if (due_.empty()) {
    ++spurious_wakes_;  // cancelled-deadline or refinement wake; fires nothing
  }
  // Same-instant timers fire in arm order, matching the event queue's FIFO
  // tie-break for the per-flow events this wheel replaces.
  std::sort(due_.begin(), due_.end(),
            [](const TimerNode* a, const TimerNode* b) { return a->arm_seq < b->arm_seq; });
  // Move the sorted batch onto the intrusive expired list. Nodes stay
  // cancellable until the moment they fire: a callback that tears down a
  // sibling object (e.g. a connection reap) unlinks that object's due nodes
  // right out of this list instead of leaving dangling pointers behind.
  TimerNode** tail = &expired_head_;
  for (TimerNode* d : due_) {
    d->level = kExpiredLevel;
    d->pprev = tail;
    *tail = d;
    tail = &d->next;
  }
  *tail = nullptr;
  due_.clear();
  while (expired_head_ != nullptr) {
    TimerNode* f = expired_head_;
    Unlink(f);
    ++fires_;
    f->fn(f->arg);
  }

  in_wake_ = false;
  RescheduleFromWheel();
}

}  // namespace newtos
