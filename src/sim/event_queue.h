// A cancellable, deterministic discrete-event queue with an allocation-free
// steady state.
//
// Events scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-break on a monotonically increasing sequence number), which makes
// every simulation in this project bit-for-bit reproducible.
//
// Fast-path design (PR 2): the heap holds small POD entries {when, seq,
// slot}; the callback and cancellation state live in a slab-allocated,
// generation-counted slot pool. Pushing an event acquires a recycled slot
// (no allocation once the pool has grown to the workload's high-water mark),
// and an EventHandle is just {pool, slot index, generation} — cancelling
// flips a bit in the slot, and a stale handle (its slot was recycled after
// the event fired or was discarded) is detected by a generation mismatch.
// Cancelled entries are lazily skipped at the top of the heap and eagerly
// compacted away whenever they outnumber the live entries, so heavy timer
// churn (e.g. tab5_conn_churn) cannot grow the heap without bound.
//
// The hot methods are defined inline below the class so the simulator's run
// loop compiles down to direct heap manipulation with no call overhead.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/sim/time.h"

namespace newtos {

// Slab of per-event state shared between the queue and its handles. Kept
// alive by an intrusive, *non-atomic* refcount (the simulator is
// single-threaded by design), so handles stay safe (inert) even if they
// outlive the queue without paying shared_ptr's atomic ops on every Push.
struct EventSlotPool {
  static constexpr uint32_t kNil = 0xffffffff;

  struct Slot {
    InlineCallback fn;
    uint32_t gen = 0;
    uint32_t next_free = kNil;
    bool cancelled = false;
  };

  std::vector<Slot> slots;
  uint32_t free_head = kNil;
  // Cancelled entries still occupying the heap; drives eager compaction.
  size_t cancelled_in_heap = 0;
  uint32_t refcount = 0;  // managed by PoolRef only

  uint32_t Acquire(InlineCallback fn);
  // Destroys the slot's callback, bumps the generation (invalidating every
  // outstanding handle to it) and recycles the index.
  void Release(uint32_t index);
};

// Intrusive smart pointer for EventSlotPool (see refcount comment above).
class PoolRef {
 public:
  PoolRef() = default;
  explicit PoolRef(EventSlotPool* pool) : p_(pool) {
    if (p_ != nullptr) {
      ++p_->refcount;
    }
  }
  PoolRef(const PoolRef& other) : p_(other.p_) {
    if (p_ != nullptr) {
      ++p_->refcount;
    }
  }
  PoolRef(PoolRef&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
  PoolRef& operator=(PoolRef other) noexcept {
    std::swap(p_, other.p_);
    return *this;
  }
  ~PoolRef() {
    if (p_ != nullptr && --p_->refcount == 0) {
      delete p_;
    }
  }

  EventSlotPool* operator->() const { return p_; }
  EventSlotPool& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  EventSlotPool* p_ = nullptr;
};

// Handle to a scheduled event; allows cancellation. Default-constructed
// handles are inert. Handles are cheap to copy (shared ownership of the
// queue's slot pool plus an index/generation pair).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // inert handles. Returns true if this call prevented a pending event.
  bool Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(const PoolRef& pool, uint32_t index, uint32_t gen)
      : pool_(pool), index_(index), gen_(gen) {}

  PoolRef pool_;
  uint32_t index_ = 0;
  uint32_t gen_ = 0;
};

// Min-heap of timed callbacks. Not thread-safe: the simulator is
// single-threaded by design.
//
// Accessor contract: Empty(), NextTime() and Pop() are all self-compacting —
// each discards cancelled entries from the top of the heap first, so they
// may be called in any order (there is no hidden precondition that Empty()
// ran first). NextTime()/Pop() still require a live event to exist, i.e.
// !Empty().
class EventQueue {
 public:
  // lint:allow(heap-new): one-time slab allocation at engine construction; events recycle slots
  EventQueue() : pool_(new EventSlotPool) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `fn` to fire at absolute time `when`. `when` may be in the past
  // relative to other queued events; ordering is purely by (when, seq).
  EventHandle Push(SimTime when, InlineCallback fn);

  // True if no live (uncancelled) events remain.
  bool Empty();

  // Time of the earliest live event. Precondition: !Empty().
  SimTime NextTime();

  // Removes and returns the earliest live event's callback, along with its
  // time. Precondition: !Empty().
  std::pair<SimTime, InlineCallback> Pop();

  // Pre-sizes the heap and the slot pool so a run whose concurrent-event
  // high-water mark stays under `n` never regrows either mid-run.
  void Reserve(size_t n);

  // Destroys every pending event without running it (the queue stays
  // usable). Teardown-only: callbacks can own pooled resources (e.g. a
  // staged cross-lane packet), so whoever owns several queues must drain
  // all of them while every such pool is still alive, not rely on member
  // destruction order.
  void Clear();

  // Number of entries currently held, including not-yet-discarded cancelled
  // ones. For tests and diagnostics.
  size_t RawSize() const { return heap_.size(); }

  // Number of live (uncancelled) events. RawSize() - LiveSize() is the
  // cancelled backlog awaiting lazy discard or compaction.
  size_t LiveSize() const { return heap_.size() - pool_->cancelled_in_heap; }

  // Total number of events ever pushed.
  uint64_t pushed() const { return next_seq_; }

 private:
  // Heap entries are trivially copyable; sifting moves 24-byte PODs.
  struct Entry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };
  // Comparator for std::push_heap/pop_heap: "later fires lower", so the
  // front of the vector is the earliest (when, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void SkipCancelled();
  // Removes every cancelled entry and re-heapifies. Pop order is unaffected:
  // (when, seq) is a total order, so the rebuilt heap pops identically.
  void Compact();

  std::vector<Entry> heap_;
  PoolRef pool_;
  uint64_t next_seq_ = 0;
};

// --- Hot-path inline definitions ---

inline uint32_t EventSlotPool::Acquire(InlineCallback fn) {
  uint32_t index;
  if (free_head != kNil) {
    index = free_head;
    Slot& s = slots[index];
    free_head = s.next_free;
    s.next_free = kNil;
    assert(!s.cancelled && !s.fn);
    s.fn = std::move(fn);
  } else {
    index = static_cast<uint32_t>(slots.size());
    Slot& s = slots.emplace_back();
    s.fn = std::move(fn);
  }
  return index;
}

inline void EventSlotPool::Release(uint32_t index) {
  Slot& s = slots[index];
  s.fn = InlineCallback();
  s.cancelled = false;
  ++s.gen;  // every outstanding handle to this slot is now stale
  s.next_free = free_head;
  free_head = index;
}

inline EventHandle EventQueue::Push(SimTime when, InlineCallback fn) {
  // Eager compaction: when cancelled entries outnumber live ones, sweep them
  // out instead of letting heavy timer churn grow the heap without bound.
  if (pool_->cancelled_in_heap > heap_.size() / 2 && heap_.size() >= 64) {
    Compact();
  }
  const uint32_t slot = pool_->Acquire(std::move(fn));
  heap_.push_back(Entry{when, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(pool_, slot, pool_->slots[slot].gen);
}

inline void EventQueue::SkipCancelled() {
  // Steady-state fast path: with no cancellations pending anywhere, skip the
  // slot lookup entirely — this runs three times per event (Empty/NextTime/
  // Pop) and the slot array access is a near-guaranteed cache miss.
  if (pool_->cancelled_in_heap == 0) {
    return;
  }
  while (!heap_.empty() && pool_->slots[heap_.front().slot].cancelled) {
    --pool_->cancelled_in_heap;
    pool_->Release(heap_.front().slot);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

inline bool EventQueue::Empty() {
  SkipCancelled();
  return heap_.empty();
}

inline SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.front().when;
}

inline std::pair<SimTime, InlineCallback> EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  InlineCallback fn = std::move(pool_->slots[e.slot].fn);
  pool_->Release(e.slot);  // marks the event fired (handles go stale)
  return {e.when, std::move(fn)};
}

}  // namespace newtos

#endif  // SRC_SIM_EVENT_QUEUE_H_
