// A cancellable, deterministic discrete-event queue.
//
// Events scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-break on a monotonically increasing sequence number), which makes
// every simulation in this project bit-for-bit reproducible.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace newtos {

// Handle to a scheduled event; allows cancellation. Default-constructed
// handles are inert. Handles are cheap to copy (shared ownership of a small
// control block).
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // inert handles. Returns true if this call prevented a pending event.
  bool Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

// Min-heap of timed callbacks. Not thread-safe: the simulator is
// single-threaded by design.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues `fn` to fire at absolute time `when`. `when` may be in the past
  // relative to other queued events; ordering is purely by (when, seq).
  EventHandle Push(SimTime when, std::function<void()> fn);

  // True if no live (uncancelled) events remain. May lazily discard cancelled
  // entries at the top of the heap.
  bool Empty();

  // Time of the earliest live event. Precondition: !Empty().
  SimTime NextTime();

  // Removes and returns the earliest live event's callback, along with its
  // time. Precondition: !Empty().
  std::pair<SimTime, std::function<void()>> Pop();

  // Number of entries currently held, including not-yet-discarded cancelled
  // ones. For tests and diagnostics.
  size_t RawSize() const { return heap_.size(); }

  // Total number of events ever pushed.
  uint64_t pushed() const { return next_seq_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace newtos

#endif  // SRC_SIM_EVENT_QUEUE_H_
