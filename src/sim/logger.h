// Minimal leveled, sim-time-stamped logging for model components.
//
// Logging is off (WARN) by default so benches stay quiet; tests and examples
// flip the level. The logger is global state on purpose: it is diagnostic
// plumbing, not part of the model.

#ifndef SRC_SIM_LOGGER_H_
#define SRC_SIM_LOGGER_H_

#include <ostream>
#include <sstream>
#include <string>

#include "src/sim/time.h"

namespace newtos {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

class Logger {
 public:
  // Global minimum level; messages below it are dropped cheaply.
  static void SetLevel(LogLevel level);
  static LogLevel level();

  // Redirects output (default: std::clog). Pass nullptr to restore default.
  static void SetSink(std::ostream* sink);

  // Emits one line: "[  12.345us] lvl component: message".
  static void Log(LogLevel level, SimTime now, const std::string& component,
                  const std::string& message);
};

// Usage: NEWTOS_LOG(kDebug, sim.Now(), "tcp", "cwnd=" << cwnd). The stream
// expression is not evaluated when the level is filtered out.
#define NEWTOS_LOG(level_, now_, component_, stream_)                           \
  do {                                                                          \
    if (::newtos::LogLevel::level_ >= ::newtos::Logger::level()) {              \
      std::ostringstream newtos_log_oss_;                                       \
      newtos_log_oss_ << stream_;                                               \
      ::newtos::Logger::Log(::newtos::LogLevel::level_, (now_), (component_),   \
                            newtos_log_oss_.str());                             \
    }                                                                           \
  } while (0)

}  // namespace newtos

#endif  // SRC_SIM_LOGGER_H_
