// Deterministic random number generation for simulations.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. We do not use
// <random>'s engines because their distributions are not guaranteed to produce
// identical streams across standard library implementations; reproducibility
// of every experiment matters more here than statistical exotica.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace newtos {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform in [0, 2^64).
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Bounded Pareto on [lo, hi] with shape alpha (> 0). Heavy-tailed file-size
  // distributions in the HTTP workload use this.
  double BoundedPareto(double lo, double hi, double alpha);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Precondition: at least one weight > 0.
  size_t Discrete(const std::vector<double>& weights);

  // Derives an independent child generator (for per-component streams).
  Rng Fork();

  // Deterministic per-host stream: the returned generator depends only on
  // (seed, host_id), never on how many hosts exist or in what order they
  // were built — adding host 31 to a testbed cannot perturb host 3's
  // randomness. Multi-host scenarios (src/fabric) must derive every host's
  // generator this way rather than Fork()ing a shared root, whose streams
  // shift when the fork order changes.
  static Rng ForHost(uint64_t seed, uint64_t host_id) { return Rng(HostSeed(seed, host_id)); }

  // The mixed seed ForHost feeds to Rng's SplitMix64 expansion. Exposed for
  // components that take a plain seed parameter (UdpPeerFlood, link loss).
  static uint64_t HostSeed(uint64_t seed, uint64_t host_id);

 private:
  uint64_t s_[4];
};

}  // namespace newtos

#endif  // SRC_SIM_RANDOM_H_
