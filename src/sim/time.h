// Simulation time: integral picoseconds.
//
// All simulated durations in this project are kept as 64-bit signed picosecond
// counts. Picoseconds are fine-grained enough to represent single cycles of a
// multi-GHz core exactly (1 cycle @ 4 GHz == 250 ps) and coarse enough that the
// 64-bit range covers ~106 days of simulated time, far beyond any experiment.
//
// Frequencies are carried in kHz as integers so that operating points compare
// exactly; conversions to cycle periods round to the nearest picosecond.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace newtos {

// A point in simulated time, or a duration, in picoseconds.
using SimTime = int64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1000;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// Frequency of a core or device, in kHz (integral so operating points are
// exact). 1 GHz == 1'000'000 kHz.
using FreqKhz = int64_t;

inline constexpr FreqKhz kKhz = 1;
inline constexpr FreqKhz kMhz = 1000;
inline constexpr FreqKhz kGhz = 1000 * kMhz;

// Cycle counts are plain 64-bit values.
using Cycles = int64_t;

// Duration of `cycles` cycles at `freq`, rounded to the nearest picosecond.
// Precondition: freq > 0.
constexpr SimTime CyclesToTime(Cycles cycles, FreqKhz freq) {
  // period_ps = 1e12 / (freq_khz * 1e3) = 1e9 / freq_khz.
  // Compute cycles * 1e9 / freq with rounding; cycles * 1e9 can overflow for
  // very large cycle counts, so split into whole seconds and remainder.
  constexpr int64_t kPsPerKcycleAt1Khz = 1'000'000'000;  // 1e9 ps per cycle at 1 kHz.
  const int64_t whole = cycles / freq;
  const int64_t rem = cycles % freq;
  return whole * kPsPerKcycleAt1Khz + (rem * kPsPerKcycleAt1Khz + freq / 2) / freq;
}

// Number of whole cycles that elapse in `duration` at `freq` (truncating).
constexpr Cycles TimeToCycles(SimTime duration, FreqKhz freq) {
  // cycles = duration_ps * freq_khz / 1e9. Split to avoid overflow.
  constexpr int64_t kScale = 1'000'000'000;
  const int64_t whole = duration / kScale;
  const int64_t rem = duration % kScale;
  return whole * freq + rem * freq / kScale;
}

// Converts a duration to (double) seconds, for reporting only.
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

// Converts a frequency to (double) GHz, for reporting only.
constexpr double ToGhz(FreqKhz f) { return static_cast<double>(f) / static_cast<double>(kGhz); }

// Human-readable rendering, e.g. "1.250us" or "3.2s". For logs and tables.
std::string FormatTime(SimTime t);

}  // namespace newtos

#endif  // SRC_SIM_TIME_H_
