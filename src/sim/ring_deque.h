// RingDeque: a vector-backed circular FIFO that never allocates in steady
// state.
//
// std::deque allocates and frees a fixed-size chunk every time the head or
// tail crosses a chunk boundary, so a steady push/pop cycle — a NIC ring, a
// server input channel, a pending-TX queue — performs one malloc/free pair
// every few dozen operations forever. RingDeque grows by doubling and never
// shrinks: once a queue has seen its high-water mark, pushes and pops touch
// no allocator at all. Elements must be default-constructible and movable
// (slots are reset to a default-constructed value on pop so held resources,
// e.g. a packet refcount, release immediately).

#ifndef SRC_SIM_RING_DEQUE_H_
#define SRC_SIM_RING_DEQUE_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace newtos {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  explicit RingDeque(size_t initial_capacity) { reserve(initial_capacity); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }

  void reserve(size_t n) {
    if (n > buf_.size()) {
      Regrow(n);
    }
  }

  void push_back(T v) {
    if (size_ == buf_.size()) {
      Regrow(size_ == 0 ? kInitialCapacity : size_ * 2);
    }
    buf_[(head_ + size_) % buf_.size()] = std::move(v);
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T();  // release held resources now, keep the slot
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  // Drops all elements (releasing their resources); capacity is kept.
  void clear() {
    while (size_ > 0) {
      pop_front();
    }
    head_ = 0;
  }

 private:
  static constexpr size_t kInitialCapacity = 16;

  void Regrow(size_t n) {
    std::vector<T> next(n < kInitialCapacity ? kInitialCapacity : n);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) % buf_.size()]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace newtos

#endif  // SRC_SIM_RING_DEQUE_H_
