#include "src/sim/time.h"

#include <cstdio>

namespace newtos {

std::string FormatTime(SimTime t) {
  const char* sign = "";
  if (t < 0) {
    sign = "-";
    t = -t;
  }
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, static_cast<double>(t) / kSecond);
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, static_cast<double>(t) / kMillisecond);
  } else if (t >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign, static_cast<double>(t) / kMicrosecond);
  } else if (t >= kNanosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fns", sign, static_cast<double>(t) / kNanosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%ldps", sign, static_cast<long>(t));
  }
  return buf;
}

}  // namespace newtos
