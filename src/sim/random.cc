#include "src/sim/random.h"

#include <cassert>

namespace newtos {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Rng::HostSeed(uint64_t seed, uint64_t host_id) {
  // Two SplitMix64 rounds over a seed/host mix: a host_id of 0 still lands
  // far from the bare seed, and adjacent host ids decorrelate fully.
  uint64_t x = seed ^ (host_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  uint64_t mixed = SplitMix64(x);
  return mixed ^ SplitMix64(x);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits → [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += w > 0.0 ? w : 0.0;
  }
  assert(total > 0.0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) {
      return i;
    }
    r -= w;
  }
  return weights.size() - 1;  // fp round-off fallthrough
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace newtos
