// A hierarchical timing wheel with exact deadlines.
//
// Motivation (ROADMAP "million-flow scale"): per-flow timers as individual
// event-queue entries cost O(log n) heap sifts per arm/cancel and 40+ bytes
// of slot/heap state per pending timer. A TCP host with 10^6 connections
// arms and cancels several timers per segment; the wheel makes both O(1)
// pointer splices on intrusive nodes the *socket* owns — flat memory, zero
// allocation on arm/disarm/fire.
//
// Design: 6 levels x 64 slots. Level-k slots span 2^(20+6k) picoseconds
// (level 0 ~1.05 us, level 1 ~67 us, ... level 5 ~13 min), so level k's
// 64-slot window covers exactly one level-(k+1) slot and the wheel reaches
// ~20 hours before far-future deadlines park in the top level and re-cascade.
// A node is placed by its delta from the wheel's current time: the lowest
// level whose window covers the delta, at slot (deadline >> shift) & 63.
//
// Deadline exactness — the property the determinism goldens depend on: a
// node stores its full 64-bit picosecond deadline and fires at *exactly*
// that instant, never at a slot boundary. The wheel keeps ONE pending event
// in the simulation's queue (not one per timer), always scheduled at a
// lower bound of the earliest armed deadline:
//   - the exact minimum of the first non-empty level-0 slot (a slot spans
//     ~1 us, so the scan touches only the handful of timers due soonest), or
//   - the range *start* of the first non-empty slot of a higher level.
// Waking at a higher level's range start cascades that slot's nodes down
// (placement deltas shrink as now advances, so each node drops at least one
// level) and re-schedules — a "refinement wake" that fires no timers and
// touches no model state. After at most kLevels refinements the earliest
// deadline is in level 0 and the wake lands on it exactly. Same-instant
// timers fire in arm order (a per-wheel monotone sequence), matching the
// event queue's FIFO tie-break.
//
// Cancel is O(1) and lazy about the pending wake: a wake whose deadline was
// cancelled still fires, finds nothing due, and re-schedules from the wheel
// contents ("spurious wake"). Spurious and refinement wakes change only
// events_processed, never model observables, and are fully deterministic.
//
// Not thread-safe; the simulator is single-threaded by design.

#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {

class TimerWheel;

// Intrusive timer node. The owning object (a TCP socket, a server's reap
// hook) embeds one node per logical timer and sets `fn`/`arg` once at
// construction; Arm/Cancel/fire never allocate. A node must be cancelled
// (or never armed) before it is destroyed, and must not outlive its wheel.
struct TimerNode {
  // Fired exactly at the armed deadline. The node is already disarmed when
  // the callback runs, so re-arming from inside it is fine.
  void (*fn)(void* arg) = nullptr;
  void* arg = nullptr;

  TimerNode() = default;
  TimerNode(void (*f)(void*), void* a) : fn(f), arg(a) {}
  TimerNode(const TimerNode&) = delete;
  TimerNode& operator=(const TimerNode&) = delete;
  ~TimerNode() { assert(!armed() && "cancel timers before destroying them"); }

  bool armed() const { return pprev != nullptr; }
  SimTime deadline() const { return deadline_; }

 private:
  friend class TimerWheel;
  TimerNode* next = nullptr;
  TimerNode** pprev = nullptr;  // non-null iff linked into a slot
  SimTime deadline_ = 0;
  uint64_t arm_seq = 0;   // arm order; FIFO tie-break for same-instant fires
  uint8_t level = 0;
  uint8_t slot = 0;
};

class TimerWheel {
 public:
  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;     // 64, power of two
  static constexpr int kLevel0Shift = 20;           // 2^20 ps ~ 1.05 us slots

  explicit TimerWheel(Simulation* sim) : sim_(sim) { assert(sim_ != nullptr); }
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;
  ~TimerWheel() { wake_.Cancel(); }

  // Arms `node` to fire at absolute time `deadline` (clamped to the
  // simulation's current time if in the past, matching ScheduleAt). Re-arming
  // a pending node moves it. O(1).
  void Arm(TimerNode* node, SimTime deadline);

  // Disarms `node` if pending. O(1); the pending wake is left alone (a
  // stale wake fires spuriously and re-schedules from the wheel contents).
  void Cancel(TimerNode* node) {
    if (node->armed()) {
      Unlink(node);
    }
  }

  // Pre-sizes the same-instant scratch list so a burst of up to `n` timers
  // expiring at one instant never allocates mid-run.
  void Reserve(size_t n) { due_.reserve(n); }

  // --- Introspection (tests, benches, diagnostics) ---
  size_t armed() const { return armed_; }
  SimTime now() const { return now_; }          // lags sim->Now() between wakes
  bool wake_scheduled() const { return wake_scheduled_; }
  SimTime wake_time() const { return wake_time_; }
  uint64_t fires() const { return fires_; }
  uint64_t wakes() const { return wakes_; }
  uint64_t spurious_wakes() const { return spurious_wakes_; }
  uint64_t cascades() const { return cascades_; }

 private:
  // Sentinel for TimerNode::level while the node sits on the expired list
  // (detached from its slot, not yet fired). Unlink() must skip the slot
  // bitmap for such nodes.
  static constexpr uint8_t kExpiredLevel = 0xff;

  static constexpr int Shift(int level) { return kLevel0Shift + kSlotBits * level; }

  // Inserts by cursor-relative slot distance. Returns the wake lower bound
  // for this node: its exact deadline, or — when parked beyond the top
  // window — the parked slot's range start (the cursor must cascade through
  // that slot before the deadline, so the wake may not overshoot it).
  SimTime Place(TimerNode* node);
  void Unlink(TimerNode* node);
  void OnWake();
  void AdvanceTo(SimTime t);                     // jump cursors, cascade
  // Lower bound of the earliest armed deadline, or -1 if the wheel is empty.
  SimTime NextWakeCandidate();
  void ScheduleWake(SimTime at);
  void RescheduleFromWheel();

  Simulation* sim_;
  TimerNode* heads_[kLevels][kSlots] = {};
  uint64_t occupied_[kLevels] = {};              // bit s: heads_[l][s] != null
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t armed_ = 0;

  EventHandle wake_;
  SimTime wake_time_ = 0;
  bool wake_scheduled_ = false;
  bool in_wake_ = false;   // defer wake maintenance to the end of OnWake()

  std::vector<TimerNode*> due_;                  // same-instant sort scratch
  // Due nodes wait here (still intrusively linked, so Cancel works) between
  // collection and firing. A callback that tears down a sibling object this
  // instant cancels its nodes right out of this list — no dangling fires.
  TimerNode* expired_head_ = nullptr;

  uint64_t fires_ = 0;
  uint64_t wakes_ = 0;
  uint64_t spurious_wakes_ = 0;
  uint64_t cascades_ = 0;
};

// --- Hot-path inline definitions ---

inline void TimerWheel::Arm(TimerNode* node, SimTime deadline) {
  // Clamp against the *simulation* clock, not the wheel's lagging now_: a
  // deadline between the two would land in an already-passed slot, which the
  // exactly-due collection in OnWake() could never retire.
  if (deadline < sim_->Now()) {
    deadline = sim_->Now();
  }
  if (node->armed()) {
    Unlink(node);
  }
  node->deadline_ = deadline;
  node->arm_seq = next_seq_++;
  const SimTime bound = Place(node);
  ++armed_;
  // The pending wake must stay a lower bound of the earliest deadline (and
  // of any parked slot's range start). An earlier-than-wake arm replaces it
  // *now*, so the wake keeps the sequence number a per-flow timer event
  // would have had — same-instant FIFO order against non-timer events is
  // preserved. Inside OnWake the final reschedule covers every arm made by
  // the firing callbacks.
  if (!in_wake_ && (!wake_scheduled_ || bound < wake_time_)) {
    ScheduleWake(bound);
  }
}

inline SimTime TimerWheel::Place(TimerNode* node) {
  // Pick the lowest level whose cursor-relative *slot distance* is < 64.
  // (Raw-delta level selection would alias: a delta just under a level's
  // window can be 64 slots ahead and hash onto the cursor's own slot index.)
  // With the distance metric a level >= 1 placement always has distance in
  // [1, 63]: distance 0 at level k implies both times share an aligned
  // level-k slot, which bounds the level-(k-1) distance below 64, so the
  // search would have stopped earlier. Nodes therefore never land in a
  // cursor slot they would immediately re-cascade out of. Distance 0 happens
  // only at level 0, where the cursor slot is exactly where due work lives.
  const uint64_t d = static_cast<uint64_t>(node->deadline_);
  const uint64_t base = static_cast<uint64_t>(now_);
  int level = 0;
  while (level < kLevels - 1 &&
         (d >> Shift(level)) - (base >> Shift(level)) >= static_cast<uint64_t>(kSlots)) {
    ++level;
  }
  uint64_t abs_slot = d >> Shift(level);
  SimTime bound = node->deadline_;
  if (abs_slot - (base >> Shift(level)) >= static_cast<uint64_t>(kSlots)) {
    // Beyond the top window (~20 h): park in the farthest top-level slot.
    // The deadline is *not* inside that slot, so the wake bound becomes the
    // slot's range start — the cursor cascades through it (re-parking the
    // node closer) well before the deadline.
    abs_slot = (base >> Shift(level)) + kSlots - 1;
    bound = static_cast<SimTime>(abs_slot) << Shift(level);
  }
  const int slot = static_cast<int>(abs_slot & (kSlots - 1));
  TimerNode*& head = heads_[level][slot];
  node->next = head;
  node->pprev = &head;
  if (head != nullptr) {
    head->pprev = &node->next;
  }
  head = node;
  occupied_[level] |= 1ULL << slot;
  node->level = static_cast<uint8_t>(level);
  node->slot = static_cast<uint8_t>(slot);
  return bound;
}

inline void TimerWheel::Unlink(TimerNode* node) {
  *node->pprev = node->next;
  if (node->next != nullptr) {
    node->next->pprev = node->pprev;
  }
  node->next = nullptr;
  node->pprev = nullptr;
  if (node->level != kExpiredLevel && heads_[node->level][node->slot] == nullptr) {
    occupied_[node->level] &= ~(1ULL << node->slot);
  }
  --armed_;
}

}  // namespace newtos

#endif  // SRC_SIM_TIMER_WHEEL_H_
