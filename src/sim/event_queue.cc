#include "src/sim/event_queue.h"

#include <cassert>

namespace newtos {

bool EventHandle::Cancel() {
  if (!state_ || state_->fired || state_->cancelled) {
    return false;
  }
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const { return state_ && !state_->fired && !state_->cancelled; }

EventHandle EventQueue::Push(SimTime when, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

std::pair<SimTime, std::function<void()>> EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so cast
  // away constness of the entry we are about to pop. This is the standard
  // idiom for move-out-of-priority_queue and is safe because pop() follows
  // immediately.
  Entry& top = const_cast<Entry&>(heap_.top());
  auto result = std::make_pair(top.when, std::move(top.fn));
  top.state->fired = true;
  heap_.pop();
  return result;
}

}  // namespace newtos
