#include "src/sim/event_queue.h"

namespace newtos {

bool EventHandle::Cancel() {
  if (!pool_) {
    return false;
  }
  EventSlotPool::Slot& s = pool_->slots[index_];
  if (s.gen != gen_ || s.cancelled) {
    return false;  // already fired/discarded (slot recycled) or cancelled
  }
  s.cancelled = true;
  ++pool_->cancelled_in_heap;
  return true;
}

bool EventHandle::pending() const {
  if (!pool_) {
    return false;
  }
  const EventSlotPool::Slot& s = pool_->slots[index_];
  return s.gen == gen_ && !s.cancelled;
}

void EventQueue::Compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               if (!pool_->slots[e.slot].cancelled) {
                                 return false;
                               }
                               pool_->Release(e.slot);  // also clears `cancelled`
                               return true;
                             }),
              heap_.end());
  pool_->cancelled_in_heap = 0;
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::Clear() {
  for (const Entry& e : heap_) {
    pool_->Release(e.slot);  // destroys the callback, clears `cancelled`
  }
  heap_.clear();
  pool_->cancelled_in_heap = 0;
}

void EventQueue::Reserve(size_t n) {
  heap_.reserve(n);
  pool_->slots.reserve(n);
}

}  // namespace newtos
