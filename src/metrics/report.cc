#include "src/metrics/report.h"

#include <cstdio>
#include <fstream>

namespace newtos {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonWriter::Add(std::string_view key, std::string rendered) {
  fields_.emplace_back(std::string(key), std::move(rendered));
}

JsonWriter& JsonWriter::Str(std::string_view key, std::string_view value) {
  Add(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Int(std::string_view key, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  Add(key, buf);
  return *this;
}

JsonWriter& JsonWriter::Uint(std::string_view key, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  Add(key, buf);
  return *this;
}

JsonWriter& JsonWriter::Num(std::string_view key, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  Add(key, buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(std::string_view key, bool v) {
  Add(key, v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view key, std::string_view json) {
  Add(key, std::string(json));
  return *this;
}

std::string JsonWriter::Finish() const {
  std::string out = "{\n";
  for (size_t i = 0; i < fields_.size(); ++i) {
    out += "  \"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
    if (i + 1 < fields_.size()) {
      out += ',';
    }
    out += '\n';
  }
  out += "}\n";
  return out;
}

bool WriteFileChecked(const std::string& path, std::string_view contents) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return false;
  }
  f.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace newtos
