#include "src/metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace newtos {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::Reset() { *this = StreamingStats(); }

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RateMeter::EventsPerSec(SimTime now) const {
  const double secs = ToSeconds(now - window_start_);
  return secs > 0.0 ? static_cast<double>(events_) / secs : 0.0;
}

double RateMeter::BitsPerSec(SimTime now) const {
  const double secs = ToSeconds(now - window_start_);
  return secs > 0.0 ? static_cast<double>(bytes_) * 8.0 / secs : 0.0;
}

}  // namespace newtos
