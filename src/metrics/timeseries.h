// Periodic time-series sampler for simulations.
//
// Samples a user function at a fixed simulated interval and stores (t, value)
// pairs — the plumbing behind time-resolved figures like the recovery
// timeline (goodput per 10 ms bucket around a crash).

#ifndef SRC_METRICS_TIMESERIES_H_
#define SRC_METRICS_TIMESERIES_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {

class TimeSeries {
 public:
  struct Point {
    SimTime at = 0;
    double value = 0.0;
  };

  // `sample` is called every `interval` once Start()ed; its return value is
  // recorded against the sampling time.
  TimeSeries(Simulation* sim, SimTime interval, std::function<double()> sample)
      : sim_(sim), interval_(interval), sample_(std::move(sample)) {}

  ~TimeSeries() { Stop(); }

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  void Start() {
    if (!running_) {
      running_ = true;
      tick_ = sim_->Schedule(interval_, [this] { Tick(); });
    }
  }

  void Stop() {
    running_ = false;
    tick_.Cancel();
  }

  const std::vector<Point>& points() const { return points_; }
  SimTime interval() const { return interval_; }

  // Pre-sizes the point log for `n` samples so steady-state ticks never
  // allocate — required inside allocation-counted measurement windows (the
  // churn bench samples under a zero-allocs/event gate). One sample lands
  // every `interval`, so pass ceil(window / interval) + slack.
  void Reserve(size_t n) { points_.reserve(n); }

  // Max value over all points (0 when empty) — handy for report scaling.
  double Max() const {
    double m = 0.0;
    for (const Point& p : points_) {
      m = p.value > m ? p.value : m;
    }
    return m;
  }

 private:
  void Tick() {
    if (!running_) {
      return;
    }
    points_.push_back(Point{sim_->Now(), sample_()});
    tick_ = sim_->Schedule(interval_, [this] { Tick(); });
  }

  Simulation* sim_;
  SimTime interval_;
  std::function<double()> sample_;
  std::vector<Point> points_;
  EventHandle tick_;
  bool running_ = false;
};

}  // namespace newtos

#endif  // SRC_METRICS_TIMESERIES_H_
