#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>

namespace newtos {

int LatencyHistogram::BucketFor(int64_t ns) {
  if (ns < 0) {
    ns = 0;
  }
  const uint64_t v = static_cast<uint64_t>(ns) + 1;  // avoid log of 0
  const int octave = 63 - std::countl_zero(v);
  if (octave < kSubBucketBits) {
    // Small values: direct linear indexing in the first octaves.
    return static_cast<int>(v - 1) < kBuckets ? static_cast<int>(v - 1) : kBuckets - 1;
  }
  const int shift = octave - kSubBucketBits;
  const int sub = static_cast<int>((v >> shift) & ((1 << kSubBucketBits) - 1));
  const int idx = ((octave - kSubBucketBits + 1) << kSubBucketBits) + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

int64_t LatencyHistogram::BucketUpperNs(int bucket) {
  // Buckets below 2^kSubBucketBits hold exactly one ns value (v = ns + 1
  // maps 1:1), so the representative is exact.
  if (bucket < (1 << kSubBucketBits)) {
    return bucket;
  }
  const int octave = (bucket >> kSubBucketBits) + kSubBucketBits - 1;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const int shift = octave - kSubBucketBits;
  // Upper edge of the bucket's v-range, converted back to ns (v = ns + 1).
  return ((static_cast<int64_t>((1 << kSubBucketBits) + sub + 1)) << shift) - 2;
}

void LatencyHistogram::Record(SimTime latency) {
  const int64_t ns = latency / kNanosecond;
  bins_[static_cast<size_t>(BucketFor(ns))]++;
  if (count_ == 0) {
    min_ = max_ = latency;
  } else {
    min_ = std::min(min_, latency);
    max_ = std::max(max_, latency);
  }
  ++count_;
  sum_ns_ += static_cast<double>(ns);
}

SimTime LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bins_[static_cast<size_t>(i)];
    if (seen >= target) {
      return BucketUpperNs(i) * kNanosecond;
    }
  }
  return max_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (int i = 0; i < kBuckets; ++i) {
    bins_[static_cast<size_t>(i)] += other.bins_[static_cast<size_t>(i)];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

}  // namespace newtos
