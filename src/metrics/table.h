// Console table and CSV writers used by every bench binary.
//
// Benches print the same rows the paper's tables/figures report; the table
// writer aligns columns for the console and the same rows can be dumped as
// CSV for plotting.

#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace newtos {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  // Adds a row; cells are pre-formatted strings. Row length may be shorter
  // than the header (remaining cells render empty).
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);
  static std::string Pct(double fraction, int precision = 1);  // 0.123 -> "12.3%"

  // Renders with aligned columns, a header rule, and an optional title.
  void Print(std::ostream& out, const std::string& title = "") const;

  // Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void WriteCsv(std::ostream& out) const;

  // Writes CSV to a file path; returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace newtos

#endif  // SRC_METRICS_TABLE_H_
