// Streaming scalar statistics (Welford) and windowed rate meters.

#ifndef SRC_METRICS_STATS_H_
#define SRC_METRICS_STATS_H_

#include <cstdint>
#include <limits>

#include "src/sim/time.h"

namespace newtos {

// Count / mean / variance / min / max without storing samples.
class StreamingStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset();

  // Pools another accumulator into this one.
  void Merge(const StreamingStats& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Counts events/bytes against simulated time; reports rates over the window
// since the last Reset.
class RateMeter {
 public:
  explicit RateMeter(SimTime start = 0) : window_start_(start) {}

  void Add(uint64_t events, uint64_t bytes = 0) {
    events_ += events;
    bytes_ += bytes;
  }

  void Reset(SimTime now) {
    events_ = 0;
    bytes_ = 0;
    window_start_ = now;
  }

  uint64_t events() const { return events_; }
  uint64_t bytes() const { return bytes_; }
  SimTime window_start() const { return window_start_; }

  double EventsPerSec(SimTime now) const;
  double BitsPerSec(SimTime now) const;
  double GbitsPerSec(SimTime now) const { return BitsPerSec(now) / 1e9; }

 private:
  uint64_t events_ = 0;
  uint64_t bytes_ = 0;
  SimTime window_start_ = 0;
};

}  // namespace newtos

#endif  // SRC_METRICS_STATS_H_
