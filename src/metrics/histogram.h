// Log-bucketed latency histogram with percentile queries.
//
// Buckets are log-spaced (HdrHistogram-style, base-2 with linear sub-buckets)
// over [1ns, ~17s], giving < 3% relative quantile error with a few KiB of
// counters — plenty for p50/p95/p99 reporting on simulated latencies.

#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace newtos {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kOctaves = 35;       // 2^35 ns ≈ 34 s
  static constexpr int kBuckets = kOctaves << kSubBucketBits;

  void Record(SimTime latency);

  uint64_t count() const { return count_; }
  SimTime min() const { return count_ > 0 ? min_ : 0; }
  SimTime max() const { return count_ > 0 ? max_ : 0; }
  double MeanNs() const { return count_ > 0 ? sum_ns_ / static_cast<double>(count_) : 0.0; }

  // Quantile q in [0,1]; returns a representative latency. 0 when empty.
  SimTime Quantile(double q) const;

  SimTime P50() const { return Quantile(0.50); }
  SimTime P95() const { return Quantile(0.95); }
  SimTime P99() const { return Quantile(0.99); }

  void Reset();
  void Merge(const LatencyHistogram& other);

 private:
  static int BucketFor(int64_t ns);
  static int64_t BucketUpperNs(int bucket);

  std::array<uint64_t, kBuckets> bins_{};
  uint64_t count_ = 0;
  double sum_ns_ = 0.0;
  SimTime min_ = 0;
  SimTime max_ = 0;
};

}  // namespace newtos

#endif  // SRC_METRICS_HISTOGRAM_H_
