// Shared result-file writers for benches and exporters.
//
// Every bench used to hand-roll its fprintf JSON and its ofstream CSV dump;
// this header is the single place that knows how to (a) format a flat JSON
// report deterministically and (b) write a file with an error-checked flush,
// so a full disk or an unwritable path fails the bench instead of silently
// producing a truncated result file.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace newtos {

// Builds a JSON object field by field, in insertion order, with fixed
// numeric formatting (printf-style, locale-independent) so two identical
// runs produce byte-identical reports.
class JsonWriter {
 public:
  JsonWriter& Str(std::string_view key, std::string_view value);
  JsonWriter& Int(std::string_view key, int64_t v);
  JsonWriter& Uint(std::string_view key, uint64_t v);
  JsonWriter& Num(std::string_view key, double v, int precision);
  JsonWriter& Bool(std::string_view key, bool v);
  // Escape hatch for a nested object/array: `json` is emitted verbatim.
  JsonWriter& Raw(std::string_view key, std::string_view json);

  // Renders "{\n  "k": v,\n  ...\n}\n".
  std::string Finish() const;

 private:
  void Add(std::string_view key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Writes `contents` to `path`, replacing any existing file. Returns false on
// any I/O failure — open, write, or the final flush.
bool WriteFileChecked(const std::string& path, std::string_view contents);

}  // namespace newtos

#endif  // SRC_METRICS_REPORT_H_
