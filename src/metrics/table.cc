#include "src/metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/metrics/report.h"

namespace newtos {

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::Print(std::ostream& out, const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  if (!title.empty()) {
    out << "== " << title << " ==\n";
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out << "  " << cell;
      for (size_t pad = cell.size(); pad < widths[i]; ++pad) {
        out << ' ';
      }
    }
    out << "\n";
  };
  print_row(headers_);
  size_t rule = 0;
  for (size_t w : widths) {
    rule += w + 2;
  }
  for (size_t i = 0; i < rule; ++i) {
    out << '-';
  }
  out << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::WriteCsv(std::ostream& out) const {
  auto write_row = [&](const std::vector<std::string>& cells, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) {
        out << ',';
      }
      out << CsvEscape(i < cells.size() ? cells[i] : std::string());
    }
    out << "\n";
  };
  write_row(headers_, headers_.size());
  for (const auto& row : rows_) {
    write_row(row, headers_.size());
  }
}

bool Table::WriteCsvFile(const std::string& path) const {
  std::ostringstream buf;
  WriteCsv(buf);
  return WriteFileChecked(path, buf.str());
}

}  // namespace newtos
