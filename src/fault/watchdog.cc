#include "src/fault/watchdog.h"

#include <cassert>

#include "src/sim/logger.h"

namespace newtos {

WatchdogServer::WatchdogServer(Simulation* sim, MicrorebootManager* mgr, const Params& params)
    : Server(sim, "watchdog"), mgr_(mgr), params_(params) {
  assert(params_.heartbeat_interval > 0);
  assert(params_.miss_threshold >= 1);
  acks_ = CreateInput("acks", params_.chan_capacity, params_.chan_cost);
}

void WatchdogServer::Watch(Server* server, Cycles restart_cycles) {
  assert(!started_ && "register watched servers before Start()");
  Watched w;
  w.server = server;
  w.ctl = server->CreateInput("wd", params_.chan_capacity, params_.chan_cost);
  w.restart_cycles = restart_cycles;
  server->EnableHeartbeat(acks_, watched_.size());
  watched_.push_back(w);
}

void WatchdogServer::Start() {
  assert(core() != nullptr && "bind the watchdog to a core before Start()");
  started_ = true;
  const SimTime now = sim()->Now();
  for (Watched& w : watched_) {
    w.last_ack = now;  // everyone gets a full deadline before first suspicion
  }
  sim()->Schedule(params_.heartbeat_interval, [this] { Tick(); });
}

void WatchdogServer::Tick() {
  sim()->Schedule(params_.heartbeat_interval, [this] { Tick(); });

  // Scan for silence. A server past its deadline is escalated exactly once;
  // the `recovering` latch opens again on its first post-reboot ack.
  const SimTime deadline = DetectionDeadline();
  const SimTime now = sim()->Now();
  for (Watched& w : watched_) {
    if (w.recovering || now - w.last_ack <= deadline) {
      continue;
    }
    if (AnotherServerRebootingOn(w.server->core(), w.server)) {
      // A reboot monopolizes its core, so co-located servers cannot answer
      // probes however healthy they are. Pause their silence clocks instead
      // of cascading spurious microreboots.
      w.last_ack = now;
      continue;
    }
    w.recovering = true;
    NEWTOS_LOG(kInfo, now, name(),
               w.server->name() << " silent for "
                                << (now - w.last_ack) / kMicrosecond << "us -> microreboot");
    const size_t incident = mgr_->RecoverDetected(w.server, w.last_ack, w.restart_cycles);
    detections_.push_back(Detection{w.server->name(), w.last_ack, now, incident});
  }

  // Emitting the probe round costs watchdog-core cycles like any other work.
  const Cycles cost =
      params_.tick_cost + params_.probe_cost * static_cast<Cycles>(watched_.size());
  core()->Execute(cost, [this] { EmitProbes(); });
}

bool WatchdogServer::AnotherServerRebootingOn(const Core* core, const Server* self) const {
  for (const Watched& other : watched_) {
    if (other.server != self && other.server->crashed() && other.server->core() == core) {
      return true;
    }
  }
  return false;
}

void WatchdogServer::EmitProbes() {
#if NEWTOS_CHECKERS
  // This runs from a core Execute() callback, outside the base class's burst
  // path — scope the identity by hand or every probe pushes anonymously and
  // the wd rings never see their producer.
  ChannelChecker::ScopedActor check_scope(check(), check_actor());
#endif
  ++seq_;
  for (const Watched& w : watched_) {
    Msg probe;
    probe.type = MsgType::kCtlHeartbeat;
    probe.value = seq_;
    if (Emit(w.ctl, std::move(probe))) {
      ++probes_sent_;
    }
    // A full "wd" ring is itself a silence symptom (the server is not
    // draining) — the scan above catches it; nothing more to do here.
  }
}

Cycles WatchdogServer::CostFor(const Msg&) { return params_.ack_cost; }

void WatchdogServer::Handle(const Msg& msg) {
  if (msg.type != MsgType::kCtlHeartbeat) {
    return;
  }
  const size_t index = static_cast<size_t>(msg.handle);
  if (index >= watched_.size()) {
    return;
  }
  ++acks_received_;
  Watched& w = watched_[index];
  w.last_ack = sim()->Now();
  if (w.recovering) {
    w.recovering = false;  // back from the dead; resume normal suspicion
    NEWTOS_LOG(kInfo, sim()->Now(), name(), w.server->name() << " answering again");
  }
}

}  // namespace newtos
