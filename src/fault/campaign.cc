#include "src/fault/campaign.h"

#include <sstream>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/fault/fault_injector.h"
#include "src/fault/invariants.h"
#include "src/workload/iperf.h"

namespace newtos {

std::vector<CampaignFault> DefaultFaultSpace() {
  return {
      {FaultClass::kChanDrop, "ip"},
      {FaultClass::kChanDuplicate, "tcp"},
      {FaultClass::kChanDelay, "ip"},
      {FaultClass::kChanCorrupt, "tcp"},
      {FaultClass::kWireBitFlip, ""},
      {FaultClass::kServerCrash, "ip"},
      {FaultClass::kServerCrash, "tcp"},
      {FaultClass::kServerHang, "driver"},
      {FaultClass::kServerHang, "ip"},
      {FaultClass::kServerHang, "tcp"},
      {FaultClass::kServerLivelock, "ip"},
  };
}

namespace {

Cycles RestartCyclesFor(const StackConfig& config, const std::string& server_name) {
  if (server_name.find("driver") != std::string::npos) {
    return config.driver.restart_cycles;
  }
  if (server_name.find("tcp") != std::string::npos) {
    return config.tcp.restart_cycles;
  }
  if (server_name.find("udp") != std::string::npos) {
    return config.udp.restart_cycles;
  }
  if (server_name.find("pf") != std::string::npos) {
    return config.pf.restart_cycles;
  }
  if (server_name.find("syscall") != std::string::npos) {
    return config.syscall.restart_cycles;
  }
  return config.ip.restart_cycles;
}

std::string GhzCell(FreqKhz f) {
  return Table::Num(static_cast<double>(f) / 1e6, 1);
}

}  // namespace

uint64_t CampaignCellSeed(uint64_t seed, const CampaignFault& fault, FreqKhz freq) {
  uint64_t h = seed ^ (static_cast<uint64_t>(fault.cls) + 1) * 0x9e3779b97f4a7c15ULL;
  for (char c : fault.target) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h ^ static_cast<uint64_t>(freq);
}

CampaignRunner::CampaignRunner(const CampaignOptions& options) : options_(options) {
  if (options_.faults.empty()) {
    options_.faults = DefaultFaultSpace();
  }
}

const std::vector<CampaignCell>& CampaignRunner::Run() {
  cells_.clear();
  for (FreqKhz freq : options_.stack_freqs) {
    for (const CampaignFault& fault : options_.faults) {
      cells_.push_back(RunCell(fault, freq));
    }
  }
  return cells_;
}

CampaignCell CampaignRunner::RunCell(const CampaignFault& fault, FreqKhz stack_freq) {
  CampaignCell cell;
  cell.cls = fault.cls;
  cell.target = fault.target;
  cell.stack_freq = stack_freq;

  Testbed tb;
  Simulation& sim = tb.sim();
  MultiserverStack* stack = tb.stack();
  DedicatedSlowPlan(*stack, stack_freq, options_.app_freq).Apply(tb.machine());

  // Checkpointed TCP recovery: a rebooted TCP server keeps its connections
  // and lets retransmission repair the gap — the paper's recoverable-stack
  // configuration. Without it every TCP-server reboot aborts the stream and
  // the campaign would measure connection-reestablishment, not recovery.
  for (int i = 0; i < stack->tcp_shard_count(); ++i) {
    stack->tcp_shard(i)->set_checkpointing(true);
  }

  // Liveness plane: watchdog on the app-side core, every stage watched.
  MicrorebootManager mgr(&sim);
  WatchdogServer watchdog(&sim, &mgr, options_.watchdog);
  watchdog.BindCore(tb.machine().core(stack->config().watchdog_core));
  for (Server* s : stack->SystemServers()) {
    watchdog.Watch(s, RestartCyclesFor(stack->config(), s->name()));
  }

  // Workload: SUT streams to the peer; the peer-side listener feeds the
  // integrity checker (the measured end of the stream).
  StreamIntegrityChecker integrity;
  TcpHost::AppHooks sink_hooks;
  sink_hooks.on_data = [&integrity](TcpConnection*, uint32_t bytes) {
    integrity.OnChunk(bytes);
  };
  tb.peer().tcp().Listen(kIperfPort, sink_hooks, tb.peer().tcp_params());

  SocketApi* api = stack->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.burst_bytes = options_.burst_bytes;
  IperfSender sender(api, sp);

  // The cell's single fault, armed after Watch() so the injector can see and
  // skip the watchdog channels.
  FaultPlan plan;
  plan.seed = CampaignCellSeed(options_.seed, fault, stack_freq);
  FaultSpec spec;
  spec.cls = fault.cls;
  spec.target = fault.target;
  spec.probability = IsWireFault(fault.cls) ? options_.wire_flip_prob : options_.chan_fault_prob;
  spec.delay = options_.chan_delay;
  spec.at = options_.warmup + options_.inject_at;
  spec.livelock_slice = options_.livelock_slice;
  plan.faults.push_back(spec);

  FaultInjector injector(&sim, std::move(plan));
  injector.Arm(stack);
  if (IsWireFault(fault.cls)) {
    injector.ArmWire(tb.machine().nic());  // corrupts ACKs arriving at the SUT
    injector.ArmWire(tb.peer().nic());     // corrupts data arriving at the peer
  }

  // Progress invariant: the delivery counter may legitimately go flat for
  // detection + reboot + one RTO, so the stall bound sits above the recovery
  // bound; a wedged pipeline blows well past it.
  ProgressMonitor progress(
      &sim, [&integrity] { return integrity.delivered(); }, 5 * kMillisecond,
      options_.recovery_bound + watchdog.DetectionDeadline() + 20 * kMillisecond);

  watchdog.Start();
  sender.Start();

  uint64_t delivered_at_inject = 0;
  sim.ScheduleAt(spec.at, [&delivered_at_inject, &integrity] {
    delivered_at_inject = integrity.delivered();
  });

  tb.WarmUp(options_.warmup);
  progress.Start();
  sim.RunFor(options_.run_for);

  // --- Judge the cell ---
  cell.injected = injector.counters().Total();
  cell.delivered = integrity.delivered();
  cell.digest = integrity.digest();

  uint64_t corrupt_accepted = 0;
  for (int i = 0; i < stack->tcp_shard_count(); ++i) {
    for (TcpConnection* c : stack->tcp_shard(i)->host().Connections()) {
      corrupt_accepted += c->stats().corrupt_segments_accepted;
    }
  }
  for (TcpConnection* c : tb.peer().tcp().Connections()) {
    corrupt_accepted += c->stats().corrupt_segments_accepted;
  }
  cell.integrity = corrupt_accepted == 0 && cell.delivered > 0;
  cell.progress = !progress.stalled() && cell.delivered > delivered_at_inject;

  if (IsServerFault(fault.cls)) {
    cell.detected = !watchdog.detections().empty();
    const RecoveryCheck rc = CheckBoundedRecovery(mgr.incidents(), options_.recovery_bound);
    cell.recovered = !mgr.incidents().empty() && rc.all_recovered;
    if (cell.detected) {
      cell.detect_ms = static_cast<double>(rc.worst_detect) / kMillisecond;
    }
    if (cell.recovered) {
      cell.recover_ms = static_cast<double>(rc.worst_recover) / kMillisecond;
    }
    cell.pass = cell.injected > 0 && cell.detected && cell.recovered && rc.all_within_bound &&
                cell.integrity && cell.progress;
  } else {
    cell.pass = cell.injected > 0 && cell.integrity && cell.progress;
  }
  return cell;
}

Table CampaignTable(const std::vector<CampaignCell>& cells) {
  Table t({"fault", "target", "stack_ghz", "injected", "detected", "recovered", "detect_ms",
           "recover_ms", "delivered_mb", "digest", "integrity", "progress", "verdict"});
  for (const CampaignCell& c : cells) {
    const bool server_fault = IsServerFault(c.cls);
    std::ostringstream digest;
    digest << std::hex << c.digest;
    t.AddRow({
        FaultClassName(c.cls),
        c.target.empty() ? "*" : c.target,
        GhzCell(c.stack_freq),
        Table::Int(static_cast<int64_t>(c.injected)),
        server_fault ? (c.detected ? "yes" : "NO") : "-",
        server_fault ? (c.recovered ? "yes" : "NO") : "-",
        c.detect_ms >= 0 ? Table::Num(c.detect_ms, 2) : "-",
        c.recover_ms >= 0 ? Table::Num(c.recover_ms, 2) : "-",
        Table::Num(static_cast<double>(c.delivered) / 1e6, 2),
        digest.str(),
        c.integrity ? "ok" : "VIOLATED",
        c.progress ? "ok" : "STALLED",
        c.pass ? "PASS" : "FAIL",
    });
  }
  return t;
}

Table CampaignRunner::ToTable() const { return CampaignTable(cells_); }

std::string CampaignRunner::ToCsv() const {
  std::ostringstream oss;
  ToTable().WriteCsv(oss);
  return oss.str();
}

}  // namespace newtos
