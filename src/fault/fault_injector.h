// FaultInjector: arms a FaultPlan against a running testbed.
//
// Channel faults become SimChannel taps on the stack's inter-server rings,
// wire faults become a NIC receive hook, server faults become one-shot
// scheduled triggers (Crash/Hang/Livelock). Every random draw comes from a
// per-channel RNG forked deterministically from the plan seed, so the same
// (plan, workload) pair replays identically.
//
// The watchdog's control plane is off limits: channels whose name marks them
// as watchdog plumbing ("<server>/wd") are never tapped, and heartbeat
// messages pass through taps untouched. Faulting the detector itself is a
// different experiment than faulting what it detects.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/hw/nic.h"
#include "src/os/stack.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace newtos {

class FaultInjector {
 public:
  struct Counters {
    uint64_t chan_drops = 0;
    uint64_t chan_dups = 0;
    uint64_t chan_delays = 0;
    uint64_t chan_corrupts = 0;
    uint64_t wire_flips = 0;
    uint64_t crashes = 0;
    uint64_t hangs = 0;
    uint64_t livelocks = 0;

    uint64_t Total() const {
      return chan_drops + chan_dups + chan_delays + chan_corrupts + wire_flips + crashes +
             hangs + livelocks;
    }
  };

  FaultInjector(Simulation* sim, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs channel taps on every matching system-server input and schedules
  // the plan's server-fault triggers. Call once, after the stack is built
  // (and after any WatchdogServer::Watch calls, so watchdog channels exist
  // and can be excluded). Channel taps are active immediately.
  void Arm(MultiserverStack* stack);

  // Installs the plan's wire faults on `nic` (frames arriving at it). Arm the
  // SUT's NIC to corrupt inbound traffic, the peer's to corrupt outbound.
  void ArmWire(Nic* nic);

  const FaultPlan& plan() const { return plan_; }
  const Counters& counters() const { return counters_; }

  // Human-readable record of every discrete injection (server triggers), in
  // injection order, e.g. "[103.000ms] hang ip".
  const std::vector<std::string>& injections() const { return injections_; }

 private:
  struct TapState {
    FaultInjector* owner = nullptr;
    Rng rng{1};
    std::vector<FaultSpec> specs;  // the channel specs matching this channel
  };
  struct WireState {
    FaultInjector* owner = nullptr;
    Rng rng{1};
    std::vector<FaultSpec> specs;
  };
  struct Trigger {
    Server* server = nullptr;
    FaultClass cls = FaultClass::kServerCrash;
    Cycles livelock_slice = 0;
  };

  static uint64_t HashName(const std::string& name);
  void InstallTap(SimChannel<Msg>* chan);
  void FireTrigger(size_t index);

  Simulation* sim_;
  FaultPlan plan_;
  Counters counters_;
  std::vector<std::unique_ptr<TapState>> taps_;
  std::vector<std::unique_ptr<WireState>> wires_;
  std::vector<Trigger> triggers_;
  std::vector<std::string> injections_;
};

}  // namespace newtos

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
