#include "src/fault/fault_injector.h"

#include <sstream>
#include <utility>

#include "src/sim/logger.h"

namespace newtos {

namespace {

bool TargetMatches(const std::string& target, const std::string& server_name) {
  return target.empty() || server_name.find(target) != std::string::npos;
}

// Watchdog plumbing is never tapped: faulting the detector is a different
// experiment than faulting what it detects.
bool IsWatchdogChannel(const std::string& chan_name) {
  return chan_name.find("/wd") != std::string::npos ||
         chan_name.find("watchdog") != std::string::npos;
}

std::string TimeMs(SimTime t) {
  std::ostringstream oss;
  oss << (static_cast<double>(t) / static_cast<double>(kMillisecond)) << "ms";
  return oss.str();
}

// P(flip lands in the IP header) vs the (much larger) L4 header + payload.
constexpr double kIpHeaderFlipShare = 0.2;

}  // namespace

FaultInjector::FaultInjector(Simulation* sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {}

uint64_t FaultInjector::HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void FaultInjector::Arm(MultiserverStack* stack) {
  for (Server* server : stack->SystemServers()) {
    // Channel taps on every matching input ring.
    for (SimChannel<Msg>* chan : server->Inputs()) {
      if (IsWatchdogChannel(chan->name())) {
        continue;
      }
      InstallTap(chan);
    }
    // One-shot server triggers.
    for (const FaultSpec& spec : plan_.faults) {
      if (!IsServerFault(spec.cls) || !TargetMatches(spec.target, server->name())) {
        continue;
      }
      triggers_.push_back(Trigger{server, spec.cls, spec.livelock_slice});
      const size_t index = triggers_.size() - 1;
      sim_->ScheduleAt(spec.at, [this, index] { FireTrigger(index); });
    }
  }
}

void FaultInjector::InstallTap(SimChannel<Msg>* chan) {
  // Gather the channel specs aimed at this channel's owner. The channel name
  // is "<server>/<ring>", so a server-name target matches it too.
  std::vector<FaultSpec> specs;
  for (const FaultSpec& spec : plan_.faults) {
    if (IsChannelFault(spec.cls) && TargetMatches(spec.target, chan->name())) {
      specs.push_back(spec);
    }
  }
  if (specs.empty()) {
    return;
  }
  taps_.push_back(std::make_unique<TapState>());
  TapState* st = taps_.back().get();
  st->owner = this;
  st->rng = Rng(plan_.seed ^ HashName(chan->name()));
  st->specs = std::move(specs);

  chan->SetTap([st](Msg& msg) -> ChanTapDecision {
    if (msg.type == MsgType::kCtlHeartbeat) {
      return {};  // the liveness plane stays clean
    }
    Counters& n = st->owner->counters_;
    const SimTime now = st->owner->sim_->Now();
    for (const FaultSpec& s : st->specs) {
      if (!FaultActiveAt(s, now)) {
        continue;
      }
      switch (s.cls) {
        case FaultClass::kChanCorrupt:
          // Corruption mutates in place and still delivers; the RX path's
          // checksum verification is what the fault exercises.
          if (msg.packet && st->rng.Bernoulli(s.probability)) {
            msg.packet->corrupt |=
                st->rng.Bernoulli(kIpHeaderFlipShare) ? kCorruptIp : kCorruptL4;
            ++n.chan_corrupts;
          }
          break;
        case FaultClass::kChanDrop:
          if (st->rng.Bernoulli(s.probability)) {
            ++n.chan_drops;
            return {ChanTapAction::kDrop, 0};
          }
          break;
        case FaultClass::kChanDuplicate:
          if (st->rng.Bernoulli(s.probability)) {
            ++n.chan_dups;
            return {ChanTapAction::kDuplicate, 0};
          }
          break;
        case FaultClass::kChanDelay:
          if (st->rng.Bernoulli(s.probability)) {
            ++n.chan_delays;
            return {ChanTapAction::kDelay, s.delay};
          }
          break;
        default:
          break;
      }
    }
    return {};
  });
}

void FaultInjector::ArmWire(Nic* nic) {
  std::vector<FaultSpec> specs;
  for (const FaultSpec& spec : plan_.faults) {
    if (IsWireFault(spec.cls)) {
      specs.push_back(spec);
    }
  }
  if (specs.empty()) {
    return;
  }
  wires_.push_back(std::make_unique<WireState>());
  WireState* st = wires_.back().get();
  st->owner = this;
  st->rng = Rng(plan_.seed ^ HashName(nic->name()) ^ 0x77697265ULL);  // "wire"
  st->specs = std::move(specs);

  nic->SetWireFault([st](Packet& p) {
    bool flipped = false;
    const SimTime now = st->owner->sim_->Now();
    for (const FaultSpec& s : st->specs) {
      if (!FaultActiveAt(s, now)) {
        continue;
      }
      if (st->rng.Bernoulli(s.probability)) {
        p.corrupt |= st->rng.Bernoulli(kIpHeaderFlipShare) ? kCorruptIp : kCorruptL4;
        flipped = true;
      }
    }
    if (flipped) {
      ++st->owner->counters_.wire_flips;
    }
    return flipped;
  });
}

void FaultInjector::FireTrigger(size_t index) {
  const Trigger& t = triggers_[index];
  const char* what = FaultClassName(t.cls);
  switch (t.cls) {
    case FaultClass::kServerCrash:
      t.server->Crash();
      ++counters_.crashes;
      break;
    case FaultClass::kServerHang:
      t.server->Hang();
      ++counters_.hangs;
      break;
    case FaultClass::kServerLivelock:
      t.server->Livelock(t.livelock_slice);
      ++counters_.livelocks;
      break;
    default:
      return;
  }
  injections_.push_back("[" + TimeMs(sim_->Now()) + "] " + what + " " + t.server->name());
  NEWTOS_LOG(kInfo, sim_->Now(), "fault", what << " injected into " << t.server->name());
}

}  // namespace newtos
