#include "src/fault/invariants.h"

namespace newtos {

RecoveryCheck CheckBoundedRecovery(const std::vector<MicrorebootManager::Incident>& incidents,
                                   SimTime recovery_bound) {
  RecoveryCheck out;
  for (const MicrorebootManager::Incident& i : incidents) {
    if (i.recovered_at == 0) {
      out.all_recovered = false;
      out.all_within_bound = false;
      continue;
    }
    const SimTime detect = i.detected_at - i.crashed_at;
    const SimTime recover = i.recovered_at - i.detected_at;
    if (detect > out.worst_detect) {
      out.worst_detect = detect;
    }
    if (recover > out.worst_recover) {
      out.worst_recover = recover;
    }
    if (recover > recovery_bound) {
      out.all_within_bound = false;
    }
  }
  return out;
}

}  // namespace newtos
