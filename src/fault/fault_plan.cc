#include "src/fault/fault_plan.h"

namespace newtos {

const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kChanDrop:
      return "chan_drop";
    case FaultClass::kChanDuplicate:
      return "chan_dup";
    case FaultClass::kChanDelay:
      return "chan_delay";
    case FaultClass::kChanCorrupt:
      return "chan_corrupt";
    case FaultClass::kWireBitFlip:
      return "wire_flip";
    case FaultClass::kServerCrash:
      return "crash";
    case FaultClass::kServerHang:
      return "hang";
    case FaultClass::kServerLivelock:
      return "livelock";
  }
  return "?";
}

bool IsChannelFault(FaultClass c) {
  switch (c) {
    case FaultClass::kChanDrop:
    case FaultClass::kChanDuplicate:
    case FaultClass::kChanDelay:
    case FaultClass::kChanCorrupt:
      return true;
    default:
      return false;
  }
}

bool IsWireFault(FaultClass c) { return c == FaultClass::kWireBitFlip; }

bool IsServerFault(FaultClass c) {
  switch (c) {
    case FaultClass::kServerCrash:
    case FaultClass::kServerHang:
    case FaultClass::kServerLivelock:
      return true;
    default:
      return false;
  }
}

}  // namespace newtos
