// Invariant checkers for fault campaigns.
//
// Three properties distinguish "survived the fault" from "limped past it":
//   * stream integrity — every byte the application accepted arrived in
//     order and uncorrupted. Payload contents are not materialized in the
//     model, so the checker folds the delivered chunk sequence into a
//     running digest (two ends delivering the same byte count in the same
//     chunk pattern under a deterministic schedule fold to the same digest),
//     and the TCP layer's corrupt_segments_accepted counter is the direct
//     tripwire for corruption that slipped past checksum verification.
//   * progress — the system keeps doing useful work; a recovery that leaves
//     the pipeline wedged shows up as a monotonic counter going flat.
//   * bounded recovery — every detected incident completes its reboot within
//     the configured bound.

#ifndef SRC_FAULT_INVARIANTS_H_
#define SRC_FAULT_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/os/microreboot.h"
#include "src/sim/simulation.h"

namespace newtos {

// Order-sensitive running checksum over delivered stream chunks. Feed it
// from a delivery callback (e.g. a TCP on_data hook); compare digests across
// runs, or against a fault-free reference with the same chunking.
class StreamIntegrityChecker {
 public:
  void OnChunk(uint64_t bytes) {
    delivered_ += bytes;
    ++chunks_;
    // FNV-1a over the chunk-size sequence: position- and size-sensitive.
    digest_ ^= bytes;
    digest_ *= 1099511628211ULL;
  }

  uint64_t delivered() const { return delivered_; }
  uint64_t chunks() const { return chunks_; }
  uint64_t digest() const { return digest_; }

 private:
  uint64_t delivered_ = 0;
  uint64_t chunks_ = 0;
  uint64_t digest_ = 1469598103934665603ULL;
};

// Samples a monotonic progress counter every `interval`; if the counter
// stays flat longer than `stall_bound`, the run is flagged as stalled (the
// no-deadlock/no-livelock invariant). The bound must exceed the longest
// legitimate outage — detection plus reboot — or recovery itself trips it.
class ProgressMonitor {
 public:
  ProgressMonitor(Simulation* sim, std::function<uint64_t()> progress, SimTime interval,
                  SimTime stall_bound)
      : sim_(sim), progress_(std::move(progress)), interval_(interval),
        stall_bound_(stall_bound) {}

  void Start() {
    last_value_ = progress_();
    last_change_ = sim_->Now();
    running_ = true;
    sim_->Schedule(interval_, [this] { Sample(); });
  }
  void Stop() { running_ = false; }

  bool stalled() const { return stalled_; }
  // Longest observed flat stretch (sampled, so quantized to `interval`).
  SimTime longest_stall() const { return longest_stall_; }

 private:
  void Sample() {
    if (!running_) {
      return;
    }
    sim_->Schedule(interval_, [this] { Sample(); });
    const uint64_t v = progress_();
    if (v != last_value_) {
      last_value_ = v;
      last_change_ = sim_->Now();
      return;
    }
    const SimTime flat = sim_->Now() - last_change_;
    if (flat > longest_stall_) {
      longest_stall_ = flat;
    }
    if (flat > stall_bound_) {
      stalled_ = true;
    }
  }

  Simulation* sim_;
  std::function<uint64_t()> progress_;
  SimTime interval_;
  SimTime stall_bound_;
  uint64_t last_value_ = 0;
  SimTime last_change_ = 0;
  SimTime longest_stall_ = 0;
  bool stalled_ = false;
  bool running_ = false;
};

// Bounded-recovery assertion over a set of incidents.
struct RecoveryCheck {
  bool all_recovered = true;   // vacuously true when there are no incidents
  bool all_within_bound = true;
  SimTime worst_detect = 0;    // max detected_at - crashed_at
  SimTime worst_recover = 0;   // max recovered_at - detected_at
};

RecoveryCheck CheckBoundedRecovery(const std::vector<MicrorebootManager::Incident>& incidents,
                                   SimTime recovery_bound);

}  // namespace newtos

#endif  // SRC_FAULT_INVARIANTS_H_
