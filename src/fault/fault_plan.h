// FaultPlan: a declarative, seeded description of what goes wrong and when.
//
// A plan is a list of FaultSpecs plus one RNG seed. Every random draw the
// injector makes (per-message Bernoulli trials, corruption layer choice)
// derives deterministically from that seed, so a (plan, workload) pair
// replays bit-identically — the property the campaign's resilience matrix
// and the determinism tests rely on.
//
// Fault taxonomy (what the multiserver stack must survive):
//   channel faults — the shared-memory rings between servers misbehave:
//     kChanDrop       a message vanishes in transit (torn index update)
//     kChanDuplicate  a message is delivered twice (replayed slot)
//     kChanDelay      a message is held back before delivery (stalled slot)
//     kChanCorrupt    a packet's payload is damaged in the ring (checksum
//                     verification downstream is expected to catch it)
//   wire faults — bit flips on the physical link:
//     kWireBitFlip    an arriving frame fails its IP or L4 checksum
//   server faults — a stack process stops making progress:
//     kServerCrash    the process dies visibly (explicit crash)
//     kServerHang     the process blocks silently; no crash to observe
//     kServerLivelock the process spins at full speed without progress

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace newtos {

enum class FaultClass : uint8_t {
  kChanDrop,
  kChanDuplicate,
  kChanDelay,
  kChanCorrupt,
  kWireBitFlip,
  kServerCrash,
  kServerHang,
  kServerLivelock,
};

const char* FaultClassName(FaultClass c);

// Channel faults tap SimChannels; wire faults hook the NIC; server faults
// fire a one-shot trigger against matching servers.
bool IsChannelFault(FaultClass c);
bool IsWireFault(FaultClass c);
bool IsServerFault(FaultClass c);

struct FaultSpec {
  FaultClass cls = FaultClass::kChanDrop;

  // Substring matched against server names ("ip", "tcp", "driver", ...).
  // Empty matches every system server. Ignored for wire faults (the hook is
  // installed on whichever NIC the injector is armed with).
  std::string target;

  // Channel/wire faults: per-message (per-frame) trial probability.
  double probability = 0.0;

  // kChanDelay: how long a held-back message is delayed.
  SimTime delay = 200 * kMicrosecond;

  // Server faults: absolute simulation time of the one-shot trigger.
  SimTime at = 0;

  // Channel/wire faults: active window [from, until); zero = unbounded on
  // that side. The window gates the Bernoulli trial itself — a dormant spec
  // consumes no RNG draws — so the default (0, 0) spec draws on every
  // message exactly as before windows existed, keeping campaign RNG streams
  // bit-identical.
  SimTime from = 0;
  SimTime until = 0;

  // kServerLivelock: busy-spin slice re-armed until the next crash.
  Cycles livelock_slice = 200'000;
};

// True when `spec` is active at `now` per its [from, until) window.
inline bool FaultActiveAt(const FaultSpec& spec, SimTime now) {
  return (spec.from == 0 || now >= spec.from) && (spec.until == 0 || now < spec.until);
}

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultSpec> faults;
};

}  // namespace newtos

#endif  // SRC_FAULT_FAULT_PLAN_H_
