// CampaignRunner: sweeps fault space x stack frequency and emits the
// resilience matrix (Tab. 7).
//
// Each cell builds a fresh testbed, steers the stack stages to the cell's
// frequency (DedicatedSlowPlan), arms one fault from the taxonomy against
// one target, runs a bulk-TCP workload through it, and judges the outcome
// with the invariant checkers:
//   injected    the fault actually fired (trials are probabilistic)
//   detected    the watchdog escalated the silent server (server faults)
//   recovered   the microreboot completed, within the recovery bound
//   integrity   no corrupt segment was accepted; bytes kept arriving
//   progress    the delivery counter never went flat past the stall bound
// A cell passes when everything applicable holds. The whole matrix is a
// deterministic function of (options, seed): running it twice yields
// byte-identical CSV, which the determinism test pins.

#ifndef SRC_FAULT_CAMPAIGN_H_
#define SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/fault/watchdog.h"
#include "src/metrics/table.h"
#include "src/sim/time.h"

namespace newtos {

// One point of the fault space: a class aimed at a server-name substring
// (empty target = the wire / everything, per class semantics).
struct CampaignFault {
  FaultClass cls = FaultClass::kChanDrop;
  std::string target;
};

// The default sweep: every fault class, aimed at representative stages.
std::vector<CampaignFault> DefaultFaultSpace();

// The per-cell RNG seed: campaign seed mixed with the fault identity and the
// cell's stack frequency. Shared with the scripted-scenario runner so a
// single-fault .nsc script reproduces its campaign cell bit for bit.
uint64_t CampaignCellSeed(uint64_t seed, const CampaignFault& fault, FreqKhz freq);

struct CampaignOptions {
  uint64_t seed = 1;
  std::vector<FreqKhz> stack_freqs{3'600'000 * kKhz, 1'200'000 * kKhz};
  FreqKhz app_freq = 3'600'000 * kKhz;

  SimTime warmup = 30 * kMillisecond;
  SimTime run_for = 250 * kMillisecond;      // measured window after warmup
  SimTime inject_at = 60 * kMillisecond;     // server-fault trigger, into the window
  SimTime recovery_bound = 100 * kMillisecond;

  double chan_fault_prob = 0.01;   // per-message trial for channel faults
  double wire_flip_prob = 0.0005;  // per-frame trial for wire bit flips
  SimTime chan_delay = 200 * kMicrosecond;
  Cycles livelock_slice = 200'000;

  uint64_t burst_bytes = 256 * 1024;
  WatchdogServer::Params watchdog;

  // The fault space to sweep; empty selects DefaultFaultSpace().
  std::vector<CampaignFault> faults;
};

// The resilience-matrix formatting, shared by CampaignRunner::ToTable() and
// the scripted-scenario campaign mode: identical cells must render identical
// bytes for the scripts-vs-oracle CSV gate to mean anything.
struct CampaignCell;
Table CampaignTable(const std::vector<CampaignCell>& cells);

struct CampaignCell {
  FaultClass cls = FaultClass::kChanDrop;
  std::string target;
  FreqKhz stack_freq = 0;

  uint64_t injected = 0;       // discrete injections (triggers + trials hit)
  bool detected = false;       // server faults only
  bool recovered = false;
  double detect_ms = -1.0;     // silence begin -> watchdog escalation
  double recover_ms = -1.0;    // escalation -> reboot complete
  uint64_t delivered = 0;      // bytes the peer application accepted
  uint64_t digest = 0;         // stream-integrity running checksum
  bool integrity = false;
  bool progress = false;
  bool pass = false;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(const CampaignOptions& options = {});

  // Runs every (fault, frequency) cell; idempotent (re-running replaces).
  const std::vector<CampaignCell>& Run();

  const std::vector<CampaignCell>& cells() const { return cells_; }
  const CampaignOptions& options() const { return options_; }

  // The resilience matrix as a metrics table (console and CSV).
  Table ToTable() const;
  // CSV encoding of the matrix; byte-identical across same-seed runs.
  std::string ToCsv() const;

 private:
  CampaignCell RunCell(const CampaignFault& fault, FreqKhz stack_freq);

  CampaignOptions options_;
  std::vector<CampaignCell> cells_;
};

}  // namespace newtos

#endif  // SRC_FAULT_CAMPAIGN_H_
