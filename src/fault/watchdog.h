// WatchdogServer: heartbeat-based liveness monitoring for stack servers.
//
// The explicit crash path (MicrorebootManager::InjectCrash) models faults the
// resurrection infrastructure *sees* — a dead process. A hung or livelocked
// server produces no such signal: it simply stops answering. The watchdog
// closes that gap the way NewtOS's keepalive did: every heartbeat_interval it
// pushes a kCtlHeartbeat probe into a dedicated "wd" input ring of each
// watched server; the Server base class answers probes at a fixed small cost,
// bypassing the subclass handler, so an answer means "the poll loop is alive"
// regardless of protocol state. When a server stays silent past
// miss_threshold intervals, the watchdog escalates to the
// MicrorebootManager, which kills (if needed) and reboots it.
//
// Detection latency is ~interval * miss_threshold and does not depend on core
// frequency — only the reboot itself runs on the (possibly slow) server core.
// That split is why recovery stays bounded even at the lowest stack
// frequencies the paper sweeps: slowing the stack 3x barely moves time-to-
// detect, and only stretches the reboot tail.
//
// The watchdog is itself a Server pinned to a core (StackConfig::
// watchdog_core by convention — the app core, since probe traffic is tiny),
// so its probes and ack processing cost cycles like everything else.

#ifndef SRC_FAULT_WATCHDOG_H_
#define SRC_FAULT_WATCHDOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/os/microreboot.h"
#include "src/os/server.h"

namespace newtos {

class WatchdogServer : public Server {
 public:
  struct Params {
    SimTime heartbeat_interval = 1 * kMillisecond;
    // Silence longer than interval * miss_threshold is a detection. Must
    // comfortably exceed the longest legitimate probe->ack round trip
    // (queueing behind a burst + channel visibility latencies).
    int miss_threshold = 3;
    Cycles tick_cost = 300;       // per-tick bookkeeping on the watchdog core
    Cycles probe_cost = 120;      // per-probe emission
    Cycles ack_cost = 100;        // per-ack processing (the CostFor charge)
    size_t chan_capacity = 64;
    ChannelCostModel chan_cost;
  };

  struct Detection {
    std::string server;
    SimTime last_ack = 0;     // the server's last sign of life
    SimTime detected_at = 0;
    size_t incident = 0;      // index into MicrorebootManager::incidents()
  };

  WatchdogServer(Simulation* sim, MicrorebootManager* mgr, const Params& params);

  // Registers `server` for monitoring: creates its "wd" probe ring and wires
  // its heartbeat acks back here. `restart_cycles` is the reboot cost handed
  // to the MicrorebootManager on escalation. Call before Start().
  void Watch(Server* server, Cycles restart_cycles);

  // Begins the probe/scan loop. Requires BindCore() first.
  void Start();

  const Params& params() const { return params_; }
  const std::vector<Detection>& detections() const { return detections_; }
  uint64_t probes_sent() const { return probes_sent_; }
  uint64_t acks_received() const { return acks_received_; }

  // Worst-case detection latency the configuration promises.
  SimTime DetectionDeadline() const {
    return params_.heartbeat_interval * params_.miss_threshold;
  }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  void Tick();
  void EmitProbes();
  // True while a watched server other than `self` placed on `core` is
  // mid-reboot (its restart cycles monopolize the core, starving co-located
  // servers — their silence must not cascade into spurious microreboots).
  bool AnotherServerRebootingOn(const Core* core, const Server* self) const;

  MicrorebootManager* mgr_;
  Params params_;
  Chan* acks_ = nullptr;

  struct Watched {
    Server* server = nullptr;
    Chan* ctl = nullptr;         // the probe ring we push into
    Cycles restart_cycles = 0;
    SimTime last_ack = 0;
    bool recovering = false;     // escalated; cleared by the next ack
  };
  std::vector<Watched> watched_;

  uint64_t seq_ = 0;
  uint64_t probes_sent_ = 0;
  uint64_t acks_received_ = 0;
  bool started_ = false;
  std::vector<Detection> detections_;
};

}  // namespace newtos

#endif  // SRC_FAULT_WATCHDOG_H_
