#include "src/scenario/runner.h"

#include <cassert>
#include <optional>
#include <sstream>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/fabric/incast.h"
#include "src/fault/fault_injector.h"
#include "src/fault/invariants.h"
#include "src/fault/watchdog.h"
#include "src/sim/random.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

namespace newtos::scenario {

namespace {

bool CompareU64(ExpectCheck::Op op, uint64_t got, uint64_t lo, uint64_t hi) {
  switch (op) {
    case ExpectCheck::Op::kEq:
      return got == lo;
    case ExpectCheck::Op::kNe:
      return got != lo;
    case ExpectCheck::Op::kGe:
      return got >= lo;
    case ExpectCheck::Op::kLe:
      return got <= lo;
    case ExpectCheck::Op::kGt:
      return got > lo;
    case ExpectCheck::Op::kLt:
      return got < lo;
    case ExpectCheck::Op::kIn:
      return got >= lo && got <= hi;
  }
  return false;
}

const char* OpName(ExpectCheck::Op op) {
  switch (op) {
    case ExpectCheck::Op::kEq:
      return "==";
    case ExpectCheck::Op::kNe:
      return "!=";
    case ExpectCheck::Op::kGe:
      return ">=";
    case ExpectCheck::Op::kLe:
      return "<=";
    case ExpectCheck::Op::kGt:
      return ">";
    case ExpectCheck::Op::kLt:
      return "<";
    case ExpectCheck::Op::kIn:
      return "in";
  }
  return "?";
}

// Fault-plan seed for a script run. A script with at least one inject seeds
// exactly like the campaign cell for its first fault, which is what makes a
// tab7 script's RNG streams identical to the hand-coded campaign's; a
// fault-free script just folds the frequency into its own seed.
uint64_t ScriptPlanSeed(const Script& script, FreqKhz freq) {
  if (script.injects.empty()) {
    return script.seed ^ static_cast<uint64_t>(freq);
  }
  CampaignFault first;
  first.cls = script.injects.front().cls;
  first.target = script.injects.front().target;
  return CampaignCellSeed(script.seed, first, freq);
}

Cycles RestartCyclesFor(const StackConfig& config, const std::string& server_name) {
  if (server_name.find("driver") != std::string::npos) {
    return config.driver.restart_cycles;
  }
  if (server_name.find("tcp") != std::string::npos) {
    return config.tcp.restart_cycles;
  }
  if (server_name.find("udp") != std::string::npos) {
    return config.udp.restart_cycles;
  }
  if (server_name.find("pf") != std::string::npos) {
    return config.pf.restart_cycles;
  }
  if (server_name.find("syscall") != std::string::npos) {
    return config.syscall.restart_cycles;
  }
  return config.ip.restart_cycles;
}

struct TcpAggregate {
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t fast_retransmits = 0;
  uint64_t sack_retransmits = 0;
  uint64_t tlp_probes = 0;
  uint64_t ooo_segments = 0;
  uint64_t corrupt_accepted = 0;

  void Add(const TcpStats& s) {
    retransmits += s.retransmits;
    timeouts += s.timeouts;
    fast_retransmits += s.fast_retransmits;
    sack_retransmits += s.sack_retransmits;
    tlp_probes += s.tlp_probes;
    ooo_segments += s.ooo_segments;
    corrupt_accepted += s.corrupt_segments_accepted;
  }
};

std::string FormatDur(SimTime t) { return FormatTime(t); }

}  // namespace

uint64_t ScenarioOutcome::Counter(const std::string& counter_name) const {
  for (const auto& [n, v] : counters) {
    if (n == counter_name) {
      return v;
    }
  }
  return 0;
}

ScenarioRunner::ScenarioRunner(RunnerOptions options) : options_(std::move(options)) {}

ScenarioOutcome ScenarioRunner::RunOne(const Script& script, FreqKhz freq) {
  return script.topology == Topology::kIncast ? RunIncast(script, freq) : RunP2p(script, freq);
}

std::vector<ScenarioOutcome> ScenarioRunner::RunScript(const Script& script) {
  std::vector<ScenarioOutcome> out;
  for (FreqKhz f : script.freqs) {
    out.push_back(RunOne(script, f));
  }
  return out;
}

std::vector<ScenarioOutcome> ScenarioRunner::RunAll(const std::vector<Script>& scripts) {
  std::vector<ScenarioOutcome> out;
  for (const Script& s : scripts) {
    for (FreqKhz f : s.freqs) {
      out.push_back(RunOne(s, f));
    }
  }
  return out;
}

std::vector<CampaignCell> ScenarioRunner::RunCampaignOrder(const std::vector<Script>& scripts) {
  std::vector<CampaignCell> cells;
  if (scripts.empty()) {
    return cells;
  }
  for (FreqKhz freq : scripts.front().freqs) {
    for (const Script& s : scripts) {
      cells.push_back(RunOne(s, freq).cell);
    }
  }
  return cells;
}

ScenarioOutcome ScenarioRunner::RunP2p(const Script& script, FreqKhz freq) {
  ScenarioOutcome out;
  out.name = script.name;
  out.freq = freq;
  CampaignCell& cell = out.cell;
  if (!script.injects.empty()) {
    cell.cls = script.injects.front().cls;
    cell.target = script.injects.front().target;
  }
  cell.stack_freq = freq;

  // --- Rig construction, in CampaignRunner::RunCell's exact order ---------

  TestbedOptions opts;
  if (script.link.rtt >= 0) {
    opts.link_propagation = script.link.rtt / 2;
  }
  opts.link_loss = script.link.loss;
  opts.link_loss_seed = script.link.loss_seed;
  if (script.link.rate_gbps > 0.0) {
    opts.machine.nic.line_rate_gbps = script.link.rate_gbps;
  }
  if (script.link.queue_slots > 0) {
    opts.machine.nic.tx_ring_slots = script.link.queue_slots;
    opts.machine.nic.rx_ring_slots = script.link.queue_slots;
  }
  if (script.tcp_sack.has_value()) {
    opts.stack.tcp_params.sack = *script.tcp_sack;
  }
  if (script.tcp_tlp.has_value()) {
    opts.stack.tcp_params.tail_loss_probe = *script.tcp_tlp;
  }
  if (script.tcp_rto_min.has_value()) {
    opts.stack.tcp_params.rto_min = *script.tcp_rto_min;
  }

  Testbed tb(opts);
  Simulation& sim = tb.sim();
  MultiserverStack* stack = tb.stack();
  DedicatedSlowPlan(*stack, freq, script.app_freq).Apply(tb.machine());

  if (script.checkpoint) {
    for (int i = 0; i < stack->tcp_shard_count(); ++i) {
      stack->tcp_shard(i)->set_checkpointing(true);
    }
  }

  std::optional<MicrorebootManager> mgr;
  std::optional<WatchdogServer> watchdog;
  if (script.watchdog) {
    mgr.emplace(&sim);
    watchdog.emplace(&sim, &*mgr, script.watchdog_params);
    watchdog->BindCore(tb.machine().core(stack->config().watchdog_core));
    for (Server* s : stack->SystemServers()) {
      watchdog->Watch(s, RestartCyclesFor(stack->config(), s->name()));
    }
  }

  StreamIntegrityChecker integrity;
  TcpHost::AppHooks sink_hooks;
  sink_hooks.on_data = [&integrity](TcpConnection*, uint32_t bytes) {
    integrity.OnChunk(bytes);
  };
  tb.peer().tcp().Listen(kIperfPort, sink_hooks, tb.peer().tcp_params());

  SocketApi* api = stack->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.burst_bytes = script.burst_bytes;
  sp.connections = script.connections;
  IperfSender sender(api, sp);

  FaultPlan plan;
  plan.seed = ScriptPlanSeed(script, freq);
  plan.faults = script.injects;
  bool any_wire = false;
  for (const FaultSpec& f : plan.faults) {
    any_wire = any_wire || IsWireFault(f.cls);
  }
  FaultInjector injector(&sim, std::move(plan));
  injector.Arm(stack);
  if (any_wire) {
    injector.ArmWire(tb.machine().nic());
    injector.ArmWire(tb.peer().nic());
  }

  // Reorder window: a Bernoulli coin per frame adds a fixed extra wire delay,
  // letting later frames overtake — armed only when the script asks, so
  // unshaped runs schedule identically to a shaper-free rig.
  Rng reorder_fwd(script.seed ^ 0x72656f7264657246ULL);
  Rng reorder_rev(script.seed ^ 0x72656f7264657252ULL);
  if (script.link.reorder_prob > 0.0) {
    const double p = script.link.reorder_prob;
    const SimTime d = script.link.reorder_delay;
    tb.machine().nic()->SetLinkShaper(
        [&reorder_fwd, p, d](const Packet&) { return reorder_fwd.Bernoulli(p) ? d : 0; });
    tb.peer().nic()->SetLinkShaper(
        [&reorder_rev, p, d](const Packet&) { return reorder_rev.Bernoulli(p) ? d : 0; });
  }

  std::optional<StackTracer> tracer;
  if (script.trace || options_.force_trace) {
    StackTracer::Options topt;
    topt.ring_capacity = scenario_defaults::kTraceRingCapacity;
    topt.samplers = false;  // samplers add sim events; tracing must not
    tracer.emplace(&sim, stack, topt);
    if (watchdog.has_value()) {
      tracer->AddServer(&*watchdog);
    }
    tracer->AddNic(tb.machine().nic());
    tracer->AddNic(tb.peer().nic());
    if (mgr.has_value()) {
      tracer->AddMicroreboot(&*mgr);
    }
    tracer->Enable();
  }

  const SimTime detection = watchdog.has_value() ? watchdog->DetectionDeadline() : 0;
  ProgressMonitor progress(
      &sim, [&integrity] { return integrity.delivered(); }, scenario_defaults::kProgressInterval,
      script.recovery_bound + detection + scenario_defaults::kStallMargin);

  for (const FreqStep& step : script.freq_steps) {
    sim.ScheduleAt(step.at, [&tb, stack, step, app = script.app_freq] {
      DedicatedSlowPlan(*stack, step.freq, app).Apply(tb.machine());
    });
  }

  if (watchdog.has_value()) {
    watchdog->Start();
  }
  sender.Start();

  uint64_t delivered_at_mark = 0;
  if (script.measure_at > 0) {
    sim.ScheduleAt(script.measure_at, [&delivered_at_mark, &integrity] {
      delivered_at_mark = integrity.delivered();
    });
  }
  std::vector<uint64_t> deadline_delivered(script.expects.size(), 0);
  for (size_t i = 0; i < script.expects.size(); ++i) {
    const ExpectCheck& e = script.expects[i];
    if (e.kind == ExpectCheck::Kind::kDelivered && e.deadline > 0) {
      sim.ScheduleAt(e.deadline, [&deadline_delivered, &integrity, i] {
        deadline_delivered[i] = integrity.delivered();
      });
    }
  }

  tb.WarmUp(script.warmup);
  const uint64_t events_begin = sim.events_processed();
  if (options_.on_window_begin) {
    options_.on_window_begin();
  }
  progress.Start();
  sim.RunFor(script.run_for);
  out.window_events = sim.events_processed() - events_begin;
  if (options_.on_window_end) {
    options_.on_window_end();
  }

  // --- Judge, exactly as the campaign judges a cell -----------------------

  cell.injected = injector.counters().Total();
  cell.delivered = integrity.delivered();
  cell.digest = integrity.digest();

  TcpAggregate tcp;
  for (int i = 0; i < stack->tcp_shard_count(); ++i) {
    for (TcpConnection* c : stack->tcp_shard(i)->host().Connections()) {
      tcp.Add(c->stats());
    }
  }
  for (TcpConnection* c : tb.peer().tcp().Connections()) {
    tcp.Add(c->stats());
  }
  cell.integrity = tcp.corrupt_accepted == 0 && cell.delivered > 0;
  cell.progress = !progress.stalled() && cell.delivered > delivered_at_mark;

  static const std::vector<MicrorebootManager::Incident> kNoIncidents;
  const std::vector<MicrorebootManager::Incident>& incidents =
      mgr.has_value() ? mgr->incidents() : kNoIncidents;
  const bool injected_ok = script.injects.empty() || cell.injected > 0;
  bool server_fault = false;
  for (const FaultSpec& f : script.injects) {
    server_fault = server_fault || IsServerFault(f.cls);
  }
  RecoveryCheck rc;
  if (server_fault) {
    cell.detected = watchdog.has_value() && !watchdog->detections().empty();
    rc = CheckBoundedRecovery(incidents, script.recovery_bound);
    cell.recovered = !incidents.empty() && rc.all_recovered;
    if (cell.detected) {
      cell.detect_ms = static_cast<double>(rc.worst_detect) / kMillisecond;
    }
    if (cell.recovered) {
      cell.recover_ms = static_cast<double>(rc.worst_recover) / kMillisecond;
    }
    cell.pass = injected_ok && cell.detected && cell.recovered && rc.all_within_bound &&
                cell.integrity && cell.progress;
  } else {
    cell.pass = injected_ok && cell.integrity && cell.progress;
  }

  // --- Counters, in kCounterNames order ------------------------------------

  const FaultInjector::Counters& fc = injector.counters();
  const Nic::Stats& sut_nic = tb.machine().nic()->stats();
  const Nic::Stats& peer_nic = tb.peer().nic()->stats();
  out.counters = {
      {"injected", cell.injected},
      {"delivered", cell.delivered},
      {"chunks", integrity.chunks()},
      {"retransmits", tcp.retransmits},
      {"timeouts", tcp.timeouts},
      {"fast_retransmits", tcp.fast_retransmits},
      {"sack_retransmits", tcp.sack_retransmits},
      {"tlp_probes", tcp.tlp_probes},
      {"ooo_segments", tcp.ooo_segments},
      {"corrupt_accepted", tcp.corrupt_accepted},
      {"rx_checksum_drops", tb.peer().rx_checksum_drops()},
      {"link_loss_drops", sut_nic.link_loss_drops + peer_nic.link_loss_drops},
      {"rx_ring_drops", sut_nic.rx_ring_drops + peer_nic.rx_ring_drops},
      {"tx_ring_rejects", sut_nic.tx_ring_rejects + peer_nic.tx_ring_rejects},
      {"wire_flips", fc.wire_flips},
      {"chan_drops", fc.chan_drops},
      {"chan_dups", fc.chan_dups},
      {"chan_delays", fc.chan_delays},
      {"chan_corrupts", fc.chan_corrupts},
      {"crashes", fc.crashes},
      {"hangs", fc.hangs},
      {"livelocks", fc.livelocks},
      {"detections", watchdog.has_value() ? watchdog->detections().size() : 0},
      {"incidents", incidents.size()},
      {"established", tb.peer().tcp().Connections().size()},
  };
  assert(out.counters.size() == kNumCounters);

  // --- Expects -------------------------------------------------------------

  for (size_t i = 0; i < script.expects.size(); ++i) {
    const ExpectCheck& e = script.expects[i];
    ExpectResult r;
    r.line = e.line;
    std::ostringstream what;
    switch (e.kind) {
      case ExpectCheck::Kind::kInjected:
        r.pass = cell.injected > 0;
        what << "injected (count " << cell.injected << ")";
        break;
      case ExpectCheck::Kind::kDetected:
        r.pass = cell.detected;
        what << "detected (detections "
             << (watchdog.has_value() ? watchdog->detections().size() : 0) << ")";
        break;
      case ExpectCheck::Kind::kRecoveredWithin: {
        const RecoveryCheck bounded = CheckBoundedRecovery(incidents, e.bound);
        r.pass = !incidents.empty() && bounded.all_recovered && bounded.all_within_bound;
        what << "recovered within " << FormatDur(e.bound) << " (incidents " << incidents.size()
             << ", worst " << FormatDur(bounded.worst_recover) << ")";
        break;
      }
      case ExpectCheck::Kind::kIntegrity:
        r.pass = cell.integrity;
        what << "integrity (corrupt_accepted " << tcp.corrupt_accepted << ", delivered "
             << cell.delivered << ")";
        break;
      case ExpectCheck::Kind::kProgress:
        r.pass = cell.progress;
        what << "progress (delivered " << cell.delivered << " vs mark " << delivered_at_mark
             << (progress.stalled() ? ", STALLED" : "") << ")";
        break;
      case ExpectCheck::Kind::kDelivered: {
        const uint64_t got = e.deadline > 0 ? deadline_delivered[i] : cell.delivered;
        r.pass = got >= e.value;
        what << "delivered >= " << e.value;
        if (e.deadline > 0) {
          what << " by " << FormatDur(e.deadline);
        }
        what << " (got " << got << ")";
        break;
      }
      case ExpectCheck::Kind::kDigest: {
        r.pass = cell.digest == e.value;
        what << "digest 0x" << std::hex << e.value << " (got 0x" << cell.digest << ")";
        break;
      }
      case ExpectCheck::Kind::kCounter: {
        const uint64_t got = out.Counter(e.counter);
        r.pass = CompareU64(e.op, got, e.value, e.high);
        what << "counter " << e.counter << " " << OpName(e.op) << " " << e.value;
        if (e.op == ExpectCheck::Op::kIn) {
          what << ".." << e.high;
        }
        what << " (got " << got << ")";
        break;
      }
    }
    r.what = what.str();
    out.expects.push_back(std::move(r));
  }
  out.pass = script.expects.empty() ? cell.pass : true;
  for (const ExpectResult& r : out.expects) {
    out.pass = out.pass && r.pass;
  }

  if (tracer.has_value() && options_.on_trace) {
    tracer->Disable();
    options_.on_trace(tracer->recorder());
  }
  return out;
}

ScenarioOutcome ScenarioRunner::RunIncast(const Script& script, FreqKhz freq) {
  ScenarioOutcome out;
  out.name = script.name;
  out.freq = freq;
  CampaignCell& cell = out.cell;
  cell.stack_freq = freq;

  TcpIncastOptions io;
  io.topo.n_clients = script.incast_clients;
  io.topo.lanes = options_.lanes_override > 0 ? options_.lanes_override : script.lanes;
  io.topo.seed = script.seed;
  io.system_freq = freq;
  io.app_freq = script.app_freq;
  io.burst_bytes = script.burst_bytes;
  if (script.tcp_sack.has_value()) {
    io.stack.tcp_params.sack = *script.tcp_sack;
  }
  if (script.tcp_tlp.has_value()) {
    io.stack.tcp_params.tail_loss_probe = *script.tcp_tlp;
  }
  if (script.tcp_rto_min.has_value()) {
    io.stack.tcp_params.rto_min = *script.tcp_rto_min;
  }

  TcpIncastBed bed(io);
  bed.Start();
  bed.RunFor(script.warmup);
  const uint64_t events_begin = bed.engine().TotalEventsProcessed();
  const uint64_t delivered_at_mark = bed.total_bytes();
  if (options_.on_window_begin) {
    options_.on_window_begin();
  }
  bed.RunFor(script.run_for);
  out.window_events = bed.engine().TotalEventsProcessed() - events_begin;
  if (options_.on_window_end) {
    options_.on_window_end();
  }

  const TcpStats stats = bed.AggregateClientStats();
  cell.delivered = bed.total_bytes();
  cell.digest = bed.Digest();
  cell.integrity = stats.corrupt_segments_accepted == 0 && cell.delivered > 0;
  cell.progress = cell.delivered > delivered_at_mark;
  cell.pass = cell.integrity && cell.progress;

  out.counters = {
      {"injected", 0},
      {"delivered", cell.delivered},
      {"chunks", 0},
      {"retransmits", stats.retransmits},
      {"timeouts", stats.timeouts},
      {"fast_retransmits", stats.fast_retransmits},
      {"sack_retransmits", stats.sack_retransmits},
      {"tlp_probes", stats.tlp_probes},
      {"ooo_segments", stats.ooo_segments},
      {"corrupt_accepted", stats.corrupt_segments_accepted},
      {"rx_checksum_drops", 0},
      {"link_loss_drops", 0},
      {"rx_ring_drops", 0},
      {"tx_ring_rejects", 0},
      {"wire_flips", 0},
      {"chan_drops", 0},
      {"chan_dups", 0},
      {"chan_delays", 0},
      {"chan_corrupts", 0},
      {"crashes", 0},
      {"hangs", 0},
      {"livelocks", 0},
      {"detections", 0},
      {"incidents", 0},
      {"established", static_cast<uint64_t>(bed.established())},
  };
  assert(out.counters.size() == kNumCounters);

  for (const ExpectCheck& e : script.expects) {
    ExpectResult r;
    r.line = e.line;
    std::ostringstream what;
    switch (e.kind) {
      case ExpectCheck::Kind::kIntegrity:
        r.pass = cell.integrity;
        what << "integrity (corrupt_accepted " << stats.corrupt_segments_accepted << ")";
        break;
      case ExpectCheck::Kind::kProgress:
        r.pass = cell.progress;
        what << "progress (delivered " << cell.delivered << ")";
        break;
      case ExpectCheck::Kind::kDelivered:
        r.pass = cell.delivered >= e.value;
        what << "delivered >= " << e.value << " (got " << cell.delivered << ")";
        break;
      case ExpectCheck::Kind::kDigest:
        r.pass = cell.digest == e.value;
        what << "digest 0x" << std::hex << e.value << " (got 0x" << cell.digest << ")";
        break;
      case ExpectCheck::Kind::kCounter: {
        const uint64_t got = out.Counter(e.counter);
        r.pass = CompareU64(e.op, got, e.value, e.high);
        what << "counter " << e.counter << " " << OpName(e.op) << " " << e.value << " (got "
             << got << ")";
        break;
      }
      default:
        // Parser validation keeps fault/watchdog expects out of incast
        // scripts; anything else reaching here is a programming error.
        r.pass = false;
        what << "expectation unsupported for incast topology";
        break;
    }
    r.what = what.str();
    out.expects.push_back(std::move(r));
  }
  out.pass = script.expects.empty() ? cell.pass : true;
  for (const ExpectResult& r : out.expects) {
    out.pass = out.pass && r.pass;
  }
  return out;
}

Table ScenarioMatrix(const std::vector<ScenarioOutcome>& outcomes) {
  Table t({"scenario", "stack_ghz", "delivered_mb", "digest", "window_events", "expects",
           "verdict"});
  for (const ScenarioOutcome& o : outcomes) {
    size_t passed = 0;
    for (const ExpectResult& r : o.expects) {
      passed += r.pass ? 1 : 0;
    }
    std::ostringstream digest;
    digest << std::hex << o.cell.digest;
    std::ostringstream expects;
    expects << passed << "/" << o.expects.size();
    t.AddRow({
        o.name,
        Table::Num(static_cast<double>(o.freq) / 1e6, 1),
        Table::Num(static_cast<double>(o.cell.delivered) / 1e6, 2),
        digest.str(),
        Table::Int(static_cast<int64_t>(o.window_events)),
        expects.str(),
        o.pass ? "PASS" : "FAIL",
    });
  }
  return t;
}

}  // namespace newtos::scenario
