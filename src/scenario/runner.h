// ScenarioRunner: arms a compiled Script against a testbed and judges it.
//
// The p2p path mirrors CampaignRunner::RunCell's construction order exactly —
// same testbed, same steering, same watchdog wiring, same fault-plan seeding
// (CampaignCellSeed over the first inject) — so a script that states only
// what a campaign cell hard-codes reproduces that cell's event schedule bit
// for bit. tests/scenario_campaign_test.cc holds the tab7 scripts to that:
// the script-driven resilience CSV must be byte-identical to the hand-coded
// campaign's. Everything a script can add beyond a campaign cell (link
// shaping, DVFS steps, tracing, extra expects) is armed only when the script
// asks for it, so unused features contribute zero simulation events.
//
// Steady-state allocation: every piece of per-event machinery the runner arms
// (fault taps, the link shaper, integrity/progress hooks, trace recording) is
// allocation-free per event; all script state is resolved before the sim
// starts. tools/scenario's --alloc-gate pins the whole interpreter to
// 0 allocs/event over the measurement window.

#ifndef SRC_SCENARIO_RUNNER_H_
#define SRC_SCENARIO_RUNNER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/campaign.h"
#include "src/metrics/table.h"
#include "src/scenario/script.h"
#include "src/trace/recorder.h"

namespace newtos::scenario {

// One evaluated `expect` line.
struct ExpectResult {
  int line = 0;       // script line of the expect directive
  bool pass = false;
  std::string what;   // human-readable check + observed value
};

// Everything one (script, frequency) run produced.
struct ScenarioOutcome {
  std::string name;
  FreqKhz freq = 0;

  // Judged exactly as a campaign cell (shared verdict/formatting logic).
  CampaignCell cell;

  // (name, value) for every kCounterNames entry, in that order.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<ExpectResult> expects;

  // All expects passed (a script with no expects falls back to the campaign
  // cell verdict).
  bool pass = false;

  // Events processed inside the measurement window (between warmup and end
  // of run) — the denominator for the allocs-per-event gate.
  uint64_t window_events = 0;

  uint64_t Counter(const std::string& counter_name) const;
};

struct RunnerOptions {
  // >0: overrides Script::lanes for incast scenarios (lane-invariance tests).
  int lanes_override = 0;
  // Trace even when the script says `trace off` (latency-decomposition tool).
  bool force_trace = false;
  // Host-side hooks around the measurement window (after WarmUp returns /
  // after RunFor returns). They run while the sim is paused and schedule
  // nothing, so arming them cannot perturb the event schedule.
  std::function<void()> on_window_begin;
  std::function<void()> on_window_end;
  // Called after judging, while the trace recorder is still alive; only
  // fires for traced runs. The recorder's ring holds the run's async hops —
  // feed it to LatencyDecomposer.
  std::function<void(const TraceRecorder&)> on_trace;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {});

  // Runs `script` at one frequency point.
  ScenarioOutcome RunOne(const Script& script, FreqKhz freq);

  // Runs `script` at every frequency in Script::freqs.
  std::vector<ScenarioOutcome> RunScript(const Script& script);

  // Runs every script at each of its frequencies — the pass/fail matrix.
  std::vector<ScenarioOutcome> RunAll(const std::vector<Script>& scripts);

  // Campaign iteration order — frequency OUTER, script INNER, using the
  // FIRST script's frequency list (the tab7 scripts all declare the same
  // sweep) — matching CampaignRunner::Run so CampaignTable(cells) is
  // comparable byte for byte.
  std::vector<CampaignCell> RunCampaignOrder(const std::vector<Script>& scripts);

 private:
  ScenarioOutcome RunP2p(const Script& script, FreqKhz freq);
  ScenarioOutcome RunIncast(const Script& script, FreqKhz freq);

  RunnerOptions options_;
};

// Pass/fail matrix over outcomes: one row per (scenario, frequency) with the
// delivered volume, digest, expect tally and verdict.
Table ScenarioMatrix(const std::vector<ScenarioOutcome>& outcomes);

}  // namespace newtos::scenario

#endif  // SRC_SCENARIO_RUNNER_H_
