// Parser/compiler for .nsc scenario scripts (grammar: src/scenario/script.h,
// rationale: DESIGN.md §11).
//
// Zero dependencies, two passes in one sweep: each line is tokenized, the
// directive is dispatched, and its arguments are resolved to picoseconds /
// kHz / bytes / compiled FaultSpecs on the spot. Parsing either yields a
// fully-resolved Script or stops at the FIRST malformed directive with a
// ParseError carrying file:line:col, the offending token, and a one-line
// hint — never a partial script, never a silent acceptance.

#ifndef SRC_SCENARIO_PARSER_H_
#define SRC_SCENARIO_PARSER_H_

#include <string>
#include <vector>

#include "src/scenario/script.h"

namespace newtos::scenario {

struct ParseError {
  std::string file;     // as given to the parser; "" for in-memory text
  int line = 0;         // 1-based
  int col = 0;          // 1-based column of the offending token
  std::string token;    // the offending token ("" at end of line)
  std::string message;  // what is wrong
  std::string hint;     // one line: what a correct directive looks like

  // "file:line:col: error: <message> near '<token>'\n  hint: <hint>"
  std::string Format() const;
};

// Parses `text` into `*out`. Returns false and fills `*err` on the first
// malformed directive; `*out` is then unspecified. `file` is used only for
// diagnostics and Script::path.
bool ParseScript(const std::string& text, const std::string& file, Script* out, ParseError* err);

// Reads and parses one .nsc file.
bool LoadScript(const std::string& path, Script* out, ParseError* err);

// Loads every *.nsc under `dir` (non-recursive), sorted by filename so a
// numbered directory sweeps in a stable order. Returns false on the first
// unreadable or malformed script.
bool LoadScriptDir(const std::string& dir, std::vector<Script>* out, ParseError* err);

}  // namespace newtos::scenario

#endif  // SRC_SCENARIO_PARSER_H_
