#include "src/scenario/parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace newtos::scenario {

namespace {

struct Token {
  std::string text;
  int col = 0;  // 1-based
};

// One line of the script split into whitespace-separated tokens; everything
// from '#' on is comment.
std::vector<Token> Tokenize(const std::string& line) {
  std::vector<Token> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') {
      break;
    }
    const size_t b = i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])) == 0 &&
           line[i] != '#') {
      ++i;
    }
    toks.push_back({line.substr(b, i - b), static_cast<int>(b) + 1});
  }
  return toks;
}

// Cursor over one line's tokens, accumulating the first error. Every Take*
// helper returns false after a failure, so directive handlers read linearly
// and bail once.
class Line {
 public:
  Line(const std::string& file, int line_no, std::vector<Token> toks, ParseError* err)
      : file_(file), line_no_(line_no), toks_(std::move(toks)), err_(err) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= toks_.size(); }
  const std::string& Peek() const {
    static const std::string kEmpty;
    return AtEnd() ? kEmpty : toks_[pos_].text;
  }

  // Consumes the next token if it equals `word`.
  bool Accept(const std::string& word) {
    if (!ok_ || AtEnd() || toks_[pos_].text != word) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool Take(std::string* out, const std::string& what, const std::string& hint) {
    if (!ok_) {
      return false;
    }
    if (AtEnd()) {
      return Fail("missing " + what, hint);
    }
    *out = toks_[pos_].text;
    ++pos_;
    return true;
  }

  bool Expect(const std::string& word, const std::string& hint) {
    if (!ok_) {
      return false;
    }
    if (AtEnd() || toks_[pos_].text != word) {
      return Fail("expected '" + word + "'", hint);
    }
    ++pos_;
    return true;
  }

  // Fails on trailing tokens — a misspelled option must not parse silently.
  bool Finish(const std::string& hint) {
    if (!ok_) {
      return false;
    }
    if (!AtEnd()) {
      return Fail("unexpected trailing token", hint);
    }
    return true;
  }

  bool Fail(const std::string& message, const std::string& hint) {
    if (!ok_) {
      return false;
    }
    ok_ = false;
    err_->file = file_;
    err_->line = line_no_;
    if (AtEnd()) {
      err_->col = toks_.empty() ? 1 : toks_.back().col + static_cast<int>(toks_.back().text.size());
      err_->token = "";
    } else {
      err_->col = toks_[pos_].col;
      err_->token = toks_[pos_].text;
    }
    err_->message = message;
    err_->hint = hint;
    return false;
  }

  // Like Fail but blames the previously-consumed token (value parse errors).
  bool FailPrev(const std::string& message, const std::string& hint) {
    if (!ok_ || pos_ == 0) {
      return Fail(message, hint);
    }
    --pos_;
    return Fail(message, hint);
  }

  // --- typed argument parsers -------------------------------------------

  bool TakeU64(uint64_t* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (!ParseU64(s, out)) {
      return FailPrev(what + " must be a non-negative integer", hint);
    }
    return true;
  }

  bool TakeInt(int* out, const std::string& what, const std::string& hint) {
    uint64_t v = 0;
    if (!TakeU64(&v, what, hint)) {
      return false;
    }
    if (v > 1'000'000'000ULL) {
      return FailPrev(what + " is implausibly large", hint);
    }
    *out = static_cast<int>(v);
    return true;
  }

  bool TakeDuration(SimTime* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (!ParseDuration(s, out)) {
      return FailPrev(what + " must be a duration like 250ms, 90us or 1s", hint);
    }
    return true;
  }

  bool TakeFreq(FreqKhz* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (!ParseFreq(s, out)) {
      return FailPrev(what + " must be a frequency like 3.6GHz, 900MHz or 1200000kHz", hint);
    }
    return true;
  }

  bool TakeSize(uint64_t* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (!ParseSize(s, out)) {
      return FailPrev(what + " must be a byte size like 256KiB, 1MB or 1460", hint);
    }
    return true;
  }

  bool TakeProb(double* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (!ParseDouble(s, out) || *out < 0.0 || *out > 1.0) {
      return FailPrev(what + " must be a probability in [0, 1]", hint);
    }
    return true;
  }

  bool TakeOnOff(bool* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    if (s == "on") {
      *out = true;
    } else if (s == "off") {
      *out = false;
    } else {
      return FailPrev(what + " must be 'on' or 'off'", hint);
    }
    return true;
  }

  bool TakeHex(uint64_t* out, const std::string& what, const std::string& hint) {
    std::string s;
    if (!Take(&s, what, hint)) {
      return false;
    }
    std::string h = s;
    if (h.size() > 2 && h[0] == '0' && (h[1] == 'x' || h[1] == 'X')) {
      h = h.substr(2);
    }
    if (h.empty() || h.size() > 16) {
      return FailPrev(what + " must be a hex digest like 0x9ae16a3b2f90404f", hint);
    }
    uint64_t v = 0;
    for (char c : h) {
      const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      int d;
      if (lc >= '0' && lc <= '9') {
        d = lc - '0';
      } else if (lc >= 'a' && lc <= 'f') {
        d = lc - 'a' + 10;
      } else {
        return FailPrev(what + " must be a hex digest like 0x9ae16a3b2f90404f", hint);
      }
      v = (v << 4) | static_cast<uint64_t>(d);
    }
    *out = v;
    return true;
  }

  // --- raw value parsers ------------------------------------------------

  static bool ParseU64(std::string s, uint64_t* out) {
    s.erase(std::remove(s.begin(), s.end(), '\''), s.end());
    if (s.empty()) {
      return false;
    }
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') {
        return false;
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = v;
    return true;
  }

  static bool ParseDouble(const std::string& s, double* out) {
    if (s.empty()) {
      return false;
    }
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return false;
    }
    *out = v;
    return true;
  }

  // Number + suffix split: the suffix is the trailing run of letters.
  static bool SplitSuffix(const std::string& s, double* num, std::string* suffix) {
    size_t cut = s.size();
    while (cut > 0 && std::isalpha(static_cast<unsigned char>(s[cut - 1])) != 0) {
      --cut;
    }
    *suffix = s.substr(cut);
    return ParseDouble(s.substr(0, cut), num);
  }

  static bool ParseDuration(const std::string& s, SimTime* out) {
    double num = 0.0;
    std::string suffix;
    if (!SplitSuffix(s, &num, &suffix) || num < 0.0) {
      return false;
    }
    SimTime unit;
    if (suffix == "ps") {
      unit = kPicosecond;
    } else if (suffix == "ns") {
      unit = kNanosecond;
    } else if (suffix == "us") {
      unit = kMicrosecond;
    } else if (suffix == "ms") {
      unit = kMillisecond;
    } else if (suffix == "s") {
      unit = kSecond;
    } else {
      return false;
    }
    *out = static_cast<SimTime>(std::llround(num * static_cast<double>(unit)));
    return true;
  }

  static bool ParseFreq(const std::string& s, FreqKhz* out) {
    double num = 0.0;
    std::string suffix;
    if (!SplitSuffix(s, &num, &suffix) || num <= 0.0) {
      return false;
    }
    FreqKhz unit;
    if (suffix == "GHz" || suffix == "ghz") {
      unit = kGhz;
    } else if (suffix == "MHz" || suffix == "mhz") {
      unit = kMhz;
    } else if (suffix == "kHz" || suffix == "khz") {
      unit = kKhz;
    } else {
      return false;
    }
    *out = static_cast<FreqKhz>(std::llround(num * static_cast<double>(unit)));
    return true;
  }

  static bool ParseSize(const std::string& s, uint64_t* out) {
    double num = 0.0;
    std::string suffix;
    if (!SplitSuffix(s, &num, &suffix) || num < 0.0) {
      return false;
    }
    double unit;
    if (suffix.empty() || suffix == "B") {
      unit = 1.0;
    } else if (suffix == "KB") {
      unit = 1e3;
    } else if (suffix == "KiB") {
      unit = 1024.0;
    } else if (suffix == "MB") {
      unit = 1e6;
    } else if (suffix == "MiB") {
      unit = 1024.0 * 1024.0;
    } else if (suffix == "GB") {
      unit = 1e9;
    } else if (suffix == "GiB") {
      unit = 1024.0 * 1024.0 * 1024.0;
    } else {
      return false;
    }
    *out = static_cast<uint64_t>(std::llround(num * unit));
    return true;
  }

 private:
  const std::string& file_;
  int line_no_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
  bool ok_ = true;
  ParseError* err_;
};

bool FaultClassFromName(const std::string& name, FaultClass* out) {
  for (FaultClass c : {FaultClass::kChanDrop, FaultClass::kChanDuplicate, FaultClass::kChanDelay,
                       FaultClass::kChanCorrupt, FaultClass::kWireBitFlip,
                       FaultClass::kServerCrash, FaultClass::kServerHang,
                       FaultClass::kServerLivelock}) {
    if (name == FaultClassName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool IsKnownCounter(const std::string& name) {
  for (const char* c : kCounterNames) {
    if (name == c) {
      return true;
    }
  }
  return false;
}

std::string KnownCounterList() {
  std::string s;
  for (const char* c : kCounterNames) {
    if (!s.empty()) {
      s += ", ";
    }
    s += c;
  }
  return s;
}

constexpr const char* kInjectHint =
    "inject <chan_drop|chan_dup|chan_delay|chan_corrupt> <target> prob <p> [delay <dur>] | "
    "inject wire_flip prob <p> | at <dur> inject <crash|hang|livelock> <target> [slice <n>]";

bool ParseInject(Line& ln, Script* out, SimTime at, SimTime until) {
  std::string cls_name;
  if (!ln.Take(&cls_name, "fault class", kInjectHint)) {
    return false;
  }
  FaultSpec spec;
  if (!FaultClassFromName(cls_name, &spec.cls)) {
    return ln.FailPrev("unknown fault class '" + cls_name + "'",
                       "fault classes: chan_drop chan_dup chan_delay chan_corrupt wire_flip "
                       "crash hang livelock");
  }
  spec.delay = scenario_defaults::kChanDelay;
  spec.livelock_slice = scenario_defaults::kLivelockSlice;

  // Target: required for channel/server faults, forbidden for the wire.
  if (!IsWireFault(spec.cls)) {
    if (!ln.Take(&spec.target, "target server substring (e.g. ip, tcp, driver)", kInjectHint)) {
      return false;
    }
  }

  bool have_prob = false;
  while (!ln.AtEnd()) {
    if (ln.Accept("prob")) {
      if (!ln.TakeProb(&spec.probability, "prob", kInjectHint)) {
        return false;
      }
      have_prob = true;
    } else if (ln.Accept("delay")) {
      if (!ln.TakeDuration(&spec.delay, "delay", kInjectHint)) {
        return false;
      }
    } else if (ln.Accept("slice")) {
      uint64_t slice = 0;
      if (!ln.TakeU64(&slice, "slice", kInjectHint)) {
        return false;
      }
      spec.livelock_slice = static_cast<Cycles>(slice);
    } else {
      return ln.Fail("unknown inject option '" + ln.Peek() + "'", kInjectHint);
    }
  }

  if (IsServerFault(spec.cls)) {
    if (until != 0) {
      return ln.Fail("server faults are one-shot triggers, not windows",
                     "use `at <dur> inject " + cls_name + " <target>` without `until`");
    }
    if (at == 0) {
      return ln.Fail("server faults need a trigger time",
                     "prefix the directive: `at 90ms inject " + cls_name + " " + spec.target +
                         "`");
    }
    spec.at = at;
  } else {
    if (!have_prob) {
      return ln.Fail("channel/wire faults need a trial probability",
                     "add `prob <p>`, e.g. `inject " + cls_name +
                         (spec.target.empty() ? "" : " " + spec.target) + " prob 0.01`");
    }
    spec.from = at;
    spec.until = until;
  }
  out->injects.push_back(std::move(spec));
  return true;
}

constexpr const char* kExpectHint =
    "expect injected|detected|integrity|progress | expect recovered within <dur> | "
    "expect delivered >= <size> [by <dur>] | expect digest <hex> | "
    "expect counter <name> <==|!=|>=|<=|>|<> <n> | expect counter <name> in <lo>..<hi>";

bool ParseExpect(Line& ln, Script* out, int line_no) {
  ExpectCheck e;
  e.line = line_no;
  std::string what;
  if (!ln.Take(&what, "expectation", kExpectHint)) {
    return false;
  }
  if (what == "injected") {
    e.kind = ExpectCheck::Kind::kInjected;
  } else if (what == "detected") {
    e.kind = ExpectCheck::Kind::kDetected;
  } else if (what == "integrity") {
    e.kind = ExpectCheck::Kind::kIntegrity;
  } else if (what == "progress") {
    e.kind = ExpectCheck::Kind::kProgress;
  } else if (what == "recovered") {
    e.kind = ExpectCheck::Kind::kRecoveredWithin;
    if (!ln.Expect("within", kExpectHint) ||
        !ln.TakeDuration(&e.bound, "recovery bound", kExpectHint)) {
      return false;
    }
  } else if (what == "delivered") {
    e.kind = ExpectCheck::Kind::kDelivered;
    if (!ln.Expect(">=", kExpectHint) ||
        !ln.TakeSize(&e.value, "delivered byte floor", kExpectHint)) {
      return false;
    }
    if (ln.Accept("by")) {
      if (!ln.TakeDuration(&e.deadline, "delivery deadline", kExpectHint)) {
        return false;
      }
    }
  } else if (what == "digest") {
    e.kind = ExpectCheck::Kind::kDigest;
    if (!ln.TakeHex(&e.value, "digest", kExpectHint)) {
      return false;
    }
  } else if (what == "counter") {
    e.kind = ExpectCheck::Kind::kCounter;
    if (!ln.Take(&e.counter, "counter name", kExpectHint)) {
      return false;
    }
    if (!IsKnownCounter(e.counter)) {
      return ln.FailPrev("unknown counter '" + e.counter + "'",
                         "counters: " + KnownCounterList());
    }
    std::string op;
    if (!ln.Take(&op, "comparison operator", kExpectHint)) {
      return false;
    }
    if (op == "in") {
      e.op = ExpectCheck::Op::kIn;
      std::string range;
      if (!ln.Take(&range, "range", kExpectHint)) {
        return false;
      }
      const size_t dots = range.find("..");
      uint64_t lo = 0;
      uint64_t hi = 0;
      if (dots == std::string::npos || !Line::ParseU64(range.substr(0, dots), &lo) ||
          !Line::ParseU64(range.substr(dots + 2), &hi) || hi < lo) {
        return ln.FailPrev("range must be <lo>..<hi> with lo <= hi", kExpectHint);
      }
      e.value = lo;
      e.high = hi;
    } else {
      if (op == "==") {
        e.op = ExpectCheck::Op::kEq;
      } else if (op == "!=") {
        e.op = ExpectCheck::Op::kNe;
      } else if (op == ">=") {
        e.op = ExpectCheck::Op::kGe;
      } else if (op == "<=") {
        e.op = ExpectCheck::Op::kLe;
      } else if (op == ">") {
        e.op = ExpectCheck::Op::kGt;
      } else if (op == "<") {
        e.op = ExpectCheck::Op::kLt;
      } else {
        return ln.FailPrev("unknown comparison '" + op + "'", kExpectHint);
      }
      if (!ln.TakeU64(&e.value, "comparison value", kExpectHint)) {
        return false;
      }
    }
  } else {
    return ln.FailPrev("unknown expectation '" + what + "'", kExpectHint);
  }
  if (!ln.Finish(kExpectHint)) {
    return false;
  }
  out->expects.push_back(std::move(e));
  return true;
}

bool ParseLine(Line& ln, Script* out, int line_no, bool* saw_scenario) {
  std::string head;
  if (ln.AtEnd()) {
    return true;
  }
  if (!ln.Take(&head, "directive", "every line is `<directive> <args...>`")) {
    return false;
  }

  if (head == "scenario") {
    if (*saw_scenario) {
      return ln.Fail("duplicate `scenario` directive", "one scenario per .nsc file");
    }
    *saw_scenario = true;
    return ln.Take(&out->name, "scenario name", "scenario <name>") &&
           ln.Finish("scenario <name>");
  }
  if (!*saw_scenario) {
    return ln.FailPrev("the first directive must be `scenario <name>`",
                       "start the file with `scenario <name>`");
  }

  if (head == "seed") {
    return ln.TakeU64(&out->seed, "seed", "seed <n>") && ln.Finish("seed <n>");
  }
  if (head == "freq") {
    out->freqs.clear();
    FreqKhz f = 0;
    if (!ln.TakeFreq(&f, "frequency", "freq <f> [<f> ...], e.g. freq 3.6GHz 1.2GHz")) {
      return false;
    }
    out->freqs.push_back(f);
    while (!ln.AtEnd()) {
      if (!ln.TakeFreq(&f, "frequency", "freq <f> [<f> ...], e.g. freq 3.6GHz 1.2GHz")) {
        return false;
      }
      out->freqs.push_back(f);
    }
    return true;
  }
  if (head == "app_freq") {
    return ln.TakeFreq(&out->app_freq, "app frequency", "app_freq <f>") &&
           ln.Finish("app_freq <f>");
  }
  if (head == "warmup") {
    return ln.TakeDuration(&out->warmup, "warmup", "warmup <dur>") && ln.Finish("warmup <dur>");
  }
  if (head == "run_for") {
    return ln.TakeDuration(&out->run_for, "run window", "run_for <dur>") &&
           ln.Finish("run_for <dur>");
  }
  if (head == "measure_at") {
    return ln.TakeDuration(&out->measure_at, "measurement mark", "measure_at <dur>") &&
           ln.Finish("measure_at <dur>");
  }
  if (head == "recovery_bound") {
    return ln.TakeDuration(&out->recovery_bound, "recovery bound", "recovery_bound <dur>") &&
           ln.Finish("recovery_bound <dur>");
  }
  if (head == "burst") {
    return ln.TakeSize(&out->burst_bytes, "burst size", "burst <size>, e.g. burst 256KiB") &&
           ln.Finish("burst <size>");
  }
  if (head == "connections") {
    return ln.TakeInt(&out->connections, "connection count", "connections <n>") &&
           ln.Finish("connections <n>");
  }
  if (head == "topology") {
    std::string kind;
    if (!ln.Take(&kind, "topology kind", "topology p2p | topology incast clients <n> [lanes <n>]")) {
      return false;
    }
    if (kind == "p2p") {
      out->topology = Topology::kP2p;
      return ln.Finish("topology p2p");
    }
    if (kind == "incast") {
      out->topology = Topology::kIncast;
      const char* hint = "topology incast clients <n> [lanes <n>]";
      if (!ln.Expect("clients", hint) || !ln.TakeInt(&out->incast_clients, "client count", hint)) {
        return false;
      }
      if (ln.Accept("lanes")) {
        if (!ln.TakeInt(&out->lanes, "lane count", hint)) {
          return false;
        }
      }
      return ln.Finish(hint);
    }
    return ln.FailPrev("unknown topology '" + kind + "'",
                       "topology p2p | topology incast clients <n> [lanes <n>]");
  }
  if (head == "tcp") {
    std::string knob;
    const char* hint = "tcp sack on|off | tcp tlp on|off | tcp rto_min <dur>";
    if (!ln.Take(&knob, "tcp knob", hint)) {
      return false;
    }
    if (knob == "sack") {
      bool v = false;
      if (!ln.TakeOnOff(&v, "sack", hint)) {
        return false;
      }
      out->tcp_sack = v;
      return ln.Finish(hint);
    }
    if (knob == "tlp") {
      bool v = false;
      if (!ln.TakeOnOff(&v, "tlp", hint)) {
        return false;
      }
      out->tcp_tlp = v;
      return ln.Finish(hint);
    }
    if (knob == "rto_min") {
      SimTime v = 0;
      if (!ln.TakeDuration(&v, "rto_min", hint)) {
        return false;
      }
      out->tcp_rto_min = v;
      return ln.Finish(hint);
    }
    return ln.FailPrev("unknown tcp knob '" + knob + "'", hint);
  }
  if (head == "link") {
    std::string knob;
    const char* hint =
        "link rtt <dur> | link loss <p> [seed <n>] | link rate <r>Gbps | link queue <slots> | "
        "link reorder <p> <dur>";
    if (!ln.Take(&knob, "link knob", hint)) {
      return false;
    }
    if (knob == "rtt") {
      return ln.TakeDuration(&out->link.rtt, "rtt", hint) && ln.Finish(hint);
    }
    if (knob == "loss") {
      if (!ln.TakeProb(&out->link.loss, "loss probability", hint)) {
        return false;
      }
      if (ln.Accept("seed")) {
        if (!ln.TakeU64(&out->link.loss_seed, "loss seed", hint)) {
          return false;
        }
      }
      return ln.Finish(hint);
    }
    if (knob == "rate") {
      std::string s;
      if (!ln.Take(&s, "line rate", hint)) {
        return false;
      }
      double num = 0.0;
      std::string suffix;
      if (!Line::SplitSuffix(s, &num, &suffix) || suffix != "Gbps" || num <= 0.0) {
        return ln.FailPrev("line rate must look like 10Gbps or 0.1Gbps", hint);
      }
      out->link.rate_gbps = num;
      return ln.Finish(hint);
    }
    if (knob == "queue") {
      int slots = 0;
      if (!ln.TakeInt(&slots, "queue slots", hint)) {
        return false;
      }
      out->link.queue_slots = static_cast<uint32_t>(slots);
      return ln.Finish(hint);
    }
    if (knob == "reorder") {
      return ln.TakeProb(&out->link.reorder_prob, "reorder probability", hint) &&
             ln.TakeDuration(&out->link.reorder_delay, "reorder extra delay", hint) &&
             ln.Finish(hint);
    }
    return ln.FailPrev("unknown link knob '" + knob + "'", hint);
  }
  if (head == "watchdog") {
    const char* hint = "watchdog on|off [interval <dur>] [misses <n>]";
    if (!ln.TakeOnOff(&out->watchdog, "watchdog", hint)) {
      return false;
    }
    while (!ln.AtEnd()) {
      if (ln.Accept("interval")) {
        if (!ln.TakeDuration(&out->watchdog_params.heartbeat_interval, "interval", hint)) {
          return false;
        }
      } else if (ln.Accept("misses")) {
        if (!ln.TakeInt(&out->watchdog_params.miss_threshold, "misses", hint)) {
          return false;
        }
      } else {
        return ln.Fail("unknown watchdog option '" + ln.Peek() + "'", hint);
      }
    }
    return true;
  }
  if (head == "checkpoint") {
    return ln.TakeOnOff(&out->checkpoint, "checkpoint", "checkpoint on|off") &&
           ln.Finish("checkpoint on|off");
  }
  if (head == "trace") {
    return ln.TakeOnOff(&out->trace, "trace", "trace on|off") && ln.Finish("trace on|off");
  }
  if (head == "inject") {
    return ParseInject(ln, out, 0, 0) && ln.Finish(kInjectHint);
  }
  if (head == "at") {
    SimTime at = 0;
    const char* hint = "at <dur> [until <dur>] inject <fault> ... | at <dur> set freq <f>";
    if (!ln.TakeDuration(&at, "time", hint)) {
      return false;
    }
    if (at <= 0) {
      return ln.FailPrev("`at` time must be positive", hint);
    }
    SimTime until = 0;
    if (ln.Accept("until")) {
      if (!ln.TakeDuration(&until, "window end", hint)) {
        return false;
      }
      if (until <= at) {
        return ln.FailPrev("`until` must come after `at`", hint);
      }
    }
    if (ln.Accept("inject")) {
      return ParseInject(ln, out, at, until) && ln.Finish(kInjectHint);
    }
    if (ln.Accept("set")) {
      if (until != 0) {
        return ln.Fail("`set freq` is a point action, not a window", "at <dur> set freq <f>");
      }
      FreqStep step;
      step.at = at;
      if (!ln.Expect("freq", "at <dur> set freq <f>") ||
          !ln.TakeFreq(&step.freq, "frequency", "at <dur> set freq <f>") ||
          !ln.Finish("at <dur> set freq <f>")) {
        return false;
      }
      out->freq_steps.push_back(step);
      return true;
    }
    return ln.Fail("expected `inject` or `set` after the time", hint);
  }
  if (head == "expect") {
    return ParseExpect(ln, out, line_no);
  }
  return ln.FailPrev("unknown directive '" + head + "'",
                     "directives: scenario seed freq app_freq warmup run_for measure_at "
                     "recovery_bound burst connections topology tcp link watchdog checkpoint "
                     "trace inject at expect");
}

// Cross-directive validation after the whole file parsed.
bool Validate(const Script& s, const std::string& file, ParseError* err) {
  auto fail = [&](const std::string& message, const std::string& hint) {
    err->file = file;
    err->line = 0;
    err->col = 0;
    err->token = "";
    err->message = message;
    err->hint = hint;
    return false;
  };
  if (s.topology == Topology::kIncast) {
    if (!s.injects.empty() || s.watchdog || !s.freq_steps.empty()) {
      return fail("fault injection, watchdog and DVFS steps are p2p-only for now",
                  "drop `topology incast` or remove the inject/watchdog/at directives");
    }
    if (s.trace) {
      return fail("tracing is p2p-only for now", "remove `trace on` or use `topology p2p`");
    }
    if (s.incast_clients < 1 || s.lanes < 1) {
      return fail("incast needs at least one client and one lane",
                  "topology incast clients <n> [lanes <n>]");
    }
  }
  for (const ExpectCheck& e : s.expects) {
    if ((e.kind == ExpectCheck::Kind::kDetected ||
         e.kind == ExpectCheck::Kind::kRecoveredWithin) &&
        !s.watchdog) {
      return fail("`expect detected`/`expect recovered` need `watchdog on`",
                  "add `watchdog on` so there is a detector to expect things from");
    }
    if (e.kind == ExpectCheck::Kind::kInjected && s.injects.empty()) {
      return fail("`expect injected` without any `inject` directive",
                  "add an inject directive or drop the expectation");
    }
    if (e.kind == ExpectCheck::Kind::kDelivered && e.deadline != 0 &&
        e.deadline > s.warmup + s.run_for) {
      return fail("delivery deadline is past the end of the run",
                  "`by <dur>` must be <= warmup + run_for");
    }
  }
  for (const FaultSpec& f : s.injects) {
    const SimTime end = s.warmup + s.run_for;
    if (f.at > end || f.from > end) {
      return fail("a fault is scheduled past the end of the run",
                  "`at <dur>` must be <= warmup + run_for");
    }
  }
  return true;
}

}  // namespace

std::string ParseError::Format() const {
  std::ostringstream oss;
  oss << (file.empty() ? "<memory>" : file) << ":" << line << ":" << col << ": error: "
      << message;
  if (!token.empty()) {
    oss << " near '" << token << "'";
  }
  if (!hint.empty()) {
    oss << "\n  hint: " << hint;
  }
  return oss.str();
}

bool ParseScript(const std::string& text, const std::string& file, Script* out,
                 ParseError* err) {
  *out = Script{};
  out->path = file;
  bool saw_scenario = false;
  int line_no = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t nl = text.find('\n', begin);
    const std::string line =
        text.substr(begin, nl == std::string::npos ? std::string::npos : nl - begin);
    ++line_no;
    Line ln(file, line_no, Tokenize(line), err);
    if (!ParseLine(ln, out, line_no, &saw_scenario)) {
      return false;
    }
    if (nl == std::string::npos) {
      break;
    }
    begin = nl + 1;
  }
  if (!saw_scenario) {
    err->file = file;
    err->line = line_no;
    err->col = 1;
    err->token = "";
    err->message = "empty script: no `scenario` directive";
    err->hint = "start the file with `scenario <name>`";
    return false;
  }
  if (out->freqs.empty()) {
    out->freqs.push_back(scenario_defaults::kStackFreq);
  }
  return Validate(*out, file, err);
}

bool LoadScript(const std::string& path, Script* out, ParseError* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err->file = path;
    err->line = 0;
    err->col = 0;
    err->message = "cannot open script file";
    err->hint = "check the path; scripts live under scenarios/";
    return false;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseScript(oss.str(), path, out, err);
}

bool LoadScriptDir(const std::string& dir, std::vector<Script>* out, ParseError* err) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".nsc") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    err->file = dir;
    err->line = 0;
    err->col = 0;
    err->message = "cannot list scenario directory: " + ec.message();
    err->hint = "check the path; scripts live under scenarios/";
    return false;
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) {
    Script s;
    if (!LoadScript(p, &s, err)) {
      return false;
    }
    out->push_back(std::move(s));
  }
  return true;
}

}  // namespace newtos::scenario
