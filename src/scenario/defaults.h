// The single table of fallback values the scenario compiler applies when a
// script omits a directive. Every duration that can influence a run lives
// HERE or in the script — nowhere else in src/scenario. The scenario-literals
// lint rule enforces that: a raw `N * kMillisecond` in the parser or runner
// is a buried magic timing an .nsc author can neither see nor override, so
// the rule bans time-constant arithmetic throughout src/scenario and this
// file carries the one reviewed waiver (tools/lint/lint.toml).
//
// The values deliberately equal CampaignOptions' defaults: a tab7 script that
// states only its fault reproduces the hand-coded campaign cell bit for bit.

#ifndef SRC_SCENARIO_DEFAULTS_H_
#define SRC_SCENARIO_DEFAULTS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace newtos::scenario_defaults {

inline constexpr uint64_t kSeed = 1;

inline constexpr SimTime kWarmup = 30 * kMillisecond;
inline constexpr SimTime kRunFor = 250 * kMillisecond;
inline constexpr SimTime kRecoveryBound = 100 * kMillisecond;

// Channel-delay faults hold a message back this long unless the inject
// directive says otherwise.
inline constexpr SimTime kChanDelay = 200 * kMicrosecond;

// Progress invariant: sampling cadence of the delivery counter, and the
// margin added above recovery_bound (+ watchdog detection deadline when a
// watchdog is armed) before a flat counter counts as a stall.
inline constexpr SimTime kProgressInterval = 5 * kMillisecond;
inline constexpr SimTime kStallMargin = 20 * kMillisecond;

inline constexpr uint64_t kBurstBytes = 256 * 1024;
inline constexpr int kConnections = 1;

inline constexpr FreqKhz kStackFreq = 3'600'000 * kKhz;
inline constexpr FreqKhz kAppFreq = 3'600'000 * kKhz;

inline constexpr uint64_t kLinkLossSeed = 42;
inline constexpr int64_t kLivelockSlice = 200'000;  // Cycles

inline constexpr int kIncastClients = 16;
inline constexpr int kIncastLanes = 1;

// Trace ring for `trace on` runs (samplers stay off: a traced scenario must
// replay digest-identically to an untraced one).
inline constexpr uint64_t kTraceRingCapacity = uint64_t{1} << 20;

}  // namespace newtos::scenario_defaults

#endif  // SRC_SCENARIO_DEFAULTS_H_
