// Compiled scenario model: the in-memory form of one .nsc script.
//
// A Script is fully resolved at parse time — every duration in picoseconds,
// every frequency in kHz, every fault a ready FaultSpec, every expect a
// tagged check — so the runner arms it against a testbed without touching
// the text again and without allocating per event while it runs. The
// structure is deliberately plain data: the parser produces it, the runner
// consumes it, tests construct it directly.
//
// Grammar (line-oriented, '#' comments; DESIGN.md §11 has the full story):
//
//   scenario <name>                      # required, first directive
//   seed <n>
//   freq <f> [<f> ...]                   # sweep points, e.g. `freq 3.6GHz 1.2GHz`
//   app_freq <f>
//   warmup <dur> | run_for <dur> | measure_at <dur> | recovery_bound <dur>
//   burst <size> | connections <n>
//   topology p2p | topology incast clients <n> [lanes <n>]
//   tcp sack on|off | tcp tlp on|off | tcp rto_min <dur>
//   link rtt <dur> | link loss <p> [seed <n>] | link rate <r>Gbps
//   link queue <slots> | link reorder <p> <dur>
//   watchdog on|off [interval <dur>] [misses <n>]
//   checkpoint on|off
//   trace on|off
//   inject <fault> [<target>] [prob <p>] [delay <dur>] [slice <cycles>]
//   at <dur> [until <dur>] inject <fault> [...]
//   at <dur> set freq <f>
//   expect injected | detected | integrity | progress
//   expect recovered within <dur>
//   expect delivered >= <size> [by <dur>]
//   expect digest <hex>
//   expect counter <name> <op> <n> | expect counter <name> in <lo>..<hi>
//
// Times are absolute simulation time from t=0 (warmup included), matching
// the fault injector's FaultSpec::at convention.

#ifndef SRC_SCENARIO_SCRIPT_H_
#define SRC_SCENARIO_SCRIPT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/fault/watchdog.h"
#include "src/scenario/defaults.h"
#include "src/sim/time.h"

namespace newtos::scenario {

enum class Topology : uint8_t {
  kP2p,     // Testbed: SUT machine <-> zero-cost peer over one link
  kIncast,  // TcpIncastBed: N clients through the switch fabric, lane-parallel
};

// A scheduled DVFS step: at `at`, re-steer the stack's system cores to
// `freq` (DedicatedSlowPlan with the script's app frequency).
struct FreqStep {
  SimTime at = 0;
  FreqKhz freq = 0;
};

// Link shaping beyond the testbed defaults. Only fields the script set are
// applied; sentinel values mean "leave the rig's default alone".
struct LinkPlan {
  SimTime rtt = -1;            // two-way; -1 = testbed default propagation
  double loss = 0.0;           // seeded Bernoulli per frame, each direction
  uint64_t loss_seed = scenario_defaults::kLinkLossSeed;
  double rate_gbps = 0.0;      // 0 = NIC default line rate
  uint32_t queue_slots = 0;    // 0 = NIC default tx/rx ring depth
  double reorder_prob = 0.0;   // per-frame chance of +reorder_delay on the wire
  SimTime reorder_delay = 0;
};

// One `expect` line, compiled. `line` points back into the script for
// failure reporting.
struct ExpectCheck {
  enum class Kind : uint8_t {
    kInjected,         // the armed fault actually fired (injected > 0)
    kDetected,         // watchdog escalated at least once
    kRecoveredWithin,  // every incident rebooted, each within `bound`
    kIntegrity,        // no corrupt segment accepted && bytes delivered
    kProgress,         // no stall && delivery grew past the measure_at mark
    kDelivered,        // >= `value` bytes delivered (by `deadline` if set)
    kDigest,           // stream digest == `value` (golden pin)
    kCounter,          // named counter vs `op`/`value`(/`high` for kIn)
  };
  enum class Op : uint8_t { kEq, kNe, kGe, kLe, kGt, kLt, kIn };

  Kind kind = Kind::kIntegrity;
  Op op = Op::kGe;
  std::string counter;   // kCounter: name, e.g. "retransmits"
  uint64_t value = 0;    // bytes / digest / counter bound (low bound for kIn)
  uint64_t high = 0;     // kIn: inclusive upper bound
  SimTime bound = 0;     // kRecoveredWithin: per-incident recovery bound
  SimTime deadline = 0;  // kDelivered: absolute check time; 0 = end of run
  int line = 0;          // 1-based script line of the directive
};

// The counters `expect counter <name> ...` may reference. The parser
// validates names against this list; the runner publishes values for exactly
// this set, in this order (ScenarioRunner asserts the count matches).
inline constexpr const char* kCounterNames[] = {
    "injected",        "delivered",          "chunks",            "retransmits",
    "timeouts",        "fast_retransmits",   "sack_retransmits",  "tlp_probes",
    "ooo_segments",    "corrupt_accepted",   "rx_checksum_drops", "link_loss_drops",
    "rx_ring_drops",   "tx_ring_rejects",    "wire_flips",        "chan_drops",
    "chan_dups",       "chan_delays",        "chan_corrupts",     "crashes",
    "hangs",           "livelocks",          "detections",        "incidents",
    "established",
};
inline constexpr size_t kNumCounters = sizeof(kCounterNames) / sizeof(kCounterNames[0]);

struct Script {
  std::string name;  // from the `scenario` directive
  std::string path;  // source file, "" when parsed from memory

  uint64_t seed = scenario_defaults::kSeed;
  std::vector<FreqKhz> freqs;  // empty -> {scenario_defaults::kStackFreq}
  FreqKhz app_freq = scenario_defaults::kAppFreq;

  SimTime warmup = scenario_defaults::kWarmup;
  SimTime run_for = scenario_defaults::kRunFor;
  // Progress baseline: delivery counter snapshot at this absolute time; 0 =
  // no snapshot (progress then means "delivered anything, never stalled").
  SimTime measure_at = 0;
  SimTime recovery_bound = scenario_defaults::kRecoveryBound;

  uint64_t burst_bytes = scenario_defaults::kBurstBytes;
  int connections = scenario_defaults::kConnections;

  Topology topology = Topology::kP2p;
  int incast_clients = scenario_defaults::kIncastClients;
  int lanes = scenario_defaults::kIncastLanes;

  // TCP knobs; unset = the stack's defaults.
  std::optional<bool> tcp_sack;
  std::optional<bool> tcp_tlp;
  std::optional<SimTime> tcp_rto_min;

  bool watchdog = false;
  WatchdogServer::Params watchdog_params;
  bool checkpoint = false;
  bool trace = false;

  LinkPlan link;

  // Compiled fault directives, in script order. Channel/wire faults carry
  // their active window in FaultSpec::{from,until}; server faults their
  // trigger time in FaultSpec::at.
  std::vector<FaultSpec> injects;
  std::vector<FreqStep> freq_steps;
  std::vector<ExpectCheck> expects;
};

}  // namespace newtos::scenario

#endif  // SRC_SCENARIO_SCRIPT_H_
