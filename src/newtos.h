// Umbrella header: the public API of the NewtOS heterogeneous-multicore
// reproduction. Include this (and link newtos::newtos) to get everything;
// or include the per-module headers for finer-grained dependencies.
//
// Layering (bottom to top):
//   sim      — discrete-event engine (Simulation, EventQueue, Rng)
//   chan     — SpscRing (real lock-free channel), SimChannel, kernel-IPC model
//   net      — packets, codecs, TCP/UDP, packet filter
//   hw       — cores with DVFS, power/energy, NIC, Machine
//   os       — multiserver servers, stack wiring, monolithic baseline,
//              microreboot manager, SocketApi
//   core     — the paper's contribution: steering plans, TurboGovernor,
//              SifGovernor, PollPolicy, the Testbed rig
//   fault    — fault injection (FaultPlan/FaultInjector), heartbeat
//              watchdog, invariant checkers, the resilience campaign
//   workload — iperf / HTTP / UDP-flood load generators
//   metrics  — stats, histograms, table/CSV writers
//   trace    — allocation-free causal tracing (recorder, samplers,
//              Chrome-trace + folded-stack exporters, StackTracer wiring)
//   host     — real-thread affinity pipeline over SpscRing

#ifndef SRC_NEWTOS_H_
#define SRC_NEWTOS_H_

#include "src/chan/kernel_ipc.h"
#include "src/chan/sim_channel.h"
#include "src/chan/spsc_ring.h"
#include "src/core/poll_policy.h"
#include "src/core/sif_governor.h"
#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/core/turbo.h"
#include "src/fault/campaign.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariants.h"
#include "src/fault/watchdog.h"
#include "src/host/affinity.h"
#include "src/host/pipeline.h"
#include "src/hw/cpu.h"
#include "src/hw/machine.h"
#include "src/hw/nic.h"
#include "src/hw/operating_point.h"
#include "src/hw/power.h"
#include "src/metrics/histogram.h"
#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/metrics/timeseries.h"
#include "src/net/checksum.h"
#include "src/net/codec.h"
#include "src/net/filter.h"
#include "src/net/packet.h"
#include "src/net/pcap.h"
#include "src/net/tcp.h"
#include "src/net/tcp_host.h"
#include "src/net/udp.h"
#include "src/os/app_process.h"
#include "src/os/costs.h"
#include "src/os/message.h"
#include "src/os/microreboot.h"
#include "src/os/monolithic_stack.h"
#include "src/os/peer_host.h"
#include "src/os/socket_api.h"
#include "src/os/stack.h"
#include "src/sim/logger.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/folded_stack.h"
#include "src/trace/recorder.h"
#include "src/trace/sampler.h"
#include "src/trace/stack_trace.h"
#include "src/trace/trace_event.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"
#include "src/workload/ping.h"
#include "src/workload/udp_flood.h"

#endif  // SRC_NEWTOS_H_
