// Incast testbeds: N client hosts converging on one system under test
// through the switch fabric, partitioned into parallel simulation lanes.
//
// Two rigs share the topology (clients on ports 1..N, SUT on port 0):
//
//   UdpIncastBed — N UdpPeerFlood generators firing at a zero-cost sink
//     host. The offered load oversubscribes the SUT-facing egress port, so
//     the switch's bounded egress queue tail-drops the excess — the classic
//     incast failure — and the surviving stream is exactly egress line
//     rate. Because drops happen in the fabric, the SUT lane pays nothing
//     for them: event load concentrates on the client lanes, which is what
//     makes the rig scale with lane count (see MaxLaneShare()).
//
//   TcpIncastBed — N real-TCP clients bulk-streaming into a full
//     multiserver-stack SUT (Machine + MultiserverStack + socket app).
//     The egress queue ahead of the SUT port turns synchronized bursts
//     into tail drops, retransmissions and RTT inflation — the
//     throughput/latency knee fig13_incast sweeps against system-core
//     frequency.
//
// Determinism: every observable either lives on one host (client counters,
// RNG streams seeded by Rng::HostSeed) or is derived from fabric delivery,
// whose arbitration is a lane-count-independent total order (switch.h). The
// beds fold per-host stream digests over (arrival time, tag, bytes) and
// reduce all cross-host aggregates in host-id order, so a 1-lane and an
// 8-lane run of the same options produce bit-identical digests, stats and
// CSV rows. lane_test.cc holds the rigs to that.

#ifndef SRC_FABRIC_INCAST_H_
#define SRC_FABRIC_INCAST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/steering.h"
#include "src/fabric/lane.h"
#include "src/fabric/switch.h"
#include "src/hw/machine.h"
#include "src/metrics/histogram.h"
#include "src/metrics/stats.h"
#include "src/net/tcp.h"
#include "src/os/peer_host.h"
#include "src/os/stack.h"
#include "src/workload/iperf.h"
#include "src/workload/udp_flood.h"

namespace newtos {

// FNV-1a accumulator for stream-integrity digests. Folding is ordered, so
// two digests match only if the same values arrived in the same order —
// the property the lane-equivalence tests pin down.
class StreamDigest {
 public:
  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Topology shared by both rigs.
struct IncastOptions {
  int n_clients = 16;
  int lanes = 1;  // 1 = the determinism oracle; >1 = parallel lanes
  uint64_t seed = 42;
  SwitchParams fabric;      // see IncastFabricDefaults()
  Nic::Params client_nic;   // every client's adapter
  size_t event_reserve = 8192;   // per lane
  size_t packet_reserve = 8192;  // per lane
};

// Fabric tuned for the incast rigs: 10G ports, non-blocking backplane, 2us
// switching + 5us cables => 7us of lookahead per window.
SwitchParams IncastFabricDefaults();

Ipv4Addr IncastSutAddr();          // 10.0.0.1
Ipv4Addr IncastClientAddr(int i);  // 10.0.(1 + i/256).(i%256)
int IncastClientIndex(Ipv4Addr a); // inverse of IncastClientAddr

// Lane placement: the SUT always runs in lane 0; client i runs in lane
// 1 + (i % (lanes-1)), or lane 0 when lanes == 1. Keeping the SUT alone in
// lane 0 gives the serial bottleneck its own thread.
int IncastLaneOfClient(int client, int lanes);

// --- UDP incast -----------------------------------------------------------

struct UdpIncastOptions {
  IncastOptions topo;
  uint32_t payload_bytes = 1024;
  double pps_per_client = 150'000.0;  // 16 clients ~= 2x a 10G egress port
  bool poisson = true;
};

class UdpIncastBed {
 public:
  explicit UdpIncastBed(const UdpIncastOptions& options);
  ~UdpIncastBed();

  UdpIncastBed(const UdpIncastBed&) = delete;
  UdpIncastBed& operator=(const UdpIncastBed&) = delete;

  LaneEngine& engine() { return engine_; }
  Switch& fabric() { return fabric_; }
  PeerHost& sut() { return *sut_; }

  void Start();  // arms every client's flood
  void RunFor(SimTime d) { engine_.RunFor(d); }

  // Datagrams the sink actually received / clients offered (host-id order).
  uint64_t delivered() const { return delivered_total_; }
  uint64_t sent() const;
  uint64_t delivered_from(int client) const {
    return delivered_per_client_[static_cast<size_t>(client)];
  }
  RateMeter& window() { return window_; }

  // Stream-integrity digest: per-source fold of (arrival time, app_tag,
  // payload bytes) in delivery order, then reduced over clients in host-id
  // order. Identical for any lane count.
  uint64_t Digest() const;

 private:
  struct Client;

  UdpIncastOptions options_;
  LaneEngine engine_;
  Switch fabric_;
  std::unique_ptr<Nic> sut_nic_;
  std::unique_ptr<PeerHost> sut_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<StreamDigest> digest_per_client_;
  std::vector<uint64_t> delivered_per_client_;
  uint64_t delivered_total_ = 0;
  RateMeter window_;
};

// --- TCP incast -----------------------------------------------------------

struct TcpIncastOptions {
  IncastOptions topo;
  // System-core frequency for the SUT's stack stages (DedicatedSlowPlan);
  // the fig13 sweep compares 3.6 GHz against scaled-down system cores.
  FreqKhz system_freq = 3'600'000 * kKhz;
  FreqKhz app_freq = 3'600'000 * kKhz;
  uint64_t burst_bytes = 256 * 1024;
  // Clients connect at Uniform(0, start_jitter) derived from
  // Rng::HostSeed(seed, host_id): synchronized-but-not-simultaneous, the
  // incast onset pattern.
  SimTime start_jitter = 1 * kMillisecond;
  Machine::Params machine;
  StackConfig stack;
};

class TcpIncastBed {
 public:
  explicit TcpIncastBed(const TcpIncastOptions& options);
  ~TcpIncastBed();

  TcpIncastBed(const TcpIncastBed&) = delete;
  TcpIncastBed& operator=(const TcpIncastBed&) = delete;

  LaneEngine& engine() { return engine_; }
  Switch& fabric() { return fabric_; }
  Machine& machine() { return *machine_; }
  MultiserverStack& stack() { return *stack_; }

  // Arms the SUT listener and schedules every client's jittered connect.
  // Callers should RunFor a few milliseconds before measuring.
  void Start();
  void RunFor(SimTime d) { engine_.RunFor(d); }

  uint64_t total_bytes() const { return total_bytes_; }
  RateMeter& window() { return window_; }
  // Clients whose connection completed the handshake (counted client-side).
  int established() const;

  // Digest over (arrival time, socket handle, bytes) for every data
  // delivery the SUT app saw, in delivery order. Handles are assigned in
  // accept order, which the fabric's total order fixes per options.
  uint64_t Digest() const { return sut_digest_.value(); }

  // Cross-host aggregates, reduced in host-id order regardless of how
  // clients were spread over lanes.
  TcpStats AggregateClientStats() const;
  LatencyHistogram ClientRttHistogram() const;

 private:
  struct Client;

  TcpIncastOptions options_;
  LaneEngine engine_;
  Switch fabric_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<MultiserverStack> stack_;
  SocketApi* api_ = nullptr;
  std::vector<std::unique_ptr<Client>> clients_;
  StreamDigest sut_digest_;
  uint64_t total_bytes_ = 0;
  RateMeter window_;
};

}  // namespace newtos

#endif  // SRC_FABRIC_INCAST_H_
