#include "src/fabric/lane.h"

#include <algorithm>
#include <cassert>

namespace newtos {

LaneEngine::LaneEngine(int lanes) {
  assert(lanes >= 1);
  lanes_.reserve(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    // lint:allow(heap-new): one-time engine construction; Lane's ctor is private
    lanes_.emplace_back(new Lane(i));
    lanes_.back()->sim().set_lane(i);
  }
  if (lanes > 1) {
    // lint:allow(heap-make): one-time engine construction
    barrier_ = std::make_unique<std::barrier<Completion>>(static_cast<std::ptrdiff_t>(lanes),
                                                          Completion{this});
    workers_.reserve(static_cast<size_t>(lanes - 1));
    for (int i = 1; i < lanes; ++i) {
      workers_.emplace_back([this, lane = lanes_[static_cast<size_t>(i)].get()] {
        WorkerMain(lane);
      });
    }
  }
}

LaneEngine::~LaneEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
  // Undelivered cross-lane arrivals (scheduled by the switch into the
  // destination lane's queue) hold packets owned by the *source* lane's
  // pool, so destroying lanes_ one Lane at a time would recycle packets
  // into already-freed pools. Drain every queue while all pools are alive.
  for (auto& lane : lanes_) {
    lane->sim().DiscardPendingEvents();
  }
}

void LaneEngine::SetLookahead(SimTime lookahead) {
  assert(lookahead > 0);
  lookahead_ = lookahead;
}

void LaneEngine::OnBarrier() noexcept {
  // Runs on exactly one (arbitrary) thread while every lane is parked in
  // arrive_and_wait at the same window edge — the only place fabric state
  // and cross-lane scheduling are touched.
  if (flush_) {
    flush_();
  }
  if (window_ >= until_) {
    run_done_ = true;
  } else {
    window_ = std::min(window_ + lookahead_, until_);
  }
}

void LaneEngine::RunWindows(Lane* lane) {
  PacketPool::ScopedUse use(&lane->pool());
  for (;;) {
    lane->sim().RunUntil(window_);
    barrier_->arrive_and_wait();
    if (run_done_) {
      return;
    }
  }
}

void LaneEngine::WorkerMain(Lane* lane) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++parked_;
      parked_cv_.notify_all();
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
    }
    RunWindows(lane);
  }
}

void LaneEngine::RunUntil(SimTime until) {
  assert(lookahead_ > 0 && "SetLookahead before running");
  const SimTime start = Now();
  if (until <= start) {
    return;
  }

  if (lanes_.size() == 1) {
    Lane& lane = *lanes_[0];
    PacketPool::ScopedUse use(&lane.pool());
    SimTime w = start;
    while (w < until) {
      w = std::min(w + lookahead_, until);
      lane.sim().RunUntil(w);
      if (flush_) {
        flush_();
      }
    }
    return;
  }

  {
    // Wait for every worker to be parked in cv_.wait before touching the
    // shared windowing state: a worker leaving the previous run's final
    // barrier may not have re-parked yet, and mutating window_/run_done_
    // under its feet would race with its last reads.
    std::unique_lock<std::mutex> lock(mutex_);
    parked_cv_.wait(lock, [&] { return parked_ == workers_.size(); });
    parked_ = 0;
    window_ = std::min(start + lookahead_, until);
    until_ = until;
    run_done_ = false;
    ++generation_;
  }
  cv_.notify_all();
  // The caller's thread is lane 0's worker; returns once every lane has
  // reached `until` and the final flush ran. Workers re-park on their own.
  RunWindows(lanes_[0].get());
}

uint64_t LaneEngine::TotalEventsProcessed() const {
  uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->sim().events_processed();
  }
  return total;
}

double LaneEngine::MaxLaneShare() const {
  const uint64_t total = TotalEventsProcessed();
  if (total == 0) {
    return 0.0;
  }
  uint64_t max_lane = 0;
  for (const auto& lane : lanes_) {
    max_lane = std::max(max_lane, lane->sim().events_processed());
  }
  return static_cast<double>(max_lane) / static_cast<double>(total);
}

}  // namespace newtos
