// Switch: the multi-host fabric that replaces the point-to-point link.
//
// Dozens of hosts plug their NICs into numbered ports; frames route by
// destination IP. The model is a shared-backplane, output-queued switch:
//
//   NIC serialization + TX DMA        (source host's lane, in the NIC)
//     -> ingress staging              (Ingress(); lock-free, per port)
//     -> shared fabric bandwidth      (one serialization cursor for the
//                                      whole backplane; 0 = non-blocking)
//     -> fixed switching latency
//     -> egress port serialization    (per-port rate + bounded queue;
//                                      overflow = incast's tail drop)
//     -> cable propagation -> RX DMA  (destination host's lane, in the NIC)
//
// Determinism and parallelism come from the same property: the switch never
// runs inside a lane's event loop. Frames entering during a lookahead
// window are staged per ingress port; Flush() — single-threaded, at window
// barriers — merges the per-port FIFOs chronologically, breaking ingress
// ties by rotating round-robin arbitration: a total order that does not
// depend on how hosts are partitioned into lanes. Arrival events
// land in each destination's own simulation at times >= window end, which
// is exactly the conservative-lookahead contract LaneEngine (lane.h) runs
// under. One lane or eight, the computed timeline is identical.
//
// All time-consuming stages are cursor-based (busy-until scalars and a ring
// of queued-completion times per port), so Flush() is allocation-free once
// staging buffers reach their high-water mark.

#ifndef SRC_FABRIC_SWITCH_H_
#define SRC_FABRIC_SWITCH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/nic.h"
#include "src/net/packet.h"
#include "src/sim/ring_deque.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {

struct SwitchParams {
  // Egress serialization rate of every port (the SUT's RX bottleneck under
  // incast). Frames also pay Ethernet preamble/FCS/IFG on the egress wire.
  double port_rate_gbps = 10.0;
  // Shared backplane bandwidth; 0 means non-blocking (no shared cursor).
  double fabric_gbps = 0.0;
  // Fixed ingress->egress pipeline latency. Together with the minimum port
  // propagation this lower-bounds every cross-port delivery, which is what
  // makes conservative lane parallelism possible: Lookahead() below.
  SimTime switching_latency = 1 * kMicrosecond;
  // Cable delay switch<->NIC (per direction); per-port override on Attach.
  SimTime port_propagation = 2 * kMicrosecond;
  // Per-port egress buffer in frames. The classic incast failure mode:
  // N synchronized senders overflow the one port facing the receiver.
  size_t egress_queue_slots = 64;
  uint32_t frame_overhead_bytes = 24;  // preamble(8) + FCS(4) + IFG(12)
};

class Switch {
 public:
  struct PortStats {
    uint64_t in_frames = 0;  // frames this port's NIC handed to the fabric
    uint64_t in_bytes = 0;
    uint64_t out_frames = 0;  // frames delivered out of this port
    uint64_t out_bytes = 0;
    uint64_t egress_drops = 0;  // egress queue full (incast tail drop)
  };

  struct Stats {
    uint64_t routed_frames = 0;
    uint64_t unrouted_drops = 0;  // destination IP bound to no port
  };

  explicit Switch(const SwitchParams& params);
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Plugs `nic` into the next free port and routes `addr` to it. `sim` is
  // the simulation that owns the NIC (its lane); all delivery events for
  // this port are scheduled there. `propagation` < 0 uses the switch-wide
  // default. Returns the port index.
  int AttachNic(Nic* nic, Simulation* sim, Ipv4Addr addr, SimTime propagation = -1);

  // Routes an additional address out of `port` (multi-homed hosts).
  void BindAddress(Ipv4Addr addr, int port);

  // The conservative lookahead LaneEngine may run with: no frame handed to
  // the fabric at time t can become host-visible anywhere before
  // t + Lookahead(). Valid once at least one port is attached.
  SimTime Lookahead() const { return params_.switching_latency + min_propagation_; }

  // Drains every port's ingress staging buffer, arbitrates the backplane
  // chronologically (round-robin across ties) and schedules arrival events
  // in the destination lanes. Must be called single-threaded while every
  // lane is stopped —
  // LaneEngine invokes it at each window barrier. Safe to call when idle.
  void Flush();

  int num_ports() const { return static_cast<int>(ports_.size()); }
  const SwitchParams& params() const { return params_; }
  const Stats& stats() const { return stats_; }
  const PortStats& port_stats(int port) const { return ports_[static_cast<size_t>(port)]->stats; }

  // Time to put one frame of `frame_bytes` on an egress wire at port rate.
  SimTime EgressSerializationTime(uint32_t frame_bytes) const;

 private:
  // A frame staged by the ingress port's lane thread, awaiting Flush().
  // Each port's staging buffer is FIFO in ingress-time order; Flush()
  // merges the FIFOs chronologically with round-robin tie arbitration.
  struct StagedFrame {
    SimTime when = 0;  // fabric-entry time (frame fully off the source NIC)
    PacketPtr packet;
  };

  // NicPort adapter handed to the attached NIC; stable address per port.
  struct PortTap;

  struct Port {
    Nic* nic = nullptr;
    Simulation* sim = nullptr;
    SimTime propagation = 0;
    // Written only by this port's lane thread during a window; drained by
    // Flush() at the barrier. The barrier's synchronization is the fence.
    std::vector<StagedFrame> staged;
    // Completion times of frames occupying the egress queue (see Flush()).
    RingDeque<SimTime> egress_busy;
    SimTime egress_free_at = 0;
    PortStats stats;
    std::unique_ptr<PortTap> tap;
  };

  // A (when, port, index-within-port) reference into a staging buffer;
  // Flush() sorts these instead of min-scanning every port per frame.
  struct MergeRef {
    SimTime when;
    uint32_t port;
    uint32_t idx;
  };

  void Ingress(int port, PacketPtr p, SimTime now);
  void DeliverOne(StagedFrame& f);

  SwitchParams params_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<Ipv4Addr, int> routes_;
  SimTime min_propagation_ = 0;
  SimTime fabric_free_at_ = 0;      // shared-backplane serialization cursor
  size_t rr_next_ = 0;              // rotating tie-arbitration cursor
  std::vector<MergeRef> merge_scratch_;  // Flush() working set, reused
  // One-entry route cache: incast traffic converges on one destination, so
  // this short-circuits the hash lookup on nearly every frame. Invalidated
  // by BindAddress. Flush-side state only -> lane-count invariant.
  Ipv4Addr route_cache_addr_ = 0;
  int route_cache_port_ = -1;
  // One-entry serialization-time cache (bulk flows use one frame size).
  uint32_t ser_cache_bytes_ = 0xffffffff;
  SimTime ser_cache_time_ = 0;
  Stats stats_;
};

}  // namespace newtos

#endif  // SRC_FABRIC_SWITCH_H_
