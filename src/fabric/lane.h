// Simulation lanes: conservative parallel execution of a multi-host testbed.
//
// Hosts in this model interact only through explicit channels — within one
// machine over SimChannel rings, and between machines through the switch
// fabric (switch.h). That makes a *host* the natural unit of parallelism:
// partition hosts into lanes, give each lane its own Simulation (event
// queue + slab pools), its own PacketPool and its own worker thread, and
// the only cross-lane traffic left is frames traversing the switch.
//
// Synchronization is conservative lookahead windowing (classic null-message
// -free barrier synchronization): no frame handed to the fabric at time t
// can become host-visible anywhere before t + L, where L = Lookahead() is
// the switch's minimum port latency. So all lanes may run [W, W+L)
// independently; at the barrier one thread flushes the fabric, which
// schedules every staged frame's arrival at times >= W+L into the
// destination lanes; repeat. Arrival timestamps are computed from ingress
// times alone (never from which window processed them), and fabric
// arbitration is a chronological merge with deterministic round-robin tie
// breaking — so the merged timeline is bit-identical for ANY lane count,
// and the single-lane run is the determinism oracle for the parallel ones.
//
// Threading model: lane 0 is always driven by the caller's thread; lanes
// 1..N-1 get persistent worker threads (created at construction, parked
// between runs). Persistent workers keep thread identity stable across
// RunUntil calls — the SPSC ring's NEWTOS_CHECKERS thread-identity check
// and the ChannelChecker actor scopes stay valid because every object a
// lane owns is only ever touched by that lane's one thread. Each worker
// binds its lane's PacketPool for the duration of a run
// (PacketPool::ScopedUse), so packet recycling never contends across lanes.
//
// With one lane there are no threads and no barriers — just windowed
// RunUntil + Flush on the caller's thread, which is also why --lanes 1
// keeps the engine's single-threaded event rate.

#ifndef SRC_FABRIC_LANE_H_
#define SRC_FABRIC_LANE_H_

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace newtos {

// One lane: a simulation clock/queue plus the slab pools its hosts draw
// from. Everything constructed against lane.sim() belongs to this lane and
// must only be touched by its thread (enforced by construction: build each
// lane's hosts against its sim and never share model objects across lanes).
class Lane {
 public:
  Simulation& sim() { return sim_; }
  const Simulation& sim() const { return sim_; }
  PacketPool& pool() { return pool_; }
  int id() const { return id_; }

 private:
  friend class LaneEngine;
  explicit Lane(int id) : id_(id) {}

  Simulation sim_;
  PacketPool pool_;
  int id_;
};

class LaneEngine {
 public:
  // `lanes` >= 1. Worker threads for lanes 1..N-1 start parked.
  explicit LaneEngine(int lanes);
  ~LaneEngine();

  LaneEngine(const LaneEngine&) = delete;
  LaneEngine& operator=(const LaneEngine&) = delete;

  int lanes() const { return static_cast<int>(lanes_.size()); }
  Lane& lane(int i) { return *lanes_[static_cast<size_t>(i)]; }

  // The window length. Must be <= the fabric's Lookahead(); RunUntil
  // asserts it was set. Typically SetLookahead(switch.Lookahead()).
  void SetLookahead(SimTime lookahead);
  SimTime lookahead() const { return lookahead_; }

  // Runs at every window barrier, single-threaded, with all lanes stopped
  // at the same instant. Typically [&switch]{ switch.Flush(); }.
  void SetBarrierFlush(std::function<void()> flush) { flush_ = std::move(flush); }

  // Advances every lane to exactly `until` in lookahead windows, flushing
  // the fabric at each boundary. The caller's thread drives lane 0. All
  // lane clocks equal `until` on return.
  void RunUntil(SimTime until);
  void RunFor(SimTime d) { RunUntil(Now() + d); }

  // Common clock: all lanes agree between runs.
  SimTime Now() const { return lanes_[0]->sim().Now(); }

  // Total events processed across all lanes.
  uint64_t TotalEventsProcessed() const;
  // Largest single lane's share of TotalEventsProcessed() — the serial
  // fraction that bounds parallel speedup (speedup <= 1/share).
  double MaxLaneShare() const;

 private:
  void WorkerMain(Lane* lane);
  void RunWindows(Lane* lane);
  void OnBarrier() noexcept;  // barrier completion: flush + advance window

  struct Completion {
    LaneEngine* engine;
    void operator()() noexcept { engine->OnBarrier(); }
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
  SimTime lookahead_ = 0;
  std::function<void()> flush_;

  // Windowing state: written only by OnBarrier() (one thread, inside the
  // barrier) and by RunUntil before releasing the workers; read by workers
  // after arrive_and_wait(), which provides the happens-before edge.
  SimTime window_ = 0;
  SimTime until_ = 0;
  bool run_done_ = true;

  // Parked-worker handshake (multi-lane only): RunUntil waits until every
  // worker is back in cv_.wait (parked_ == workers) before mutating the
  // windowing state for the next run, then bumps generation_ to release.
  std::unique_ptr<std::barrier<Completion>> barrier_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable parked_cv_;
  size_t parked_ = 0;
  uint64_t generation_ = 0;  // bumped by RunUntil to release parked workers
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace newtos

#endif  // SRC_FABRIC_LANE_H_
