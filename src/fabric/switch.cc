#include "src/fabric/switch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace newtos {

// Adapter the NIC calls at the adapter edge; routes into the owning switch.
struct Switch::PortTap : NicPort {
  Switch* sw = nullptr;
  int port = 0;

  void FrameFromNic(PacketPtr p, SimTime now) override { sw->Ingress(port, std::move(p), now); }
};

Switch::Switch(const SwitchParams& params) : params_(params) {
  assert(params_.port_rate_gbps > 0.0);
  assert(params_.switching_latency > 0);
}

Switch::~Switch() = default;

int Switch::AttachNic(Nic* nic, Simulation* sim, Ipv4Addr addr, SimTime propagation) {
  const int port = static_cast<int>(ports_.size());
  // lint:allow(heap-make): one-time wiring at testbed construction, not per-frame
  ports_.push_back(std::make_unique<Port>());
  Port& p = *ports_.back();
  p.nic = nic;
  p.sim = sim;
  p.propagation = propagation >= 0 ? propagation : params_.port_propagation;
  p.egress_busy.reserve(params_.egress_queue_slots + 1);
  // One lookahead window of staging at far beyond any port's line rate, so
  // bursty arrivals never regrow the buffer mid-run (allocation-free Flush).
  p.staged.reserve(64);
  // lint:allow(heap-make): one-time wiring at testbed construction, not per-frame
  p.tap = std::make_unique<PortTap>();
  p.tap->sw = this;
  p.tap->port = port;
  nic->AttachPort(p.tap.get());
  merge_scratch_.reserve(ports_.size() * 64);
  min_propagation_ = port == 0 ? p.propagation : std::min(min_propagation_, p.propagation);
  BindAddress(addr, port);
  return port;
}

void Switch::BindAddress(Ipv4Addr addr, int port) {
  assert(port >= 0 && port < num_ports());
  routes_[addr] = port;
  route_cache_port_ = -1;  // a rebind may shadow the cached route
}

SimTime Switch::EgressSerializationTime(uint32_t frame_bytes) const {
  const double bits = static_cast<double>(frame_bytes + params_.frame_overhead_bytes) * 8.0;
  const double seconds = bits / (params_.port_rate_gbps * 1e9);
  return static_cast<SimTime>(std::llround(seconds * static_cast<double>(kSecond)));
}

void Switch::Ingress(int port, PacketPtr p, SimTime now) {
  Port& in = *ports_[static_cast<size_t>(port)];
  in.stats.in_frames++;
  in.stats.in_bytes += p->FrameBytes();
  in.staged.push_back(StagedFrame{now, std::move(p)});
}

void Switch::Flush() {
  // Chronological merge over the per-port staging FIFOs (each is already in
  // ingress-time order). Simultaneous arrivals on different ports are
  // granted in rotating round-robin order starting at rr_next_ — the
  // arbitration real input stages implement, so two synchronized equal
  // senders split a contended egress port evenly instead of phase-locking
  // into port-id priority. The merge consults only ingress timestamps and
  // the rotation cursor (itself a function of the delivery sequence), so
  // the resulting total order is independent of lane count and of the
  // order ports were drained. The determinism hinge.
  //
  // Mechanically: gather (when, port, idx) refs, sort once, then walk tie
  // groups. Poisson-spread traffic has singleton groups almost always, so
  // the hot path is one sort comparison + one DeliverOne per frame instead
  // of a per-frame min-scan over every port (which profiled as the single
  // largest cost in the whole incast run).
  const size_t n_ports = ports_.size();
  merge_scratch_.clear();
  for (size_t pi = 0; pi < n_ports; ++pi) {
    const auto& staged = ports_[pi]->staged;
    for (size_t i = 0; i < staged.size(); ++i) {
      merge_scratch_.push_back(
          MergeRef{staged[i].when, static_cast<uint32_t>(pi), static_cast<uint32_t>(i)});
    }
  }
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const MergeRef& a, const MergeRef& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.port != b.port) {
                return a.port < b.port;
              }
              return a.idx < b.idx;
            });
  const size_t n = merge_scratch_.size();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && merge_scratch_[j].when == merge_scratch_[i].when) {
      ++j;
    }
    if (j == i + 1 || merge_scratch_[i].port == merge_scratch_[j - 1].port) {
      // Single frame, or several from the same port (FIFO, no arbitration).
      for (size_t k = i; k < j; ++k) {
        const MergeRef& r = merge_scratch_[k];
        DeliverOne(ports_[r.port]->staged[r.idx]);
      }
      rr_next_ = (merge_scratch_[i].port + 1) % n_ports;
    } else {
      // Multi-port tie: grant ports in rotation order from rr_next_, then
      // advance the cursor one past the group's FIRST winner. Advancing by
      // the first (not last) winner is what alternates grant order between
      // synchronized senders: with the cursor placed just past the last
      // grant it would sweep over the idle ports and land on the
      // lowest-numbered sender every group, a priority lock-in that
      // starves the other sender whenever the egress queue frees exactly
      // one slot per group.
      size_t first_winner = n_ports;
      size_t granted = 0;
      for (size_t off = 0; off < n_ports && granted < j - i; ++off) {
        const size_t pi = (rr_next_ + off) % n_ports;
        for (size_t k = i; k < j; ++k) {
          if (merge_scratch_[k].port == pi) {
            DeliverOne(ports_[pi]->staged[merge_scratch_[k].idx]);
            ++granted;
            if (first_winner == n_ports) {
              first_winner = pi;
            }
          }
        }
      }
      rr_next_ = (first_winner + 1) % n_ports;
    }
    i = j;
  }
  for (auto& port : ports_) {
    port->staged.clear();
  }
}

void Switch::DeliverOne(StagedFrame& f) {
  const Packet& pkt = *f.packet;
  if (pkt.ip.dst != route_cache_addr_ || route_cache_port_ < 0) {
    const auto route = routes_.find(pkt.ip.dst);
    if (route == routes_.end()) {
      ++stats_.unrouted_drops;
      return;
    }
    route_cache_addr_ = pkt.ip.dst;
    route_cache_port_ = route->second;
  }
  Port& out = *ports_[static_cast<size_t>(route_cache_port_)];

  // Shared backplane: one serialization cursor for the whole fabric.
  SimTime fabric_done = f.when;
  if (params_.fabric_gbps > 0.0) {
    const double bits = static_cast<double>(pkt.FrameBytes() + params_.frame_overhead_bytes) * 8.0;
    const SimTime ser =
        static_cast<SimTime>(std::llround(bits / (params_.fabric_gbps * 1e9) *
                                          static_cast<double>(kSecond)));
    const SimTime start = std::max(f.when, fabric_free_at_);
    fabric_done = start + ser;
    fabric_free_at_ = fabric_done;
  }

  const SimTime at_egress = fabric_done + params_.switching_latency;

  // Egress port: bounded queue of frames awaiting the egress wire. The ring
  // holds each queued frame's wire-completion time; entries whose
  // completion precedes this frame's arrival have left the buffer.
  while (!out.egress_busy.empty() && out.egress_busy.front() <= at_egress) {
    out.egress_busy.pop_front();
  }
  if (out.egress_busy.size() >= params_.egress_queue_slots) {
    ++out.stats.egress_drops;
    return;
  }
  if (pkt.FrameBytes() != ser_cache_bytes_) {
    ser_cache_bytes_ = pkt.FrameBytes();
    ser_cache_time_ = EgressSerializationTime(ser_cache_bytes_);
  }
  const SimTime start = std::max(at_egress, out.egress_free_at);
  const SimTime done = start + ser_cache_time_;
  out.egress_free_at = done;
  out.egress_busy.push_back(done);

  ++stats_.routed_frames;
  ++out.stats.out_frames;
  out.stats.out_bytes += pkt.FrameBytes();

  const SimTime arrival = done + out.propagation;
  Nic* nic = out.nic;
  out.sim->ScheduleAt(arrival, [nic, p = std::move(f.packet)]() mutable {
    nic->DeliverFromWire(std::move(p));
  });
}

}  // namespace newtos
