#include "src/fabric/incast.h"

#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "src/sim/random.h"

namespace newtos {

SwitchParams IncastFabricDefaults() {
  SwitchParams p;
  p.port_rate_gbps = 10.0;
  p.fabric_gbps = 0.0;  // non-blocking backplane; the egress port is the choke
  p.switching_latency = 2 * kMicrosecond;
  p.port_propagation = 5 * kMicrosecond;
  p.egress_queue_slots = 64;
  return p;
}

Ipv4Addr IncastSutAddr() { return Ipv4(10, 0, 0, 1); }

Ipv4Addr IncastClientAddr(int i) {
  assert(i >= 0 && i < 255 * 256);
  return Ipv4(10, 0, static_cast<uint8_t>(1 + i / 256), static_cast<uint8_t>(i % 256));
}

int IncastClientIndex(Ipv4Addr a) {
  return (static_cast<int>((a >> 8) & 0xff) - 1) * 256 + static_cast<int>(a & 0xff);
}

int IncastLaneOfClient(int client, int lanes) {
  if (lanes <= 1) {
    return 0;
  }
  return 1 + client % (lanes - 1);
}

// --- UdpIncastBed ---------------------------------------------------------

struct UdpIncastBed::Client {
  std::unique_ptr<Nic> nic;
  std::unique_ptr<PeerHost> peer;
  std::unique_ptr<UdpPeerFlood> flood;
  int lane = 0;
};

UdpIncastBed::UdpIncastBed(const UdpIncastOptions& options)
    : options_(options), engine_(options.topo.lanes), fabric_(options.topo.fabric) {
  const IncastOptions& topo = options_.topo;
  for (int i = 0; i < engine_.lanes(); ++i) {
    engine_.lane(i).sim().ReserveEvents(topo.event_reserve);
    engine_.lane(i).pool().Reserve(topo.packet_reserve);
  }

  Simulation& sut_sim = engine_.lane(0).sim();
  // lint:allow(heap-make): one-time testbed construction
  sut_nic_ = std::make_unique<Nic>(&sut_sim, "sut/nic0", topo.client_nic);
  fabric_.AttachNic(sut_nic_.get(), &sut_sim, IncastSutAddr());
  // lint:allow(heap-make): one-time testbed construction
  sut_ = std::make_unique<PeerHost>(&sut_sim, IncastSutAddr(), sut_nic_.get());

  digest_per_client_.resize(static_cast<size_t>(topo.n_clients));
  delivered_per_client_.resize(static_cast<size_t>(topo.n_clients), 0);
  Simulation* sim = &sut_sim;
  sut_->udp().Bind(kUdpFloodPort, [this, sim](const PacketPtr& p) {
    const size_t idx = static_cast<size_t>(IncastClientIndex(p->ip.src));
    StreamDigest& d = digest_per_client_[idx];
    d.Fold(static_cast<uint64_t>(sim->Now()));
    d.Fold(p->app_tag);
    d.Fold(p->payload_bytes);
    ++delivered_per_client_[idx];
    ++delivered_total_;
    window_.Add(1, p->payload_bytes);
  });

  clients_.reserve(static_cast<size_t>(topo.n_clients));
  for (int i = 0; i < topo.n_clients; ++i) {
    // lint:allow(heap-make): one-time testbed construction
    auto c = std::make_unique<Client>();
    c->lane = IncastLaneOfClient(i, topo.lanes);
    Simulation& sim_i = engine_.lane(c->lane).sim();
    // lint:allow(heap-make): one-time testbed construction
    c->nic = std::make_unique<Nic>(&sim_i, "client" + std::to_string(i) + "/nic0",
                                   topo.client_nic);
    fabric_.AttachNic(c->nic.get(), &sim_i, IncastClientAddr(i));
    // lint:allow(heap-make): one-time testbed construction
    c->peer = std::make_unique<PeerHost>(&sim_i, IncastClientAddr(i), c->nic.get());

    UdpPeerFlood::Params fp;
    fp.sut = IncastSutAddr();
    fp.payload_bytes = options_.payload_bytes;
    fp.packets_per_sec = options_.pps_per_client;
    fp.poisson = options_.poisson;
    // Host ids: 0 is the SUT, clients are 1..N. Each client's stream is a
    // pure function of (seed, host id) — stable under renumbering of lanes.
    fp.seed = Rng::HostSeed(topo.seed, static_cast<uint64_t>(i) + 1);
    // lint:allow(heap-make): one-time testbed construction
    c->flood = std::make_unique<UdpPeerFlood>(c->peer.get(), fp);
    clients_.push_back(std::move(c));
  }

  engine_.SetLookahead(fabric_.Lookahead());
  engine_.SetBarrierFlush([this] { fabric_.Flush(); });
}

UdpIncastBed::~UdpIncastBed() = default;

void UdpIncastBed::Start() {
  for (auto& c : clients_) {
    // The first datagram fires inline on this (stopped-lanes) thread; bind
    // the client's lane pool so its packet comes from — and recycles to —
    // the pool the lane will use for the rest of the stream.
    PacketPool::ScopedUse use(&engine_.lane(c->lane).pool());
    c->flood->Start();
  }
}

uint64_t UdpIncastBed::sent() const {
  uint64_t total = 0;
  for (const auto& c : clients_) {
    total += c->flood->sent();
  }
  return total;
}

uint64_t UdpIncastBed::Digest() const {
  StreamDigest total;
  for (const StreamDigest& d : digest_per_client_) {
    total.Fold(d.value());
  }
  return total.value();
}

// --- TcpIncastBed ---------------------------------------------------------

struct TcpIncastBed::Client {
  std::unique_ptr<Nic> nic;
  std::unique_ptr<PeerHost> peer;
  SimTime start_at = 0;
  uint64_t burst_bytes = 0;
  bool established = false;

  void Connect(Ipv4Addr sut) {
    TcpHost::AppHooks hooks;
    hooks.on_established = [this](TcpConnection* conn) {
      established = true;
      // Two bursts in flight (double buffering), refilled on drain.
      conn->Send(burst_bytes);
      conn->Send(burst_bytes);
    };
    hooks.on_drained = [this](TcpConnection* conn) { conn->Send(burst_bytes); };
    peer->tcp().Connect(sut, kIperfPort, hooks, peer->tcp_params());
  }
};

TcpIncastBed::TcpIncastBed(const TcpIncastOptions& options)
    : options_(options), engine_(options.topo.lanes), fabric_(options.topo.fabric) {
  const IncastOptions& topo = options_.topo;
  for (int i = 0; i < engine_.lanes(); ++i) {
    engine_.lane(i).sim().ReserveEvents(topo.event_reserve);
    engine_.lane(i).pool().Reserve(topo.packet_reserve);
  }

  Simulation& sut_sim = engine_.lane(0).sim();
  {
    // The stack's construction-time reserve must land in lane 0's pool, not
    // the process default.
    PacketPool::ScopedUse use(&engine_.lane(0).pool());
    // lint:allow(heap-make): one-time testbed construction
    machine_ = std::make_unique<Machine>(&sut_sim, "sut", options_.machine);
    fabric_.AttachNic(machine_->nic(), &sut_sim, options_.stack.addr);
    // lint:allow(heap-make): one-time testbed construction
    stack_ = std::make_unique<MultiserverStack>(&sut_sim, machine_.get(), options_.stack);
    stack_->BindDefaultLayout();
    DedicatedSlowPlan(*stack_, options_.system_freq, options_.app_freq).Apply(*machine_);
    api_ = stack_->CreateApp("incast-sink", machine_->core(0));
  }

  Simulation* sim = &sut_sim;
  api_->SetEventHandler([this, sim](const Msg& m) {
    if (m.type == MsgType::kEvtData) {
      sut_digest_.Fold(static_cast<uint64_t>(sim->Now()));
      sut_digest_.Fold(m.handle);
      sut_digest_.Fold(m.value);
      total_bytes_ += m.value;
      window_.Add(1, m.value);
    }
  });

  clients_.reserve(static_cast<size_t>(topo.n_clients));
  for (int i = 0; i < topo.n_clients; ++i) {
    // lint:allow(heap-make): one-time testbed construction
    auto c = std::make_unique<Client>();
    const int lane = IncastLaneOfClient(i, topo.lanes);
    Simulation& sim_i = engine_.lane(lane).sim();
    // lint:allow(heap-make): one-time testbed construction
    c->nic = std::make_unique<Nic>(&sim_i, "client" + std::to_string(i) + "/nic0",
                                   topo.client_nic);
    fabric_.AttachNic(c->nic.get(), &sim_i, IncastClientAddr(i));
    // lint:allow(heap-make): one-time testbed construction
    c->peer = std::make_unique<PeerHost>(&sim_i, IncastClientAddr(i), c->nic.get(),
                                         options_.stack.tcp_params);
    c->burst_bytes = options_.burst_bytes;
    // Connect offsets come from the per-host RNG stream: every client's
    // onset is a function of (seed, host id) alone.
    Rng rng = Rng::ForHost(topo.seed, static_cast<uint64_t>(i) + 1);
    c->start_at = options_.start_jitter > 0
                      ? static_cast<SimTime>(rng.Next() %
                                             static_cast<uint64_t>(options_.start_jitter))
                      : 0;
    clients_.push_back(std::move(c));
  }

  engine_.SetLookahead(fabric_.Lookahead());
  engine_.SetBarrierFlush([this] { fabric_.Flush(); });
}

TcpIncastBed::~TcpIncastBed() = default;

void TcpIncastBed::Start() {
  api_->Listen(kIperfPort);
  const Ipv4Addr sut = options_.stack.addr;
  for (auto& c : clients_) {
    Client* cp = c.get();
    // Scheduled as a lane event so the SYN (and everything after) is built
    // on the client's own lane thread, from its own pool.
    cp->peer->sim()->Schedule(cp->start_at, [cp, sut] { cp->Connect(sut); });
  }
}

int TcpIncastBed::established() const {
  int n = 0;
  for (const auto& c : clients_) {
    n += c->established ? 1 : 0;
  }
  return n;
}

TcpStats TcpIncastBed::AggregateClientStats() const {
  TcpStats total;
  for (const auto& c : clients_) {  // clients_ index order == host-id order
    for (const TcpConnection* conn : c->peer->tcp().Connections()) {
      const TcpStats& s = conn->stats();
      total.segs_sent += s.segs_sent;
      total.segs_rcvd += s.segs_rcvd;
      total.bytes_sent += s.bytes_sent;
      total.bytes_acked += s.bytes_acked;
      total.bytes_received += s.bytes_received;
      total.retransmits += s.retransmits;
      total.timeouts += s.timeouts;
      total.fast_retransmits += s.fast_retransmits;
      total.dupacks_rcvd += s.dupacks_rcvd;
      total.ooo_segments += s.ooo_segments;
      total.sack_retransmits += s.sack_retransmits;
      total.corrupt_segments_accepted += s.corrupt_segments_accepted;
    }
  }
  return total;
}

LatencyHistogram TcpIncastBed::ClientRttHistogram() const {
  LatencyHistogram hist;
  for (const auto& c : clients_) {  // host-id order: deterministic fold
    for (const TcpConnection* conn : c->peer->tcp().Connections()) {
      if (conn->srtt() > 0) {
        hist.Record(conn->srtt());
      }
    }
  }
  return hist;
}

}  // namespace newtos
