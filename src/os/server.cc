#include "src/os/server.h"

#include <cassert>
#include <utility>

#include "src/sim/logger.h"

namespace newtos {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPacketRx:
      return "PacketRx";
    case MsgType::kPacketTx:
      return "PacketTx";
    case MsgType::kSockConnect:
      return "SockConnect";
    case MsgType::kSockListen:
      return "SockListen";
    case MsgType::kSockSend:
      return "SockSend";
    case MsgType::kSockClose:
      return "SockClose";
    case MsgType::kSockRead:
      return "SockRead";
    case MsgType::kEvtEstablished:
      return "EvtEstablished";
    case MsgType::kEvtAccepted:
      return "EvtAccepted";
    case MsgType::kEvtData:
      return "EvtData";
    case MsgType::kEvtDrained:
      return "EvtDrained";
    case MsgType::kEvtClosed:
      return "EvtClosed";
    case MsgType::kCtlCrash:
      return "CtlCrash";
    case MsgType::kCtlRestart:
      return "CtlRestart";
    case MsgType::kCtlHeartbeat:
      return "CtlHeartbeat";
  }
  return "?";
}

Server::Server(Simulation* sim, std::string name) : sim_(sim), name_(std::move(name)) {}

void Server::BindCore(Core* core) { core_ = core; }

Server::Chan* Server::CreateInput(const std::string& chan_name, size_t capacity,
                                  const ChannelCostModel& cost) {
  owned_inputs_.push_back(
      std::make_unique<Chan>(sim_, name_ + "/" + chan_name, capacity, cost));
  Chan* ch = owned_inputs_.back().get();
  ch->SetNotify([this] { MaybeSchedule(); });
  AddWorkSource(WorkSource{
      .has_work = [ch] { return !ch->empty(); },
      .take = [ch] { return *ch->Pop(); },
      .overhead_cycles = cost.dequeue_cycles,
  });
  return ch;
}

std::vector<Server::Chan*> Server::Inputs() const {
  std::vector<Chan*> out;
  out.reserve(owned_inputs_.size());
  for (const auto& ch : owned_inputs_) {
    out.push_back(ch.get());
  }
  return out;
}

void Server::AddWorkSource(WorkSource source) { sources_.push_back(std::move(source)); }

Server::WorkSource* Server::PickSource() {
  if (sources_.empty()) {
    return nullptr;
  }
  for (size_t i = 0; i < sources_.size(); ++i) {
    const size_t idx = (rr_next_ + i) % sources_.size();
    WorkSource& s = sources_[idx];
    if (s.has_work()) {
      rr_next_ = (idx + 1) % sources_.size();
      return &s;
    }
  }
  return nullptr;
}

bool Server::Idle() const {
  if (processing_) {
    return false;
  }
  for (const WorkSource& s : sources_) {
    if (s.has_work()) {
      return false;
    }
  }
  return true;
}

void Server::NotifyIdleChange() {
  const bool idle = Idle();
  if (idle != last_reported_idle_) {
    last_reported_idle_ = idle;
    if (idle_observer_) {
      idle_observer_(idle);
    }
  }
}

#if NEWTOS_CHECKERS
void Server::EnableCheck(ChannelChecker* check, uint32_t actor) {
  check_ = check;
  check_actor_ = actor;
  for (auto& ch : owned_inputs_) {
    ch->EnableCheck(check);
    // Ownership of an input IS the consumer role: bind it at wiring time so
    // even rings that never see traffic carry their consumer in the export.
    check->BindConsumer(ch.get(), actor);
  }
}
#endif

void Server::MaybeSchedule() {
  if (processing_ || crashed_ || hung_) {
    return;
  }
  assert(core_ != nullptr && "server must be bound to a core before traffic flows");
#if NEWTOS_CHECKERS
  // The burst drain below Pops this server's own inputs: that is this
  // server's consumer identity as far as the protocol checker is concerned.
  ChannelChecker::ScopedActor check_scope(check_, check_actor_);
#endif
  WorkSource* src = PickSource();
  if (src == nullptr) {
    NotifyIdleChange();
    return;
  }
  processing_ = true;
  NotifyIdleChange();
  // Drain a burst from the chosen source into one core work item: the cycle
  // costs add up per message, but tenant-switch pollution is paid once per
  // burst — exactly how batched poll loops amortize co-location.
  assert(batch_.empty());
  const bool tracing = TraceOn(trace_.rec);
  Cycles cost = 0;
  for (int n = 0; n < source_batch_limit_ && src->has_work(); ++n) {
    Msg msg = src->take();
    // Heartbeat probes bypass the subclass: answered at a fixed base-class
    // cost. (The watchdog itself has no heartbeat_out_ — the acks it receives
    // are ordinary messages to it.)
    const bool probe = msg.type == MsgType::kCtlHeartbeat && heartbeat_out_ != nullptr;
    const Cycles msg_cost = src->overhead_cycles + (probe ? kHeartbeatAckCycles : CostFor(msg));
    cost += msg_cost;
    if (tracing) {
      batch_durs_.push_back(TraceCyclesToTime(msg_cost));
    }
    batch_.push_back(std::move(msg));
  }
  if (core_->SetTenant(this)) {
    cost += tenant_switch_cycles_;
    core_->CountTenantSwitch();
  }
  if (tracing) {
    batch_total_dur_ = TraceCyclesToTime(cost);
  }
  const uint64_t gen = generation_;
  core_->Execute(cost, [this, gen]() {
    if (gen != generation_) {
      return;  // the server crashed (and possibly restarted) mid-flight
    }
#if NEWTOS_CHECKERS
    // Handle() pushes into downstream rings: the producer identity of every
    // Emit in this burst is this server.
    ChannelChecker::ScopedActor check_scope(check_, check_actor_);
#endif
    // Swap into the scratch buffer before handling: a crash inside Handle()
    // clears batch_ but must not disturb the burst being iterated.
    executing_.swap(batch_);
    executing_durs_.swap(batch_durs_);
    if (TraceOn(trace_.rec) && trace_.msg_names != nullptr &&
        executing_durs_.size() == executing_.size() && !executing_.empty()) {
      RecordBurstSpans();
    }
    executing_durs_.clear();
    for (const Msg& msg : executing_) {
      ++messages_processed_;
      if (msg.type == MsgType::kCtlHeartbeat && heartbeat_out_ != nullptr) {
        AckHeartbeat(msg);
      } else {
        Handle(msg);
      }
    }
    executing_.clear();
    processing_ = false;
    MaybeSchedule();
  });
}

void Server::RecordBurstSpans() {
  // Reconstruct the burst interval from the durations captured at submit:
  // the work item finished *now*, so it started one burst-duration ago. The
  // per-message spans occupy the tail of the interval; the lead-in (tenant
  // switch and rounding slack) is the burst span's own time. All spans are
  // complete events (duration known here), parent first then children in
  // begin order — half the records of begin/end pairs.
  const SimTime end = sim_->Now();
  SimTime msgs_total = 0;
  for (const SimTime d : executing_durs_) {
    msgs_total += d;
  }
  const SimTime begin = end - (batch_total_dur_ > msgs_total ? batch_total_dur_ : msgs_total);
  trace_.rec->Complete(begin, trace_.track, trace_.burst, end - begin);
  SimTime cursor = end - msgs_total;
  for (size_t i = 0; i < executing_.size(); ++i) {
    const NameId name = trace_.msg_names[static_cast<size_t>(executing_[i].type)];
    const uint64_t flow = TraceIdsOf(executing_[i]).flow;
    trace_.rec->Complete(cursor, trace_.track, name, executing_durs_[i], flow);
    cursor += executing_durs_[i];
  }
}

void Server::EnableHeartbeat(Chan* ack_out, uint64_t id) {
  heartbeat_out_ = ack_out;
  heartbeat_id_ = id;
}

void Server::AckHeartbeat(const Msg& probe) {
  if (heartbeat_out_ == nullptr) {
    return;  // probe arrived before the watchdog wired the ack path
  }
  Msg ack;
  ack.type = MsgType::kCtlHeartbeat;
  ack.handle = heartbeat_id_;
  ack.value = probe.value;  // echo the sequence number
  ++heartbeats_acked_;
  Emit(heartbeat_out_, std::move(ack));
}

void Server::Hang() {
  if (crashed_ || hung_) {
    return;
  }
  NEWTOS_LOG(kInfo, sim_->Now(), name_, "HANG injected (gen " << generation_ << ")");
  hung_ = true;
}

void Server::Livelock(Cycles busy_cycles) {
  if (crashed_) {
    return;
  }
  const bool was_hung = hung_;
  Hang();
  if (was_hung) {
    return;  // already spinning or silently hung; don't stack spin loops
  }
  NEWTOS_LOG(kInfo, sim_->Now(), name_, "LIVELOCK: spinning " << busy_cycles << " cycles/slice");
  livelock_slice_ = busy_cycles > 0 ? busy_cycles : 1;
  LivelockSpin(generation_);
}

void Server::LivelockSpin(uint64_t gen) {
  if (gen != generation_ || !hung_) {
    return;  // crashed (the cure) — the spin dies with the address space
  }
  assert(core_ != nullptr);
  core_->Execute(livelock_slice_, [this, gen] { LivelockSpin(gen); });
}

void Server::Crash() {
  if (crashed_) {
    return;
  }
  NEWTOS_LOG(kInfo, sim_->Now(), name_, "CRASH injected (gen " << generation_ << ")");
  crashed_ = true;
  hung_ = false;  // the kill cures a hang/livelock; the restart resumes clean
  ++generation_;  // invalidates the in-flight completion, if any
  processing_ = false;
  // The burst waiting on the core dies with the address space. It was never
  // counted as processed, and (matching the old capture-by-value behaviour)
  // it is not counted as lost_to_crash either — only queued input is.
  batch_.clear();
  batch_durs_.clear();
  if (TraceOn(trace_.rec)) {
    trace_.rec->Instant(sim_->Now(), trace_.track, trace_.crash);
  }
#if NEWTOS_CHECKERS
  // Draining dead inputs to the floor is still this server consuming them.
  ChannelChecker::ScopedActor check_scope(check_, check_actor_);
#endif
  for (auto& ch : owned_inputs_) {
    while (auto m = ch->Pop()) {
      ++messages_lost_to_crash_;
    }
  }
  OnCrash();
  NotifyIdleChange();
}

void Server::Restart(Cycles restart_cycles, std::function<void()> on_ready) {
  if (!crashed_) {
    return;
  }
  assert(core_ != nullptr);
  const uint64_t gen = generation_;
  core_->Execute(restart_cycles, [this, gen, on_ready = std::move(on_ready)] {
    if (gen != generation_) {
      return;  // crashed again while rebooting
    }
    crashed_ = false;
    OnRestart();
    if (TraceOn(trace_.rec)) {
      trace_.rec->Instant(sim_->Now(), trace_.track, trace_.restart);
    }
    NEWTOS_LOG(kInfo, sim_->Now(), name_, "restarted (gen " << generation_ << ")");
    if (on_ready) {
      on_ready();
    }
    MaybeSchedule();
  });
}

}  // namespace newtos
