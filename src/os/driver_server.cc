#include "src/os/driver_server.h"

#include <cassert>

namespace newtos {

DriverServer::DriverServer(Simulation* sim, Nic* nic, const DriverCosts& costs,
                           size_t tx_chan_capacity, const ChannelCostModel& chan_cost)
    : Server(sim, "driver"), nic_(nic), costs_(costs) {
  tx_in_ = CreateInput("tx", tx_chan_capacity, chan_cost);
  // The NIC RX ring is a work source: frames appear there via DMA and the
  // driver's poll loop drains them.
  AddWorkSource(WorkSource{
      .has_work = [this] { return nic_->rx_pending() > 0; },
      .take =
          [this] {
            Msg m;
            m.type = MsgType::kPacketRx;
            m.packet = nic_->PollRx();
            return m;
          },
      .overhead_cycles = 150,  // descriptor read + buffer handoff
  });
  nic_->SetRxNotify([this] { MaybeSchedule(); });
}

Cycles DriverServer::CostFor(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      // Frames drained as part of a backlog amortize descriptor work.
      return nic_->rx_pending() > 0 ? costs_.rx_batched_packet : costs_.rx_per_packet;
    case MsgType::kPacketTx:
      return costs_.tx_per_packet;
    default:
      return 100;
  }
}

void DriverServer::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      assert(rx_upstream_ != nullptr && "driver needs an upstream before traffic flows");
      if (Emit(rx_upstream_, msg)) {
        ++rx_forwarded_;
      }
      break;
    case MsgType::kPacketTx:
      if (nic_->Transmit(msg.packet)) {
        ++tx_posted_;
      } else {
        ++tx_nic_rejects_;
      }
      break;
    default:
      break;
  }
}

void DriverServer::OnCrash() {
  // Frames already DMA'd into the RX ring but not yet polled are dropped on
  // restart (the fresh driver instance re-initializes its ring view).
  while (PacketPtr p = nic_->PollRx()) {
  }
}

void DriverServer::OnRestart() {
  // Ring re-attached; the notify hook survives (it routes to this object).
  MaybeSchedule();
}

}  // namespace newtos
