// Application process pinned to a core: the workload's execution container.
//
// An AppProcess consumes socket events on its event channel and submits
// socket requests back to the L4 server (or syscall gateway), paying cycle
// costs on its own core for both — plus whatever Compute() work the workload
// injects between them. Workloads (src/workload) provide the Behavior; this
// class provides the plumbing.

#ifndef SRC_OS_APP_PROCESS_H_
#define SRC_OS_APP_PROCESS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/os/server.h"
#include "src/sim/ring_deque.h"

namespace newtos {

class AppProcess : public Server {
 public:
  struct Behavior {
    // Cycles to process one incoming event (default 300 when unset).
    std::function<Cycles(const Msg&)> cost_for;
    // Reaction to an incoming event: issue requests, compute, record metrics.
    std::function<void(AppProcess&, const Msg&)> on_event;
    // Cycles charged per submitted request (the "syscall stub" on the app
    // side: marshalling + ring enqueue).
    Cycles request_cycles = 350;
  };

  AppProcess(Simulation* sim, std::string name, Behavior behavior, size_t chan_capacity,
             const ChannelCostModel& chan_cost);

  // Replaces the workload behavior (used by SocketApi adapters; only safe
  // while no event is in flight, i.e. before traffic starts).
  void set_behavior(Behavior behavior) { behavior_ = std::move(behavior); }

  // Event channel: register this with TcpServer/UdpServer/SyscallServer.
  Chan* events() { return events_in_; }

  // Where requests are sent (tcp->app_in(), udp->app_in(), or syscall req_in).
  void set_request_out(Chan* out) { req_out_ = out; }

  // App id assigned by the L4 server at registration; stamped onto requests.
  void set_app_id(uint32_t id) { app_id_ = id; }
  uint32_t app_id() const { return app_id_; }

  // Queues a socket request; the request_cycles cost lands on this core.
  void Request(Msg msg);

  // Convenience request builders.
  uint64_t Connect(Ipv4Addr dst, uint16_t port);  // returns the new handle
  void ListenTcp(uint16_t port);
  void SendBytes(uint64_t handle, uint64_t bytes);
  void Close(uint64_t handle);

  // Pure application compute on this core; `then` runs when it retires.
  void Compute(Cycles cycles, std::function<void()> then = nullptr);

  uint64_t AllocHandle() { return next_handle_++; }
  uint64_t requests_sent() const { return requests_sent_; }
  uint64_t events_seen() const { return events_seen_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  Behavior behavior_;
  Chan* events_in_ = nullptr;
  Chan* req_out_ = nullptr;
  RingDeque<Msg> pending_req_;
  uint32_t app_id_ = 0;
  uint64_t next_handle_ = 1;
  uint64_t requests_sent_ = 0;
  uint64_t events_seen_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_APP_PROCESS_H_
