// TCP server: owns the machine's TCP protocol state (a TcpHost) and runs it
// as a pinned, message-driven stack stage.
//
// Inputs: inbound segments (from PF/IP) and socket requests (from apps or
// the syscall gateway). Internal work sources: the protocol's outbound
// segment queue (every segment the state machines generate is charged
// tx_segment cycles before it leaves for IP) and the application event queue
// (established/data/drained/closed notifications, charged evt_deliver each).
// Timers (RTO, delayed ACK, persist) fire on simulated time and enqueue
// their output into the same internal queues, so retransmissions pay the
// server's cycle costs like any other segment.
//
// Crash model: with checkpointing off (the default), a crash destroys every
// connection — apps get kEvtClosed on restart and listeners are re-created
// from the recovery set, mirroring a stateful-server microreboot. With
// checkpointing on, protocol state survives in a replica and only in-queue
// messages are lost; TCP's own retransmission repairs the gap. Fig. 8
// compares the two.

#ifndef SRC_OS_TCP_SERVER_H_
#define SRC_OS_TCP_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/tcp_host.h"
#include "src/os/costs.h"
#include "src/os/server.h"
#include "src/sim/ring_deque.h"

namespace newtos {

class TcpServer : public Server {
 public:
  TcpServer(Simulation* sim, Ipv4Addr addr, const TcpCosts& costs, const TcpParams& tcp_params,
            size_t chan_capacity, const ChannelCostModel& chan_cost);

  // Downstream to the IP server's TX channel.
  void set_ip_tx(Chan* ip_tx) { ip_tx_ = ip_tx; }

  Chan* rx_in() { return rx_in_; }
  Chan* app_in() { return app_in_; }

  // Registers an application event channel; the returned id goes into
  // Msg::app on every request the application sends.
  uint32_t RegisterApp(Chan* app_events);

  // Checkpointed recovery: protocol state survives crashes.
  void set_checkpointing(bool on) { checkpointing_ = on; }
  bool checkpointing() const { return checkpointing_; }

  // Sharded deployment: this instance is shard `index` of `count`. Inbound
  // flows are routed here by symmetric flow hash (IP/PF demux); outbound
  // connections pick ephemeral ports that hash back to this shard; accepted
  // handles encode the shard in bits 48..61 so the gateway can route
  // follow-up requests. Call before any traffic.
  void set_shard(uint32_t index, uint32_t count);
  uint32_t shard_index() const { return shard_index_; }

  // Shard owning `handle` for accept-side handles (bit 62 set).
  static uint32_t ShardOfAcceptHandle(uint64_t handle) {
    return static_cast<uint32_t>((handle >> 48) & 0x3fff);
  }
  static bool IsAcceptHandle(uint64_t handle) { return (handle >> 62) & 1; }

  // Exposes protocol state for tests/metrics (do not mutate mid-run).
  TcpHost& host() { return *host_; }

  const TcpCosts& costs() const { return costs_; }
  uint64_t segments_in() const { return segments_in_; }
  uint64_t segments_out() const { return segments_out_; }
  uint64_t events_out() const { return events_out_; }
  // Segments discarded on RX because the TCP checksum would not verify
  // (Packet::corrupt carries kCorruptL4 from wire fault injection).
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;
  void OnCrash() override;
  void OnRestart() override;

 private:
  struct SockId {
    uint32_t app = 0;
    uint64_t handle = 0;
    friend bool operator==(const SockId&, const SockId&) = default;
  };
  struct SockIdHash {
    size_t operator()(const SockId& s) const {
      return std::hash<uint64_t>()(s.handle * 0x9e3779b97f4a7c15ULL ^ s.app);
    }
  };

  void MakeHost();
  TcpHost::AppHooks HooksFor(SockId id);
  void QueueEvent(Msg evt);
  void HandleSockRequest(const Msg& msg);

  Ipv4Addr addr_;
  TcpCosts costs_;
  TcpParams tcp_params_;
  Chan* rx_in_ = nullptr;
  Chan* app_in_ = nullptr;
  Chan* ip_tx_ = nullptr;

  std::unique_ptr<TcpHost> host_;
  RingDeque<PacketPtr> pending_tx_;
  RingDeque<Msg> pending_evt_;

  std::vector<Chan*> apps_;  // index = app id
  std::unordered_map<SockId, TcpConnection*, SockIdHash> by_sock_;
  std::unordered_map<TcpConnection*, SockId> by_conn_;
  struct ListenEntry {
    uint16_t tcp_port = 0;
    uint32_t app = 0;
  };
  std::vector<ListenEntry> listeners_;  // recovery set
  uint64_t next_accept_handle_ = (1ULL << 62);
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;

  bool checkpointing_ = false;
  uint64_t segments_in_ = 0;
  uint64_t segments_out_ = 0;
  uint64_t events_out_ = 0;
  uint64_t rx_checksum_drops_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_TCP_SERVER_H_
