// SocketApi: the application-facing surface workloads program against.
//
// Workloads (iperf, HTTP) are written once against this interface and run
// unchanged on either architecture:
//   * MultiserverSocket — backed by an AppProcess whose requests/events
//     cross channels to the TCP server pinned elsewhere;
//   * MonolithicStack::Api — backed by the in-"kernel" stack sharing the
//     application's core (src/os/monolithic_stack.h).
// That symmetry is what makes the head-to-head comparisons (Tab. 2) fair:
// identical workload logic, identical protocol code, different architecture.

#ifndef SRC_OS_SOCKET_API_H_
#define SRC_OS_SOCKET_API_H_

#include <functional>

#include "src/os/app_process.h"
#include "src/os/message.h"
#include "src/sim/simulation.h"

namespace newtos {

class SocketApi {
 public:
  virtual ~SocketApi() = default;

  // Socket events (kEvt*) arrive here. Set before generating traffic.
  virtual void SetEventHandler(std::function<void(const Msg&)> handler) = 0;

  virtual uint64_t Connect(Ipv4Addr dst, uint16_t port) = 0;
  virtual void Listen(uint16_t port) = 0;
  virtual void Send(uint64_t handle, uint64_t bytes) = 0;
  virtual void Close(uint64_t handle) = 0;

  // Application compute charged to the application's core.
  virtual void Compute(Cycles cycles, std::function<void()> then) = 0;

  virtual Simulation* sim() = 0;
};

// SocketApi over an AppProcess (the multiserver path).
class MultiserverSocket : public SocketApi {
 public:
  explicit MultiserverSocket(AppProcess* app) : app_(app) {
    AppProcess::Behavior b;
    b.on_event = [this](AppProcess&, const Msg& m) {
      if (handler_) {
        handler_(m);
      }
    };
    app_->set_behavior(std::move(b));
  }

  void SetEventHandler(std::function<void(const Msg&)> handler) override {
    handler_ = std::move(handler);
  }
  uint64_t Connect(Ipv4Addr dst, uint16_t port) override { return app_->Connect(dst, port); }
  void Listen(uint16_t port) override { app_->ListenTcp(port); }
  void Send(uint64_t handle, uint64_t bytes) override { app_->SendBytes(handle, bytes); }
  void Close(uint64_t handle) override { app_->Close(handle); }
  void Compute(Cycles cycles, std::function<void()> then) override {
    app_->Compute(cycles, std::move(then));
  }
  Simulation* sim() override { return app_->sim(); }

  AppProcess* app() { return app_; }

 private:
  AppProcess* app_;
  std::function<void(const Msg&)> handler_;
};

}  // namespace newtos

#endif  // SRC_OS_SOCKET_API_H_
