// MonolithicStack: the Linux-like baseline — the same protocol code, but
// executed on the application's own core with syscall-crossing costs.
//
// Architecture under comparison:
//   multiserver: app core runs only the app; stack stages run on their own
//     (possibly slower) cores and talk through channels.
//   monolithic: one core runs the app AND the whole stack; packets cost the
//     fused rx/tx path, socket calls cost a trap, and app compute competes
//     with protocol processing for the same cycles.
//
// Implemented as a Server pinned to the app core so that stack work and app
// Compute() serialize through the same FIFO executor, exactly like softirqs
// and userspace sharing a CPU.

#ifndef SRC_OS_MONOLITHIC_STACK_H_
#define SRC_OS_MONOLITHIC_STACK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/machine.h"
#include "src/net/tcp_host.h"
#include "src/os/costs.h"
#include "src/os/server.h"
#include "src/os/socket_api.h"
#include "src/sim/ring_deque.h"

namespace newtos {

// Fused in-kernel path costs (no channel hops, no per-stage dequeues — the
// monolithic design's advantage), roughly matching the sum of the
// multiserver stages' work.
struct MonolithicCosts {
  Cycles rx_path = 3200;
  Cycles tx_path = 2300;
  Cycles syscall = 1400;      // trap entry/exit + copyin for a socket call
  Cycles evt_deliver = 400;   // wakeup + copyout to the application
};

class MonolithicStack : public Server {
 public:
  MonolithicStack(Simulation* sim, Machine* machine, int core_index, Ipv4Addr addr,
                  MonolithicCosts costs = {}, TcpParams tcp_params = {});

  // Per-application view; owned by the stack. All apps share the core.
  class Api : public SocketApi {
   public:
    Api(MonolithicStack* stack, uint32_t app_id) : stack_(stack), app_id_(app_id) {}
    void SetEventHandler(std::function<void(const Msg&)> handler) override;
    uint64_t Connect(Ipv4Addr dst, uint16_t port) override;
    void Listen(uint16_t port) override;
    void Send(uint64_t handle, uint64_t bytes) override;
    void Close(uint64_t handle) override;
    void Compute(Cycles cycles, std::function<void()> then) override;
    Simulation* sim() override;

   private:
    MonolithicStack* stack_;
    uint32_t app_id_;
  };

  Api* CreateApp();

  TcpHost& host() { return *host_; }
  Core* app_core() { return core(); }
  const MonolithicCosts& costs() const { return costs_; }
  uint64_t packets_in() const { return packets_in_; }
  uint64_t packets_out() const { return packets_out_; }
  // Inbound packets discarded because a checksum would not verify.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  struct SockId {
    uint32_t app = 0;
    uint64_t handle = 0;
    friend bool operator==(const SockId&, const SockId&) = default;
  };
  struct SockIdHash {
    size_t operator()(const SockId& s) const {
      return std::hash<uint64_t>()(s.handle * 0x9e3779b97f4a7c15ULL ^ s.app);
    }
  };

  void QueueEvent(Msg evt);
  void SubmitRequest(Msg msg);
  TcpHost::AppHooks HooksFor(SockId id);
  void HandleSockRequest(const Msg& msg);

  Ipv4Addr addr_;
  MonolithicCosts costs_;
  TcpParams tcp_params_;
  Nic* nic_;

  std::unique_ptr<TcpHost> host_;
  RingDeque<PacketPtr> pending_tx_;
  RingDeque<Msg> pending_evt_;
  RingDeque<Msg> pending_req_;

  std::vector<std::unique_ptr<Api>> apis_;
  std::vector<std::function<void(const Msg&)>> handlers_;
  std::unordered_map<SockId, TcpConnection*, SockIdHash> by_sock_;
  std::unordered_map<TcpConnection*, SockId> by_conn_;
  uint64_t next_handle_ = 1;
  uint64_t next_accept_handle_ = (1ULL << 62);

  uint64_t packets_in_ = 0;
  uint64_t packets_out_ = 0;
  uint64_t rx_checksum_drops_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_MONOLITHIC_STACK_H_
