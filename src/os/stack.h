// MultiserverStack: assembles the full NewtOS-style pipeline on a Machine.
//
//            +--------- requests ----------v
//   AppProcess(es)                   [syscall gateway]   (optional stage)
//      ^  events                            v
//      +------------- events ------- TCP / UDP server
//                                        ^      v
//                           [PF server] -+      |
//                                ^              v
//                             IP server  <------+
//                                ^  v
//                             driver server
//                                ^  v
//                                 NIC
//
// Core placement and per-stage frequencies are *not* fixed here: the
// steering policies in src/core decide them, which is the paper's subject.

#ifndef SRC_OS_STACK_H_
#define SRC_OS_STACK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/net/filter.h"
#include "src/net/tcp.h"
#include "src/os/app_process.h"
#include "src/os/costs.h"
#include "src/os/driver_server.h"
#include "src/os/ip_server.h"
#include "src/os/pf_server.h"
#include "src/os/socket_api.h"
#include "src/os/syscall_server.h"
#include "src/os/tcp_server.h"
#include "src/os/udp_server.h"

namespace newtos {

// Canonical server-role names, shared by both execution backends: the DES
// stack below and the live real-thread stack (src/runtime/live_stack) name
// their actors/tracks from this list, so checker reports and trace exports
// line up across modes. Order is the live backend's pin layout (role i on
// cpu i when cores allow).
inline constexpr const char* kStackRoleNames[] = {"app",  "tcp", "ip",
                                                  "peer", "udp", "watchdog"};
inline constexpr size_t kStackRoleCount = sizeof(kStackRoleNames) / sizeof(kStackRoleNames[0]);

struct StackConfig {
  Ipv4Addr addr = Ipv4(10, 0, 0, 1);

  bool use_pf = true;                // interpose the packet-filter stage on RX
  bool use_syscall_gateway = false;  // interpose the gateway on the app side
  size_t pf_rules = 16;              // synthetic chain length when use_pf

  // TCP server shards. Flows spread across shards by symmetric flow hash
  // (IP/PF demux + RSS-compatible source-port selection). Sharding implies
  // the syscall gateway, which routes per-handle requests to their shard.
  int tcp_shards = 1;

  size_t chan_capacity = 1024;
  ChannelCostModel chan_cost;

  // Pre-sizing hints for the engine's pooled fast path: the event queue and
  // the process-wide packet pool are reserved to these high-water marks when
  // the stack is built, so steady-state traffic never regrows either.
  size_t event_reserve = 4096;
  size_t packet_reserve = 4096;

  // Cold-cache penalty when co-located servers alternate on one core.
  Cycles tenant_switch_cycles = 250;

  // Core the fault tooling pins a WatchdogServer to (src/fault/watchdog.h).
  // Placement only — the stack itself never builds a watchdog. The default
  // shares the app core: heartbeat traffic is tiny and must not steal cycles
  // from the stack stages whose liveness it measures.
  int watchdog_core = 0;

  DriverCosts driver;
  IpCosts ip;
  PfCosts pf;
  TcpCosts tcp;
  UdpCosts udp;
  SyscallCosts syscall;
  TcpParams tcp_params;
};

class MultiserverStack {
 public:
  // Builds the servers and wires every channel. Servers are NOT bound to
  // cores yet — apply a steering plan (src/core/steering.h) or call
  // BindDefaultLayout() before traffic flows.
  MultiserverStack(Simulation* sim, Machine* machine, const StackConfig& config);

  MultiserverStack(const MultiserverStack&) = delete;
  MultiserverStack& operator=(const MultiserverStack&) = delete;

  // Default placement on a >=4-core machine: driver->1, ip(+pf)->2,
  // tcp(+udp,+gateway)->3, leaving core 0 (and above 3) for applications.
  void BindDefaultLayout();

  // Creates an application pinned to `core`, registered with the TCP server
  // (directly or through the gateway per config). The returned SocketApi is
  // owned by the stack.
  SocketApi* CreateApp(const std::string& name, Core* core);

  DriverServer* driver() { return driver_.get(); }
  IpServer* ip() { return ip_.get(); }
  PfServer* pf() { return pf_.get(); }  // nullptr when use_pf is false
  TcpServer* tcp() { return tcps_[0].get(); }  // shard 0
  TcpServer* tcp_shard(int i) { return tcps_[static_cast<size_t>(i)].get(); }
  int tcp_shard_count() const { return static_cast<int>(tcps_.size()); }
  UdpServer* udp() { return udp_.get(); }
  SyscallServer* syscall() { return syscall_.get(); }  // nullptr unless gateway on
  Machine* machine() { return machine_; }
  const StackConfig& config() const { return config_; }

  // All system servers (not apps), for steering/poll policies to iterate.
  std::vector<Server*> SystemServers();
  std::vector<AppProcess*> Apps();

 private:
  Simulation* sim_;
  Machine* machine_;
  StackConfig config_;

  std::unique_ptr<DriverServer> driver_;
  std::unique_ptr<IpServer> ip_;
  std::unique_ptr<PfServer> pf_;
  std::vector<std::unique_ptr<TcpServer>> tcps_;
  std::unique_ptr<UdpServer> udp_;
  std::unique_ptr<SyscallServer> syscall_;
  std::vector<std::unique_ptr<AppProcess>> apps_;
  std::vector<std::unique_ptr<MultiserverSocket>> sockets_;
};

}  // namespace newtos

#endif  // SRC_OS_STACK_H_
