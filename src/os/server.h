// Server: base class for multiserver OS components pinned to cores.
//
// A server is a message-driven state machine. It draws messages from its
// *work sources* (input channels, or custom sources like a NIC RX ring),
// charges the per-message cycle cost to the core it is pinned on, and then
// performs the semantic action (Handle), which typically pushes messages
// into downstream channels. Sources are drained round-robin, one message at
// a time, exactly like the poll loop of a NewtOS server.
//
// Cost accounting convention: CostFor() returns the full cycle count for a
// message — dequeue from the input ring, protocol work, and the enqueue(s)
// of any output the handler will produce. Folding the enqueue into the same
// work item keeps the event count at ~2 events per message per stage.
//
// Crash model: Crash() bumps the server's generation, empties its inputs
// (in-flight messages are lost — they lived in the dead address space) and
// invokes OnCrash() so subclasses lose whatever state the paper's recovery
// story says they lose. Restart() charges the reboot cost to the core and
// then calls OnRestart(). The MicrorebootManager drives both.

#ifndef SRC_OS_SERVER_H_
#define SRC_OS_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chan/sim_channel.h"
#include "src/hw/cpu.h"
#include "src/os/message.h"
#include "src/sim/simulation.h"
#include "src/trace/recorder.h"

namespace newtos {

// Tracing hooks for one server (wired by StackTracer, src/trace/stack_trace.h).
// All ids are interned at setup; the per-burst recording path is
// allocation-free. `msg_names` must point at kNumMsgTypes entries indexed by
// MsgType and outlive the server.
struct ServerTraceHooks {
  TraceRecorder* rec = nullptr;
  TrackId track = 0;
  NameId burst = 0;    // outer span: one poll-loop burst on the core
  NameId crash = 0;    // instant: the server died
  NameId restart = 0;  // instant: recovery completed, processing resumes
  const NameId* msg_names = nullptr;
};

class Server {
 public:
  using Chan = SimChannel<Msg>;

  Server(Simulation* sim, std::string name);
  virtual ~Server() = default;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const { return name_; }
  Simulation* sim() const { return sim_; }

  // Pins the server to a core. Must be called before traffic flows; may be
  // called again (re-steering) between experiments when the pipeline is idle.
  void BindCore(Core* core);
  Core* core() const { return core_; }

  // Creates an input channel owned by this server; its notify hook schedules
  // processing. Other components hold the returned pointer to push into it.
  Chan* CreateInput(const std::string& chan_name, size_t capacity,
                    const ChannelCostModel& cost = {});

  // Every input channel this server owns (for fault taps and introspection).
  std::vector<Chan*> Inputs() const;

  // Registers a custom work source (e.g. the NIC RX ring).
  struct WorkSource {
    std::function<bool()> has_work;
    std::function<Msg()> take;          // precondition: has_work()
    Cycles overhead_cycles = 0;         // dequeue-equivalent cost of taking one item
  };
  void AddWorkSource(WorkSource source);

  // Kicks the poll loop; cheap and idempotent. Called by channel notifies.
  void MaybeSchedule();

  // --- Fault injection / recovery ---

  // Kills the server: inputs are drained to the floor, in-flight work is
  // invalidated, OnCrash() runs. The server stays dead until Restart().
  void Crash();

  // Reboots: charges `restart_cycles` to the core, then OnRestart() runs and
  // processing resumes. No-op if not crashed.
  void Restart(Cycles restart_cycles, std::function<void()> on_ready = nullptr);

  // Hangs the server: the poll loop stops draining sources (messages pile
  // up, heartbeats go unanswered) but the process is not dead — no crash is
  // observable, which is exactly the fault a keepalive watchdog exists to
  // catch. A burst already on the core completes. Cured by Crash()+Restart()
  // (the watchdog's escalation path).
  void Hang();

  // Livelock: hangs as above, but additionally keeps the core busy in
  // `busy_cycles` slices forever — the server spins without progress,
  // starving co-located tenants. The spin dies with the next Crash().
  void Livelock(Cycles busy_cycles);

  bool crashed() const { return crashed_; }
  bool hung() const { return hung_; }
  uint64_t generation() const { return generation_; }

  // Watchdog wiring (src/fault/watchdog.h): once enabled, the server answers
  // every kCtlHeartbeat on its inputs by echoing the sequence number into
  // `ack_out` tagged with `id`, at a fixed small cycle cost. A hung, livelocked
  // or crashed server stops answering — that silence is the detection signal.
  void EnableHeartbeat(Chan* ack_out, uint64_t id);
  uint64_t heartbeats_acked() const { return heartbeats_acked_; }

  // --- Statistics ---
  uint64_t messages_processed() const { return messages_processed_; }
  uint64_t messages_lost_to_crash() const { return messages_lost_to_crash_; }

  // True if every source is empty and nothing is executing: the server's
  // poll loop is spinning dry. Poll policies use this.
  bool Idle() const;

  // Cold-cache penalty charged when this server runs on a core right after
  // a *different* server did (cache/TLB pollution from co-location). Zero
  // for servers that own their core outright.
  void set_tenant_switch_cycles(Cycles c) { tenant_switch_cycles_ = c; }
  Cycles tenant_switch_cycles() const { return tenant_switch_cycles_; }

  // Burst scheduling: the poll loop drains up to this many consecutive
  // messages from one source before rotating to the next (NAPI-style
  // batching — it amortizes tenant switches when servers share a core, at
  // a small cost in cross-source fairness). 1 = strict round-robin.
  void set_source_batch_limit(int limit) { source_batch_limit_ = limit > 0 ? limit : 1; }
  int source_batch_limit() const { return source_batch_limit_; }

  // Invoked on busy->idle and idle->busy transitions (for poll policies).
  void SetIdleObserver(std::function<void(bool idle)> fn) { idle_observer_ = std::move(fn); }

  // Wires tracing: bursts become spans on `hooks.track` with nested
  // per-message spans (named by MsgType, subdivided by each message's cycle
  // cost, carrying the packet's flow id), and crash/restart become instants
  // on the same track — so a microreboot is visible in the same timeline as
  // the traffic it interrupts.
  void EnableTrace(const ServerTraceHooks& hooks) { trace_ = hooks; }

#if NEWTOS_CHECKERS
  // Wires the channel-protocol checker (src/check): every input this server
  // owns registers with it, and all draining/handling runs under `actor`'s
  // identity so the checker can bind one producer and one consumer to each
  // ring. Call after construction, once the inputs exist.
  void EnableCheck(ChannelChecker* check, uint32_t actor);
#endif

 protected:
  // Cycle cost of fully processing `msg` (dequeue + work + output enqueues).
  virtual Cycles CostFor(const Msg& msg) = 0;

  // Semantic action; runs after the cost has been charged to the core.
  virtual void Handle(const Msg& msg) = 0;

  // State-loss hooks for the crash model.
  virtual void OnCrash() {}
  virtual void OnRestart() {}

  // Pushes into a downstream channel (the enqueue cost is part of CostFor).
  // Returns false if the channel was full (message dropped — downstream
  // protocols recover, exactly as with a full real ring).
  static bool Emit(Chan* out, Msg msg) { return out->Push(std::move(msg)); }

#if NEWTOS_CHECKERS
  // For subclasses that Emit from their own timer callbacks (outside the
  // burst path, where the base class cannot scope the identity for them) —
  // the watchdog's probe tick is the one case today.
  ChannelChecker* check() const { return check_; }
  uint32_t check_actor() const { return check_actor_; }
#endif

 private:
  void NotifyIdleChange();
  WorkSource* PickSource();
  void LivelockSpin(uint64_t gen);
  void AckHeartbeat(const Msg& probe);
  // Records the just-finished burst's spans (timestamps reconstructed from
  // the per-message durations captured at submit). Called before Handle()s
  // run so downstream channel events sort after the spans that caused them.
  void RecordBurstSpans();
  // Cycles -> picoseconds for trace span durations only: a cached fixed-point
  // multiply instead of CyclesToTime's two 64-bit divisions per message. At
  // most half a cycle of rounding error — invisible at display granularity,
  // and never fed back into the model.
  SimTime TraceCyclesToTime(Cycles c) {
    const FreqKhz f = core_->frequency();
    if (f != trace_freq_) {
      trace_freq_ = f;
      trace_ps_per_cycle_fp_ = ((int64_t{1'000'000'000} << 16) + f / 2) / f;
    }
    return (c * trace_ps_per_cycle_fp_) >> 16;
  }

  // Cycle cost of answering one heartbeat probe (bypasses CostFor: the ack
  // is base-class behaviour, cheaper than any protocol message).
  static constexpr Cycles kHeartbeatAckCycles = 150;

  Simulation* sim_;
  std::string name_;
  Core* core_ = nullptr;

  std::vector<std::unique_ptr<Chan>> owned_inputs_;
  std::vector<WorkSource> sources_;
  size_t rr_next_ = 0;
  int source_batch_limit_ = 16;

  Cycles tenant_switch_cycles_ = 250;
  // Burst buffers for MaybeSchedule: `batch_` is the burst waiting on the
  // core, `executing_` the one whose Handle() calls are running. Members
  // (not per-burst locals) so their capacity is reused forever — at most one
  // burst is in flight per server (guarded by processing_), and keeping them
  // out of the completion capture keeps that capture at two words.
  std::vector<Msg> batch_;
  std::vector<Msg> executing_;
  // Tracing mirrors of the burst buffers: per-message durations at the
  // submission-time operating point, swapped in lockstep with batch_/
  // executing_. Empty (and never touched) while tracing is off, so the
  // fast path stays allocation-free after the first traced burst.
  std::vector<SimTime> batch_durs_;
  std::vector<SimTime> executing_durs_;
  SimTime batch_total_dur_ = 0;
  FreqKhz trace_freq_ = 0;              // cache key for trace_ps_per_cycle_fp_
  int64_t trace_ps_per_cycle_fp_ = 0;   // ps per cycle, 16-bit fixed point
  ServerTraceHooks trace_;
  bool processing_ = false;
  bool crashed_ = false;
  bool hung_ = false;
  Cycles livelock_slice_ = 0;
  uint64_t generation_ = 0;
  uint64_t messages_processed_ = 0;
  uint64_t messages_lost_to_crash_ = 0;
  Chan* heartbeat_out_ = nullptr;
  uint64_t heartbeat_id_ = 0;
  uint64_t heartbeats_acked_ = 0;
  bool last_reported_idle_ = true;
  std::function<void(bool)> idle_observer_;
#if NEWTOS_CHECKERS
  ChannelChecker* check_ = nullptr;
  uint32_t check_actor_ = 0;
#endif
};

}  // namespace newtos

#endif  // SRC_OS_SERVER_H_
