// PeerHost: the remote load-generation machine, modeled with zero CPU cost.
//
// The paper's testbed drove the system under test from separate machines
// that were never the bottleneck. PeerHost reproduces that: a NIC directly
// wired to full TcpHost/UdpHost protocol state with no cycle accounting, so
// the peer is "infinitely fast" and everything measured is attributable to
// the system under test. Protocol behaviour (ACK clocking, congestion
// control, retransmission) is still fully real on this side.

#ifndef SRC_OS_PEER_HOST_H_
#define SRC_OS_PEER_HOST_H_

#include <functional>
#include <memory>

#include "src/hw/nic.h"
#include "src/net/tcp_host.h"
#include "src/net/udp.h"
#include "src/sim/simulation.h"

namespace newtos {

class PeerHost {
 public:
  // `nic` must outlive the peer; typically owned by a Machine or standalone.
  PeerHost(Simulation* sim, Ipv4Addr addr, Nic* nic, TcpParams tcp_params = {});

  PeerHost(const PeerHost&) = delete;
  PeerHost& operator=(const PeerHost&) = delete;

  Simulation* sim() { return sim_; }
  Ipv4Addr addr() const { return tcp_->addr(); }

  // Protocol parameters the peer applies to its listeners and connects
  // (workload classes read these) — must match the SUT's feature set, e.g.
  // SACK, for the option to be effective end to end.
  const TcpParams& tcp_params() const { return tcp_params_; }
  TcpHost& tcp() { return *tcp_; }
  UdpHost& udp() { return *udp_; }
  Nic* nic() { return nic_; }

  uint64_t tx_ring_full_drops() const { return tx_ring_full_drops_; }
  // Inbound frames discarded because a checksum (IP or L4) would not verify.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }

  // Raw packet transmission (used by the ping workload).
  void SendPacket(PacketPtr p) { Output(std::move(p)); }

  // Receives every inbound ICMP packet (echo replies, for ping RTTs).
  void SetIcmpHandler(std::function<void(const PacketPtr&)> fn) { icmp_handler_ = std::move(fn); }

 private:
  void DrainRx();
  void Output(PacketPtr p);

  Simulation* sim_;
  Nic* nic_;
  TcpParams tcp_params_;
  std::unique_ptr<TcpHost> tcp_;
  std::unique_ptr<UdpHost> udp_;
  std::function<void(const PacketPtr&)> icmp_handler_;
  uint64_t tx_ring_full_drops_ = 0;
  uint64_t rx_checksum_drops_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_PEER_HOST_H_
