// IP server: validates and routes packets between the driver and L4 stages.
//
// RX: driver -> IP -> (PF or L4 demux). TX: TCP/UDP -> IP -> driver. The
// server is stateless apart from counters, so its microreboot is transparent
// except for the messages that were in its queues.

#ifndef SRC_OS_IP_SERVER_H_
#define SRC_OS_IP_SERVER_H_

#include <cstdint>
#include <vector>

#include "src/os/costs.h"
#include "src/os/server.h"

namespace newtos {

class IpServer : public Server {
 public:
  IpServer(Simulation* sim, Ipv4Addr local_addr, const IpCosts& costs, size_t chan_capacity,
           const ChannelCostModel& chan_cost);

  // RX-side downstream: where accepted inbound packets go (the PF server).
  // When unset, the IP server demuxes straight to the L4 channels below.
  void set_rx_downstream(Chan* pf) { rx_downstream_ = pf; }

  // L4 demux targets, used when no PF stage is interposed. TCP may be
  // sharded: flows spread across the channels by symmetric flow hash.
  void set_l4_downstreams(Chan* tcp_rx, Chan* udp_rx) {
    tcp_rx_ = {tcp_rx};
    udp_rx_ = udp_rx;
  }
  void set_l4_downstreams(std::vector<Chan*> tcp_rx_shards, Chan* udp_rx) {
    tcp_rx_ = std::move(tcp_rx_shards);
    udp_rx_ = udp_rx;
  }
  // TX-side downstream: the driver's TX channel.
  void set_tx_downstream(Chan* driver_tx) { tx_downstream_ = driver_tx; }

  Chan* rx_in() { return rx_in_; }
  Chan* tx_in() { return tx_in_; }

  uint64_t rx_forwarded() const { return rx_forwarded_; }
  uint64_t icmp_echoes_answered() const { return icmp_echoes_answered_; }
  uint64_t tx_forwarded() const { return tx_forwarded_; }
  uint64_t dropped_not_local() const { return dropped_not_local_; }
  uint64_t dropped_ttl() const { return dropped_ttl_; }
  // Inbound packets discarded because the IPv4 header checksum would not
  // verify (Packet::corrupt carries kCorruptIp — a wire bit flip in the
  // header). Verification is modeled as free: NICs checksum in hardware.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  Ipv4Addr local_addr_;
  IpCosts costs_;
  Chan* rx_in_ = nullptr;
  Chan* tx_in_ = nullptr;
  Chan* rx_downstream_ = nullptr;
  Chan* tx_downstream_ = nullptr;
  std::vector<Chan*> tcp_rx_;
  Chan* udp_rx_ = nullptr;
  uint64_t rx_forwarded_ = 0;
  uint64_t tx_forwarded_ = 0;
  uint64_t icmp_echoes_answered_ = 0;
  uint64_t dropped_not_local_ = 0;
  uint64_t dropped_ttl_ = 0;
  uint64_t rx_checksum_drops_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_IP_SERVER_H_
