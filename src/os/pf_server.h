// Packet-filter server: evaluates the rule chain on inbound packets and
// demuxes survivors to the L4 servers.
//
// The per-packet cost is base + per_rule × rules-evaluated, so the length of
// the configured chain directly loads this stage — one of the knobs for
// moving the pipeline's bottleneck around in the experiments.

#ifndef SRC_OS_PF_SERVER_H_
#define SRC_OS_PF_SERVER_H_

#include <cstdint>
#include <vector>

#include "src/net/filter.h"
#include "src/os/costs.h"
#include "src/os/server.h"

namespace newtos {

class PfServer : public Server {
 public:
  PfServer(Simulation* sim, PacketFilter filter, const PfCosts& costs, size_t chan_capacity,
           const ChannelCostModel& chan_cost);

  void set_l4_downstreams(Chan* tcp_rx, Chan* udp_rx) {
    tcp_rx_ = {tcp_rx};
    udp_rx_ = udp_rx;
  }
  void set_l4_downstreams(std::vector<Chan*> tcp_rx_shards, Chan* udp_rx) {
    tcp_rx_ = std::move(tcp_rx_shards);
    udp_rx_ = udp_rx;
  }

  Chan* rx_in() { return rx_in_; }
  const PacketFilter& filter() const { return filter_; }
  void ReplaceFilter(PacketFilter filter) { filter_ = std::move(filter); }

  uint64_t accepted() const { return accepted_; }
  uint64_t dropped() const { return dropped_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  PacketFilter filter_;
  PfCosts costs_;
  Chan* rx_in_ = nullptr;
  std::vector<Chan*> tcp_rx_;
  Chan* udp_rx_ = nullptr;
  uint64_t accepted_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_PF_SERVER_H_
