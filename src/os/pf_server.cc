#include "src/os/pf_server.h"

#include <cassert>
#include <utility>

namespace newtos {

PfServer::PfServer(Simulation* sim, PacketFilter filter, const PfCosts& costs,
                   size_t chan_capacity, const ChannelCostModel& chan_cost)
    : Server(sim, "pf"), filter_(std::move(filter)), costs_(costs) {
  rx_in_ = CreateInput("rx", chan_capacity, chan_cost);
}

Cycles PfServer::CostFor(const Msg& msg) {
  if (msg.type != MsgType::kPacketRx || !msg.packet) {
    return costs_.base;
  }
  // Pre-evaluate only for the cost (deterministic: Evaluate is repeated in
  // Handle; the rule-walk count is what the core pays for).
  // To avoid double statistics we compute the count cheaply here from the
  // chain structure: worst case is the full chain; exact per-packet cost is
  // applied in Handle via the verdict. Use full-chain as the charged cost,
  // which matches a filter that always walks to its terminal rule for the
  // benchmark traffic (MakeSyntheticFilter's accept-all tail).
  return costs_.base + costs_.per_rule * static_cast<Cycles>(filter_.size());
}

void PfServer::Handle(const Msg& msg) {
  if (msg.type != MsgType::kPacketRx || !msg.packet) {
    return;
  }
  const FilterVerdict v = filter_.Evaluate(*msg.packet);
  if (v.action == FilterAction::kDrop) {
    ++dropped_;
    return;
  }
  Chan* next = nullptr;
  if (msg.packet->ip.proto == IpProto::kTcp) {
    assert(!tcp_rx_.empty() && "PF server needs L4 downstreams");
    next = tcp_rx_[SymmetricFlowHash(PacketFlowKey(*msg.packet)) % tcp_rx_.size()];
  } else {
    next = udp_rx_;
  }
  assert(next != nullptr && "PF server needs L4 downstreams");
  if (Emit(next, msg)) {
    ++accepted_;
  }
}

}  // namespace newtos
