#include "src/os/ip_server.h"

#include <cassert>

namespace newtos {

IpServer::IpServer(Simulation* sim, Ipv4Addr local_addr, const IpCosts& costs,
                   size_t chan_capacity, const ChannelCostModel& chan_cost)
    : Server(sim, "ip"), local_addr_(local_addr), costs_(costs) {
  rx_in_ = CreateInput("rx", chan_capacity, chan_cost);
  tx_in_ = CreateInput("tx", chan_capacity, chan_cost);
}

Cycles IpServer::CostFor(const Msg& msg) {
  if (msg.type == MsgType::kPacketRx && msg.packet &&
      msg.packet->ip.proto == IpProto::kIcmp) {
    return costs_.per_packet + costs_.icmp_echo;
  }
  return costs_.per_packet;
}

void IpServer::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx: {
      const Packet& p = *msg.packet;
      if ((p.corrupt & kCorruptIp) != 0) {
        ++rx_checksum_drops_;  // header checksum mismatch: drop before routing
        return;
      }
      if (p.ip.dst != local_addr_) {
        ++dropped_not_local_;  // we are a host, not a router
        return;
      }
      if (p.ip.ttl == 0) {
        ++dropped_ttl_;
        return;
      }
      if (p.ip.proto == IpProto::kIcmp) {
        // ICMP terminates at the IP layer: answer echo requests in place.
        if (p.icmp.type == kIcmpEchoRequest && tx_downstream_ != nullptr) {
          PacketPtr reply = MakePacket();
          reply->ip.proto = IpProto::kIcmp;
          reply->ip.src = local_addr_;
          reply->ip.dst = p.ip.src;
          reply->icmp.type = kIcmpEchoReply;
          reply->icmp.id = p.icmp.id;
          reply->icmp.seq = p.icmp.seq;
          reply->payload_bytes = p.payload_bytes;
          reply->created_at = p.created_at;  // carries the ping's birth time
          Msg out;
          out.type = MsgType::kPacketTx;
          out.packet = std::move(reply);
          if (Emit(tx_downstream_, std::move(out))) {
            ++icmp_echoes_answered_;
          }
        }
        return;
      }
      Chan* next = rx_downstream_;
      if (next == nullptr) {
        if (p.ip.proto == IpProto::kTcp) {
          assert(!tcp_rx_.empty());
          next = tcp_rx_[SymmetricFlowHash(PacketFlowKey(p)) % tcp_rx_.size()];
        } else {
          next = udp_rx_;
        }
      }
      assert(next != nullptr && "IP server needs a PF or L4 downstream");
      if (Emit(next, msg)) {
        ++rx_forwarded_;
      }
      break;
    }
    case MsgType::kPacketTx: {
      assert(tx_downstream_ != nullptr);
      // Outbound: fill in what the L4 stage left to us.
      msg.packet->ip.ttl = 64;
      if (Emit(tx_downstream_, msg)) {
        ++tx_forwarded_;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace newtos
