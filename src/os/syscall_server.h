// Syscall gateway server: interposes between applications and the L4 servers.
//
// The paper's multiserver system routes POSIX-ish socket calls through a
// gateway; enabling it adds one pipeline stage (and its cycle cost) in each
// direction, which the consolidation experiments use as an extra stage to
// pack onto slow cores. Requests (app -> L4) and events (L4 -> app) both
// pass through.

#ifndef SRC_OS_SYSCALL_SERVER_H_
#define SRC_OS_SYSCALL_SERVER_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/os/costs.h"
#include "src/os/server.h"

namespace newtos {

class SyscallServer : public Server {
 public:
  SyscallServer(Simulation* sim, const SyscallCosts& costs, size_t chan_capacity,
                const ChannelCostModel& chan_cost);

  // Downstream L4 request channel(s). With multiple TCP shards the gateway
  // routes: listens broadcast to every shard, connects round-robin (the
  // shard then picks an RSS-compatible source port), and per-handle requests
  // follow the owning shard (accept handles carry it; connect handles are
  // remembered at routing time).
  void set_l4_request_out(Chan* out) { l4_req_outs_ = {out}; }
  void set_l4_request_outs(std::vector<Chan*> outs) { l4_req_outs_ = std::move(outs); }

  // Requests from applications enter here.
  Chan* req_in() { return req_in_; }

  // The gateway's event input: register THIS with the L4 server, then map
  // each app id to its real event channel here. App ids must match the L4
  // server's assignment (register in the same order).
  Chan* evt_in() { return evt_in_; }
  uint32_t MapApp(Chan* app_events);

  uint64_t forwarded() const { return forwarded_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;

 private:
  uint32_t ShardFor(const Msg& msg);

  SyscallCosts costs_;
  Chan* req_in_ = nullptr;
  Chan* evt_in_ = nullptr;
  std::vector<Chan*> l4_req_outs_;
  std::vector<Chan*> apps_;
  // (app, handle) -> owning shard, for actively opened connections.
  std::map<std::pair<uint32_t, uint64_t>, uint32_t> connect_routes_;
  uint32_t next_connect_shard_ = 0;
  uint64_t forwarded_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_SYSCALL_SERVER_H_
