// UDP server: the connectionless L4 sibling of the TCP server.
//
// Apps bind ports (kSockListen) and send datagrams (kSockSend with addr and
// port filled in); received datagrams are delivered as kEvtData carrying the
// payload size, tagged with the binding's handle.

#ifndef SRC_OS_UDP_SERVER_H_
#define SRC_OS_UDP_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/udp.h"
#include "src/os/costs.h"
#include "src/os/server.h"
#include "src/sim/ring_deque.h"

namespace newtos {

class UdpServer : public Server {
 public:
  UdpServer(Simulation* sim, Ipv4Addr addr, const UdpCosts& costs, size_t chan_capacity,
            const ChannelCostModel& chan_cost);

  void set_ip_tx(Chan* ip_tx) { ip_tx_ = ip_tx; }

  Chan* rx_in() { return rx_in_; }
  Chan* app_in() { return app_in_; }

  uint32_t RegisterApp(Chan* app_events);

  UdpHost& host() { return *host_; }
  uint64_t datagrams_in() const { return datagrams_in_; }
  uint64_t datagrams_out() const { return datagrams_out_; }
  // Datagrams discarded on RX because the UDP checksum would not verify.
  uint64_t rx_checksum_drops() const { return rx_checksum_drops_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;
  void OnCrash() override;
  void OnRestart() override;

 private:
  struct Binding {
    uint32_t app = 0;
    uint64_t handle = 0;
    uint16_t udp_port = 0;
  };

  void MakeHost();
  void BindPort(const Binding& b);

  Ipv4Addr addr_;
  UdpCosts costs_;
  Chan* rx_in_ = nullptr;
  Chan* app_in_ = nullptr;
  Chan* ip_tx_ = nullptr;

  std::unique_ptr<UdpHost> host_;
  RingDeque<PacketPtr> pending_tx_;
  RingDeque<Msg> pending_evt_;
  std::vector<Chan*> apps_;
  std::vector<Binding> bindings_;  // recovery set
  std::unordered_map<uint64_t, Binding> by_handle_;  // handle -> binding

  uint64_t datagrams_in_ = 0;
  uint64_t datagrams_out_ = 0;
  uint64_t rx_checksum_drops_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_UDP_SERVER_H_
