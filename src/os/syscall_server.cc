#include "src/os/syscall_server.h"

#include <cassert>

#include "src/os/tcp_server.h"

namespace newtos {

SyscallServer::SyscallServer(Simulation* sim, const SyscallCosts& costs, size_t chan_capacity,
                             const ChannelCostModel& chan_cost)
    : Server(sim, "syscall"), costs_(costs) {
  req_in_ = CreateInput("req", chan_capacity, chan_cost);
  evt_in_ = CreateInput("evt", chan_capacity, chan_cost);
}

uint32_t SyscallServer::MapApp(Chan* app_events) {
  apps_.push_back(app_events);
  return static_cast<uint32_t>(apps_.size() - 1);
}

Cycles SyscallServer::CostFor(const Msg& msg) {
  (void)msg;
  return costs_.per_msg;
}

uint32_t SyscallServer::ShardFor(const Msg& msg) {
  // Accepted connections carry their shard in the handle; actively opened
  // ones were pinned when the connect was routed.
  if (msg.type == MsgType::kSockConnect) {
    const uint32_t shard = next_connect_shard_++ % static_cast<uint32_t>(l4_req_outs_.size());
    connect_routes_[{msg.app, msg.handle}] = shard;
    return shard;
  }
  auto it = connect_routes_.find({msg.app, msg.handle});
  if (it != connect_routes_.end()) {
    return it->second;
  }
  if (TcpServer::IsAcceptHandle(msg.handle)) {
    return TcpServer::ShardOfAcceptHandle(msg.handle) %
           static_cast<uint32_t>(l4_req_outs_.size());
  }
  return 0;
}

void SyscallServer::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kSockListen:
      assert(!l4_req_outs_.empty());
      for (Chan* out : l4_req_outs_) {  // every shard accepts on the port
        if (Emit(out, msg)) {
          ++forwarded_;
        }
      }
      break;
    case MsgType::kSockConnect:
    case MsgType::kSockSend:
    case MsgType::kSockClose:
    case MsgType::kSockRead:
      assert(!l4_req_outs_.empty());
      if (Emit(l4_req_outs_[ShardFor(msg)], msg)) {
        ++forwarded_;
      }
      break;
    case MsgType::kEvtClosed:
      connect_routes_.erase({msg.app, msg.handle});
      [[fallthrough]];
    case MsgType::kEvtAccepted:
    case MsgType::kEvtEstablished:
    case MsgType::kEvtData:
    case MsgType::kEvtDrained:
      assert(msg.app < apps_.size());
      if (Emit(apps_[msg.app], msg)) {
        ++forwarded_;
      }
      break;
    default:
      break;
  }
}

}  // namespace newtos
