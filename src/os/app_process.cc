#include "src/os/app_process.h"

#include <cassert>
#include <utility>

namespace newtos {

AppProcess::AppProcess(Simulation* sim, std::string name, Behavior behavior, size_t chan_capacity,
                       const ChannelCostModel& chan_cost)
    : Server(sim, std::move(name)), behavior_(std::move(behavior)) {
  events_in_ = CreateInput("events", chan_capacity, chan_cost);
  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_req_.empty(); },
      .take =
          [this] {
            Msg m = std::move(pending_req_.front());
            pending_req_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });
}

void AppProcess::Request(Msg msg) {
  msg.app = app_id_;
  pending_req_.push_back(std::move(msg));
  MaybeSchedule();
}

uint64_t AppProcess::Connect(Ipv4Addr dst, uint16_t port) {
  const uint64_t handle = AllocHandle();
  Msg m;
  m.type = MsgType::kSockConnect;
  m.handle = handle;
  m.addr = dst;
  m.port = port;
  Request(std::move(m));
  return handle;
}

void AppProcess::ListenTcp(uint16_t port) {
  Msg m;
  m.type = MsgType::kSockListen;
  m.port = port;
  Request(std::move(m));
}

void AppProcess::SendBytes(uint64_t handle, uint64_t bytes) {
  Msg m;
  m.type = MsgType::kSockSend;
  m.handle = handle;
  m.value = bytes;
  Request(std::move(m));
}

void AppProcess::Close(uint64_t handle) {
  Msg m;
  m.type = MsgType::kSockClose;
  m.handle = handle;
  Request(std::move(m));
}

void AppProcess::Compute(Cycles cycles, std::function<void()> then) {
  assert(core() != nullptr);
  const uint64_t gen = generation();
  core()->Execute(cycles, [this, gen, then = std::move(then)] {
    if (gen != generation()) {
      return;
    }
    if (then) {
      then();
    }
  });
}

Cycles AppProcess::CostFor(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kSockConnect:
    case MsgType::kSockListen:
    case MsgType::kSockSend:
    case MsgType::kSockClose:
    case MsgType::kSockRead:
      return behavior_.request_cycles;
    default:
      return behavior_.cost_for ? behavior_.cost_for(msg) : Cycles{300};
  }
}

void AppProcess::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kSockConnect:
    case MsgType::kSockListen:
    case MsgType::kSockSend:
    case MsgType::kSockClose:
    case MsgType::kSockRead:
      assert(req_out_ != nullptr && "app needs a request channel");
      Emit(req_out_, msg);
      ++requests_sent_;
      break;
    default:
      ++events_seen_;
      if (behavior_.on_event) {
        behavior_.on_event(*this, msg);
      }
      break;
  }
}

}  // namespace newtos
