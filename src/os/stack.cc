#include "src/os/stack.h"

#include <cassert>

#include "src/net/packet_pool.h"

namespace newtos {

MultiserverStack::MultiserverStack(Simulation* sim, Machine* machine, const StackConfig& config)
    : sim_(sim), machine_(machine), config_(config) {
  const size_t cap = config_.chan_capacity;
  const ChannelCostModel& cc = config_.chan_cost;

  assert(config_.tcp_shards >= 1);
  if (config_.tcp_shards > 1) {
    config_.use_syscall_gateway = true;  // sharding requires the routing gateway
  }

  sim_->ReserveEvents(config_.event_reserve);
  PacketPool::Current().Reserve(config_.packet_reserve);

  driver_ = std::make_unique<DriverServer>(sim_, machine_->nic(), config_.driver, cap, cc);
  ip_ = std::make_unique<IpServer>(sim_, config_.addr, config_.ip, cap, cc);
  for (int i = 0; i < config_.tcp_shards; ++i) {
    tcps_.push_back(std::make_unique<TcpServer>(sim_, config_.addr, config_.tcp,
                                                config_.tcp_params, cap, cc));
    tcps_.back()->set_shard(static_cast<uint32_t>(i),
                            static_cast<uint32_t>(config_.tcp_shards));
  }
  udp_ = std::make_unique<UdpServer>(sim_, config_.addr, config_.udp, cap, cc);

  std::vector<SimChannel<Msg>*> tcp_rx_shards;
  for (auto& shard : tcps_) {
    tcp_rx_shards.push_back(shard->rx_in());
  }

  // RX path: driver -> ip -> [pf] -> tcp shards / udp.
  driver_->set_rx_upstream(ip_->rx_in());
  if (config_.use_pf) {
    pf_ = std::make_unique<PfServer>(sim_, MakeSyntheticFilter(config_.pf_rules), config_.pf, cap,
                                     cc);
    ip_->set_rx_downstream(pf_->rx_in());
    pf_->set_l4_downstreams(tcp_rx_shards, udp_->rx_in());
  } else {
    ip_->set_l4_downstreams(tcp_rx_shards, udp_->rx_in());
  }

  // TX path: tcp/udp -> ip -> driver -> NIC.
  for (auto& shard : tcps_) {
    shard->set_ip_tx(ip_->tx_in());
  }
  udp_->set_ip_tx(ip_->tx_in());
  ip_->set_tx_downstream(driver_->tx_in());

  if (config_.use_syscall_gateway) {
    syscall_ = std::make_unique<SyscallServer>(sim_, config_.syscall, cap, cc);
    std::vector<SimChannel<Msg>*> req_outs;
    for (auto& shard : tcps_) {
      req_outs.push_back(shard->app_in());
    }
    syscall_->set_l4_request_outs(std::move(req_outs));
  }

  for (Server* s : SystemServers()) {
    s->set_tenant_switch_cycles(config_.tenant_switch_cycles);
  }
}

void MultiserverStack::BindDefaultLayout() {
  assert(machine_->num_cores() >= 4 && "default layout needs >= 4 cores");
  driver_->BindCore(machine_->core(1));
  ip_->BindCore(machine_->core(2));
  if (pf_) {
    pf_->BindCore(machine_->core(2));
  }
  for (auto& shard : tcps_) {
    shard->BindCore(machine_->core(3));
  }
  udp_->BindCore(machine_->core(3));
  if (syscall_) {
    syscall_->BindCore(machine_->core(3));
  }
}

SocketApi* MultiserverStack::CreateApp(const std::string& name, Core* core) {
  auto app = std::make_unique<AppProcess>(sim_, name, AppProcess::Behavior{},
                                          config_.chan_capacity, config_.chan_cost);
  app->BindCore(core);
  if (config_.use_syscall_gateway) {
    // app -> gateway -> tcp shard; events come back shard -> gateway -> app.
    // Registration order keeps every shard's app index aligned with the
    // gateway's.
    uint32_t id = 0;
    for (auto& shard : tcps_) {
      id = shard->RegisterApp(syscall_->evt_in());
    }
    const uint32_t gw_id = syscall_->MapApp(app->events());
    assert(id == gw_id && "gateway/TCP app ids must stay aligned");
    app->set_app_id(gw_id);
    app->set_request_out(syscall_->req_in());
  } else {
    const uint32_t id = tcps_[0]->RegisterApp(app->events());
    app->set_app_id(id);
    app->set_request_out(tcps_[0]->app_in());
  }
  apps_.push_back(std::move(app));
  sockets_.push_back(std::make_unique<MultiserverSocket>(apps_.back().get()));
  return sockets_.back().get();
}

std::vector<Server*> MultiserverStack::SystemServers() {
  std::vector<Server*> out{driver_.get(), ip_.get(), udp_.get()};
  for (auto& shard : tcps_) {
    out.push_back(shard.get());
  }
  if (pf_) {
    out.push_back(pf_.get());
  }
  if (syscall_) {
    out.push_back(syscall_.get());
  }
  return out;
}

std::vector<AppProcess*> MultiserverStack::Apps() {
  std::vector<AppProcess*> out;
  out.reserve(apps_.size());
  for (auto& a : apps_) {
    out.push_back(a.get());
  }
  return out;
}

}  // namespace newtos
