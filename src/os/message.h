// Messages exchanged between multiserver stack components over channels.
//
// One flat message struct keeps channels homogeneous (a real shared-memory
// channel carries fixed-size slots). Packets travel by shared_ptr — NewtOS
// likewise passed pool pointers, not payload copies, between servers.

#ifndef SRC_OS_MESSAGE_H_
#define SRC_OS_MESSAGE_H_

#include <cstdint>

#include "src/net/packet.h"
#include "src/trace/trace_event.h"

namespace newtos {

enum class MsgType : uint8_t {
  // Packet movement.
  kPacketRx,  // a received packet moving up the stack
  kPacketTx,  // a packet moving down toward the NIC

  // Socket API, application -> TCP/UDP server.
  kSockConnect,  // handle=app handle, addr=dst ip, value=dst port
  kSockListen,   // value=port
  kSockSend,     // handle, value=bytes
  kSockClose,    // handle
  kSockRead,     // handle, value=max bytes (only when auto-consume is off)

  // Socket events, TCP/UDP server -> application.
  kEvtEstablished,  // handle (0 -> newly accepted: value carries server handle)
  kEvtAccepted,     // handle=new server-assigned handle, value=listen port
  kEvtData,         // handle, value=bytes delivered in order
  kEvtDrained,      // handle: all submitted bytes acked
  kEvtClosed,       // handle

  // Control plane.
  kCtlCrash,      // fault injection: the receiving server crashes
  kCtlRestart,    // recovery manager: reinitialize
  kCtlHeartbeat,  // watchdog liveness probe; value carries the sequence number
};

// Number of MsgType values; sizes per-type lookup tables (trace name ids).
inline constexpr size_t kNumMsgTypes = static_cast<size_t>(MsgType::kCtlHeartbeat) + 1;

struct Msg {
  MsgType type = MsgType::kPacketRx;
  PacketPtr packet;     // valid for kPacketRx/kPacketTx
  uint64_t handle = 0;  // socket handle (app-scoped)
  uint64_t value = 0;   // bytes / generic argument
  Ipv4Addr addr = 0;    // peer address for kSockConnect / UDP send
  uint16_t port = 0;    // peer or listen port
  uint32_t app = 0;     // application id (assigned by the L4 server at registration)
};

const char* MsgTypeName(MsgType t);

// Causal ids for tracing (found by SimChannel<Msg> via ADL): a message
// carrying a packet is traceable by the packet's unique id (hop pairing) and
// its flow id; control/socket messages are not followed across hops.
inline TraceIds TraceIdsOf(const Msg& m) {
  if (m.packet) {
    return TraceIds{m.packet->id, m.packet->trace_id};
  }
  return {};
}

}  // namespace newtos

#endif  // SRC_OS_MESSAGE_H_
