#include "src/os/udp_server.h"

#include <cassert>
#include <utility>

namespace newtos {

UdpServer::UdpServer(Simulation* sim, Ipv4Addr addr, const UdpCosts& costs, size_t chan_capacity,
                     const ChannelCostModel& chan_cost)
    : Server(sim, "udp"), addr_(addr), costs_(costs) {
  rx_in_ = CreateInput("rx", chan_capacity, chan_cost);
  app_in_ = CreateInput("app", chan_capacity, chan_cost);

  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_tx_.empty(); },
      .take =
          [this] {
            Msg m;
            m.type = MsgType::kPacketTx;
            m.packet = std::move(pending_tx_.front());
            pending_tx_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });
  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_evt_.empty(); },
      .take =
          [this] {
            Msg m = std::move(pending_evt_.front());
            pending_evt_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });

  MakeHost();
}

void UdpServer::MakeHost() {
  host_ = std::make_unique<UdpHost>(sim(), addr_, [this](PacketPtr p) {
    pending_tx_.push_back(std::move(p));
    MaybeSchedule();
  });
}

uint32_t UdpServer::RegisterApp(Chan* app_events) {
  apps_.push_back(app_events);
  return static_cast<uint32_t>(apps_.size() - 1);
}

void UdpServer::BindPort(const Binding& b) {
  host_->Bind(b.udp_port, [this, b](const PacketPtr& p) {
    Msg evt;
    evt.type = MsgType::kEvtData;
    evt.handle = b.handle;
    evt.app = b.app;
    evt.value = p->payload_bytes;
    evt.addr = p->ip.src;
    evt.port = p->udp.src_port;
    pending_evt_.push_back(std::move(evt));
    MaybeSchedule();
  });
}

Cycles UdpServer::CostFor(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      return costs_.rx_datagram;
    case MsgType::kPacketTx:
      return costs_.tx_datagram;
    case MsgType::kEvtData:
      return costs_.sock_op / 2;
    default:
      return costs_.sock_op;
  }
}

void UdpServer::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      if (msg.packet->corrupt != 0) {
        ++rx_checksum_drops_;  // UDP checksum mismatch (pseudo-header included)
        break;
      }
      ++datagrams_in_;
      host_->OnPacket(msg.packet);
      break;
    case MsgType::kPacketTx:
      assert(ip_tx_ != nullptr);
      ++datagrams_out_;
      Emit(ip_tx_, msg);
      break;
    case MsgType::kEvtData:
      assert(msg.app < apps_.size());
      Emit(apps_[msg.app], msg);
      break;
    case MsgType::kSockListen: {
      Binding b{msg.app, msg.handle, msg.port};
      by_handle_[msg.handle] = b;
      bindings_.push_back(b);
      BindPort(b);
      break;
    }
    case MsgType::kSockSend: {
      auto it = by_handle_.find(msg.handle);
      const uint16_t src_port = it != by_handle_.end() ? it->second.udp_port : uint16_t{0};
      host_->Send(src_port, msg.addr, msg.port, static_cast<uint32_t>(msg.value), msg.handle);
      break;
    }
    default:
      break;
  }
}

void UdpServer::OnCrash() {
  pending_tx_.clear();
  pending_evt_.clear();
  by_handle_.clear();
  MakeHost();
}

void UdpServer::OnRestart() {
  for (const Binding& b : bindings_) {
    by_handle_[b.handle] = b;
    BindPort(b);
  }
  MaybeSchedule();
}

}  // namespace newtos
