// Per-server cycle-cost tables.
//
// These calibrate how many cycles each stack stage spends per message. The
// absolute values are modeled on published figures for user-level stacks of
// the period (a few hundred cycles for a driver descriptor, ~2k cycles for
// TCP segment processing, ~1-2k cycles per kernel IPC that the channels
// avoid); what the experiments depend on is their *ratios* — which stage
// saturates first as frequency drops — and those are robust to the exact
// constants. All are overridable through StackConfig.

#ifndef SRC_OS_COSTS_H_
#define SRC_OS_COSTS_H_

#include "src/sim/time.h"

namespace newtos {

struct DriverCosts {
  Cycles rx_per_packet = 900;   // descriptor, buffer recycle, demux hint
  Cycles tx_per_packet = 700;   // descriptor write, doorbell amortized
  // NAPI-style batching: when more frames are already waiting in the RX ring
  // behind the current one, descriptor refill and doorbell work amortize and
  // the marginal frame costs only this much. Set equal to rx_per_packet to
  // disable batching (the Tab. 4 ablation).
  Cycles rx_batched_packet = 650;
  Cycles restart_cycles = 30'000'000;  // microreboot: reattach rings, reset NIC
};

struct IpCosts {
  Cycles per_packet = 500;      // validate, route, TTL, forward
  Cycles icmp_echo = 400;       // building an ICMP echo reply (ping)
  Cycles restart_cycles = 15'000'000;
};

struct PfCosts {
  Cycles base = 250;            // per-packet fixed overhead
  Cycles per_rule = 30;         // each rule evaluated in the chain
  Cycles restart_cycles = 10'000'000;
};

struct TcpCosts {
  Cycles rx_segment = 1800;     // demux, state machine, reassembly bookkeeping
  Cycles tx_segment = 1100;     // segmentation, header fill, checksum offload setup
  Cycles sock_op = 600;         // connect/listen/send/close request handling
  Cycles evt_deliver = 250;     // pushing an event to the app channel
  Cycles restart_cycles = 50'000'000;  // the biggest server: state reload
};

struct UdpCosts {
  Cycles rx_datagram = 800;
  Cycles tx_datagram = 700;
  Cycles sock_op = 400;
  Cycles restart_cycles = 8'000'000;
};

struct SyscallCosts {
  Cycles per_msg = 900;  // gateway validation + forward
  Cycles restart_cycles = 8'000'000;
};

}  // namespace newtos

#endif  // SRC_OS_COSTS_H_
