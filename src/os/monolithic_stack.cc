#include "src/os/monolithic_stack.h"

#include <cassert>
#include <utility>

namespace newtos {

MonolithicStack::MonolithicStack(Simulation* sim, Machine* machine, int core_index, Ipv4Addr addr,
                                 MonolithicCosts costs, TcpParams tcp_params)
    : Server(sim, "monolithic"),
      addr_(addr),
      costs_(costs),
      tcp_params_(tcp_params),
      nic_(machine->nic()) {
  BindCore(machine->core(core_index));

  host_ = std::make_unique<TcpHost>(sim, addr_, [this](PacketPtr p) {
    pending_tx_.push_back(std::move(p));
    MaybeSchedule();
  });

  // NIC RX ring (softirq-equivalent work source).
  AddWorkSource(WorkSource{
      .has_work = [this] { return nic_->rx_pending() > 0; },
      .take =
          [this] {
            Msg m;
            m.type = MsgType::kPacketRx;
            m.packet = nic_->PollRx();
            return m;
          },
      .overhead_cycles = 150,
  });
  nic_->SetRxNotify([this] { MaybeSchedule(); });

  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_tx_.empty(); },
      .take =
          [this] {
            Msg m;
            m.type = MsgType::kPacketTx;
            m.packet = std::move(pending_tx_.front());
            pending_tx_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });
  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_evt_.empty(); },
      .take =
          [this] {
            Msg m = std::move(pending_evt_.front());
            pending_evt_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });
  AddWorkSource(WorkSource{
      .has_work = [this] { return !pending_req_.empty(); },
      .take =
          [this] {
            Msg m = std::move(pending_req_.front());
            pending_req_.pop_front();
            return m;
          },
      .overhead_cycles = 0,
  });
}

MonolithicStack::Api* MonolithicStack::CreateApp() {
  const uint32_t id = static_cast<uint32_t>(apis_.size());
  apis_.push_back(std::make_unique<Api>(this, id));
  handlers_.emplace_back();
  return apis_.back().get();
}

void MonolithicStack::QueueEvent(Msg evt) {
  pending_evt_.push_back(std::move(evt));
  MaybeSchedule();
}

void MonolithicStack::SubmitRequest(Msg msg) {
  pending_req_.push_back(std::move(msg));
  MaybeSchedule();
}

TcpHost::AppHooks MonolithicStack::HooksFor(SockId id) {
  TcpHost::AppHooks hooks;
  hooks.on_established = [this, id](TcpConnection* c) {
    auto it = by_conn_.find(c);
    Msg evt;
    if (it == by_conn_.end()) {
      const SockId assigned{id.app, next_accept_handle_++};
      by_conn_[c] = assigned;
      by_sock_[assigned] = c;
      evt.type = MsgType::kEvtAccepted;
      evt.handle = assigned.handle;
      evt.app = assigned.app;
      evt.port = c->key().src_port;
    } else {
      evt.type = MsgType::kEvtEstablished;
      evt.handle = it->second.handle;
      evt.app = it->second.app;
    }
    QueueEvent(std::move(evt));
  };
  hooks.on_data = [this](TcpConnection* c, uint32_t bytes) {
    auto it = by_conn_.find(c);
    if (it == by_conn_.end()) {
      return;
    }
    Msg evt;
    evt.type = MsgType::kEvtData;
    evt.handle = it->second.handle;
    evt.app = it->second.app;
    evt.value = bytes;
    QueueEvent(std::move(evt));
  };
  hooks.on_drained = [this](TcpConnection* c) {
    auto it = by_conn_.find(c);
    if (it == by_conn_.end()) {
      return;
    }
    Msg evt;
    evt.type = MsgType::kEvtDrained;
    evt.handle = it->second.handle;
    evt.app = it->second.app;
    QueueEvent(std::move(evt));
  };
  hooks.on_closed = [this](TcpConnection* c) {
    auto it = by_conn_.find(c);
    if (it == by_conn_.end()) {
      return;
    }
    Msg evt;
    evt.type = MsgType::kEvtClosed;
    evt.handle = it->second.handle;
    evt.app = it->second.app;
    by_sock_.erase(it->second);
    by_conn_.erase(it);
    QueueEvent(std::move(evt));
    // Deferred reap on the host's own wheel (see TcpServer for rationale).
    host_->ScheduleReap();
  };
  return hooks;
}

Cycles MonolithicStack::CostFor(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      return costs_.rx_path;
    case MsgType::kPacketTx:
      return costs_.tx_path;
    case MsgType::kSockConnect:
    case MsgType::kSockListen:
    case MsgType::kSockSend:
    case MsgType::kSockClose:
    case MsgType::kSockRead:
      return costs_.syscall;
    default:
      return costs_.evt_deliver;
  }
}

void MonolithicStack::HandleSockRequest(const Msg& msg) {
  const SockId id{msg.app, msg.handle};
  switch (msg.type) {
    case MsgType::kSockConnect: {
      TcpConnection* conn = host_->Connect(msg.addr, msg.port, HooksFor(id), tcp_params_);
      if (conn != nullptr) {
        by_sock_[id] = conn;
        by_conn_[conn] = id;
      }
      break;
    }
    case MsgType::kSockListen:
      host_->Listen(msg.port, HooksFor(SockId{msg.app, 0}), tcp_params_);
      break;
    case MsgType::kSockSend: {
      auto it = by_sock_.find(id);
      if (it != by_sock_.end()) {
        it->second->Send(msg.value);
      }
      break;
    }
    case MsgType::kSockClose: {
      auto it = by_sock_.find(id);
      if (it != by_sock_.end()) {
        it->second->CloseSend();
      }
      break;
    }
    default:
      break;
  }
}

void MonolithicStack::Handle(const Msg& msg) {
  switch (msg.type) {
    case MsgType::kPacketRx:
      if (msg.packet->corrupt != 0) {
        ++rx_checksum_drops_;  // fused path verifies IP and L4 in one pass
        break;
      }
      ++packets_in_;
      if (msg.packet->ip.dst == addr_ && msg.packet->ip.proto == IpProto::kTcp) {
        host_->OnPacket(msg.packet);
      }
      break;
    case MsgType::kPacketTx:
      ++packets_out_;
      nic_->Transmit(msg.packet);
      break;
    case MsgType::kEvtAccepted:
    case MsgType::kEvtEstablished:
    case MsgType::kEvtData:
    case MsgType::kEvtDrained:
    case MsgType::kEvtClosed:
      assert(msg.app < handlers_.size());
      if (handlers_[msg.app]) {
        handlers_[msg.app](msg);
      }
      break;
    default:
      HandleSockRequest(msg);
      break;
  }
}

// --- Api ---

void MonolithicStack::Api::SetEventHandler(std::function<void(const Msg&)> handler) {
  stack_->handlers_[app_id_] = std::move(handler);
}

uint64_t MonolithicStack::Api::Connect(Ipv4Addr dst, uint16_t port) {
  const uint64_t handle = stack_->next_handle_++;
  Msg m;
  m.type = MsgType::kSockConnect;
  m.handle = handle;
  m.addr = dst;
  m.port = port;
  m.app = app_id_;
  stack_->SubmitRequest(std::move(m));
  return handle;
}

void MonolithicStack::Api::Listen(uint16_t port) {
  Msg m;
  m.type = MsgType::kSockListen;
  m.port = port;
  m.app = app_id_;
  stack_->SubmitRequest(std::move(m));
}

void MonolithicStack::Api::Send(uint64_t handle, uint64_t bytes) {
  Msg m;
  m.type = MsgType::kSockSend;
  m.handle = handle;
  m.value = bytes;
  m.app = app_id_;
  stack_->SubmitRequest(std::move(m));
}

void MonolithicStack::Api::Close(uint64_t handle) {
  Msg m;
  m.type = MsgType::kSockClose;
  m.handle = handle;
  m.app = app_id_;
  stack_->SubmitRequest(std::move(m));
}

void MonolithicStack::Api::Compute(Cycles cycles, std::function<void()> then) {
  Core* core = stack_->core();
  assert(core != nullptr);
  // A null continuation must become an *empty* callback, not a wrapped null
  // std::function (which would look engaged and throw when invoked).
  if (then) {
    core->Execute(cycles, std::move(then));
  } else {
    core->Execute(cycles, InlineCallback());
  }
}

Simulation* MonolithicStack::Api::sim() { return stack_->sim(); }

}  // namespace newtos
