#include "src/os/peer_host.h"

#include <utility>

namespace newtos {

PeerHost::PeerHost(Simulation* sim, Ipv4Addr addr, Nic* nic, TcpParams tcp_params)
    : sim_(sim), nic_(nic), tcp_params_(tcp_params) {
  tcp_ = std::make_unique<TcpHost>(sim_, addr, [this](PacketPtr p) { Output(std::move(p)); });
  udp_ = std::make_unique<UdpHost>(sim_, addr, [this](PacketPtr p) { Output(std::move(p)); });
  nic_->SetRxNotify([this] { DrainRx(); });
}

void PeerHost::DrainRx() {
  // Zero-cost host: the ring drains instantly.
  while (PacketPtr p = nic_->PollRx()) {
    if (p->corrupt != 0) {
      ++rx_checksum_drops_;  // any failed checksum: discard at the edge
      continue;
    }
    if (p->ip.proto == IpProto::kTcp) {
      tcp_->OnPacket(p);
    } else if (p->ip.proto == IpProto::kUdp) {
      udp_->OnPacket(p);
    } else if (icmp_handler_) {
      icmp_handler_(p);
    }
  }
}

void PeerHost::Output(PacketPtr p) {
  if (!nic_->Transmit(std::move(p))) {
    ++tx_ring_full_drops_;  // TCP's retransmission recovers; UDP loses it
  }
}

}  // namespace newtos
