#include "src/os/microreboot.h"

namespace newtos {

size_t MicrorebootManager::InjectCrash(Server* server, SimTime at, Cycles restart_cycles) {
  const size_t index = incidents_.size();
  incidents_.push_back(Incident{server->name(), 0, 0, 0});
  sim_->ScheduleAt(at, [this, server, restart_cycles, index] {
    incidents_[index].crashed_at = sim_->Now();
    server->Crash();
    sim_->Schedule(detection_latency_, [this, server, restart_cycles, index] {
      incidents_[index].detected_at = sim_->Now();
      server->Restart(restart_cycles,
                      [this, index] { incidents_[index].recovered_at = sim_->Now(); });
    });
  });
  return index;
}

size_t MicrorebootManager::RecoverDetected(Server* server, SimTime suspected_since,
                                           Cycles restart_cycles) {
  const size_t index = incidents_.size();
  incidents_.push_back(Incident{server->name(), suspected_since, sim_->Now(), 0});
  if (!server->crashed()) {
    server->Crash();  // the cure for a hang: kill it so the reboot is clean
  }
  server->Restart(restart_cycles,
                  [this, index] { incidents_[index].recovered_at = sim_->Now(); });
  return index;
}

bool MicrorebootManager::AllRecovered() const {
  for (const Incident& i : incidents_) {
    if (i.recovered_at == 0) {
      return false;
    }
  }
  return !incidents_.empty();
}

}  // namespace newtos
