#include "src/os/microreboot.h"

namespace newtos {

void MicrorebootManager::EnableTrace(TraceRecorder* rec, TrackId track) {
  trace_rec_ = rec;
  trace_track_ = track;
  trace_detected_ = rec != nullptr ? rec->InternName("detected") : 0;
}

void MicrorebootManager::TraceBegin(size_t index, const std::string& server, SimTime since) {
  incident_names_.resize(incidents_.size(), 0);
  if (!TraceOn(trace_rec_)) {
    return;
  }
  // Interning dedupes, so only a server's first incident allocates.
  incident_names_[index] = trace_rec_->InternName(server);
  trace_rec_->AsyncBegin(since, trace_track_, incident_names_[index], index + 1);
}

void MicrorebootManager::TraceDetected(size_t index) {
  if (TraceOn(trace_rec_) && incident_names_[index] != 0) {
    trace_rec_->Instant(sim_->Now(), trace_track_, trace_detected_, index + 1);
  }
}

void MicrorebootManager::TraceRecovered(size_t index) {
  if (TraceOn(trace_rec_) && incident_names_[index] != 0) {
    trace_rec_->AsyncEnd(sim_->Now(), trace_track_, incident_names_[index], index + 1);
  }
}

size_t MicrorebootManager::InjectCrash(Server* server, SimTime at, Cycles restart_cycles) {
  const size_t index = incidents_.size();
  incidents_.push_back(Incident{server->name(), 0, 0, 0});
  sim_->ScheduleAt(at, [this, server, restart_cycles, index] {
    incidents_[index].crashed_at = sim_->Now();
    TraceBegin(index, server->name(), sim_->Now());
    server->Crash();
    sim_->Schedule(detection_latency_, [this, server, restart_cycles, index] {
      incidents_[index].detected_at = sim_->Now();
      TraceDetected(index);
      server->Restart(restart_cycles, [this, index] {
        incidents_[index].recovered_at = sim_->Now();
        TraceRecovered(index);
      });
    });
  });
  return index;
}

size_t MicrorebootManager::RecoverDetected(Server* server, SimTime suspected_since,
                                           Cycles restart_cycles) {
  const size_t index = incidents_.size();
  incidents_.push_back(Incident{server->name(), suspected_since, sim_->Now(), 0});
  // The outage began at the last sign of life, not at detection — the trace
  // span shows the full window the watchdog's deadline bounds.
  TraceBegin(index, server->name(), suspected_since);
  TraceDetected(index);
  if (!server->crashed()) {
    server->Crash();  // the cure for a hang: kill it so the reboot is clean
  }
  server->Restart(restart_cycles, [this, index] {
    incidents_[index].recovered_at = sim_->Now();
    TraceRecovered(index);
  });
  return index;
}

bool MicrorebootManager::AllRecovered() const {
  for (const Incident& i : incidents_) {
    if (i.recovered_at == 0) {
      return false;
    }
  }
  return !incidents_.empty();
}

}  // namespace newtos
