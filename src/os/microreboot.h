// MicrorebootManager: fault injection and recovery orchestration.
//
// Plays the role of the paper's resurrection infrastructure: a crashed
// server is detected after a keepalive interval, then rebooted; the reboot's
// cycle cost lands on the server's own core (a slower core reboots slower —
// one of the questions Fig. 8 answers). Each incident is recorded with
// crash/detection/recovery timestamps so benches can report recovery time
// and the throughput dip around it.

#ifndef SRC_OS_MICROREBOOT_H_
#define SRC_OS_MICROREBOOT_H_

#include <string>
#include <vector>

#include "src/os/server.h"
#include "src/sim/simulation.h"
#include "src/trace/recorder.h"

namespace newtos {

class MicrorebootManager {
 public:
  explicit MicrorebootManager(Simulation* sim) : sim_(sim) {}

  struct Incident {
    std::string server;
    SimTime crashed_at = 0;
    SimTime detected_at = 0;
    SimTime recovered_at = 0;  // 0 until recovery completes

    SimTime RecoveryTime() const { return recovered_at - crashed_at; }
  };

  // Default keepalive: the monitor notices a dead server within this time.
  void set_detection_latency(SimTime latency) { detection_latency_ = latency; }

  // Schedules a crash of `server` at absolute time `at`; detection and
  // restart (with `restart_cycles` on the server's core) follow
  // automatically. Returns the incident index.
  size_t InjectCrash(Server* server, SimTime at, Cycles restart_cycles);

  // Watchdog escalation path: a monitor concluded (now) that `server` is
  // unresponsive since `suspected_since` (its last sign of life). If the
  // server is not already dead — a hang or livelock — it is killed first;
  // then it is rebooted. Returns the incident index.
  size_t RecoverDetected(Server* server, SimTime suspected_since, Cycles restart_cycles);

  const std::vector<Incident>& incidents() const { return incidents_; }

  // True once every injected incident has completed recovery.
  bool AllRecovered() const;

  // Wires tracing: each incident becomes an async span on `track` named
  // after the crashed server, covering crash (or last sign of life) through
  // recovery, with a "detected" instant in between — the outage window sits
  // in the same timeline as the traffic it disrupts. Incident recording may
  // intern the server's name (first incident per server only); incidents are
  // control-plane-rare, so this never touches the steady-state fast path.
  void EnableTrace(TraceRecorder* rec, TrackId track);

 private:
  // Incident trace bookkeeping (no-ops while tracing is off/unwired).
  void TraceBegin(size_t index, const std::string& server, SimTime since);
  void TraceDetected(size_t index);
  void TraceRecovered(size_t index);

  Simulation* sim_;
  SimTime detection_latency_ = 200 * kMicrosecond;
  std::vector<Incident> incidents_;

  TraceRecorder* trace_rec_ = nullptr;
  TrackId trace_track_ = 0;
  NameId trace_detected_ = 0;
  std::vector<NameId> incident_names_;  // parallel to incidents_; 0 = untraced
};

}  // namespace newtos

#endif  // SRC_OS_MICROREBOOT_H_
