// Network driver server: the stack stage that owns the NIC.
//
// RX: the NIC's ring is a work source; each received frame costs
// rx_per_packet cycles and is forwarded up the stack. TX: a channel of
// outbound packets; each costs tx_per_packet cycles and is posted to the
// NIC's TX ring. A crash drops the frames sitting in the rings' software
// view (the hardware rings survive, like a re-attachable device).

#ifndef SRC_OS_DRIVER_SERVER_H_
#define SRC_OS_DRIVER_SERVER_H_

#include <cstdint>

#include "src/hw/nic.h"
#include "src/os/costs.h"
#include "src/os/server.h"

namespace newtos {

class DriverServer : public Server {
 public:
  DriverServer(Simulation* sim, Nic* nic, const DriverCosts& costs, size_t tx_chan_capacity,
               const ChannelCostModel& chan_cost);

  // Stage above (IP) for received packets; must be set before traffic flows.
  void set_rx_upstream(Chan* up) { rx_upstream_ = up; }

  // Where the stack pushes outbound packets.
  Chan* tx_in() { return tx_in_; }

  const DriverCosts& costs() const { return costs_; }
  uint64_t rx_forwarded() const { return rx_forwarded_; }
  uint64_t tx_posted() const { return tx_posted_; }
  uint64_t tx_nic_rejects() const { return tx_nic_rejects_; }

 protected:
  Cycles CostFor(const Msg& msg) override;
  void Handle(const Msg& msg) override;
  void OnCrash() override;
  void OnRestart() override;

 private:
  Nic* nic_;
  DriverCosts costs_;
  Chan* tx_in_ = nullptr;
  Chan* rx_upstream_ = nullptr;
  uint64_t rx_forwarded_ = 0;
  uint64_t tx_posted_ = 0;
  uint64_t tx_nic_rejects_ = 0;
};

}  // namespace newtos

#endif  // SRC_OS_DRIVER_SERVER_H_
