// Per-packet latency decomposition from trace-recorder async hops.
//
// Every traced channel records an async begin when a message enters its ring
// and the matching end when the consumer dequeues it, paired by the
// message's hop id and placed on the channel's own track (sim_channel.h,
// stack_trace.cc). A packet flowing driver -> ip -> tcp -> app therefore
// leaves one (begin, end) residency interval per stage, all sharing one hop
// id. This module replays those events into:
//
//   * a per-stage LatencyHistogram of ring residencies (where does a packet
//     wait, and for how long — the delay_analysis view), and
//   * an end-to-end histogram over traversal episodes: first begin to last
//     end per hop id. Hop ids are recycled when a packet is reused, so an id
//     re-entering a stage it already visited closes the current episode and
//     opens the next one — correct for the linear pipeline the stack is.
//
// This is post-run analysis over a recorder that already holds the events;
// it allocates freely and never touches the simulation. Stage iteration is
// track-id ordered, so tables and CSVs are deterministic for a deterministic
// trace.

#ifndef SRC_TRACE_LATENCY_DECOMP_H_
#define SRC_TRACE_LATENCY_DECOMP_H_

#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/metrics/table.h"
#include "src/trace/recorder.h"

namespace newtos {

class LatencyDecomposer {
 public:
  struct Stage {
    std::string name;  // the channel track's name, e.g. "ip/in"
    LatencyHistogram residency;
  };

  // Replays `rec`'s held async events (oldest first). May be called for
  // several recorders; episodes do not span recorders.
  void Consume(const TraceRecorder& rec);

  // Stages that saw at least one completed hop, in track-id order.
  const std::vector<Stage>& stages() const { return stages_; }
  const LatencyHistogram& e2e() const { return e2e_; }

  uint64_t hops() const { return hops_; }            // completed stage hops
  uint64_t episodes() const { return e2e_.count(); }  // completed traversals
  uint64_t unmatched() const { return unmatched_; }   // ends with no begin

  // One row per stage (plus an "e2e" summary row): count, mean and tail
  // quantiles in microseconds, and each stage's share of summed residency.
  Table StageTable() const;

  // Long-form CDF: one row per (stage, quantile) pair — the shape gnuplot
  // and pandas both take directly.
  Table CdfTable() const;

  bool WriteStageCsv(const std::string& path) const;
  bool WriteCdfCsv(const std::string& path) const;

 private:
  struct Open {
    uint64_t pair = 0;
    SimTime begin = 0;
  };
  struct Episode {
    SimTime first_begin = -1;
    SimTime last_end = -1;
    std::vector<uint32_t> visited;  // track ids seen this traversal
  };

  void CloseEpisode(Episode* ep);

  std::vector<Stage> stages_;          // indexed by track id (sparse names)
  std::vector<std::vector<Open>> open_;  // per track: hops awaiting their end
  LatencyHistogram e2e_;
  uint64_t hops_ = 0;
  uint64_t unmatched_ = 0;
};

}  // namespace newtos

#endif  // SRC_TRACE_LATENCY_DECOMP_H_
