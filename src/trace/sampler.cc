#include "src/trace/sampler.h"

#include <cassert>
#include <utility>

namespace newtos {

void TraceSamplers::Add(TrackId track, NameId name, std::function<int64_t()> probe) {
  assert(probe);
  probes_.push_back(Probe{track, name, std::move(probe)});
}

void TraceSamplers::Start(SimTime interval) {
  assert(interval > 0);
  interval_ = interval;
  if (running_) {
    return;  // next tick picks up the new interval
  }
  running_ = true;
  next_ = sim_->Schedule(interval_, [this] { Tick(); });
}

void TraceSamplers::Stop() {
  running_ = false;
  next_.Cancel();
}

void TraceSamplers::Tick() {
  if (!running_) {
    return;
  }
  const SimTime now = sim_->Now();
  for (const Probe& p : probes_) {
    rec_->Counter(now, p.track, p.name, p.fn());
  }
  next_ = sim_->Schedule(interval_, [this] { Tick(); });
}

}  // namespace newtos
