#include "src/trace/recorder.h"

namespace newtos {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : ring_(RoundUpPow2(capacity > 0 ? capacity : 1)) {
  mask_ = ring_.size() - 1;
  // Id 0 is reserved in both tables so "unset" never aliases a real entry.
  names_.emplace_back();
  tracks_.push_back(Track{"trace", 0});
}

NameId TraceRecorder::InternName(std::string_view name) {
  std::string key(name);
  const auto it = name_ids_.find(key);
  if (it != name_ids_.end()) {
    return it->second;
  }
  const NameId id = static_cast<NameId>(names_.size());
  names_.push_back(key);
  name_ids_.emplace(std::move(key), id);
  return id;
}

TrackId TraceRecorder::RegisterTrack(std::string_view name, int sort_rank) {
  const TrackId id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(Track{std::string(name), sort_rank});
  return id;
}

}  // namespace newtos
