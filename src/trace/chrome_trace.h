// Chrome trace-event JSON exporter.
//
// Serializes a TraceRecorder into the JSON array format understood by
// chrome://tracing and by Perfetto's legacy importer (ui.perfetto.dev →
// "Open trace file"). Tracks become threads of one process, with
// thread_name/thread_sort_index metadata so the timeline reads NIC → driver
// → ip → pf → tcp → syscall → app top to bottom; span begin/end map to
// "B"/"E" slices, async pairs to "b"/"e" (overlapping channel hops), instants
// to "i" and counters to "C".
//
// Output is a pure function of the recorder's contents: timestamps are
// simulated picoseconds rendered as exact microsecond decimals, and events
// are emitted in recording order. Two identical runs export byte-identical
// files — pinned by tests/trace_test.cc.

#ifndef SRC_TRACE_CHROME_TRACE_H_
#define SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <string>

#include "src/trace/recorder.h"

namespace newtos {

// Writes the JSON document to `out`. Returns false if the stream failed.
bool WriteChromeTrace(const TraceRecorder& rec, std::ostream& out);

// Writes to `path` with an error-checked flush. Returns false on any I/O
// failure (open, write, or flush).
bool WriteChromeTraceFile(const TraceRecorder& rec, const std::string& path);

}  // namespace newtos

#endif  // SRC_TRACE_CHROME_TRACE_H_
