// Chrome trace-event JSON exporter.
//
// Serializes a TraceRecorder into the JSON array format understood by
// chrome://tracing and by Perfetto's legacy importer (ui.perfetto.dev →
// "Open trace file"). Tracks become threads of one process, with
// thread_name/thread_sort_index metadata so the timeline reads NIC → driver
// → ip → pf → tcp → syscall → app top to bottom; span begin/end map to
// "B"/"E" slices, async pairs to "b"/"e" (overlapping channel hops), instants
// to "i" and counters to "C".
//
// Output is a pure function of the recorder's contents: timestamps are
// simulated picoseconds rendered as exact microsecond decimals, and events
// are emitted in recording order. Two identical runs export byte-identical
// files — pinned by tests/trace_test.cc.

#ifndef SRC_TRACE_CHROME_TRACE_H_
#define SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/trace/recorder.h"

namespace newtos {

// Writes the JSON document to `out`. Returns false if the stream failed.
bool WriteChromeTrace(const TraceRecorder& rec, std::ostream& out);

// Merges several recorders into one timeline. The live backend records one
// single-threaded recorder per server thread (the recorder itself is not
// thread-safe, the per-actor split is what makes live tracing race-free);
// this joins them post-join into a single process whose thread ids are
// offset per recorder, so cross-recorder async pairs (an AsyncBegin on the
// app's recorder matched by an AsyncEnd on the peer's) correlate by id in
// the viewer. Null entries are skipped. Timestamps are emitted as recorded:
// the recorders must share a clock (see RuntimeClock's captured epoch).
bool WriteChromeTraceMerged(const std::vector<const TraceRecorder*>& recs,
                            std::ostream& out);

// Writes to `path` with an error-checked flush. Returns false on any I/O
// failure (open, write, or flush).
bool WriteChromeTraceFile(const TraceRecorder& rec, const std::string& path);

}  // namespace newtos

#endif  // SRC_TRACE_CHROME_TRACE_H_
