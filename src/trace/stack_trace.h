// StackTracer: one-call tracing for a whole multiserver stack.
//
// Owns the TraceRecorder and TraceSamplers for an experiment and wires every
// instrumented component of a MultiserverStack — cores (poll/halt instants,
// DVFS counter), the NIC (tx/rx/drop instants), every server (burst spans
// with nested per-message spans) and every server input channel (async
// enqueue→dequeue hops) — plus samplers for core utilization, channel ring
// occupancy, and event-queue depth. Extra servers built outside the stack
// (the watchdog, late-created apps) join via AddServer; a MicrorebootManager
// joins via AddMicroreboot so recovery windows land in the same timeline.
//
// Wiring order: construct the tracer after the stack's channels exist. For a
// watchdog, call Watch() for every monitored server first, then AddServer —
// AddServer registers the input rings that exist at that point.
//
// All interning happens at wiring time; Enable()/Disable() flip recording
// on and off without touching any allocation. With `samplers` enabled the
// ticks add simulation events (raising events_processed) but never perturb
// model-observable state; span/instant/hop recording alone adds no events at
// all, so a traced run's golden determinism hashes match an untraced run's
// bit for bit (tests/determinism_test.cc pins this).

#ifndef SRC_TRACE_STACK_TRACE_H_
#define SRC_TRACE_STACK_TRACE_H_

#include <array>
#include <string>

#include "src/os/microreboot.h"
#include "src/os/stack.h"
#include "src/trace/recorder.h"
#include "src/trace/sampler.h"

namespace newtos {

class StackTracer {
 public:
  struct Options {
    size_t ring_capacity = 1 << 20;  // 32 MiB of events; ring keeps the tail
    bool samplers = true;            // counter sampling (adds sim events)
    SimTime sample_interval = 100 * kMicrosecond;
  };

  StackTracer(Simulation* sim, MultiserverStack* stack);  // default Options
  StackTracer(Simulation* sim, MultiserverStack* stack, const Options& options);

  StackTracer(const StackTracer&) = delete;
  StackTracer& operator=(const StackTracer&) = delete;

  // Wires a server built outside the stack (watchdog, late app) and its
  // input channels. For a watchdog, call after its Watch() calls.
  void AddServer(Server* server);

  // Wires an additional NIC (e.g. the testbed peer's).
  void AddNic(Nic* nic);

  // Routes recovery incidents onto the "recovery" track.
  void AddMicroreboot(MicrorebootManager* mgr);

  // Starts/stops recording (and the samplers, per options). Idempotent.
  void Enable();
  void Disable();

  TraceRecorder& recorder() { return rec_; }
  const TraceRecorder& recorder() const { return rec_; }
  TraceSamplers& samplers() { return samplers_; }

  // Export shortcuts (error-checked file writes; see the exporter headers).
  bool ExportChromeTrace(const std::string& path) const;
  bool ExportFolded(const std::string& path) const;

 private:
  void WireCore(Core* core);
  void WireServer(Server* server, int sort_rank);

  Simulation* sim_;
  Options options_;
  TraceRecorder rec_;
  TraceSamplers samplers_;

  // Interned once; shared by every wired server (indexed by MsgType).
  std::array<NameId, kNumMsgTypes> msg_names_{};
  NameId burst_ = 0;
  NameId crash_ = 0;
  NameId restart_ = 0;
  NameId hop_ = 0;
  NameId depth_ = 0;
  NameId util_ = 0;
  TrackId recovery_track_ = 0;
  int next_server_rank_ = 20;
};

}  // namespace newtos

#endif  // SRC_TRACE_STACK_TRACE_H_
