#include "src/trace/latency_decomp.h"

#include <algorithm>
#include <unordered_map>

namespace newtos {

namespace {

constexpr double kCdfQuantiles[] = {0.01, 0.05, 0.10, 0.25, 0.50, 0.75,
                                    0.90, 0.95, 0.99, 0.999, 1.0};

double Us(SimTime t) { return static_cast<double>(t) / kMicrosecond; }

}  // namespace

void LatencyDecomposer::CloseEpisode(Episode* ep) {
  if (ep->first_begin >= 0 && ep->last_end > ep->first_begin) {
    e2e_.Record(ep->last_end - ep->first_begin);
  }
  ep->first_begin = -1;
  ep->last_end = -1;
  ep->visited.clear();
}

void LatencyDecomposer::Consume(const TraceRecorder& rec) {
  std::unordered_map<uint64_t, Episode> episodes;
  rec.ForEach([&](const TraceEvent& e) {
    if (e.type != TraceEventType::kAsyncBegin && e.type != TraceEventType::kAsyncEnd) {
      return;
    }
    const uint32_t track = e.track;
    if (track >= stages_.size()) {
      stages_.resize(track + 1);
      open_.resize(track + 1);
    }
    if (stages_[track].name.empty()) {
      stages_[track].name = rec.TrackOf(e.track).name;
    }
    Episode& ep = episodes[e.flow];
    if (e.type == TraceEventType::kAsyncBegin) {
      // A hop id re-entering a stage it already visited is the packet being
      // recycled for its next traversal: close the episode it just finished.
      if (std::find(ep.visited.begin(), ep.visited.end(), track) != ep.visited.end()) {
        CloseEpisode(&ep);
      }
      ep.visited.push_back(track);
      if (ep.first_begin < 0) {
        ep.first_begin = e.ts;
      }
      open_[track].push_back({e.flow, e.ts});
      return;
    }
    // AsyncEnd: match the oldest open begin with this pair id on this track.
    auto& open = open_[track];
    auto it = open.begin();
    while (it != open.end() && it->pair != e.flow) {
      ++it;
    }
    if (it == open.end()) {
      ++unmatched_;  // its begin fell off the ring (or predates tracing)
      return;
    }
    stages_[track].residency.Record(e.ts - it->begin);
    ++hops_;
    open.erase(it);
    ep.last_end = e.ts;
  });
  for (auto& [pair, ep] : episodes) {
    CloseEpisode(&ep);  // histogram folds are commutative; map order is fine
  }
  for (auto& open : open_) {
    unmatched_ += open.size();
    open.clear();
  }
}

Table LatencyDecomposer::StageTable() const {
  Table t({"stage", "count", "mean_us", "p50_us", "p95_us", "p99_us", "share_pct"});
  double total_ns = 0.0;
  for (const Stage& s : stages_) {
    total_ns += s.residency.MeanNs() * static_cast<double>(s.residency.count());
  }
  for (const Stage& s : stages_) {
    if (s.residency.count() == 0) {
      continue;
    }
    const double stage_ns = s.residency.MeanNs() * static_cast<double>(s.residency.count());
    t.AddRow({
        s.name,
        Table::Int(static_cast<int64_t>(s.residency.count())),
        Table::Num(s.residency.MeanNs() / 1e3, 3),
        Table::Num(Us(s.residency.P50()), 3),
        Table::Num(Us(s.residency.P95()), 3),
        Table::Num(Us(s.residency.P99()), 3),
        total_ns > 0 ? Table::Pct(stage_ns / total_ns) : "-",
    });
  }
  t.AddRow({
      "e2e",
      Table::Int(static_cast<int64_t>(e2e_.count())),
      Table::Num(e2e_.MeanNs() / 1e3, 3),
      Table::Num(Us(e2e_.P50()), 3),
      Table::Num(Us(e2e_.P95()), 3),
      Table::Num(Us(e2e_.P99()), 3),
      "-",
  });
  return t;
}

Table LatencyDecomposer::CdfTable() const {
  Table t({"stage", "quantile", "us"});
  auto add = [&t](const std::string& name, const LatencyHistogram& h) {
    if (h.count() == 0) {
      return;
    }
    for (double q : kCdfQuantiles) {
      t.AddRow({name, Table::Num(q, 3), Table::Num(Us(h.Quantile(q)), 3)});
    }
  };
  for (const Stage& s : stages_) {
    add(s.name, s.residency);
  }
  add("e2e", e2e_);
  return t;
}

bool LatencyDecomposer::WriteStageCsv(const std::string& path) const {
  return StageTable().WriteCsvFile(path);
}

bool LatencyDecomposer::WriteCdfCsv(const std::string& path) const {
  return CdfTable().WriteCsvFile(path);
}

}  // namespace newtos
