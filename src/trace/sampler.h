// TraceSamplers: periodic counter sampling into a TraceRecorder.
//
// Spans capture *where* cycles go; counters capture *how full* things are.
// A TraceSamplers owns a set of probes (core utilization, channel ring
// occupancy, event-queue depth — registered by the wiring layer) and, while
// started, ticks on a fixed simulated interval emitting one kCounter event
// per probe. Probes are std::functions registered at setup time; the tick
// itself allocates nothing (the reschedule flows through the pooled event
// queue and the probe calls are plain invocations).
//
// Determinism note: a started sampler adds events to the simulation's queue.
// It never mutates model state, so every model-observable quantity (packet
// timestamps, protocol stats, delivered bytes) is unchanged — but raw
// Simulation::events_processed() counts will include the ticks. Experiments
// that pin event counts should leave samplers off (StackTracer::Options).

#ifndef SRC_TRACE_SAMPLER_H_
#define SRC_TRACE_SAMPLER_H_

#include <functional>
#include <vector>

#include "src/sim/simulation.h"
#include "src/trace/recorder.h"

namespace newtos {

class TraceSamplers {
 public:
  TraceSamplers(Simulation* sim, TraceRecorder* rec) : sim_(sim), rec_(rec) {}

  TraceSamplers(const TraceSamplers&) = delete;
  TraceSamplers& operator=(const TraceSamplers&) = delete;

  // Registers a probe; sampled every tick while started. Setup-time only.
  void Add(TrackId track, NameId name, std::function<int64_t()> probe);

  // Begins ticking every `interval` (first tick after one interval).
  // Idempotent; Start on a running sampler just updates the interval.
  void Start(SimTime interval);

  // Cancels the pending tick. Safe when not running.
  void Stop();

  bool running() const { return running_; }
  size_t probes() const { return probes_.size(); }

 private:
  void Tick();

  struct Probe {
    TrackId track = 0;
    NameId name = 0;
    std::function<int64_t()> fn;
  };

  Simulation* sim_;
  TraceRecorder* rec_;
  std::vector<Probe> probes_;
  SimTime interval_ = 0;
  bool running_ = false;
  EventHandle next_;
};

}  // namespace newtos

#endif  // SRC_TRACE_SAMPLER_H_
