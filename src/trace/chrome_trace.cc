#include "src/trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace newtos {
namespace {

// Escapes a name for a JSON string literal. Names here are channel/server
// identifiers, so this only has to be correct, not fast.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders picoseconds as an exact microsecond decimal ("12.345678"): the
// trace format's ts unit is microseconds, and integer math keeps the output
// bit-identical across platforms.
void PrintMicros(std::ostream& out, SimTime ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, ps / 1'000'000,
                ps % 1'000'000);
  out << buf;
}

}  // namespace

bool WriteChromeTrace(const TraceRecorder& rec, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Track metadata: names and display order.
  bool first = true;
  const auto& tracks = rec.tracks();
  for (size_t t = 0; t < tracks.size(); ++t) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(tracks[t].name)
        << "\"}},\n";
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tracks[t].sort_rank
        << "}}";
  }

  rec.ForEach([&](const TraceEvent& e) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const std::string name = JsonEscape(rec.NameOf(e.name));
    out << "{\"pid\":1,\"tid\":" << e.track << ",\"ts\":";
    PrintMicros(out, e.ts);
    switch (e.type) {
      case TraceEventType::kSpanBegin:
        out << ",\"ph\":\"B\",\"name\":\"" << name << "\"";
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kSpanEnd:
        out << ",\"ph\":\"E\"";
        break;
      case TraceEventType::kComplete:
        out << ",\"ph\":\"X\",\"name\":\"" << name << "\",\"dur\":";
        PrintMicros(out, e.value);
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kAsyncBegin:
        out << ",\"ph\":\"b\",\"cat\":\"hop\",\"id\":" << e.flow << ",\"name\":\"" << name
            << "\"";
        break;
      case TraceEventType::kAsyncEnd:
        out << ",\"ph\":\"e\",\"cat\":\"hop\",\"id\":" << e.flow << ",\"name\":\"" << name
            << "\"";
        break;
      case TraceEventType::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << name << "\"";
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kCounter:
        out << ",\"ph\":\"C\",\"name\":\"" << name << "\",\"args\":{\"value\":" << e.value
            << "}";
        break;
    }
    out << "}";
  });

  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool WriteChromeTraceFile(const TraceRecorder& rec, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  if (!WriteChromeTrace(rec, f)) {
    return false;
  }
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace newtos
