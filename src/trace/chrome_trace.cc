#include "src/trace/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace newtos {
namespace {

// Escapes a name for a JSON string literal. Names here are channel/server
// identifiers, so this only has to be correct, not fast.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders picoseconds as an exact microsecond decimal ("12.345678"): the
// trace format's ts unit is microseconds, and integer math keeps the output
// bit-identical across platforms.
void PrintMicros(std::ostream& out, SimTime ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, ps / 1'000'000,
                ps % 1'000'000);
  out << buf;
}

// Emits one recorder's track metadata and events with all thread ids offset
// by `tid_base` (0 for the single-recorder export). `first` threads the
// JSON-array comma state across recorders.
void EmitRecorder(const TraceRecorder& rec, size_t tid_base, bool* first_io,
                  std::ostream& out) {
  bool first = *first_io;
  const auto& tracks = rec.tracks();
  for (size_t t = 0; t < tracks.size(); ++t) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid_base + t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(tracks[t].name)
        << "\"}},\n";
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid_base + t
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tracks[t].sort_rank
        << "}}";
  }

  rec.ForEach([&](const TraceEvent& e) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const std::string name = JsonEscape(rec.NameOf(e.name));
    out << "{\"pid\":1,\"tid\":" << tid_base + e.track << ",\"ts\":";
    PrintMicros(out, e.ts);
    switch (e.type) {
      case TraceEventType::kSpanBegin:
        out << ",\"ph\":\"B\",\"name\":\"" << name << "\"";
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kSpanEnd:
        out << ",\"ph\":\"E\"";
        break;
      case TraceEventType::kComplete:
        out << ",\"ph\":\"X\",\"name\":\"" << name << "\",\"dur\":";
        PrintMicros(out, e.value);
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kAsyncBegin:
        out << ",\"ph\":\"b\",\"cat\":\"hop\",\"id\":" << e.flow << ",\"name\":\"" << name
            << "\"";
        break;
      case TraceEventType::kAsyncEnd:
        out << ",\"ph\":\"e\",\"cat\":\"hop\",\"id\":" << e.flow << ",\"name\":\"" << name
            << "\"";
        break;
      case TraceEventType::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << name << "\"";
        if (e.flow != 0) {
          out << ",\"args\":{\"flow\":" << e.flow << "}";
        }
        break;
      case TraceEventType::kCounter:
        out << ",\"ph\":\"C\",\"name\":\"" << name << "\",\"args\":{\"value\":" << e.value
            << "}";
        break;
    }
    out << "}";
  });
  *first_io = first;
}

}  // namespace

bool WriteChromeTrace(const TraceRecorder& rec, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  EmitRecorder(rec, 0, &first, out);
  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool WriteChromeTraceMerged(const std::vector<const TraceRecorder*>& recs,
                            std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  size_t tid_base = 0;
  for (const TraceRecorder* rec : recs) {
    if (rec == nullptr) {
      continue;
    }
    EmitRecorder(*rec, tid_base, &first, out);
    tid_base += rec->tracks().size();
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool WriteChromeTraceFile(const TraceRecorder& rec, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  if (!WriteChromeTrace(rec, f)) {
    return false;
  }
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace newtos
