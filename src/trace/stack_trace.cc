#include "src/trace/stack_trace.h"

#include "src/trace/chrome_trace.h"
#include "src/trace/folded_stack.h"

namespace newtos {
namespace {

// Display ranks: recovery on top, then the NICs, the pipeline stages in
// wiring order, and the hardware rows at the bottom.
constexpr int kRecoveryRank = 0;
constexpr int kNicRank = 10;
constexpr int kCoreRank = 1000;
constexpr int kSimRank = 2000;

}  // namespace

StackTracer::StackTracer(Simulation* sim, MultiserverStack* stack)
    : StackTracer(sim, stack, Options{}) {}

StackTracer::StackTracer(Simulation* sim, MultiserverStack* stack, const Options& options)
    : sim_(sim), options_(options), rec_(options.ring_capacity), samplers_(sim, &rec_) {
  for (size_t i = 0; i < kNumMsgTypes; ++i) {
    msg_names_[i] = rec_.InternName(MsgTypeName(static_cast<MsgType>(i)));
  }
  burst_ = rec_.InternName("burst");
  crash_ = rec_.InternName("crash");
  restart_ = rec_.InternName("restarted");
  hop_ = rec_.InternName("in-flight");
  depth_ = rec_.InternName("depth");
  util_ = rec_.InternName("util_pct");
  recovery_track_ = rec_.RegisterTrack("recovery", kRecoveryRank);

  // Event-queue depth: the one probe that watches the engine itself.
  const TrackId sim_track = rec_.RegisterTrack("sim", kSimRank);
  samplers_.Add(sim_track, rec_.InternName("pending_events"),
                [sim] { return static_cast<int64_t>(sim->PendingEvents()); });

  if (stack != nullptr) {
    AddNic(stack->machine()->nic());
    for (Server* s : stack->SystemServers()) {
      WireServer(s, next_server_rank_++);
    }
    for (AppProcess* app : stack->Apps()) {
      WireServer(app, next_server_rank_++);
    }
    Machine* m = stack->machine();
    for (int i = 0; i < m->num_cores(); ++i) {
      WireCore(m->core(i));
    }
  }
}

void StackTracer::WireCore(Core* core) {
  const TrackId track = rec_.RegisterTrack(core->name(), kCoreRank + core->id());
  CoreTraceHooks hooks;
  hooks.rec = &rec_;
  hooks.track = track;
  hooks.idle_poll = rec_.InternName("idle:poll");
  hooks.idle_halt = rec_.InternName("idle:halt");
  hooks.wake = rec_.InternName("wake");
  hooks.freq = rec_.InternName("freq_khz");
  core->EnableTrace(hooks);
  // Utilization: percent of the sample interval the core spent busy, from
  // the busy-time delta between ticks. A mid-run stats reset (WarmUp) makes
  // one delta negative; clamp it rather than report nonsense.
  const SimTime interval = options_.sample_interval;
  samplers_.Add(track, util_, [core, interval, prev = SimTime{0}]() mutable {
    const SimTime busy = core->busy_time();
    SimTime delta = busy - prev;
    prev = busy;
    if (delta < 0) {
      delta = 0;
    } else if (delta > interval) {
      delta = interval;  // queued-ahead work accrues at submit; cap at 100%
    }
    return interval > 0 ? delta * 100 / interval : 0;
  });
}

void StackTracer::WireServer(Server* server, int sort_rank) {
  const TrackId track = rec_.RegisterTrack(server->name(), sort_rank);
  ServerTraceHooks hooks;
  hooks.rec = &rec_;
  hooks.track = track;
  hooks.burst = burst_;
  hooks.crash = crash_;
  hooks.restart = restart_;
  hooks.msg_names = msg_names_.data();
  server->EnableTrace(hooks);
  for (Server::Chan* ch : server->Inputs()) {
    const TrackId ch_track = rec_.RegisterTrack(ch->name(), sort_rank);
    ch->EnableTrace(&rec_, ch_track, hop_);
    samplers_.Add(ch_track, depth_, [ch] { return static_cast<int64_t>(ch->size()); });
  }
}

void StackTracer::AddServer(Server* server) { WireServer(server, next_server_rank_++); }

void StackTracer::AddNic(Nic* nic) {
  const TrackId track = rec_.RegisterTrack("nic:" + nic->name(), kNicRank);
  NicTraceHooks hooks;
  hooks.rec = &rec_;
  hooks.track = track;
  hooks.tx = rec_.InternName("tx");
  hooks.rx = rec_.InternName("rx");
  hooks.rx_drop = rec_.InternName("rx_ring_drop");
  hooks.loss = rec_.InternName("wire_loss");
  nic->EnableTrace(hooks);
  samplers_.Add(track, rec_.InternName("rx_pending"),
                [nic] { return static_cast<int64_t>(nic->rx_pending()); });
  samplers_.Add(track, rec_.InternName("tx_queued"),
                [nic] { return static_cast<int64_t>(nic->tx_queued()); });
}

void StackTracer::AddMicroreboot(MicrorebootManager* mgr) {
  mgr->EnableTrace(&rec_, recovery_track_);
}

void StackTracer::Enable() {
  rec_.set_enabled(true);
  if (options_.samplers) {
    samplers_.Start(options_.sample_interval);
  }
}

void StackTracer::Disable() {
  samplers_.Stop();
  rec_.set_enabled(false);
}

bool StackTracer::ExportChromeTrace(const std::string& path) const {
  return WriteChromeTraceFile(rec_, path);
}

bool StackTracer::ExportFolded(const std::string& path) const {
  return FoldedStacks(rec_).WriteFoldedFile(path);
}

}  // namespace newtos
