// Trace event model: fixed-size POD records for the causal tracing subsystem.
//
// A TraceEvent is 32 bytes of plain data — no strings, no pointers, no
// ownership. Names and tracks are interned up front (setup time) into small
// integer ids; the hot recording path only ever copies one of these PODs
// into a preallocated ring, which is what keeps the `perf_engine --check`
// zero-allocations-per-event gate green with tracing compiled in.
//
// Event kinds map onto the Chrome trace-event vocabulary the exporter emits:
//   span begin/end   — synchronous slices on one track (server service time);
//                      must nest properly per track, like a call stack
//   complete         — a span whose duration is known at record time: one
//                      record instead of a begin/end pair (`value` = duration
//                      in ps). The hottest producers (server bursts) use this
//                      to halve their record count. Children must be recorded
//                      after their parent, in begin-time order
//   async begin/end  — slices that may overlap on one track, paired by the
//                      `flow` id (a message in flight inside a channel)
//   instant          — a point marker (poll/halt, crash, wire drop)
//   counter          — a sampled value (queue depth, core utilization)

#ifndef SRC_TRACE_TRACE_EVENT_H_
#define SRC_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <type_traits>

#include "src/sim/time.h"

namespace newtos {

// Interned identifiers. 16 bits each: no experiment in this repo approaches
// 65k distinct event names or tracks, and keeping them small keeps the event
// a 32-byte POD.
using NameId = uint16_t;
using TrackId = uint16_t;

enum class TraceEventType : uint8_t {
  kSpanBegin = 0,
  kSpanEnd,
  kComplete,
  kAsyncBegin,
  kAsyncEnd,
  kInstant,
  kCounter,
};

struct TraceEvent {
  SimTime ts = 0;      // simulated time, picoseconds
  uint64_t flow = 0;   // causal id: packet flow for spans, pairing id for async
  int64_t value = 0;   // counter value (kCounter) or duration ps (kComplete)
  NameId name = 0;
  TrackId track = 0;
  TraceEventType type = TraceEventType::kInstant;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) <= 32);

// Causal ids extracted from a message moving through a channel. `hop` pairs
// the async begin (enqueue) with its end (dequeue) and must be unique per
// in-flight message (packet id); `flow` is the causal trace id shared by
// every packet of one flow (Packet::trace_id). Zero means "not traceable".
//
// Components that move user-defined payloads (SimChannel<T>) call
// TraceIdsOf(msg) unqualified; this fallback keeps untraceable payload types
// compiling, and os/message.h overloads it for Msg via ADL.
struct TraceIds {
  uint64_t hop = 0;
  uint64_t flow = 0;
};

template <typename T>
inline TraceIds TraceIdsOf(const T&) {
  return {};
}

}  // namespace newtos

#endif  // SRC_TRACE_TRACE_EVENT_H_
