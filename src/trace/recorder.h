// TraceRecorder: a preallocated ring buffer of TraceEvents.
//
// The recorder is built once per experiment with a fixed capacity; recording
// an event writes one 32-byte POD into the ring and never allocates. When
// the ring is full the oldest events are overwritten (and counted as
// dropped), so a long run keeps the most recent window — which is the part
// a trace viewer wants anyway. A disabled recorder's record path is a single
// predictable branch, cheap enough to leave compiled into every hot loop.
//
// Names and tracks are interned up front: components call InternName /
// RegisterTrack while the experiment is being wired (these may allocate) and
// keep the small integer ids for the hot path. The wiring helper that does
// this for a whole testbed is src/trace/stack_trace.h.
//
// Threading: single-threaded, like the simulator it observes.

#ifndef SRC_TRACE_RECORDER_H_
#define SRC_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/trace_event.h"

namespace newtos {

class TraceRecorder {
 public:
  struct Track {
    std::string name;
    int sort_rank = 0;  // display order in the exported timeline
  };

  // Preallocates the ring. Capacity is rounded up to a power of two (>= 1)
  // so the hot path wraps with a mask instead of a compare. The recorder
  // starts *disabled*: wiring can happen eagerly and recording costs one
  // branch until set_enabled(true).
  explicit TraceRecorder(size_t capacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- Setup (may allocate; call while wiring, not per event) ---

  // Returns a stable id for `name`, interning it on first use.
  NameId InternName(std::string_view name);

  // Registers a timeline track (a "thread" row in the viewer).
  TrackId RegisterTrack(std::string_view name, int sort_rank = 0);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- Recording (hot path: allocation-free, no-op while disabled) ---

  void Record(SimTime ts, TraceEventType type, TrackId track, NameId name,
              uint64_t flow, int64_t value) {
    if (!enabled_) {
      return;
    }
    // recorded_ doubles as the write cursor (capacity is a power of two):
    // one counter update per event instead of a counter and a wrap check.
    TraceEvent& e = ring_[recorded_ & mask_];
    e.ts = ts;
    e.flow = flow;
    e.value = value;
    e.name = name;
    e.track = track;
    e.type = type;
    ++recorded_;
  }

  void SpanBegin(SimTime ts, TrackId t, NameId n, uint64_t flow = 0) {
    Record(ts, TraceEventType::kSpanBegin, t, n, flow, 0);
  }
  void SpanEnd(SimTime ts, TrackId t, NameId n, uint64_t flow = 0) {
    Record(ts, TraceEventType::kSpanEnd, t, n, flow, 0);
  }
  void Complete(SimTime ts, TrackId t, NameId n, SimTime dur, uint64_t flow = 0) {
    Record(ts, TraceEventType::kComplete, t, n, flow, dur);
  }
  void AsyncBegin(SimTime ts, TrackId t, NameId n, uint64_t pair_id) {
    Record(ts, TraceEventType::kAsyncBegin, t, n, pair_id, 0);
  }
  void AsyncEnd(SimTime ts, TrackId t, NameId n, uint64_t pair_id) {
    Record(ts, TraceEventType::kAsyncEnd, t, n, pair_id, 0);
  }
  void Instant(SimTime ts, TrackId t, NameId n, uint64_t flow = 0) {
    Record(ts, TraceEventType::kInstant, t, n, flow, 0);
  }
  void Counter(SimTime ts, TrackId t, NameId n, int64_t value) {
    Record(ts, TraceEventType::kCounter, t, n, 0, value);
  }

  // --- Introspection / export ---

  size_t capacity() const { return ring_.size(); }
  // Events currently held (<= capacity).
  size_t size() const { return recorded_ < ring_.size() ? static_cast<size_t>(recorded_) : ring_.size(); }
  // Total events ever recorded, including overwritten ones.
  uint64_t recorded() const { return recorded_; }
  // Events lost to ring wraparound.
  uint64_t dropped() const { return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0; }

  // Forgets every recorded event (interned names/tracks stay).
  void Clear() { recorded_ = 0; }

  // Visits held events oldest-first, in recording order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = size();
    size_t i = recorded_ > ring_.size() ? recorded_ & mask_ : 0;
    for (size_t k = 0; k < n; ++k) {
      fn(ring_[i]);
      i = (i + 1) & mask_;
    }
  }

  const std::string& NameOf(NameId id) const { return names_[id]; }
  const Track& TrackOf(TrackId id) const { return tracks_[id]; }
  const std::vector<Track>& tracks() const { return tracks_; }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  size_t mask_ = 0;  // ring_.size() - 1; size is always a power of two
  uint64_t recorded_ = 0;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
  std::vector<Track> tracks_;
};

// Convenience guard for instrumented components: non-null and enabled.
inline bool TraceOn(const TraceRecorder* rec) { return rec != nullptr && rec->enabled(); }

}  // namespace newtos

#endif  // SRC_TRACE_RECORDER_H_
