#include "src/trace/folded_stack.h"

#include <fstream>
#include <unordered_map>
#include <vector>

namespace newtos {
namespace {

struct Frame {
  NameId name = 0;
  SimTime begin = 0;
  SimTime end = 0;         // 0 = open (kSpanBegin); else a kComplete's known end
  SimTime child_time = 0;  // inclusive time of completed children
};

}  // namespace

FoldedStacks::FoldedStacks(const TraceRecorder& rec) {
  // Per-track open-span stacks, and open async hops keyed by (track, name,
  // pair id). Scratch space only — this runs at export time.
  std::unordered_map<TrackId, std::vector<Frame>> open_spans;
  struct AsyncKey {
    uint64_t id;
    uint32_t track_name;
    bool operator==(const AsyncKey&) const = default;
  };
  struct AsyncKeyHash {
    size_t operator()(const AsyncKey& k) const {
      return static_cast<size_t>((k.id * 0x9e3779b97f4a7c15ULL) ^ k.track_name);
    }
  };
  std::unordered_map<AsyncKey, SimTime, AsyncKeyHash> open_async;

  auto stack_key = [&rec](TrackId track, const std::vector<Frame>& frames) {
    std::string key = rec.TrackOf(track).name;
    for (const Frame& f : frames) {
      key += ';';
      key += rec.NameOf(f.name);
    }
    return key;
  };

  // Pops the top frame, folds its self time, credits the parent. A frame is
  // finalized either by its kSpanEnd (which fills `end`) or, for kComplete
  // frames, once a later event proves the simulation has moved past it.
  auto finalize_top = [&](TrackId track, std::vector<Frame>& frames) {
    const Frame f = frames.back();
    const SimTime inclusive = f.end - f.begin;
    Fold(stack_key(track, frames), inclusive - f.child_time);
    frames.pop_back();
    if (!frames.empty()) {
      frames.back().child_time += inclusive;
    }
  };
  // Retires kComplete frames that ended at or before `ts` — they can no
  // longer receive children, so their self time is settled.
  auto retire = [&](TrackId track, std::vector<Frame>& frames, SimTime ts) {
    while (!frames.empty() && frames.back().end != 0 && frames.back().end <= ts) {
      finalize_top(track, frames);
    }
  };

  rec.ForEach([&](const TraceEvent& e) {
    switch (e.type) {
      case TraceEventType::kSpanBegin:
        retire(e.track, open_spans[e.track], e.ts);
        open_spans[e.track].push_back(Frame{e.name, e.ts, 0, 0});
        break;
      case TraceEventType::kComplete:
        retire(e.track, open_spans[e.track], e.ts);
        open_spans[e.track].push_back(Frame{e.name, e.ts, e.ts + e.value, 0});
        break;
      case TraceEventType::kSpanEnd: {
        auto& frames = open_spans[e.track];
        retire(e.track, frames, e.ts);
        if (frames.empty()) {
          ++unmatched_;  // begin fell off the ring window
          break;
        }
        frames.back().end = e.ts;
        finalize_top(e.track, frames);
        break;
      }
      case TraceEventType::kAsyncBegin:
        open_async[AsyncKey{e.flow, static_cast<uint32_t>(e.track) << 16 | e.name}] = e.ts;
        break;
      case TraceEventType::kAsyncEnd: {
        const AsyncKey key{e.flow, static_cast<uint32_t>(e.track) << 16 | e.name};
        const auto it = open_async.find(key);
        if (it == open_async.end()) {
          ++unmatched_;
          break;
        }
        Fold(rec.TrackOf(e.track).name + ';' + rec.NameOf(e.name), e.ts - it->second);
        open_async.erase(it);
        break;
      }
      case TraceEventType::kInstant:
      case TraceEventType::kCounter:
        break;  // point events carry no duration
    }
  });

  for (auto& [track, frames] : open_spans) {
    while (!frames.empty()) {
      if (frames.back().end != 0) {
        finalize_top(track, frames);  // kComplete: duration was known all along
      } else {
        ++unmatched_;  // open span whose end fell outside the ring window
        frames.pop_back();
      }
    }
  }
  unmatched_ += open_async.size();
}

void FoldedStacks::Fold(const std::string& key, SimTime duration) {
  if (duration < 0) {
    duration = 0;
  }
  StageStat& s = stats_[key];
  if (s.count == 0 || duration < s.min) {
    s.min = duration;
  }
  if (duration > s.max) {
    s.max = duration;
  }
  ++s.count;
  s.total += duration;
}

void FoldedStacks::WriteFolded(std::ostream& out) const {
  for (const auto& [key, s] : stats_) {
    const SimTime ns = s.total / kNanosecond;
    if (ns <= 0) {
      continue;
    }
    out << key << ' ' << ns << '\n';
  }
}

bool FoldedStacks::WriteFoldedFile(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    return false;
  }
  WriteFolded(f);
  f.flush();
  return static_cast<bool>(f);
}

Table FoldedStacks::LatencyTable() const {
  Table t({"stage", "count", "total_ms", "mean_us", "min_us", "max_us"});
  for (const auto& [key, s] : stats_) {
    const double total_us = static_cast<double>(s.total) / kMicrosecond;
    t.AddRow({key, Table::Int(static_cast<int64_t>(s.count)), Table::Num(total_us / 1e3, 3),
              Table::Num(s.count > 0 ? total_us / static_cast<double>(s.count) : 0.0, 3),
              Table::Num(static_cast<double>(s.min) / kMicrosecond, 3),
              Table::Num(static_cast<double>(s.max) / kMicrosecond, 3)});
  }
  return t;
}

}  // namespace newtos
