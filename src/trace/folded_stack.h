// Folded-stack aggregation: flamegraph text + per-stage latency table.
//
// Collapses a recorded trace into `track;outer;inner <nanoseconds>` lines —
// the folded format flamegraph.pl and speedscope consume — plus a Table of
// per-stage service-time statistics (count, total, mean, min, max). Span
// begin/end pairs fold into stacks with proper self-time attribution (an
// outer burst span's self time excludes its per-message children); async
// pairs (channel hops) aggregate by name with the hop latency as the value,
// which is exactly the enqueue→dequeue edge the paper's occupancy argument
// needs.
//
// Aggregation keys are sorted, so output is deterministic for a given
// recording.

#ifndef SRC_TRACE_FOLDED_STACK_H_
#define SRC_TRACE_FOLDED_STACK_H_

#include <map>
#include <ostream>
#include <string>

#include "src/metrics/table.h"
#include "src/trace/recorder.h"

namespace newtos {

struct StageStat {
  uint64_t count = 0;
  SimTime total = 0;  // self time for spans, hop latency for async pairs
  SimTime min = 0;
  SimTime max = 0;
};

class FoldedStacks {
 public:
  // Aggregates the recorder's current contents. Spans left open (their end
  // fell outside the ring window) and unmatched ends are dropped.
  explicit FoldedStacks(const TraceRecorder& rec);

  // Keyed by "track;name[;name...]" for spans, "track;name" for async hops.
  const std::map<std::string, StageStat>& stats() const { return stats_; }

  // "stack <total_ns>" lines, one per key, skipping zero-duration stacks.
  void WriteFolded(std::ostream& out) const;
  bool WriteFoldedFile(const std::string& path) const;

  // Per-stage latency table: stage, count, total_ms, mean_us, min_us, max_us.
  Table LatencyTable() const;

  uint64_t unmatched() const { return unmatched_; }

 private:
  void Fold(const std::string& key, SimTime duration);

  std::map<std::string, StageStat> stats_;
  uint64_t unmatched_ = 0;
};

}  // namespace newtos

#endif  // SRC_TRACE_FOLDED_STACK_H_
