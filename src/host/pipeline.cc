#include "src/host/pipeline.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/chan/spsc_ring.h"
#include "src/host/affinity.h"

namespace newtos {
namespace {

// Tokens carry a sentinel-terminated stream; kStop flushes the pipeline.
constexpr uint64_t kStop = ~uint64_t{0};

void SpinWork(uint64_t iterations, uint64_t& acc) {
  for (uint64_t i = 0; i < iterations; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
}

}  // namespace

PipelineResult RunPipeline(const PipelineParams& params) {
  const int interior = params.stages > 0 ? params.stages : 0;
  const int rings_n = interior + 1;  // producer->s1->...->sN->consumer
  std::vector<std::unique_ptr<SpscRing<uint64_t>>> rings;
  rings.reserve(static_cast<size_t>(rings_n));
  for (int i = 0; i < rings_n; ++i) {
    rings.push_back(std::make_unique<SpscRing<uint64_t>>(params.ring_capacity));
  }

  std::atomic<uint64_t> final_checksum{0};
  std::atomic<uint64_t> consumed{0};
  std::vector<std::thread> threads;

  // Interior stages: pop from ring[i], do work, push to ring[i+1].
  for (int s = 0; s < interior; ++s) {
    threads.emplace_back([&, s] {
      if (params.pin_threads) {
        PinThisThreadToCpu(s + 1);
      }
      SpscRing<uint64_t>& in = *rings[static_cast<size_t>(s)];
      SpscRing<uint64_t>& out = *rings[static_cast<size_t>(s) + 1];
      uint64_t acc = 0;
      for (;;) {
        auto v = in.TryPop();
        if (!v) {
          std::this_thread::yield();
          continue;
        }
        if (*v == kStop) {
          while (!out.TryPush(kStop)) {
            std::this_thread::yield();
          }
          break;
        }
        SpinWork(params.work_per_stage, acc);
        const uint64_t token = *v ^ (acc & 0xff);
        while (!out.TryPush(token)) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Consumer.
  threads.emplace_back([&] {
    if (params.pin_threads) {
      PinThisThreadToCpu(interior + 1);
    }
    SpscRing<uint64_t>& in = *rings.back();
    uint64_t sum = 0;
    uint64_t n = 0;
    for (;;) {
      auto v = in.TryPop();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      if (*v == kStop) {
        break;
      }
      sum += *v;
      ++n;
    }
    final_checksum.store(sum, std::memory_order_relaxed);
    consumed.store(n, std::memory_order_relaxed);
  });

  // Producer runs on the calling thread.
  if (params.pin_threads) {
    PinThisThreadToCpu(0);
  }
  const auto start = std::chrono::steady_clock::now();
  {
    SpscRing<uint64_t>& out = *rings.front();
    for (uint64_t i = 0; i < params.messages; ++i) {
      while (!out.TryPush(i)) {
        std::this_thread::yield();
      }
    }
    while (!out.TryPush(kStop)) {
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto end = std::chrono::steady_clock::now();

  PipelineResult r;
  r.messages = consumed.load(std::memory_order_relaxed);
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.msgs_per_sec = r.seconds > 0.0 ? static_cast<double>(r.messages) / r.seconds : 0.0;
  r.checksum = final_checksum.load(std::memory_order_relaxed);
  return r;
}

}  // namespace newtos
