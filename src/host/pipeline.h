// RealPipeline: the userspace affinity proxy, on real threads.
//
// Mirrors the multiserver fast path with actual concurrency: stage threads
// (optionally pinned to distinct CPUs) pass tokens through real SpscRing
// channels, driver -> ip -> tcp style. Used by the Tab. 3 microbenchmark and
// by stress tests that hammer the rings under true parallelism. Per-stage
// synthetic work (spin iterations) stands in for protocol cycles.

#ifndef SRC_HOST_PIPELINE_H_
#define SRC_HOST_PIPELINE_H_

#include <cstddef>
#include <cstdint>

namespace newtos {

struct PipelineParams {
  int stages = 3;               // interior stages between producer and consumer
  size_t ring_capacity = 1024;
  uint64_t messages = 1'000'000;
  uint64_t work_per_stage = 0;  // spin iterations per message per stage
  bool pin_threads = false;     // pin each stage to its own CPU when possible
};

struct PipelineResult {
  uint64_t messages = 0;
  double seconds = 0.0;
  double msgs_per_sec = 0.0;
  uint64_t checksum = 0;  // fold of all payloads: proves nothing was lost
};

// Runs the pipeline to completion and reports throughput. Thread-safe to
// call repeatedly (each call builds a fresh pipeline).
PipelineResult RunPipeline(const PipelineParams& params);

}  // namespace newtos

#endif  // SRC_HOST_PIPELINE_H_
