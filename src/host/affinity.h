// CPU affinity helpers for the userspace proxy (src/host/pipeline.h).
//
// The repro note for this paper says it best: without the NewtOS kernel, a
// userspace pinned-thread pipeline is the closest executable approximation
// of "servers on dedicated cores". These helpers pin threads; on machines
// with too few cores (like 1-core CI containers) pinning degrades to a
// no-op and the pipeline still runs correctly, just time-sliced.

#ifndef SRC_HOST_AFFINITY_H_
#define SRC_HOST_AFFINITY_H_

namespace newtos {

// Number of CPUs available to this process.
int AvailableCpuCount();

// Pins the calling thread to `cpu` (mod the available set). Returns false if
// the platform call failed or pinning is unsupported.
bool PinThisThreadToCpu(int cpu);

}  // namespace newtos

#endif  // SRC_HOST_AFFINITY_H_
