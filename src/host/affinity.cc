#include "src/host/affinity.h"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace newtos {

int AvailableCpuCount() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

bool PinThisThreadToCpu(int cpu) {
  const int ncpu = AvailableCpuCount();
  if (ncpu <= 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % ncpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace newtos
