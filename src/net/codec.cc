#include "src/net/codec.h"

#include <cstring>

#include "src/net/checksum.h"

namespace newtos {
namespace {

void Put16(std::vector<uint8_t>& out, size_t at, uint16_t v) {
  out[at] = static_cast<uint8_t>(v >> 8);
  out[at + 1] = static_cast<uint8_t>(v & 0xff);
}

void Put32(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  out[at] = static_cast<uint8_t>(v >> 24);
  out[at + 1] = static_cast<uint8_t>((v >> 16) & 0xff);
  out[at + 2] = static_cast<uint8_t>((v >> 8) & 0xff);
  out[at + 3] = static_cast<uint8_t>(v & 0xff);
}

uint16_t Get16(const std::vector<uint8_t>& in, size_t at) {
  return static_cast<uint16_t>((in[at] << 8) | in[at + 1]);
}

uint32_t Get32(const std::vector<uint8_t>& in, size_t at) {
  return (static_cast<uint32_t>(in[at]) << 24) | (static_cast<uint32_t>(in[at + 1]) << 16) |
         (static_cast<uint32_t>(in[at + 2]) << 8) | in[at + 3];
}

// The 16-bit window field carries window/256 (a fixed window-scale of 8,
// as a real stack would negotiate for multi-hundred-KiB windows).
constexpr uint32_t kWindowScale = 256;

// Pseudo-header sum for TCP/UDP checksums.
uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, IpProto proto, uint16_t l4_len) {
  uint32_t sum = 0;
  sum += src >> 16;
  sum += src & 0xffff;
  sum += dst >> 16;
  sum += dst & 0xffff;
  sum += static_cast<uint32_t>(proto);
  sum += l4_len;
  return sum;
}

}  // namespace

std::vector<uint8_t> SerializePacket(const Packet& p, bool fill_payload) {
  const bool is_tcp = p.ip.proto == IpProto::kTcp;
  const bool is_icmp = p.ip.proto == IpProto::kIcmp;
  const size_t l4_hdr = is_tcp ? p.tcp.HeaderBytes() : (is_icmp ? kIcmpHeaderBytes : kUdpHeaderBytes);
  const size_t total = kEthHeaderBytes + kIpv4HeaderBytes + l4_hdr + p.payload_bytes;
  std::vector<uint8_t> out(total, 0);

  // Ethernet.
  std::memcpy(out.data(), p.eth.dst.data(), 6);
  std::memcpy(out.data() + 6, p.eth.src.data(), 6);
  Put16(out, 12, p.eth.ether_type);

  // IPv4.
  const size_t ip0 = kEthHeaderBytes;
  const uint16_t ip_total = static_cast<uint16_t>(kIpv4HeaderBytes + l4_hdr + p.payload_bytes);
  out[ip0 + 0] = 0x45;  // version 4, IHL 5
  out[ip0 + 1] = 0;     // DSCP
  Put16(out, ip0 + 2, ip_total);
  Put16(out, ip0 + 4, static_cast<uint16_t>(p.id & 0xffff));  // identification
  Put16(out, ip0 + 6, 0x4000);                                // DF, no fragments
  out[ip0 + 8] = p.ip.ttl;
  out[ip0 + 9] = static_cast<uint8_t>(p.ip.proto);
  Put16(out, ip0 + 10, 0);  // checksum placeholder
  Put32(out, ip0 + 12, p.ip.src);
  Put32(out, ip0 + 16, p.ip.dst);
  Put16(out, ip0 + 10, Checksum(out.data() + ip0, kIpv4HeaderBytes));

  // L4 header.
  const size_t l40 = ip0 + kIpv4HeaderBytes;
  const uint16_t l4_len = static_cast<uint16_t>(l4_hdr + p.payload_bytes);
  if (is_tcp) {
    Put16(out, l40 + 0, p.tcp.src_port);
    Put16(out, l40 + 2, p.tcp.dst_port);
    Put32(out, l40 + 4, p.tcp.seq);
    Put32(out, l40 + 8, p.tcp.ack);
    out[l40 + 12] = static_cast<uint8_t>((l4_hdr / 4) << 4);  // data offset in words
    out[l40 + 13] = p.tcp.flags;
    const uint32_t scaled = p.tcp.window / kWindowScale;
    Put16(out, l40 + 14, static_cast<uint16_t>(scaled > 0xffff ? 0xffff : scaled));
    Put16(out, l40 + 16, 0);  // checksum placeholder
    Put16(out, l40 + 18, 0);  // urgent pointer
    if (p.tcp.n_sack > 0) {
      // RFC 2018 SACK option: kind 5, length 2 + 8n, NOP-padded to a word.
      size_t at = l40 + 20;
      const size_t opt_end = l40 + l4_hdr;
      out[at++] = 5;
      out[at++] = static_cast<uint8_t>(2 + p.tcp.n_sack * 8);
      for (int i = 0; i < p.tcp.n_sack; ++i) {
        Put32(out, at, p.tcp.sack[static_cast<size_t>(i)].start);
        Put32(out, at + 4, p.tcp.sack[static_cast<size_t>(i)].end);
        at += 8;
      }
      while (at < opt_end) {
        out[at++] = 1;  // NOP padding
      }
    }
  } else if (is_icmp) {
    out[l40 + 0] = p.icmp.type;
    out[l40 + 1] = p.icmp.code;
    Put16(out, l40 + 2, 0);  // checksum placeholder
    Put16(out, l40 + 4, p.icmp.id);
    Put16(out, l40 + 6, p.icmp.seq);
  } else {
    Put16(out, l40 + 0, p.udp.src_port);
    Put16(out, l40 + 2, p.udp.dst_port);
    Put16(out, l40 + 4, l4_len);
    Put16(out, l40 + 6, 0);  // checksum placeholder
  }

  // Payload pattern (deterministic, id-keyed) so L4 checksums cover data.
  const size_t pay0 = l40 + l4_hdr;
  if (fill_payload) {
    uint64_t x = p.id * 0x9e3779b97f4a7c15ULL + 1;
    for (size_t i = 0; i < p.payload_bytes; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      out[pay0 + i] = static_cast<uint8_t>(x & 0xff);
    }
  }

  // L4 checksum; ICMP checksums have no pseudo-header (RFC 792).
  uint32_t sum = is_icmp ? 0 : PseudoHeaderSum(p.ip.src, p.ip.dst, p.ip.proto, l4_len);
  sum = ChecksumPartial(out.data() + l40, l4_len, sum);
  uint16_t csum = ChecksumFinish(sum);
  if (is_tcp) {
    Put16(out, l40 + 16, csum);
  } else if (is_icmp) {
    Put16(out, l40 + 2, csum);
  } else {
    if (csum == 0) {
      csum = 0xffff;  // UDP: transmitted zero means "no checksum"
    }
    Put16(out, l40 + 6, csum);
  }
  return out;
}

std::optional<ParseResult> ParsePacket(const std::vector<uint8_t>& frame) {
  if (frame.size() < kEthHeaderBytes + kIpv4HeaderBytes) {
    return std::nullopt;
  }
  ParseResult r;
  Packet& p = r.packet;
  std::memcpy(p.eth.dst.data(), frame.data(), 6);
  std::memcpy(p.eth.src.data(), frame.data() + 6, 6);
  p.eth.ether_type = Get16(frame, 12);
  if (p.eth.ether_type != kEtherTypeIpv4) {
    return std::nullopt;
  }

  const size_t ip0 = kEthHeaderBytes;
  if ((frame[ip0] >> 4) != 4 || (frame[ip0] & 0x0f) != 5) {
    return std::nullopt;  // only IHL=5 supported
  }
  const uint16_t ip_total = Get16(frame, ip0 + 2);
  if (ip_total < kIpv4HeaderBytes || ip0 + ip_total > frame.size()) {
    return std::nullopt;
  }
  p.ip.ttl = frame[ip0 + 8];
  const uint8_t proto = frame[ip0 + 9];
  if (proto != static_cast<uint8_t>(IpProto::kTcp) &&
      proto != static_cast<uint8_t>(IpProto::kUdp) &&
      proto != static_cast<uint8_t>(IpProto::kIcmp)) {
    return std::nullopt;
  }
  p.ip.proto = static_cast<IpProto>(proto);
  p.ip.src = Get32(frame, ip0 + 12);
  p.ip.dst = Get32(frame, ip0 + 16);
  r.ip_checksum_ok = ChecksumValid(frame.data() + ip0, kIpv4HeaderBytes);

  const size_t l40 = ip0 + kIpv4HeaderBytes;
  const uint16_t l4_len = static_cast<uint16_t>(ip_total - kIpv4HeaderBytes);
  if (p.ip.proto == IpProto::kTcp) {
    if (l4_len < kTcpHeaderBytes) {
      return std::nullopt;
    }
    const size_t data_offset = static_cast<size_t>(frame[l40 + 12] >> 4) * 4;
    if (data_offset < kTcpHeaderBytes || data_offset > l4_len) {
      return std::nullopt;
    }
    p.tcp.src_port = Get16(frame, l40 + 0);
    p.tcp.dst_port = Get16(frame, l40 + 2);
    p.tcp.seq = Get32(frame, l40 + 4);
    p.tcp.ack = Get32(frame, l40 + 8);
    p.tcp.flags = frame[l40 + 13];
    p.tcp.window = static_cast<uint32_t>(Get16(frame, l40 + 14)) * 256;
    // Options: only SACK (kind 5) and NOP/END are understood.
    size_t at = l40 + 20;
    const size_t opt_end = l40 + data_offset;
    while (at < opt_end) {
      const uint8_t kind = frame[at];
      if (kind == 0) {  // end of options
        break;
      }
      if (kind == 1) {  // NOP
        ++at;
        continue;
      }
      if (at + 1 >= opt_end) {
        return std::nullopt;  // truncated option
      }
      const uint8_t len = frame[at + 1];
      if (len < 2 || at + len > opt_end) {
        return std::nullopt;
      }
      if (kind == 5 && (len - 2) % 8 == 0) {
        const int blocks = (len - 2) / 8;
        for (int i = 0; i < blocks && i < kMaxSackBlocks; ++i) {
          p.tcp.sack[static_cast<size_t>(i)].start = Get32(frame, at + 2 + 8 * i);
          p.tcp.sack[static_cast<size_t>(i)].end = Get32(frame, at + 6 + 8 * i);
          p.tcp.n_sack = static_cast<uint8_t>(i + 1);
        }
      }
      at += len;
    }
    p.payload_bytes = static_cast<uint32_t>(l4_len - data_offset);
  } else if (p.ip.proto == IpProto::kIcmp) {
    if (l4_len < kIcmpHeaderBytes) {
      return std::nullopt;
    }
    p.icmp.type = frame[l40 + 0];
    p.icmp.code = frame[l40 + 1];
    p.icmp.id = Get16(frame, l40 + 4);
    p.icmp.seq = Get16(frame, l40 + 6);
    p.payload_bytes = static_cast<uint32_t>(l4_len - kIcmpHeaderBytes);
  } else {
    if (l4_len < kUdpHeaderBytes) {
      return std::nullopt;
    }
    p.udp.src_port = Get16(frame, l40 + 0);
    p.udp.dst_port = Get16(frame, l40 + 2);
    p.payload_bytes = static_cast<uint32_t>(l4_len - kUdpHeaderBytes);
  }

  uint32_t sum = p.ip.proto == IpProto::kIcmp
                     ? 0
                     : PseudoHeaderSum(p.ip.src, p.ip.dst, p.ip.proto, l4_len);
  sum = ChecksumPartial(frame.data() + l40, l4_len, sum);
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  r.l4_checksum_ok = (sum == 0xffff);
  return r;
}

}  // namespace newtos
