// PacketPool: recycles the shared_ptr<Packet> control-block+payload
// allocation.
//
// Packets are the highest-volume heap object in the simulator: every
// segment, ACK and datagram is a fresh `std::make_shared<Packet>` that dies
// within a few microseconds of simulated time. The pool allocates packets
// with std::allocate_shared and a freelist-backed allocator, so the fused
// (control block + Packet) allocation is returned to the pool — not to
// malloc — when the last reference drops, and the next MakePacket() reuses
// it. Once the pool has grown to the workload's in-flight high-water mark,
// packet creation touches no allocator at all.
//
// Packet ids stay globally unique and sequential (the same counter the
// un-pooled MakePacket used), so traces and pcap captures are unaffected.
//
// The Default() pool is intentionally leaked (packets may legally outlive
// every static destructor). Pool objects created locally in tests must
// outlive every packet they produced.

#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/net/packet.h"

namespace newtos {

class PacketPool {
 public:
  struct Stats {
    uint64_t fresh_allocations = 0;  // blocks obtained from the system heap
    uint64_t recycled = 0;           // Make() calls served from the freelist
    uint64_t outstanding = 0;        // live packets right now
    uint64_t high_water = 0;         // max simultaneous live packets
  };

  PacketPool() = default;
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Allocates (or recycles) a zero-initialized packet with a fresh id.
  PacketPtr Make();

  // Pre-grows the freelist to at least `n` blocks so the first `n` in-flight
  // packets never hit the system heap. Does not consume packet ids and does
  // not count toward outstanding/high_water.
  void Reserve(size_t n);

  Stats stats() const;

  // Number of recycled blocks currently waiting on the freelist.
  size_t free_blocks() const;

  // The process-wide pool used by MakePacket(). Never destroyed.
  static PacketPool& Default();

  // The pool MakePacket() draws from on the calling thread: the thread's
  // scoped pool if a ScopedUse is active, Default() otherwise. Simulation
  // lanes (src/fabric/lane.h) scope each worker thread to its lane's pool so
  // lanes never contend on one freelist; blocks still return to their owning
  // pool on release no matter which thread drops the last reference (the
  // deleter captured the allocating pool).
  static PacketPool& Current();

  // RAII thread-local pool override. Nestable; restores the previous
  // binding on destruction. Must not outlive the pool it binds.
  class ScopedUse {
   public:
    explicit ScopedUse(PacketPool* pool);
    ~ScopedUse();
    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    PacketPool* prev_;
  };

 private:
  // Minimal C++17 allocator handing out fixed-size blocks from the pool's
  // freelist. allocate_shared rebinds it to its internal combined type, so
  // every allocation through one pool has the same size.
  template <typename T>
  struct Recycler {
    using value_type = T;
    PacketPool* pool;

    explicit Recycler(PacketPool* p) : pool(p) {}
    template <typename U>
    Recycler(const Recycler<U>& other) : pool(other.pool) {}  // NOLINT

    T* allocate(size_t n) { return static_cast<T*>(pool->AllocBlock(n * sizeof(T))); }
    void deallocate(T* p, size_t n) { pool->FreeBlock(p, n * sizeof(T)); }

    template <typename U>
    bool operator==(const Recycler<U>& other) const {
      return pool == other.pool;
    }
    template <typename U>
    bool operator!=(const Recycler<U>& other) const {
      return pool != other.pool;
    }
  };

  struct FreeNode {
    FreeNode* next;
  };

  void* AllocBlock(size_t bytes);
  void FreeBlock(void* p, size_t bytes);
  void Lock() const;
  void Unlock() const;

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  FreeNode* free_head_ = nullptr;
  size_t free_count_ = 0;
  size_t block_bytes_ = 0;  // learned on the first allocation
  bool reserving_ = false;  // suppresses stats while Reserve() cycles blocks
  Stats stats_;
};

}  // namespace newtos

#endif  // SRC_NET_PACKET_POOL_H_
