// PcapWriter: dump simulated traffic as a real, Wireshark-readable pcap.
//
// Frames are serialized with the wire codec (real headers, real checksums,
// deterministic payload patterns), timestamped with simulated time. Attach
// to a NIC tap to capture everything a simulated machine sends/receives —
// the debugging workflow a real stack would offer, pointed at the model.

#ifndef SRC_NET_PCAP_H_
#define SRC_NET_PCAP_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace newtos {

class PcapWriter {
 public:
  // Opens `path` and writes the pcap global header (linktype: Ethernet).
  explicit PcapWriter(const std::string& path);

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  // False if the file could not be opened or a write failed.
  bool ok() const { return static_cast<bool>(out_); }

  // Appends one frame captured at simulated time `at`.
  void Write(const Packet& packet, SimTime at);

  uint64_t packets_written() const { return packets_written_; }

  // Flushes buffered output (also happens at destruction).
  void Flush() { out_.flush(); }

 private:
  void Put32(uint32_t v);
  void Put16(uint16_t v);

  std::ofstream out_;
  uint64_t packets_written_ = 0;
};

}  // namespace newtos

#endif  // SRC_NET_PCAP_H_
