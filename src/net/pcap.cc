#include "src/net/pcap.h"

#include "src/net/codec.h"

namespace newtos {
namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond-resolution pcap
constexpr uint32_t kLinkTypeEthernet = 1;

}  // namespace

PcapWriter::PcapWriter(const std::string& path) : out_(path, std::ios::binary) {
  if (!out_) {
    return;
  }
  Put32(kPcapMagic);
  Put16(2);  // version major
  Put16(4);  // version minor
  Put32(0);  // thiszone
  Put32(0);  // sigfigs
  Put32(65535);  // snaplen
  Put32(kLinkTypeEthernet);
}

void PcapWriter::Put32(uint32_t v) {
  // pcap headers are host-endian by convention; write little-endian and let
  // the magic number tell readers the byte order.
  const unsigned char b[4] = {static_cast<unsigned char>(v & 0xff),
                              static_cast<unsigned char>((v >> 8) & 0xff),
                              static_cast<unsigned char>((v >> 16) & 0xff),
                              static_cast<unsigned char>((v >> 24) & 0xff)};
  out_.write(reinterpret_cast<const char*>(b), 4);
}

void PcapWriter::Put16(uint16_t v) {
  const unsigned char b[2] = {static_cast<unsigned char>(v & 0xff),
                              static_cast<unsigned char>((v >> 8) & 0xff)};
  out_.write(reinterpret_cast<const char*>(b), 2);
}

void PcapWriter::Write(const Packet& packet, SimTime at) {
  if (!out_) {
    return;
  }
  const std::vector<uint8_t> frame = SerializePacket(packet);
  const uint32_t ts_sec = static_cast<uint32_t>(at / kSecond);
  const uint32_t ts_usec = static_cast<uint32_t>((at % kSecond) / kMicrosecond);
  Put32(ts_sec);
  Put32(ts_usec);
  Put32(static_cast<uint32_t>(frame.size()));  // captured length
  Put32(static_cast<uint32_t>(frame.size()));  // original length
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  ++packets_written_;
}

}  // namespace newtos
