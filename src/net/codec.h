// Wire codec: serializes the structured Packet model to real network-order
// bytes (with real IPv4/TCP/UDP checksums) and parses bytes back.
//
// The simulator's fast path does not serialize — it moves structs — but the
// codec keeps the header layouts honest: round-trip and checksum properties
// are enforced by tests, and the packet filter's byte-matching mode parses
// real buffers. Payload bytes are rendered as a deterministic pattern keyed
// on the packet id so checksums cover "real" data.

#ifndef SRC_NET_CODEC_H_
#define SRC_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/packet.h"

namespace newtos {

// Serializes `p` to a full Ethernet frame. If `fill_payload` is true the
// payload area is filled with a deterministic pattern (id-keyed); otherwise
// it is zeroed. IPv4 header checksum and TCP/UDP pseudo-header checksums are
// computed for real.
std::vector<uint8_t> SerializePacket(const Packet& p, bool fill_payload = true);

struct ParseResult {
  Packet packet;
  bool ip_checksum_ok = false;
  bool l4_checksum_ok = false;
};

// Parses a frame produced by SerializePacket (or hand-built in tests).
// Returns nullopt for truncated/malformed frames or non-IPv4 ether types.
std::optional<ParseResult> ParsePacket(const std::vector<uint8_t>& frame);

}  // namespace newtos

#endif  // SRC_NET_CODEC_H_
