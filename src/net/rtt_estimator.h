// RFC 6298 round-trip-time estimation, allocation-free.
//
// Extracted from TcpConnection so the estimator is a self-contained value
// type (cf. ndn-dpdk's RttEst): plain integer state, no heap, no clock —
// callers pass simulated timestamps in. The arithmetic is integer EWMA on
// picosecond SimTime, exactly the computation the connection inlined before:
//
//   first sample:  srtt = m,            rttvar = m / 2
//   afterwards:    rttvar = (3*rttvar + |m - srtt|) / 4      (beta  = 1/4)
//                  srtt   = (7*srtt + m) / 8                 (alpha = 1/8)
//   always:        rto    = clamp(srtt + 4*rttvar, rto_min, rto_max)
//
// State machine (one sample in flight at a time, per RFC 6298 §3):
//
//   idle --StartSample(end_seq)--> pending --OnAck(ack >= end_seq)--> idle
//            ^                        |
//            |                OnRetransmit() taints the pending sample
//            |                        v
//            +---- tainted sample is *discarded* on ACK (Karn's rule) ----+
//
// Backoff (§5.5-§5.7): OnTimeout() doubles the effective RTO for each
// consecutive timeout (BackoffedRto caps at rto_max). Per §5.7 the backoff
// resets only when an ACK takes a *fresh* (non-retransmitted) RTT sample —
// an ACK for retransmitted data proves delivery but not path latency, so it
// must not un-back-off the timer. OnAck() applies that rule itself.

#ifndef SRC_NET_RTT_ESTIMATOR_H_
#define SRC_NET_RTT_ESTIMATOR_H_

#include <algorithm>
#include <cstdint>

#include "src/sim/time.h"

namespace newtos {

class RttEst {
 public:
  RttEst(SimTime rto_initial, SimTime rto_min, SimTime rto_max)
      : rto_(rto_initial), rto_min_(rto_min), rto_max_(rto_max) {}

  // --- Sample lifecycle (Karn's rule) ---

  bool sample_pending() const { return sample_pending_; }

  // Begins timing the segment whose last byte is `end_seq` (exclusive), sent
  // now. Callers start a sample only when none is pending.
  void StartSample(uint32_t end_seq, SimTime now) {
    sample_pending_ = true;
    sample_seq_ = end_seq;
    sample_sent_at_ = now;
    tainted_ = false;
  }

  // Any retransmission while a sample is in flight makes its eventual ACK
  // ambiguous (original or retransmit?); the sample must be discarded.
  void OnRetransmit() { tainted_ = true; }

  // Cumulative ACK advanced to `ack`. Returns true iff a fresh RTT sample
  // was taken (the timed segment is covered and nothing was retransmitted
  // meanwhile); per §5.7 that is also the moment the backoff resets.
  bool OnAck(uint32_t ack, SimTime now) {
    if (!sample_pending_ || static_cast<int32_t>(sample_seq_ - ack) > 0) {
      return false;  // no sample in flight, or the timed segment is not covered
    }
    sample_pending_ = false;
    if (tainted_) {
      return false;  // Karn: ambiguous measurement, discard
    }
    Update(now - sample_sent_at_);
    backoff_ = 0;
    return true;
  }

  // Folds one measurement into srtt/rttvar and recomputes the clamped RTO.
  void Update(SimTime measured) {
    if (srtt_ == 0) {
      srtt_ = measured;
      rttvar_ = measured / 2;
    } else {
      const SimTime err = measured > srtt_ ? measured - srtt_ : srtt_ - measured;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + measured) / 8;
    }
    rto_ = std::clamp(srtt_ + 4 * rttvar_, rto_min_, rto_max_);
  }

  // --- Exponential backoff (§5.5-§5.7) ---

  void OnTimeout() { ++backoff_; }
  void ResetBackoff() { backoff_ = 0; }
  int backoff() const { return backoff_; }

  // The RTO to arm: base RTO doubled once per consecutive timeout, saturating
  // at rto_max.
  SimTime BackoffedRto() const {
    SimTime effective = rto_;
    for (int i = 0; i < backoff_ && effective < rto_max_; ++i) {
      effective *= 2;
    }
    return std::min(effective, rto_max_);
  }

  // --- Introspection ---
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  SimTime rto() const { return rto_; }
  SimTime rto_max() const { return rto_max_; }

 private:
  SimTime srtt_ = 0;    // 0 = no sample yet (first measurement seeds directly)
  SimTime rttvar_ = 0;
  SimTime rto_;
  SimTime rto_min_;
  SimTime rto_max_;
  int backoff_ = 0;

  bool sample_pending_ = false;
  uint32_t sample_seq_ = 0;     // sample completes when cumulative ACK covers this
  SimTime sample_sent_at_ = 0;
  bool tainted_ = false;        // a retransmission overlapped the sample
};

}  // namespace newtos

#endif  // SRC_NET_RTT_ESTIMATOR_H_
