#include "src/net/packet.h"

#include <cstdio>

#include "src/net/packet_pool.h"

namespace newtos {

std::string Ipv4ToString(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

PacketPtr MakePacket() { return PacketPool::Current().Make(); }

std::string Packet::ToString() const {
  char buf[160];
  if (ip.proto == IpProto::kTcp) {
    char flagstr[8];
    int n = 0;
    if (tcp.syn()) flagstr[n++] = 'S';
    if (tcp.ack_flag()) flagstr[n++] = 'A';
    if (tcp.fin()) flagstr[n++] = 'F';
    if (tcp.rst()) flagstr[n++] = 'R';
    flagstr[n] = '\0';
    std::snprintf(buf, sizeof(buf), "TCP %s:%u > %s:%u [%s] seq=%u ack=%u len=%u win=%u",
                  Ipv4ToString(ip.src).c_str(), tcp.src_port, Ipv4ToString(ip.dst).c_str(),
                  tcp.dst_port, flagstr, tcp.seq, tcp.ack, payload_bytes, tcp.window);
  } else if (ip.proto == IpProto::kUdp) {
    std::snprintf(buf, sizeof(buf), "UDP %s:%u > %s:%u len=%u", Ipv4ToString(ip.src).c_str(),
                  udp.src_port, Ipv4ToString(ip.dst).c_str(), udp.dst_port, payload_bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "ICMP %s > %s type=%u id=%u seq=%u len=%u",
                  Ipv4ToString(ip.src).c_str(), Ipv4ToString(ip.dst).c_str(), icmp.type, icmp.id,
                  icmp.seq, payload_bytes);
  }
  return buf;
}

size_t SymmetricFlowHash(const FlowKey& k) {
  // Normalize so that (src, dst) and (dst, src) hash identically.
  const uint64_t a = (static_cast<uint64_t>(k.src_ip) << 16) | k.src_port;
  const uint64_t b = (static_cast<uint64_t>(k.dst_ip) << 16) | k.dst_port;
  uint64_t h = (a < b ? (a << 1) ^ b : (b << 1) ^ a) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(h ^ (h >> 32));
}

FlowKey PacketFlowKey(const Packet& p) {
  if (p.ip.proto == IpProto::kTcp) {
    return {p.ip.src, p.ip.dst, p.tcp.src_port, p.tcp.dst_port};
  }
  if (p.ip.proto == IpProto::kUdp) {
    return {p.ip.src, p.ip.dst, p.udp.src_port, p.udp.dst_port};
  }
  return {p.ip.src, p.ip.dst, p.icmp.id, p.icmp.seq};  // ICMP: id/seq stand in
}

}  // namespace newtos
