// Structured packet model.
//
// Packets carry *parsed* headers plus a payload byte count. The simulator's
// fast path moves these structs (wrapped in shared_ptr) between stages; the
// wire codec in src/net/codec.h can serialize them to real bytes — with real
// Internet checksums — and parse them back, which is exercised by tests and
// by the packet-filter byte-matching mode. Payload contents are not stored:
// protocols in this model are driven by lengths and sequence numbers, which
// is what determines the performance behaviour the paper measures.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/time.h"

namespace newtos {

using MacAddr = std::array<uint8_t, 6>;
using Ipv4Addr = uint32_t;  // host byte order throughout the model

// Renders "a.b.c.d".
std::string Ipv4ToString(Ipv4Addr addr);

// Builds an address from octets: Ipv4(10,0,0,1).
constexpr Ipv4Addr Ipv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | d;
}

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;

struct EthHeader {
  MacAddr dst{};
  MacAddr src{};
  uint16_t ether_type = kEtherTypeIpv4;
};
inline constexpr size_t kEthHeaderBytes = 14;

enum class IpProto : uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

struct Ipv4Header {
  uint8_t ttl = 64;
  IpProto proto = IpProto::kTcp;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  // total_length and checksum are computed by the codec.
};
inline constexpr size_t kIpv4HeaderBytes = 20;

// TCP flag bits, matching the wire encoding.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

// A SACK block: [start, end) of received-but-not-yet-acknowledged data.
struct SackBlock {
  uint32_t start = 0;
  uint32_t end = 0;
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};
inline constexpr int kMaxSackBlocks = 3;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint32_t window = 0;  // receive window in bytes (codec applies a scale of 256)

  // RFC 2018 selective acknowledgment option (0..kMaxSackBlocks blocks).
  uint8_t n_sack = 0;
  std::array<SackBlock, kMaxSackBlocks> sack{};

  bool syn() const { return (flags & kTcpSyn) != 0; }
  bool ack_flag() const { return (flags & kTcpAck) != 0; }
  bool fin() const { return (flags & kTcpFin) != 0; }
  bool rst() const { return (flags & kTcpRst) != 0; }

  // On-wire header size including the (padded) SACK option.
  size_t HeaderBytes() const {
    if (n_sack == 0) {
      return 20;
    }
    const size_t opt = 2 + static_cast<size_t>(n_sack) * 8;  // kind + len + blocks
    return 20 + (opt + 3) / 4 * 4;                           // NOP-padded to 32-bit words
  }
};
inline constexpr size_t kTcpHeaderBytes = 20;  // base header, no options

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
};
inline constexpr size_t kUdpHeaderBytes = 8;

inline constexpr uint8_t kIcmpEchoReply = 0;
inline constexpr uint8_t kIcmpEchoRequest = 8;

// Wire-fault model: which checksums a corrupted frame would fail. Payload
// contents are not stored, so a bit flip is carried as metadata naming the
// layer whose checksum covers the flipped bits; RX-side verification (NIC
// offload + per-server software check) reads these flags and drops, exactly
// as a real stack discards frames whose checksum does not verify.
inline constexpr uint8_t kCorruptIp = 0x01;  // flip inside the IPv4 header
inline constexpr uint8_t kCorruptL4 = 0x02;  // flip in the L4 header or payload

struct IcmpHeader {
  uint8_t type = kIcmpEchoRequest;
  uint8_t code = 0;
  uint16_t id = 0;
  uint16_t seq = 0;
};
inline constexpr size_t kIcmpHeaderBytes = 8;

struct Packet {
  EthHeader eth;
  Ipv4Header ip;
  // Which L4 header is valid is selected by ip.proto.
  TcpHeader tcp;
  UdpHeader udp;
  IcmpHeader icmp;

  // Payload length in bytes (contents are not modeled).
  uint32_t payload_bytes = 0;

  // --- Simulation metadata (not on the wire) ---
  uint64_t id = 0;             // unique per packet, for traces
  // Causal trace id: shared by every packet of one logical flow so the
  // tracing subsystem can follow a TCP connection — including retransmits,
  // which are new packets (fresh `id`) of the same flow — across every
  // server, channel, and wire hop. MakePacket() defaults it to the packet's
  // own id; TcpConnection overrides it with the connection's flow id.
  uint64_t trace_id = 0;
  SimTime created_at = 0;      // when the sending application emitted it
  uint64_t app_tag = 0;        // opaque application marker (request ids etc.)
  uint8_t corrupt = 0;         // kCorrupt* bits set by fault injection

  // Total on-wire frame size in bytes (without preamble/FCS overhead; the
  // link model adds those).
  uint32_t FrameBytes() const {
    size_t l4 = kUdpHeaderBytes;
    if (ip.proto == IpProto::kTcp) {
      l4 = tcp.HeaderBytes();
    } else if (ip.proto == IpProto::kIcmp) {
      l4 = kIcmpHeaderBytes;
    }
    return static_cast<uint32_t>(kEthHeaderBytes + kIpv4HeaderBytes + l4 + payload_bytes);
  }

  // One-line rendering for traces: "TCP 10.0.0.1:80 > 10.0.0.2:5001 seq=..".
  std::string ToString() const;
};

using PacketPtr = std::shared_ptr<Packet>;

// Allocates a packet with a fresh id, recycled from PacketPool::Current()
// (see src/net/packet_pool.h): in steady state this touches no allocator.
PacketPtr MakePacket();

// A 4-tuple identifying one direction of a connection.
struct FlowKey {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  FlowKey Reversed() const { return {dst_ip, src_ip, dst_port, src_port}; }
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const {
    uint64_t h = (static_cast<uint64_t>(k.src_ip) << 32) | k.dst_ip;
    h ^= (static_cast<uint64_t>(k.src_port) << 16) | k.dst_port;
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// Extracts the flow key of a packet (TCP or UDP ports).
FlowKey PacketFlowKey(const Packet& p);

// Direction-independent flow hash: both directions of a connection map to
// the same value. Used to shard flows across TCP server instances, the way
// symmetric-key NIC RSS spreads flows across queues.
size_t SymmetricFlowHash(const FlowKey& k);

}  // namespace newtos

#endif  // SRC_NET_PACKET_H_
