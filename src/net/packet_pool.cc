#include "src/net/packet_pool.h"

#include <cassert>
#include <memory>
#include <new>
#include <vector>

namespace newtos {
namespace {

// Global packet id counter (moved here from packet.cc): ids stay unique and
// sequential across every pool, preserving trace/pcap determinism.
std::atomic<uint64_t> g_next_packet_id{1};

}  // namespace

PacketPool::~PacketPool() {
  // Only the freelist is owned here; outstanding packets must not exist
  // (guaranteed for Default(), which leaks; required of test-local pools).
  while (free_head_ != nullptr) {
    FreeNode* next = free_head_->next;
    ::operator delete(free_head_);
    free_head_ = next;
  }
}

void PacketPool::Lock() const {
  while (lock_.test_and_set(std::memory_order_acquire)) {
  }
}

void PacketPool::Unlock() const { lock_.clear(std::memory_order_release); }

void* PacketPool::AllocBlock(size_t bytes) {
  Lock();
  if (block_bytes_ == 0) {
    block_bytes_ = bytes;
  }
  if (bytes == block_bytes_ && free_head_ != nullptr) {
    FreeNode* node = free_head_;
    free_head_ = node->next;
    --free_count_;
    if (!reserving_) {
      ++stats_.recycled;
      ++stats_.outstanding;
      if (stats_.outstanding > stats_.high_water) {
        stats_.high_water = stats_.outstanding;
      }
    }
    Unlock();
    return node;
  }
  if (!reserving_) {
    ++stats_.fresh_allocations;
    ++stats_.outstanding;
    if (stats_.outstanding > stats_.high_water) {
      stats_.high_water = stats_.outstanding;
    }
  }
  Unlock();
  return ::operator new(bytes);
}

void PacketPool::FreeBlock(void* p, size_t bytes) {
  Lock();
  if (!reserving_) {
    assert(stats_.outstanding > 0);
    --stats_.outstanding;
  }
  if (bytes == block_bytes_) {
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_head_;
    free_head_ = node;
    ++free_count_;
    Unlock();
    return;
  }
  Unlock();
  ::operator delete(p);
}

PacketPtr PacketPool::Make() {
  PacketPtr p = std::allocate_shared<Packet>(Recycler<Packet>(this));
  p->id = g_next_packet_id.fetch_add(1, std::memory_order_relaxed);
  p->trace_id = p->id;  // default flow = the packet itself; TCP overrides
  return p;
}

void PacketPool::Reserve(size_t n) {
  Lock();
  const size_t have = free_count_;
  reserving_ = true;
  Unlock();
  if (have < n) {
    // Hold `n` live packets simultaneously (the first `have` come off the
    // existing freelist), then drop them: every block lands on the freelist,
    // leaving exactly >= n free. Ids are untouched (assigned only by Make())
    // and stats are suppressed by `reserving_`.
    std::vector<PacketPtr> tmp;
    tmp.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      tmp.push_back(std::allocate_shared<Packet>(Recycler<Packet>(this)));
    }
  }
  Lock();
  reserving_ = false;
  Unlock();
}

PacketPool::Stats PacketPool::stats() const {
  Lock();
  Stats s = stats_;
  Unlock();
  return s;
}

size_t PacketPool::free_blocks() const {
  Lock();
  size_t n = free_count_;
  Unlock();
  return n;
}

PacketPool& PacketPool::Default() {
  // lint:allow(heap-new): process-wide singleton, constructed once; leaked on purpose (see header)
  static PacketPool* pool = new PacketPool;  // leaked: see header comment
  return *pool;
}

namespace {
// Thread-local current-pool binding (see PacketPool::ScopedUse). A plain
// pointer: reads on the MakePacket() fast path are one TLS load.
thread_local PacketPool* t_current_pool = nullptr;
}  // namespace

PacketPool& PacketPool::Current() {
  return t_current_pool != nullptr ? *t_current_pool : Default();
}

PacketPool::ScopedUse::ScopedUse(PacketPool* pool) : prev_(t_current_pool) {
  t_current_pool = pool;
}

PacketPool::ScopedUse::~ScopedUse() { t_current_pool = prev_; }

}  // namespace newtos
