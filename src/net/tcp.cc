#include "src/net/tcp.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logger.h"

namespace newtos {
namespace {

constexpr int kMaxRtoBackoff = 12;  // give up after ~2^12 * rto

}  // namespace

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynRcvd:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(Simulation* sim, TimerWheel* wheel, const FlowKey& key,
                             const TcpParams& params, Callbacks callbacks)
    : sim_(sim),
      key_(key),
      params_(params),
      cb_(std::move(callbacks)),
      est_(params_.rto_initial, params_.rto_min, params_.rto_max),
      wheel_(wheel),
      rto_node_(&TcpConnection::RtoFired, this),
      delack_node_(&TcpConnection::DelackFired, this),
      persist_node_(&TcpConnection::PersistFired, this),
      time_wait_node_(&TcpConnection::TimeWaitFired, this) {
  assert(cb_.output && "TcpConnection requires an output function");
  assert(wheel_ != nullptr && "TcpConnection timers live on a TimerWheel");
  iss_ = static_cast<uint32_t>(FlowKeyHash{}(key_));
  snd_una_ = snd_nxt_ = iss_;
  cwnd_ = params_.init_cwnd_segments * params_.mss;
  last_advertised_wnd_ = params_.rcv_wnd;
}

TcpConnection::~TcpConnection() {
  wheel_->Cancel(&rto_node_);
  wheel_->Cancel(&delack_node_);
  wheel_->Cancel(&persist_node_);
  wheel_->Cancel(&time_wait_node_);
}

void TcpConnection::Connect() {
  assert(state_ == TcpState::kClosed);
  state_ = TcpState::kSynSent;
  SendControl(kTcpSyn, snd_nxt_);
  snd_nxt_ = iss_ + 1;
  ArmRto();
}

void TcpConnection::Listen() {
  assert(state_ == TcpState::kClosed);
  state_ = TcpState::kListen;
}

void TcpConnection::Send(uint64_t bytes) {
  if (fin_queued_ || bytes == 0) {
    return;
  }
  send_queue_bytes_ += bytes;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    TrySend();
  }
}

void TcpConnection::CloseSend() {
  if (fin_queued_) {
    return;
  }
  fin_queued_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    TrySend();
  }
}

void TcpConnection::Abort() {
  if (state_ != TcpState::kClosed && state_ != TcpState::kListen) {
    SendControl(kTcpRst | kTcpAck, snd_nxt_);
  }
  ToClosed();
}

uint32_t TcpConnection::AdvertisedWindow() const {
  if (unread_bytes_ >= params_.rcv_wnd) {
    return 0;
  }
  return params_.rcv_wnd - static_cast<uint32_t>(unread_bytes_);
}

PacketPtr TcpConnection::MakeSegment(uint8_t flags, uint32_t seq, uint32_t payload) {
  PacketPtr p = MakePacket();
  // Every segment of this connection — retransmits included — shares one
  // trace flow id (the first segment's packet id), so tracing can follow the
  // connection end to end even when individual packets are re-made.
  if (trace_flow_ == 0) {
    trace_flow_ = p->id;
  }
  p->trace_id = trace_flow_;
  p->ip.proto = IpProto::kTcp;
  p->ip.src = key_.src_ip;
  p->ip.dst = key_.dst_ip;
  p->tcp.src_port = key_.src_port;
  p->tcp.dst_port = key_.dst_port;
  p->tcp.seq = seq;
  p->tcp.ack = rcv_nxt_;
  p->tcp.flags = flags;
  p->tcp.window = AdvertisedWindow();
  if (params_.sack && (flags & kTcpAck) != 0) {
    // Advertise up to kMaxSackBlocks buffered ranges, newest (highest) first
    // — RFC 2018 requires the block with the most recent arrival to lead,
    // and under sequential arrival behind holes that is the trailing range.
    for (auto it = ooo_.rbegin(); it != ooo_.rend() && p->tcp.n_sack < kMaxSackBlocks; ++it) {
      p->tcp.sack[p->tcp.n_sack].start = irs_ + it->first;
      p->tcp.sack[p->tcp.n_sack].end = irs_ + it->second;
      ++p->tcp.n_sack;
    }
  }
  p->payload_bytes = payload;
  p->created_at = sim_->Now();
  return p;
}

void TcpConnection::InsertRange(std::map<uint32_t, uint32_t>* m, uint32_t start, uint32_t end) {
  if (start >= end) {
    return;
  }
  // Merge with any overlapping/adjacent ranges (keys are relative offsets,
  // so plain unsigned comparison is safe).
  auto it = m->upper_bound(start);
  if (it != m->begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = m->erase(prev);
    }
  }
  while (it != m->end() && it->first <= end) {
    end = std::max(end, it->second);
    it = m->erase(it);
  }
  (*m)[start] = end;
}

void TcpConnection::AbsorbSackBlocks(const TcpHeader& h) {
  for (int i = 0; i < h.n_sack; ++i) {
    const SackBlock& b = h.sack[static_cast<size_t>(i)];
    // Only ranges within the send window make sense.
    if (SeqLt(snd_una_, b.end) && SeqLeq(b.end, snd_nxt_) && SeqLt(b.start, b.end)) {
      InsertRange(&sacked_, b.start - iss_, b.end - iss_);
    }
  }
}

std::optional<std::pair<uint32_t, uint32_t>> TcpConnection::NextHole(uint32_t from) const {
  if (sacked_.empty()) {
    return std::nullopt;  // no selective information: the plain path handles it
  }
  // Only data below the highest SACKed byte is presumed lost; everything
  // above it is still in flight (RFC 6675's rescue rule is out of scope).
  const uint32_t high_sacked = sacked_.rbegin()->second;
  const uint32_t data_end_rel =
      std::min(high_sacked, static_cast<uint32_t>((fin_sent_ ? fin_seq_ : snd_nxt_) - iss_));
  uint32_t start = from;
  // Skip forward past any SACKed run covering `start`.
  auto it = sacked_.upper_bound(start);
  if (it != sacked_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) {
      start = prev->second;
    }
  }
  if (start >= data_end_rel) {
    return std::nullopt;
  }
  uint32_t end = data_end_rel;
  it = sacked_.lower_bound(start);
  if (it != sacked_.end() && it->first < end) {
    end = it->first;
  }
  if (end - start > params_.mss) {
    end = start + params_.mss;
  }
  return std::make_pair(start, end);
}

bool TcpConnection::RetransmitNextHole() {
  const uint32_t una_rel = snd_una_ - iss_;
  const auto hole = NextHole(std::max(retran_high_, una_rel));
  if (!hole.has_value()) {
    return false;
  }
  const auto [rel_start, rel_end] = *hole;
  retran_high_ = rel_end;
  est_.OnRetransmit();
  ++stats_.retransmits;
  ++stats_.sack_retransmits;
  Emit(MakeSegment(kTcpAck, iss_ + rel_start, rel_end - rel_start));
  return true;
}

void TcpConnection::Emit(PacketPtr p) {
  ++stats_.segs_sent;
  last_advertised_wnd_ = p->tcp.window;
  cb_.output(std::move(p));
}

void TcpConnection::SendControl(uint8_t flags, uint32_t seq) { Emit(MakeSegment(flags, seq, 0)); }

void TcpConnection::SendAck(bool forced) {
  if (!forced && params_.delayed_ack && segs_since_ack_ < 2 && ooo_.empty()) {
    if (!delack_node_.armed()) {
      wheel_->Arm(&delack_node_, sim_->Now() + params_.delayed_ack_timeout);
    }
    return;
  }
  wheel_->Cancel(&delack_node_);
  segs_since_ack_ = 0;
  SendControl(kTcpAck, snd_nxt_);
}

uint32_t TcpConnection::UsableWindow() const {
  const uint32_t wnd = std::min(cwnd_, snd_wnd_);
  const uint32_t flight = snd_nxt_ - snd_una_;
  return wnd > flight ? wnd - flight : 0;
}

void TcpConnection::TrySend() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  bool sent = false;
  while (send_queue_bytes_ > 0) {
    const uint32_t usable = UsableWindow();
    if (usable == 0) {
      if (snd_wnd_ == 0 && flight_size() == 0) {
        ArmPersist();
      }
      break;
    }
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>({params_.mss, send_queue_bytes_, usable}));
    uint8_t flags = kTcpAck;
    if (len == send_queue_bytes_) {
      flags |= kTcpPsh;
    }
    PacketPtr seg = MakeSegment(flags, snd_nxt_, len);
    if (!est_.sample_pending()) {
      est_.StartSample(snd_nxt_ + len, sim_->Now());
    }
    snd_nxt_ += len;
    send_queue_bytes_ -= len;
    stats_.bytes_sent += len;
    segs_since_ack_ = 0;  // data segments carry the ACK
    wheel_->Cancel(&delack_node_);
    Emit(std::move(seg));
    sent = true;
  }
  if (sent || send_queue_bytes_ == 0) {
    MaybeFin();
  }
  if (flight_size() > 0 && !rto_node_.armed()) {
    ArmRto();
  }
}

void TcpConnection::MaybeFin() {
  if (!fin_queued_ || fin_sent_ || send_queue_bytes_ > 0) {
    return;
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  fin_seq_ = snd_nxt_;
  SendControl(kTcpFin | kTcpAck, snd_nxt_);
  snd_nxt_ += 1;
  fin_sent_ = true;
  state_ = state_ == TcpState::kEstablished ? TcpState::kFinWait1 : TcpState::kLastAck;
  ArmRto();
}

void TcpConnection::EnterEstablished() {
  state_ = TcpState::kEstablished;
  cwnd_ = params_.init_cwnd_segments * params_.mss;
  est_.ResetBackoff();
  tlp_fired_ = false;
  NEWTOS_LOG(kDebug, sim_->Now(), "tcp", "established " << Ipv4ToString(key_.src_ip) << ":"
                                                        << key_.src_port);
  if (cb_.on_established) {
    cb_.on_established();
  }
  TrySend();
}

void TcpConnection::OnSegment(const Packet& p) {
  assert(p.ip.proto == IpProto::kTcp);
  ++stats_.segs_rcvd;
  if (p.corrupt != 0) {
    ++stats_.corrupt_segments_accepted;  // verification below TCP failed us
  }
  const TcpHeader& h = p.tcp;

  if (h.rst()) {
    if (state_ != TcpState::kClosed && state_ != TcpState::kListen) {
      ToClosed();
    }
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      return;  // dead connection: ignore (a full stack would RST)

    case TcpState::kListen:
      if (h.syn() && !h.ack_flag()) {
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_wnd_ = h.window;
        SendControl(kTcpSyn | kTcpAck, snd_nxt_);
        snd_nxt_ = iss_ + 1;
        state_ = TcpState::kSynRcvd;
        ArmRto();
      }
      return;

    case TcpState::kSynSent:
      if (h.syn() && h.ack_flag() && h.ack == snd_nxt_) {
        snd_una_ = h.ack;
        irs_ = h.seq;
        rcv_nxt_ = h.seq + 1;
        snd_wnd_ = h.window;
        DisarmRto();
        SendControl(kTcpAck, snd_nxt_);
        EnterEstablished();
      }
      return;

    case TcpState::kSynRcvd:
      if (h.ack_flag() && h.ack == snd_nxt_) {
        snd_una_ = h.ack;
        snd_wnd_ = h.window;
        DisarmRto();
        EnterEstablished();
        // The ACK may carry data; continue into data processing below only if
        // it does (fall through by reprocessing).
        if (p.payload_bytes > 0 || h.fin()) {
          DeliverInOrder(p);
        }
      }
      return;

    default:
      break;  // data states handled below
  }

  // Established and later states.
  if (h.ack_flag()) {
    ProcessAck(p);
  }
  if (state_ == TcpState::kClosed) {
    return;  // ProcessAck may close (e.g. final ACK in kLastAck)
  }
  if (p.payload_bytes > 0 || h.fin()) {
    DeliverInOrder(p);
  }
}

void TcpConnection::ProcessAck(const Packet& p) {
  const uint32_t ack = p.tcp.ack;

  if (SeqLt(snd_nxt_, ack)) {
    SendAck(true);  // acks data we never sent; resynchronize
    return;
  }

  if (params_.sack) {
    AbsorbSackBlocks(p.tcp);
  }

  if (SeqLt(snd_una_, ack)) {
    // New data acknowledged.
    const uint32_t delta = ack - snd_una_;
    uint32_t control = 0;
    if (SeqLeq(snd_una_, iss_) && SeqLt(iss_, ack)) {
      ++control;  // SYN occupies iss_
    }
    if (fin_sent_ && SeqLeq(snd_una_, fin_seq_) && SeqLt(fin_seq_, ack)) {
      ++control;  // FIN occupies fin_seq_
    }
    const uint32_t payload_acked = delta - control;
    stats_.bytes_acked += payload_acked;

    // RTT sample (Karn's rule inside: a tainted sample is discarded). Per
    // RFC 6298 §5.7 the RTO backoff resets only when a *fresh* sample is
    // taken — i.e. a newly transmitted segment was acked — not on any
    // cumulative advance. An ACK for a retransmission is ambiguous (it may
    // be the original, long-delayed) and must keep the backed-off RTO.
    est_.OnAck(ack, sim_->Now());

    snd_una_ = ack;
    tlp_fired_ = false;  // new episode: the tail moved forward
    snd_wnd_ = p.tcp.window;

    // The scoreboard never needs ranges at or below the cumulative ACK.
    if (params_.sack && !sacked_.empty()) {
      const uint32_t ack_rel = ack - iss_;
      auto it = sacked_.begin();
      while (it != sacked_.end() && it->second <= ack_rel) {
        it = sacked_.erase(it);
      }
      if (it != sacked_.end() && it->first < ack_rel) {
        const uint32_t end = it->second;
        sacked_.erase(it);
        sacked_[ack_rel] = end;
      }
    }

    // Congestion control.
    if (in_fast_recovery_) {
      if (SeqLeq(recover_, ack)) {
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
        dupacks_ = 0;
      } else if (params_.sack && !sacked_.empty()) {
        // SACK partial ACK: resend the next hole if one exists; if not, the
        // earlier hole retransmissions are still in flight and a blind
        // resend would only duplicate them.
        RetransmitNextHole();
        cwnd_ = cwnd_ > payload_acked ? cwnd_ - payload_acked + params_.mss : params_.mss;
      } else {
        // NewReno partial ACK: retransmit the next in-order hole, deflate.
        const uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
        if (SeqLt(snd_una_, data_end)) {
          const uint32_t len = std::min(params_.mss, data_end - snd_una_);
          PacketPtr seg = MakeSegment(kTcpAck, snd_una_, len);
          ++stats_.retransmits;
          est_.OnRetransmit();
          Emit(std::move(seg));
        }
        cwnd_ = cwnd_ > payload_acked ? cwnd_ - payload_acked + params_.mss : params_.mss;
      }
    } else {
      dupacks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min(payload_acked, params_.mss);  // slow start
      } else if (cwnd_ > 0) {
        cwnd_ += std::max<uint32_t>(1, params_.mss * params_.mss / cwnd_);  // AIMD
      }
    }

    if (snd_una_ == snd_nxt_) {
      DisarmRto();
      // Our FIN (if any) is now acknowledged.
      if (fin_sent_) {
        if (state_ == TcpState::kFinWait1) {
          state_ = TcpState::kFinWait2;
        } else if (state_ == TcpState::kClosing) {
          EnterTimeWait();
          return;
        } else if (state_ == TcpState::kLastAck) {
          ToClosed();
          return;
        }
      }
      if (send_queue_bytes_ == 0 && cb_.on_drained) {
        cb_.on_drained();
      }
    } else {
      ArmRto();
    }
    TrySend();
    return;
  }

  if (SeqLt(ack, snd_una_)) {
    return;  // stale (reordered) ACK: ignore entirely
  }

  // ack == snd_una_: duplicate or window update.
  const bool window_update = p.tcp.window != snd_wnd_;
  snd_wnd_ = p.tcp.window;
  if (p.payload_bytes == 0 && !window_update && flight_size() > 0) {
    ++dupacks_;
    ++stats_.dupacks_rcvd;
    if (!in_fast_recovery_ && dupacks_ == params_.dupack_threshold) {
      // Fast retransmit.
      const uint32_t flight = flight_size();
      ssthresh_ = std::max(flight / 2, 2 * params_.mss);
      retran_high_ = snd_una_ - iss_;
      const uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
      if (params_.sack && RetransmitNextHole()) {
        ++stats_.fast_retransmits;
      } else if (SeqLt(snd_una_, data_end)) {
        const uint32_t len = std::min(params_.mss, data_end - snd_una_);
        PacketPtr seg = MakeSegment(kTcpAck, snd_una_, len);
        ++stats_.retransmits;
        ++stats_.fast_retransmits;
        est_.OnRetransmit();
        Emit(std::move(seg));
      } else if (fin_sent_) {
        SendControl(kTcpFin | kTcpAck, fin_seq_);
        ++stats_.retransmits;
        ++stats_.fast_retransmits;
      }
      cwnd_ = ssthresh_ + 3 * params_.mss;
      in_fast_recovery_ = true;
      recover_ = snd_nxt_;
    } else if (in_fast_recovery_) {
      cwnd_ += params_.mss;  // inflate per extra dupack
      if (params_.sack) {
        // Each dupack's fresh SACK info can reveal the next hole to fill —
        // the mechanism that repairs multiple losses per window in one RTT.
        RetransmitNextHole();
      }
      TrySend();
    }
  } else if (window_update) {
    wheel_->Cancel(&persist_node_);
    TrySend();
  }
}

void TcpConnection::DeliverInOrder(const Packet& p) {
  const uint32_t seq = p.tcp.seq;
  const uint32_t len = p.payload_bytes;
  const uint32_t seg_end = seq + len;

  if (len > 0) {
    if (SeqLeq(seg_end, rcv_nxt_)) {
      // Entirely old data (retransmission we already have): re-ACK.
      SendAck(true);
    } else if (SeqLt(rcv_nxt_, seq)) {
      // Hole before this segment: zero-window drops, else buffer out of order.
      if (AdvertisedWindow() == 0) {
        SendAck(true);
      } else {
        InsertRange(&ooo_, seq - irs_, seg_end - irs_);
        ++stats_.ooo_segments;
        SendAck(true);  // immediate dup ACK so the sender can fast-retransmit
      }
    } else {
      // Overlaps rcv_nxt_: accept the new part.
      if (AdvertisedWindow() == 0) {
        SendAck(true);  // window probe handling: refuse, re-advertise
      } else {
        uint64_t delivered = seg_end - rcv_nxt_;
        rcv_nxt_ = seg_end;
        // Drain any now-contiguous out-of-order ranges (keys are relative).
        uint32_t rcv_rel = rcv_nxt_ - irs_;
        auto it = ooo_.begin();
        while (it != ooo_.end() && it->first <= rcv_rel) {
          if (it->second > rcv_rel) {
            delivered += it->second - rcv_rel;
            rcv_rel = it->second;
          }
          it = ooo_.erase(it);
        }
        rcv_nxt_ = irs_ + rcv_rel;
        stats_.bytes_received += delivered;
        if (auto_consume_) {
          // Consumed instantly; window never closes.
        } else {
          unread_bytes_ += delivered;
        }
        ++segs_since_ack_;
        if (cb_.on_data) {
          cb_.on_data(static_cast<uint32_t>(delivered));
        }
        SendAck(!ooo_.empty() || !params_.delayed_ack || segs_since_ack_ >= 2);
      }
    }
  }

  if (p.tcp.fin()) {
    const uint32_t fin_seq = seq + len;
    if (SeqLt(fin_seq, rcv_nxt_)) {
      SendAck(true);  // retransmitted FIN we already consumed (e.g. in TIME_WAIT)
    } else {
      peer_fin_received_ = true;
      peer_fin_seq_ = fin_seq;
    }
  }
  if (peer_fin_received_ && rcv_nxt_ == peer_fin_seq_) {
    peer_fin_received_ = false;  // consume exactly once
    rcv_nxt_ = peer_fin_seq_ + 1;
    SendAck(true);
    switch (state_) {
      case TcpState::kEstablished:
        state_ = TcpState::kCloseWait;
        break;
      case TcpState::kFinWait1:
        // Our FIN not yet acked (else we'd be in kFinWait2): simultaneous close.
        state_ = TcpState::kClosing;
        break;
      case TcpState::kFinWait2:
        EnterTimeWait();
        break;
      default:
        break;
    }
  }
}

void TcpConnection::ArmRto() {
  // TLP (when enabled): with no backoff in effect and an RTT estimate on
  // hand, the first firing of rto_node_ this episode is a probe at
  // PTO = max(2*srtt, 2ms), never later than the RTO it stands in for.
  if (params_.tail_loss_probe && !tlp_fired_ && est_.backoff() == 0 && est_.srtt() > 0) {
    const SimTime pto =
        std::min(std::max(2 * est_.srtt(), 2 * kMillisecond), est_.BackoffedRto());
    tlp_pending_ = true;
    wheel_->Arm(&rto_node_, sim_->Now() + pto);
    return;
  }
  tlp_pending_ = false;
  wheel_->Arm(&rto_node_, sim_->Now() + est_.BackoffedRto());
}

void TcpConnection::DisarmRto() {
  tlp_pending_ = false;
  wheel_->Cancel(&rto_node_);
}

void TcpConnection::OnRetransmissionTimer() {
  if (tlp_pending_) {
    tlp_pending_ = false;
    OnTlpTimeout();
    return;
  }
  OnRtoTimeout();
}

void TcpConnection::OnTlpTimeout() {
  tlp_fired_ = true;
  if (state_ == TcpState::kClosed || state_ == TcpState::kListen ||
      state_ == TcpState::kTimeWait || flight_size() == 0) {
    return;
  }
  // Probe: retransmit the tail (highest unacked data, or the FIN). If the
  // tail was lost, the probe repairs it an RTO early; if only its ACK was
  // lost, the probe is a no-op duplicate. No cwnd collapse, no backoff —
  // this is not a timeout, and the sample window is merely tainted.
  ++stats_.tlp_probes;
  const uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
  if (SeqLt(snd_una_, data_end)) {
    const uint32_t len = std::min(params_.mss, data_end - snd_una_);
    PacketPtr seg = MakeSegment(kTcpAck, data_end - len, len);
    ++stats_.retransmits;
    est_.OnRetransmit();
    Emit(std::move(seg));
  } else if (fin_sent_) {
    SendControl(kTcpFin | kTcpAck, fin_seq_);
    ++stats_.retransmits;
  }
  ArmRto();  // tlp_fired_ is set: this arms the real backed-off RTO
}

void TcpConnection::OnRtoTimeout() {
  ++stats_.timeouts;
  est_.OnTimeout();
  if (est_.backoff() > kMaxRtoBackoff) {
    NEWTOS_LOG(kWarn, sim_->Now(), "tcp", "giving up after " << kMaxRtoBackoff << " RTOs");
    ToClosed();
    return;
  }

  switch (state_) {
    case TcpState::kSynSent:
      SendControl(kTcpSyn, iss_);
      ++stats_.retransmits;
      ArmRto();
      return;
    case TcpState::kSynRcvd:
      SendControl(kTcpSyn | kTcpAck, iss_);
      ++stats_.retransmits;
      ArmRto();
      return;
    case TcpState::kClosed:
    case TcpState::kListen:
    case TcpState::kTimeWait:
      return;
    default:
      break;
  }

  if (flight_size() == 0) {
    return;  // spurious (everything was acked as the timer fired)
  }

  // Loss response: collapse to one segment, exit any fast recovery. The
  // SACK scoreboard is discarded (conservative: the peer's view may be
  // stale after a full timeout).
  ssthresh_ = std::max(flight_size() / 2, 2 * params_.mss);
  cwnd_ = params_.mss;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  sacked_.clear();
  retran_high_ = snd_una_ - iss_;
  est_.OnRetransmit();

  const uint32_t data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
  if (SeqLt(snd_una_, data_end)) {
    const uint32_t len = std::min(params_.mss, data_end - snd_una_);
    PacketPtr seg = MakeSegment(kTcpAck, snd_una_, len);
    ++stats_.retransmits;
    Emit(std::move(seg));
  } else if (fin_sent_) {
    SendControl(kTcpFin | kTcpAck, fin_seq_);
    ++stats_.retransmits;
  }
  ArmRto();
}

void TcpConnection::ArmPersist() {
  if (persist_node_.armed()) {
    return;
  }
  wheel_->Arm(&persist_node_, sim_->Now() + est_.rto());
}

void TcpConnection::OnPersistTimeout() {
  if (snd_wnd_ > 0 || send_queue_bytes_ == 0 || state_ == TcpState::kClosed) {
    return;
  }
  // Zero-window probe: one byte beyond the window. The receiver refuses it
  // (window is zero) and replies with an ACK carrying its current window.
  // snd_nxt_ is NOT advanced — the byte is a probe, not a transmission.
  PacketPtr probe = MakeSegment(kTcpAck, snd_nxt_, 1);
  Emit(std::move(probe));
  wheel_->Arm(&persist_node_, sim_->Now() + std::min(2 * est_.rto(), params_.rto_max));
}

void TcpConnection::SetAutoConsume(bool on) {
  auto_consume_ = on ? (unread_bytes_ = 0, true) : false;
}

uint64_t TcpConnection::Read(uint64_t max_bytes) {
  const uint64_t n = std::min(max_bytes, unread_bytes_);
  const bool was_closed = AdvertisedWindow() == 0;
  unread_bytes_ -= n;
  if (was_closed && AdvertisedWindow() > 0 && state_ != TcpState::kClosed) {
    SendAck(true);  // window-update ACK reopens the sender
  }
  return n;
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  DisarmRto();
  wheel_->Cancel(&persist_node_);
  wheel_->Arm(&time_wait_node_, sim_->Now() + params_.time_wait);
}

void TcpConnection::ToClosed() {
  if (state_ == TcpState::kClosed) {
    return;
  }
  state_ = TcpState::kClosed;
  DisarmRto();
  wheel_->Cancel(&delack_node_);
  wheel_->Cancel(&persist_node_);
  wheel_->Cancel(&time_wait_node_);
  if (cb_.on_closed) {
    cb_.on_closed();
  }
}

}  // namespace newtos
