// Stateless packet-filter rule engine (the stack's PF server evaluates this).
//
// First-match semantics over an ordered rule list, like a simple pf/iptables
// chain: each rule matches on protocol and masked 5-tuple fields, with a
// default policy when nothing matches. The multiserver PF server charges a
// per-rule evaluation cost, so the rule count is a performance parameter in
// the stack experiments.

#ifndef SRC_NET_FILTER_H_
#define SRC_NET_FILTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace newtos {

enum class FilterAction { kAccept, kDrop };

struct FilterRule {
  // Wildcards: proto nullopt = any; masks select the compared prefix bits;
  // port 0 = any.
  std::optional<IpProto> proto;
  Ipv4Addr src_addr = 0;
  Ipv4Addr src_mask = 0;  // 0 = any
  Ipv4Addr dst_addr = 0;
  Ipv4Addr dst_mask = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  FilterAction action = FilterAction::kAccept;
  std::string label;

  bool Matches(const Packet& p) const;
};

struct FilterVerdict {
  FilterAction action = FilterAction::kAccept;
  int rules_evaluated = 0;       // cost driver for the PF server
  const FilterRule* rule = nullptr;  // nullptr if the default policy applied
};

class PacketFilter {
 public:
  explicit PacketFilter(FilterAction default_action = FilterAction::kAccept)
      : default_action_(default_action) {}

  void Append(FilterRule rule) { rules_.push_back(std::move(rule)); }
  void Clear() { rules_.clear(); }
  size_t size() const { return rules_.size(); }
  FilterAction default_action() const { return default_action_; }

  // Evaluates rules in order; first match wins.
  FilterVerdict Evaluate(const Packet& p) const;

  uint64_t accepted() const { return accepted_; }
  uint64_t dropped() const { return dropped_; }

 private:
  FilterAction default_action_;
  std::vector<FilterRule> rules_;
  mutable uint64_t accepted_ = 0;
  mutable uint64_t dropped_ = 0;
};

// Builds a synthetic chain of `n` non-matching rules ending in accept-all —
// the knob benches use to make the PF stage arbitrarily expensive.
PacketFilter MakeSyntheticFilter(size_t n_rules);

}  // namespace newtos

#endif  // SRC_NET_FILTER_H_
