#include "src/net/tcp_host.h"

#include <cassert>
#include <utility>

#include "src/sim/logger.h"

namespace newtos {

TcpHost::TcpHost(Simulation* sim, Ipv4Addr addr, std::function<void(PacketPtr)> output)
    : sim_(sim), addr_(addr), output_(std::move(output)), wheel_(sim) {
  assert(output_);
}

bool TcpHost::Listen(uint16_t port, AppHooks hooks, TcpParams params) {
  auto [it, inserted] = listeners_.emplace(port, Listener{std::move(hooks), params});
  return inserted;
}

TcpConnection* TcpHost::CreateConnection(const FlowKey& key, const TcpParams& params,
                                         const AppHooks& hooks) {
  // The app hooks want the TcpConnection*, which does not exist until the
  // object is constructed — so the adapters look it up in the table by key.
  // Callbacks only ever fire from OnSegment/timers, strictly after insertion.
  auto lookup = [this, key]() -> TcpConnection* {
    auto it = conns_.find(key);
    return it != conns_.end() ? it->second.get() : nullptr;
  };
  TcpConnection::Callbacks full;
  full.output = output_;
  if (hooks.on_established) {
    full.on_established = [lookup, fn = hooks.on_established] {
      if (TcpConnection* c = lookup()) fn(c);
    };
  }
  if (hooks.on_data) {
    full.on_data = [lookup, fn = hooks.on_data](uint32_t bytes) {
      if (TcpConnection* c = lookup()) fn(c, bytes);
    };
  }
  if (hooks.on_drained) {
    full.on_drained = [lookup, fn = hooks.on_drained] {
      if (TcpConnection* c = lookup()) fn(c);
    };
  }
  if (hooks.on_closed) {
    full.on_closed = [lookup, fn = hooks.on_closed] {
      if (TcpConnection* c = lookup()) fn(c);
    };
  }
  auto conn = std::make_unique<TcpConnection>(sim_, &wheel_, key, params, std::move(full));
  TcpConnection* raw = conn.get();
  conns_[key] = std::move(conn);
  return raw;
}

TcpConnection* TcpHost::Connect(Ipv4Addr dst, uint16_t dst_port, AppHooks hooks, TcpParams params,
                                const std::function<bool(const FlowKey&)>& key_filter) {
  // Find a free ephemeral port (wraps within the dynamic range) whose flow
  // key passes the filter, if any.
  for (int attempts = 0; attempts < 16384; ++attempts) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65535 ? 49152 : next_ephemeral_ + 1;
    const FlowKey key{addr_, dst, port, dst_port};
    if (key_filter && !key_filter(key)) {
      continue;
    }
    if (conns_.find(key) == conns_.end()) {
      TcpConnection* conn = CreateConnection(key, params, hooks);
      conn->Connect();
      return conn;
    }
  }
  return nullptr;  // ephemeral range exhausted (or the filter rejected it all)
}

void TcpHost::OnPacket(const PacketPtr& p) {
  if (p->ip.proto != IpProto::kTcp || p->ip.dst != addr_) {
    ++dropped_no_match_;
    return;
  }
  // Our flow key is the reverse of the packet's.
  const FlowKey key = PacketFlowKey(*p).Reversed();
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    it->second->OnSegment(*p);
    return;
  }
  if (p->tcp.syn() && !p->tcp.ack_flag()) {
    auto lit = listeners_.find(p->tcp.dst_port);
    if (lit != listeners_.end()) {
      TcpConnection* conn = CreateConnection(key, lit->second.params, lit->second.hooks);
      conn->Listen();
      conn->OnSegment(*p);
      return;
    }
  }
  ++dropped_no_match_;
  NEWTOS_LOG(kTrace, sim_->Now(), "tcphost", "no match for " << p->ToString());
}

void TcpHost::Destroy(TcpConnection* conn) {
  assert(conn != nullptr);
  conns_.erase(conn->key());
}

size_t TcpHost::ReapClosed() {
  size_t reaped = 0;
  // lint:allow(map-iteration): erase-only sweep; no observable depends on visit order
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->state() == TcpState::kClosed) {
      it = conns_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

void TcpHost::ScheduleReap() { wheel_.Arm(&reap_node_, sim_->Now()); }

std::vector<TcpConnection*> TcpHost::Connections() const {
  std::vector<TcpConnection*> out;
  out.reserve(conns_.size());
  // conns_ is hash-ordered; callers iterate this list to fold per-connection
  // stats and drive campaigns, so normalize to flow-key order — an unordered
  // walk leaking out of this accessor is exactly the replay hazard the
  // determinism goldens exist to catch.
  for (const auto& [key, conn] : conns_) {  // lint:allow(map-iteration): order normalized by the sort below
    out.push_back(conn.get());
  }
  std::sort(out.begin(), out.end(), [](const TcpConnection* a, const TcpConnection* b) {
    const FlowKey& ka = a->key();
    const FlowKey& kb = b->key();
    if (ka.src_ip != kb.src_ip) return ka.src_ip < kb.src_ip;
    if (ka.dst_ip != kb.dst_ip) return ka.dst_ip < kb.dst_ip;
    if (ka.src_port != kb.src_port) return ka.src_port < kb.src_port;
    return ka.dst_port < kb.dst_port;
  });
  return out;
}

}  // namespace newtos
