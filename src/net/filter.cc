#include "src/net/filter.h"

namespace newtos {

bool FilterRule::Matches(const Packet& p) const {
  if (proto.has_value() && p.ip.proto != *proto) {
    return false;
  }
  if (src_mask != 0 && (p.ip.src & src_mask) != (src_addr & src_mask)) {
    return false;
  }
  if (dst_mask != 0 && (p.ip.dst & dst_mask) != (dst_addr & dst_mask)) {
    return false;
  }
  uint16_t psrc = 0;
  uint16_t pdst = 0;
  if (p.ip.proto == IpProto::kTcp) {
    psrc = p.tcp.src_port;
    pdst = p.tcp.dst_port;
  } else if (p.ip.proto == IpProto::kUdp) {
    psrc = p.udp.src_port;
    pdst = p.udp.dst_port;
  }  // ICMP carries no ports: port-specific rules never match it
  if (src_port != 0 && psrc != src_port) {
    return false;
  }
  if (dst_port != 0 && pdst != dst_port) {
    return false;
  }
  return true;
}

FilterVerdict PacketFilter::Evaluate(const Packet& p) const {
  FilterVerdict v;
  for (const FilterRule& rule : rules_) {
    ++v.rules_evaluated;
    if (rule.Matches(p)) {
      v.action = rule.action;
      v.rule = &rule;
      (v.action == FilterAction::kAccept ? accepted_ : dropped_) += 1;
      return v;
    }
  }
  v.action = default_action_;
  (v.action == FilterAction::kAccept ? accepted_ : dropped_) += 1;
  return v;
}

PacketFilter MakeSyntheticFilter(size_t n_rules) {
  PacketFilter pf(FilterAction::kAccept);
  for (size_t i = 0; i + 1 < n_rules; ++i) {
    // Rules that never match the test traffic: a bogus /32 source.
    FilterRule r;
    r.src_addr = Ipv4(192, 0, 2, static_cast<uint8_t>(i & 0xff));
    r.src_mask = 0xffffffff;
    r.src_port = 1;  // and an unlikely source port
    r.action = FilterAction::kDrop;
    r.label = "synthetic-" + std::to_string(i);
    pf.Append(std::move(r));
  }
  if (n_rules > 0) {
    FilterRule accept_all;
    accept_all.label = "accept-all";
    pf.Append(std::move(accept_all));
  }
  return pf;
}

}  // namespace newtos
