// RFC 1071 Internet checksum.

#ifndef SRC_NET_CHECKSUM_H_
#define SRC_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace newtos {

// Returns the 16-bit one's-complement sum of `len` bytes (the running sum,
// NOT inverted). Use Finish() to produce the field value.
uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t sum = 0);

// Folds carries and inverts: the value to place in a checksum field.
uint16_t ChecksumFinish(uint32_t sum);

// One-shot: checksum of a buffer.
uint16_t Checksum(const uint8_t* data, size_t len);

// True if a buffer that *contains* its checksum field verifies (sums to
// 0xffff before inversion).
bool ChecksumValid(const uint8_t* data, size_t len);

}  // namespace newtos

#endif  // SRC_NET_CHECKSUM_H_
