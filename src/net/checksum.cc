#include "src/net/checksum.h"

namespace newtos {

uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t sum) {
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {  // odd trailing byte, padded with zero
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

uint16_t Checksum(const uint8_t* data, size_t len) {
  return ChecksumFinish(ChecksumPartial(data, len));
}

bool ChecksumValid(const uint8_t* data, size_t len) {
  uint32_t sum = ChecksumPartial(data, len);
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return sum == 0xffff;
}

}  // namespace newtos
