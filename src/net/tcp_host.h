// Connection table: demultiplexes TCP segments to connections, owns
// listening sockets, and allocates ephemeral ports.
//
// Both ends of every simulated link use this class: the "system under test"
// wraps one inside its TCP server (charging cycle costs per operation), and
// the remote load-generator host uses one directly with zero processing cost
// (an infinitely fast peer, like the dedicated load machines in the paper's
// testbed).

#ifndef SRC_NET_TCP_HOST_H_
#define SRC_NET_TCP_HOST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"

namespace newtos {

class TcpHost {
 public:
  // `output` transmits a segment toward the peer (wire, or the stack below).
  TcpHost(Simulation* sim, Ipv4Addr addr, std::function<void(PacketPtr)> output);

  TcpHost(const TcpHost&) = delete;
  TcpHost& operator=(const TcpHost&) = delete;

  Ipv4Addr addr() const { return addr_; }

  // Application hooks for a connection created by Connect or by a listener.
  struct AppHooks {
    std::function<void(TcpConnection*)> on_established;
    std::function<void(TcpConnection*, uint32_t bytes)> on_data;
    std::function<void(TcpConnection*)> on_drained;
    std::function<void(TcpConnection*)> on_closed;
  };

  // Starts accepting connections on `port`. `hooks` apply to every accepted
  // connection. Returns false if the port is already bound.
  bool Listen(uint16_t port, AppHooks hooks, TcpParams params = {});

  // Active open to dst:dst_port from an ephemeral local port. When
  // `key_filter` is set, only ephemeral ports whose resulting flow key
  // satisfies it are used — how a sharded stack picks source ports that RSS
  // back to the issuing shard.
  TcpConnection* Connect(Ipv4Addr dst, uint16_t dst_port, AppHooks hooks, TcpParams params = {},
                         const std::function<bool(const FlowKey&)>& key_filter = {});

  // Input from the wire/stack. Creates a connection on SYN to a bound
  // listener; otherwise demuxes to the matching connection (or drops).
  void OnPacket(const PacketPtr& p);

  // Destroys a connection object (after kClosed). Invalidates the pointer.
  void Destroy(TcpConnection* conn);

  // Removes every closed connection from the table (periodic GC in long runs).
  size_t ReapClosed();

  // Schedules a ReapClosed for "now" on the host's own timer wheel. Safe to
  // call from a connection callback (the reap runs after the current event);
  // the node dies with the host, so a crash that replaces the host can never
  // leave a dangling reap behind.
  void ScheduleReap();

  // The wheel all of this host's connection timers live on. One pending
  // simulation event services every armed timer on the host.
  TimerWheel* wheel() { return &wheel_; }

  size_t connection_count() const { return conns_.size(); }
  uint64_t dropped_no_match() const { return dropped_no_match_; }

  // Enumerates live connections (stable order not guaranteed).
  std::vector<TcpConnection*> Connections() const;

 private:
  struct Listener {
    AppHooks hooks;
    TcpParams params;
  };

  TcpConnection* CreateConnection(const FlowKey& key, const TcpParams& params,
                                  const AppHooks& hooks);

  static void ReapFired(void* arg) { static_cast<TcpHost*>(arg)->ReapClosed(); }

  Simulation* sim_;
  Ipv4Addr addr_;
  std::function<void(PacketPtr)> output_;
  // Declared before conns_: connections cancel their timer nodes out of the
  // wheel in their destructors, so they must be destroyed first.
  TimerWheel wheel_;
  TimerNode reap_node_{&TcpHost::ReapFired, this};
  std::unordered_map<uint16_t, Listener> listeners_;
  std::unordered_map<FlowKey, std::unique_ptr<TcpConnection>, FlowKeyHash> conns_;
  uint16_t next_ephemeral_ = 49152;
  uint64_t dropped_no_match_ = 0;
};

}  // namespace newtos

#endif  // SRC_NET_TCP_HOST_H_
