// Minimal UDP endpoint: bind, send datagrams, receive by port demux.
//
// UDP exercises the connectionless path through the multiserver stack (the
// paper's stack has a dedicated UDP server alongside TCP).

#ifndef SRC_NET_UDP_H_
#define SRC_NET_UDP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace newtos {

class UdpHost {
 public:
  // Called with (packet) for each datagram delivered to a bound port.
  using ReceiveFn = std::function<void(const PacketPtr&)>;

  UdpHost(Simulation* sim, Ipv4Addr addr, std::function<void(PacketPtr)> output);

  UdpHost(const UdpHost&) = delete;
  UdpHost& operator=(const UdpHost&) = delete;

  Ipv4Addr addr() const { return addr_; }

  // Binds `port`; returns false if already bound.
  bool Bind(uint16_t port, ReceiveFn on_receive);
  void Unbind(uint16_t port);

  // Emits a datagram. `payload_bytes` may exceed nothing — UDP does not
  // fragment here; callers must respect the MTU (checked in debug builds).
  // The packet moves straight into the output path (no caller handle: the
  // flood workloads send hundreds of thousands per second and a returned
  // PacketPtr would cost a refcount round-trip on every one).
  void Send(uint16_t src_port, Ipv4Addr dst, uint16_t dst_port, uint32_t payload_bytes,
            uint64_t app_tag = 0);

  // Input from the wire/stack; drops datagrams to unbound ports.
  void OnPacket(const PacketPtr& p);

  uint64_t delivered() const { return delivered_; }
  uint64_t dropped_unbound() const { return dropped_unbound_; }

 private:
  Simulation* sim_;
  Ipv4Addr addr_;
  std::function<void(PacketPtr)> output_;
  std::unordered_map<uint16_t, ReceiveFn> bindings_;
  uint64_t delivered_ = 0;
  uint64_t dropped_unbound_ = 0;
};

}  // namespace newtos

#endif  // SRC_NET_UDP_H_
