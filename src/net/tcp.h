// A working, simplified TCP.
//
// Implements enough of RFC 793/5681/6298 to produce realistic transport
// dynamics over the simulated network: three-way handshake, MSS
// segmentation, cumulative ACKs with delayed-ACK, flow control with a
// persist timer, slow start, congestion avoidance, fast
// retransmit/recovery (Reno), RTO with Karn's rule and exponential
// backoff, FIN teardown and TIME_WAIT. Not implemented (documented
// simplifications): SACK, window scaling as an option (the codec applies a
// fixed scale), urgent data, and out-of-band control.
//
// Payload *contents* are not modeled — connections move byte counts with
// real sequence-number arithmetic (wraparound-safe). Out-of-order arrival,
// loss, duplication and reordering are all handled; tests inject each.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "src/net/packet.h"
#include "src/net/rtt_estimator.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/sim/timer_wheel.h"

namespace newtos {

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

struct TcpParams {
  uint32_t mss = 1460;
  uint32_t rcv_wnd = 1 << 20;           // advertised receive window, bytes
  uint32_t init_cwnd_segments = 10;     // RFC 6928 initial window
  bool sack = false;                    // RFC 2018 selective acknowledgment
  SimTime rto_initial = 50 * kMillisecond;
  SimTime rto_min = 10 * kMillisecond;  // LAN-tuned, as a datacenter stack would
  SimTime rto_max = 4 * kSecond;
  bool delayed_ack = true;
  SimTime delayed_ack_timeout = 500 * kMicrosecond;
  uint32_t dupack_threshold = 3;
  SimTime time_wait = 10 * kMillisecond;  // shortened 2MSL for simulation
  // Tail loss probe (RFC 8985-style, simplified): when the whole window is a
  // short tail that loss would otherwise strand until RTO, fire one probe —
  // a retransmit of the highest unacked segment — after PTO = max(2*srtt, a
  // 2ms floor), then fall back to the normal backed-off RTO. Off by default:
  // the paper's figures were pinned without it.
  bool tail_loss_probe = false;
};

struct TcpStats {
  uint64_t segs_sent = 0;
  uint64_t segs_rcvd = 0;
  uint64_t bytes_sent = 0;       // payload bytes first-transmitted
  uint64_t bytes_acked = 0;      // payload bytes cumulatively acked
  uint64_t bytes_received = 0;   // in-order payload bytes delivered to the app
  uint64_t retransmits = 0;      // segments retransmitted (any cause)
  uint64_t timeouts = 0;         // RTO firings
  uint64_t fast_retransmits = 0;
  uint64_t dupacks_rcvd = 0;
  uint64_t ooo_segments = 0;     // out-of-order arrivals buffered
  uint64_t sack_retransmits = 0;  // hole-directed retransmissions (SACK only)
  uint64_t tlp_probes = 0;        // tail loss probes fired (before any RTO)
  // Integrity tripwire: segments carrying corruption flags that reached the
  // state machine anyway. Checksum verification below TCP (NIC offload +
  // per-server RX check) must keep this at zero; the fault-campaign
  // invariants fail a run where it is not.
  uint64_t corrupt_segments_accepted = 0;
};

// One direction-pair TCP connection bound to a flow key. Demultiplexing and
// listening sockets live in TcpHost (src/net/tcp_host.h).
class TcpConnection {
 public:
  struct Callbacks {
    // Required: hands a ready segment to the layer below (IP).
    std::function<void(PacketPtr)> output;
    // Optional application notifications.
    std::function<void()> on_established;
    std::function<void(uint32_t bytes)> on_data;  // in-order payload delivered
    std::function<void()> on_drained;             // all submitted bytes acked
    std::function<void()> on_closed;              // reached kClosed
  };

  // `key.src_*` is the local end. The initial send sequence number is derived
  // deterministically from the key (reproducible runs). All four connection
  // timers live as intrusive nodes on `wheel` (one wake event per wheel, not
  // per flow); the wheel must outlive the connection.
  TcpConnection(Simulation* sim, TimerWheel* wheel, const FlowKey& key, const TcpParams& params,
                Callbacks callbacks);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Active open: sends SYN.
  void Connect();

  // Passive open: waits for SYN on this flow key.
  void Listen();

  // Queues `bytes` of application data for transmission. Always accepted
  // (the model's send buffer holds counts, not bytes). No-op after CloseSend.
  void Send(uint64_t bytes);

  // Half-close: FIN after all queued data. Idempotent.
  void CloseSend();

  // Hard reset: emits RST, drops to kClosed immediately.
  void Abort();

  // Input from the layer below. The packet must match this flow (reversed
  // key); the caller (TcpHost / the TCP server) guarantees demux.
  void OnSegment(const Packet& p);

  // --- Receive-side application consumption ---
  // By default received bytes are consumed instantly (window never closes).
  // Turning auto-consume off makes the advertised window track the unread
  // backlog; Read() opens it again (and may trigger a window update ACK).
  void SetAutoConsume(bool on);
  uint64_t Read(uint64_t max_bytes);
  uint64_t unread_bytes() const { return unread_bytes_; }

  // --- Introspection ---
  TcpState state() const { return state_; }
  const TcpStats& stats() const { return stats_; }
  const FlowKey& key() const { return key_; }
  uint32_t cwnd() const { return cwnd_; }
  uint32_t ssthresh() const { return ssthresh_; }
  SimTime srtt() const { return est_.srtt(); }
  SimTime rto() const { return est_.rto(); }
  int rto_backoff() const { return est_.backoff(); }
  uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  uint64_t send_backlog() const { return send_queue_bytes_; }
  uint32_t peer_window() const { return snd_wnd_; }

 private:
  // Sequence-number arithmetic (wraparound-safe).
  static bool SeqLt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }
  static bool SeqLeq(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) <= 0; }

  PacketPtr MakeSegment(uint8_t flags, uint32_t seq, uint32_t payload);
  void Emit(PacketPtr p);

  // --- SACK helpers (all ranges RELATIVE to iss_/irs_, wraparound-safe) ---
  // Merges [start, end) into a relative-range map.
  static void InsertRange(std::map<uint32_t, uint32_t>* m, uint32_t start, uint32_t end);
  // Records the blocks of an incoming ACK into the scoreboard.
  void AbsorbSackBlocks(const TcpHeader& h);
  // First un-SACKed hole at or after relative seq `from`; nullopt if none
  // below the relative data end. Returns {rel_start, rel_end (<= mss away)}.
  std::optional<std::pair<uint32_t, uint32_t>> NextHole(uint32_t from) const;
  // Retransmits one hole >= retran_high_; true if something was sent.
  bool RetransmitNextHole();
  void SendControl(uint8_t flags, uint32_t seq);
  void SendAck(bool forced);

  // Pumps the send window: transmits new data/FIN as cwnd+rwnd allow.
  void TrySend();
  uint32_t UsableWindow() const;
  uint32_t AdvertisedWindow() const;

  void EnterEstablished();
  void DeliverInOrder(const Packet& p);
  void ProcessAck(const Packet& p);
  void OnRetransmissionTimer();  // rto_node_ fired: dispatch TLP probe or RTO
  void OnRtoTimeout();
  void OnTlpTimeout();
  void ArmRto();
  void DisarmRto();
  void ArmPersist();
  void OnPersistTimeout();
  void EnterTimeWait();
  void ToClosed();
  void MaybeFin();

  // Timer-wheel trampolines (nodes carry a plain function pointer + arg).
  static void RtoFired(void* arg) { static_cast<TcpConnection*>(arg)->OnRetransmissionTimer(); }
  static void DelackFired(void* arg) { static_cast<TcpConnection*>(arg)->SendAck(true); }
  static void PersistFired(void* arg) { static_cast<TcpConnection*>(arg)->OnPersistTimeout(); }
  static void TimeWaitFired(void* arg) { static_cast<TcpConnection*>(arg)->ToClosed(); }

  Simulation* sim_;
  FlowKey key_;
  TcpParams params_;
  Callbacks cb_;

  TcpState state_ = TcpState::kClosed;

  // Causal trace flow id for this connection: lazily set to the first
  // segment's packet id and stamped into every later segment's trace_id.
  uint64_t trace_flow_ = 0;

  // Send side.
  uint32_t iss_ = 0;
  uint32_t snd_una_ = 0;  // oldest unacked seq
  uint32_t snd_nxt_ = 0;  // next seq to transmit
  uint32_t snd_wnd_ = 0;  // peer's advertised window
  uint64_t send_queue_bytes_ = 0;  // app bytes not yet assigned sequence space
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;

  // Congestion control.
  uint32_t cwnd_ = 0;
  uint32_t ssthresh_ = 0x7fffffff;
  uint32_t dupacks_ = 0;
  bool in_fast_recovery_ = false;
  uint32_t recover_ = 0;  // NewReno recovery point

  // SACK scoreboard: received-by-peer ranges, relative to iss_.
  std::map<uint32_t, uint32_t> sacked_;
  uint32_t retran_high_ = 0;  // relative: holes below this were already resent

  // RTT estimation, RTO backoff and Karn's rule (RFC 6298).
  RttEst est_;

  // Receive side.
  uint32_t irs_ = 0;
  uint32_t rcv_nxt_ = 0;
  std::map<uint32_t, uint32_t> ooo_;  // relative seq (- irs_) -> end, beyond rcv_nxt_
  bool peer_fin_received_ = false;
  uint32_t peer_fin_seq_ = 0;
  bool auto_consume_ = true;
  uint64_t unread_bytes_ = 0;
  uint32_t segs_since_ack_ = 0;
  uint32_t last_advertised_wnd_ = 0;

  // Timers: intrusive nodes on the per-host wheel — O(1) arm/cancel, zero
  // allocation, flat per-socket memory. rto_node_ doubles as the TLP probe
  // timer (tlp_pending_ says which role the next firing plays).
  TimerWheel* wheel_;
  TimerNode rto_node_;
  TimerNode delack_node_;
  TimerNode persist_node_;
  TimerNode time_wait_node_;
  bool tlp_pending_ = false;     // rto_node_ is armed as a probe, not an RTO
  bool tlp_fired_ = false;       // one probe per RTO episode

  TcpStats stats_;
};

}  // namespace newtos

#endif  // SRC_NET_TCP_H_
