#include "src/net/udp.h"

#include <cassert>
#include <utility>

namespace newtos {

UdpHost::UdpHost(Simulation* sim, Ipv4Addr addr, std::function<void(PacketPtr)> output)
    : sim_(sim), addr_(addr), output_(std::move(output)) {
  assert(output_);
}

bool UdpHost::Bind(uint16_t port, ReceiveFn on_receive) {
  return bindings_.emplace(port, std::move(on_receive)).second;
}

void UdpHost::Unbind(uint16_t port) { bindings_.erase(port); }

void UdpHost::Send(uint16_t src_port, Ipv4Addr dst, uint16_t dst_port,
                   uint32_t payload_bytes, uint64_t app_tag) {
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kUdp;
  p->ip.src = addr_;
  p->ip.dst = dst;
  p->udp.src_port = src_port;
  p->udp.dst_port = dst_port;
  p->payload_bytes = payload_bytes;
  p->app_tag = app_tag;
  p->created_at = sim_->Now();
  output_(std::move(p));
}

void UdpHost::OnPacket(const PacketPtr& p) {
  if (p->ip.proto != IpProto::kUdp || p->ip.dst != addr_) {
    ++dropped_unbound_;
    return;
  }
  auto it = bindings_.find(p->udp.dst_port);
  if (it == bindings_.end()) {
    ++dropped_unbound_;
    return;
  }
  ++delivered_;
  it->second(p);
}

}  // namespace newtos
