// Machine: cores + NIC + package power accounting, wired to one simulation.
//
// The default machine mirrors the class of testbed the paper used: a handful
// of big cores with per-core DVFS, one 10 GbE NIC, and a package-level power
// budget that a governor (src/core/sif_governor.h) can redistribute.

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/cpu.h"
#include "src/hw/nic.h"
#include "src/hw/operating_point.h"
#include "src/hw/power.h"
#include "src/sim/simulation.h"

namespace newtos {

class Machine {
 public:
  struct Params {
    int num_cores = 5;
    std::vector<OperatingPoint> core_table;  // empty -> BigCoreOperatingPoints()
    // Heterogeneous machines: per-core table overrides (index -> table).
    // Cores without an entry use core_table. See BigLittleParams().
    std::vector<std::pair<int, std::vector<OperatingPoint>>> core_table_overrides;
    PowerModelParams power;
    double chip_power_budget_watts = 60.0;  // package TDP the governor enforces
    FreqKhz initial_freq = 3'600'000 * kKhz;  // base clock (turbo points above it)
    Nic::Params nic;
  };

  Machine(Simulation* sim, std::string name, const Params& params);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const std::string& name() const { return name_; }
  Simulation* sim() const { return sim_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Core* core(int i) { return cores_[static_cast<size_t>(i)].get(); }
  const Core* core(int i) const { return cores_[static_cast<size_t>(i)].get(); }

  Nic* nic() { return nic_.get(); }
  const PowerModel& power_model() const { return power_model_; }
  double chip_power_budget_watts() const { return params_.chip_power_budget_watts; }

  // Instantaneous package draw: all cores + uncore.
  double PackageWatts() const;

  // Package energy consumed up to `now` since construction/reset.
  double PackageJoulesAt(SimTime now) const;

  // Post-warm-up: zero all core stats and the uncore accumulator.
  void ResetStatsAt(SimTime now);

  // True if core `i` uses a table override (a "different kind" of core).
  bool IsHeterogeneousCore(int i) const;

 private:
  Simulation* sim_;
  std::string name_;
  Params params_;
  PowerModel power_model_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<Nic> nic_;
  SimTime stats_reset_at_ = 0;
};

// A big.LITTLE-style machine: `big` out-of-order cores (indices 0..big-1)
// followed by `wimpy` in-order cores. The wimpy cores top out at 1.6 GHz and
// draw far less power — the "heterogeneous multicores" of the paper's title,
// where system servers are steered onto the little cores.
Machine::Params BigLittleParams(int big, int wimpy);

}  // namespace newtos

#endif  // SRC_HW_MACHINE_H_
