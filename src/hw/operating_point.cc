#include "src/hw/operating_point.h"

#include <cassert>

namespace newtos {

std::vector<OperatingPoint> BigCoreOperatingPoints() {
  return {
      // Entries above 3.6 GHz are turbo points: only a power-budget governor
      // hands them out (base clock is 3.6 GHz).
      {4'400'000 * kKhz, 1.45}, {4'200'000 * kKhz, 1.40}, {4'000'000 * kKhz, 1.35},
      {3'800'000 * kKhz, 1.30},
      {3'600'000 * kKhz, 1.25}, {3'200'000 * kKhz, 1.15}, {2'800'000 * kKhz, 1.05},
      {2'400'000 * kKhz, 0.98}, {2'000'000 * kKhz, 0.92}, {1'600'000 * kKhz, 0.86},
      {1'200'000 * kKhz, 0.80}, {800'000 * kKhz, 0.75},   {600'000 * kKhz, 0.70},
  };
}

std::vector<OperatingPoint> WimpyCoreOperatingPoints() {
  // In-order cores run the same frequency at lower voltage than the big
  // table (simpler pipelines, shorter critical paths).
  return {
      {1'600'000 * kKhz, 0.85}, {1'200'000 * kKhz, 0.76}, {800'000 * kKhz, 0.70},
      {600'000 * kKhz, 0.66},   {300'000 * kKhz, 0.60},
  };
}

const OperatingPoint& PickOperatingPoint(const std::vector<OperatingPoint>& table, FreqKhz want) {
  assert(!table.empty());
  for (const auto& op : table) {
    if (op.freq <= want) {
      return op;
    }
  }
  return table.back();
}

}  // namespace newtos
