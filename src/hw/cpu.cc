#include "src/hw/cpu.h"

#include <cassert>
#include <utility>

namespace newtos {

Core::Core(Simulation* sim, int id, std::string name, std::vector<OperatingPoint> table,
           const PowerModel* power_model)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      table_(std::move(table)),
      power_model_(power_model),
      meter_(sim->Now()) {
  assert(!table_.empty());
  op_ = table_.front();
  UpdatePower();
}

void Core::SetFrequency(FreqKhz want) {
  const OperatingPoint& next = PickOperatingPoint(table_, want);
  if (next == op_) {
    return;  // no transition, no stall
  }
  op_ = next;
  ++dvfs_transitions_;
  if (TraceOn(trace_.rec)) {
    trace_.rec->Counter(sim_->Now(), trace_.track, trace_.freq, op_.freq);
  }
  if (dvfs_latency_ > 0) {
    // The relock stall occupies the core like a work item: anything queued
    // (or arriving) waits it out.
    const SimTime now = sim_->Now();
    const SimTime start = busy() ? busy_until_ : now;
    busy_until_ = start + dvfs_latency_;
    ++outstanding_;
    sim_->ScheduleAt(busy_until_, [this] {
      --outstanding_;
      UpdatePower();
    });
  }
  UpdatePower();
}

SimTime Core::EstimateCompletion(Cycles cycles) const {
  const SimTime now = sim_->Now();
  SimTime start = busy() ? busy_until_ : now;
  if (!busy() && idle_activity_ == CoreActivity::kHalted) {
    start += halt_wake_latency_;
  }
  return start + CyclesToTime(cycles, op_.freq);
}

SimTime Core::Execute(Cycles cycles, InlineCallback done) {
  assert(cycles >= 0);
  if (TraceOn(trace_.rec) && !busy() && idle_activity_ == CoreActivity::kHalted) {
    trace_.rec->Instant(sim_->Now(), trace_.track, trace_.wake);
  }
  const SimTime completion = EstimateCompletion(cycles);
  busy_until_ = completion;
  ++outstanding_;
  busy_time_ += CyclesToTime(cycles, op_.freq);
  busy_cycles_ += cycles;
  ++work_items_;
  UpdatePower();
  completions_.push_back(std::move(done));
  sim_->ScheduleAt(completion, [this] { OnWorkComplete(); });
  return completion;
}

void Core::OnWorkComplete() {
  --outstanding_;
  assert(outstanding_ >= 0);
  if (outstanding_ == 0 && TraceOn(trace_.rec)) {
    trace_.rec->Instant(sim_->Now(), trace_.track,
                        idle_activity_ == CoreActivity::kHalted ? trace_.idle_halt
                                                                : trace_.idle_poll);
  }
  UpdatePower();
  // Pop before invoking: `done` may re-enter Execute() and push again.
  InlineCallback done = std::move(completions_.front());
  completions_.pop_front();
  if (done) {
    done();
  }
}

void Core::SetIdleActivity(CoreActivity activity) {
  assert(activity != CoreActivity::kBusy);
  idle_activity_ = activity;
  UpdatePower();
}

double Core::UtilizationSince(SimTime window_start, SimTime now) const {
  if (now <= window_start) {
    return 0.0;
  }
  // busy_time_ accrues from stats_reset_at_; callers pass window_start >=
  // stats_reset_at_ for exact numbers (benches reset after warm-up).
  return static_cast<double>(busy_time_) / static_cast<double>(now - window_start);
}

void Core::ResetStatsAt(SimTime now) {
  busy_time_ = 0;
  busy_cycles_ = 0;
  work_items_ = 0;
  stats_reset_at_ = now;
  meter_.ResetAt(now);
}

void Core::UpdatePower() { meter_.SetPower(CurrentWatts(), sim_->Now()); }

}  // namespace newtos
