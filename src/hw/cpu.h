// A simulated CPU core: a serial work executor with DVFS and power accounting.
//
// Model: a core executes work items (cycle counts) strictly in FIFO order.
// Callers hand in `cycles` and a completion callback; the core converts
// cycles to time at its *current* operating point and schedules completion.
// Frequency changes therefore apply to work submitted after the change —
// a good approximation, since DVFS transitions are rare relative to work
// items (microseconds vs. hundreds of nanoseconds).
//
// When a core has no queued work it is "idle". What idle means physically is
// set by SetIdleActivity: kPolling (spinning on channels at full dynamic
// power — NewtOS's default fast path) or kHalted (sleep state: near-zero
// power, but the next work item pays a wake latency). The polling-vs-halting
// energy experiment (Fig. 7) is driven entirely by this knob.

#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/operating_point.h"
#include "src/hw/power.h"
#include "src/sim/ring_deque.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/trace/recorder.h"

namespace newtos {

// Tracing hooks for one core (wired by StackTracer): instants mark the
// poll-vs-halt decisions the energy experiments study, and a counter tracks
// the operating point through DVFS transitions.
struct CoreTraceHooks {
  TraceRecorder* rec = nullptr;
  TrackId track = 0;
  NameId idle_poll = 0;  // instant: went idle, spinning on channels
  NameId idle_halt = 0;  // instant: went idle, entered the sleep state
  NameId wake = 0;       // instant: work arrived at a halted core (wake paid)
  NameId freq = 0;       // counter: operating-point frequency in kHz
};

class Core {
 public:
  // `power_model` must outlive the core. The core starts at the table's top
  // (fastest) operating point, idle-polling.
  Core(Simulation* sim, int id, std::string name, std::vector<OperatingPoint> table,
       const PowerModel* power_model);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- DVFS ---

  FreqKhz frequency() const { return op_.freq; }
  const OperatingPoint& operating_point() const { return op_; }
  const std::vector<OperatingPoint>& table() const { return table_; }

  // Snaps to the highest operating point <= `want` (or the lowest available).
  // A real transition stalls the core while the PLL relocks and the voltage
  // ramps: when the operating point actually changes, the core is busy for
  // `dvfs_transition_latency` before any queued work continues.
  void SetFrequency(FreqKhz want);

  // Transition stall; 0 disables (useful for unit tests of exact timings).
  void set_dvfs_transition_latency(SimTime latency) { dvfs_latency_ = latency; }
  SimTime dvfs_transition_latency() const { return dvfs_latency_; }
  uint64_t dvfs_transitions() const { return dvfs_transitions_; }

  // --- Work execution ---

  // Queues `cycles` of work; `done` fires when it completes. Work is serial
  // and FIFO. Returns the scheduled completion time.
  SimTime Execute(Cycles cycles, InlineCallback done);

  // Completion time the next Execute() call would get, without queueing.
  SimTime EstimateCompletion(Cycles cycles) const;

  bool busy() const { return outstanding_ > 0; }

  // --- Idle behaviour / power ---

  // kPolling (default) or kHalted. kBusy is rejected.
  void SetIdleActivity(CoreActivity activity);
  CoreActivity idle_activity() const { return idle_activity_; }

  // Activity right now (kBusy if work is queued, else the idle activity).
  CoreActivity activity() const { return busy() ? CoreActivity::kBusy : idle_activity_; }

  // Latency added to the first work item that arrives while halted & idle.
  void set_halt_wake_latency(SimTime latency) { halt_wake_latency_ = latency; }
  SimTime halt_wake_latency() const { return halt_wake_latency_; }

  double CurrentWatts() const { return power_model_->CoreWatts(op_, activity()); }

  // --- Tenant tracking (cache/TLB pollution between co-located servers) ---

  // Records which logical tenant (server) is about to run. Returns true if
  // it differs from the previous tenant — the caller then charges a
  // cold-cache penalty. A core with a single tenant never pays.
  bool SetTenant(const void* tenant) {
    const bool changed = tenant != last_tenant_ && last_tenant_ != nullptr;
    last_tenant_ = tenant;
    return changed;
  }
  uint64_t tenant_switches() const { return tenant_switches_; }
  void CountTenantSwitch() { ++tenant_switches_; }

  // Energy consumed by this core up to `now`.
  double JoulesAt(SimTime now) const { return meter_.JoulesAt(now); }

  // --- Statistics ---

  // Cumulative time/cycles of useful (busy) work since construction or the
  // last ResetStats. Accrued when work is *queued* (see header comment).
  SimTime busy_time() const { return busy_time_; }
  Cycles busy_cycles() const { return busy_cycles_; }
  uint64_t work_items() const { return work_items_; }

  // Fraction of wall time spent busy in [window_start, now].
  double UtilizationSince(SimTime window_start, SimTime now) const;

  // Zeros busy counters and the energy accumulator at `now` (post-warm-up).
  void ResetStatsAt(SimTime now);

  // Wires tracing (see CoreTraceHooks). Allocation-free per event.
  void EnableTrace(const CoreTraceHooks& hooks) { trace_ = hooks; }

 private:
  void UpdatePower();
  // Fires when the oldest queued work item finishes: pops its completion
  // callback off `completions_` and invokes it.
  void OnWorkComplete();

  Simulation* sim_;
  const int id_;
  const std::string name_;
  const std::vector<OperatingPoint> table_;
  const PowerModel* power_model_;

  OperatingPoint op_;
  CoreActivity idle_activity_ = CoreActivity::kPolling;
  SimTime halt_wake_latency_ = 5 * kMicrosecond;
  SimTime dvfs_latency_ = 10 * kMicrosecond;
  uint64_t dvfs_transitions_ = 0;

  SimTime busy_until_ = 0;
  int outstanding_ = 0;
  // Completion callbacks for queued work, in FIFO order. Completions are
  // scheduled at busy_until_, which is monotone per core, and same-instant
  // events fire in schedule order, so the event for the Nth queued item
  // always pops the Nth callback. Keeping the callback here (rather than
  // capturing it in the scheduled lambda) keeps the event capture tiny and
  // avoids nesting one InlineCallback inside another.
  RingDeque<InlineCallback> completions_;
  const void* last_tenant_ = nullptr;
  uint64_t tenant_switches_ = 0;

  SimTime busy_time_ = 0;
  Cycles busy_cycles_ = 0;
  uint64_t work_items_ = 0;
  SimTime stats_reset_at_ = 0;
  EnergyMeter meter_;
  CoreTraceHooks trace_;
};

}  // namespace newtos

#endif  // SRC_HW_CPU_H_
