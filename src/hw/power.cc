#include "src/hw/power.h"

#include <cassert>

namespace newtos {

double PowerModel::CoreWatts(const OperatingPoint& op, CoreActivity activity) const {
  switch (activity) {
    case CoreActivity::kBusy:
    case CoreActivity::kPolling: {
      const double ghz = ToGhz(op.freq);
      return params_.static_watts + params_.ceff * op.voltage * op.voltage * ghz;
    }
    case CoreActivity::kHalted:
      return params_.halted_watts;
  }
  return 0.0;
}

void EnergyMeter::SetPower(double watts, SimTime now) {
  assert(now >= last_change_);
  joules_ += watts_ * ToSeconds(now - last_change_);
  watts_ = watts;
  last_change_ = now;
}

double EnergyMeter::JoulesAt(SimTime now) const {
  assert(now >= last_change_);
  return joules_ + watts_ * ToSeconds(now - last_change_);
}

void EnergyMeter::ResetAt(SimTime now) {
  assert(now >= last_change_);
  joules_ = 0.0;
  last_change_ = now;
}

}  // namespace newtos
