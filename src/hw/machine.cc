#include "src/hw/machine.h"

#include <cassert>

namespace newtos {

Machine::Machine(Simulation* sim, std::string name, const Params& params)
    : sim_(sim), name_(std::move(name)), params_(params), power_model_(params.power) {
  assert(params_.num_cores > 0);
  const std::vector<OperatingPoint> default_table =
      params_.core_table.empty() ? BigCoreOperatingPoints() : params_.core_table;
  cores_.reserve(static_cast<size_t>(params_.num_cores));
  for (int i = 0; i < params_.num_cores; ++i) {
    const std::vector<OperatingPoint>* table = &default_table;
    for (const auto& [index, override_table] : params_.core_table_overrides) {
      if (index == i) {
        table = &override_table;
        break;
      }
    }
    cores_.push_back(std::make_unique<Core>(sim_, i, name_ + "/cpu" + std::to_string(i), *table,
                                            &power_model_));
    cores_.back()->SetFrequency(params_.initial_freq);
  }
  nic_ = std::make_unique<Nic>(sim_, name_ + "/nic0", params_.nic);
  stats_reset_at_ = sim_->Now();
}

double Machine::PackageWatts() const {
  double w = power_model_.uncore_watts();
  for (const auto& c : cores_) {
    w += c->CurrentWatts();
  }
  return w;
}

double Machine::PackageJoulesAt(SimTime now) const {
  double j = power_model_.uncore_watts() * ToSeconds(now - stats_reset_at_);
  for (const auto& c : cores_) {
    j += c->JoulesAt(now);
  }
  return j;
}

void Machine::ResetStatsAt(SimTime now) {
  stats_reset_at_ = now;
  for (auto& c : cores_) {
    c->ResetStatsAt(now);
  }
}

bool Machine::IsHeterogeneousCore(int i) const {
  for (const auto& [index, table] : params_.core_table_overrides) {
    if (index == i) {
      return true;
    }
  }
  return false;
}

Machine::Params BigLittleParams(int big, int wimpy) {
  Machine::Params p;
  p.num_cores = big + wimpy;
  const auto little = WimpyCoreOperatingPoints();
  for (int i = big; i < big + wimpy; ++i) {
    p.core_table_overrides.emplace_back(i, little);
  }
  return p;
}

}  // namespace newtos
