// DVFS operating points (frequency/voltage pairs) for simulated cores.
//
// The default table approximates a big out-of-order x86 core of the ATC'13
// era (Sandy-Bridge-class): ~3.6 GHz at 1.25 V down to 600 MHz at 0.70 V. A
// second table models a "wimpy" in-order core (Atom/ARM-class). Absolute
// values matter less than the shape: dynamic power scales with V²·f, so
// halving frequency cuts dynamic power well below half.

#ifndef SRC_HW_OPERATING_POINT_H_
#define SRC_HW_OPERATING_POINT_H_

#include <vector>

#include "src/sim/time.h"

namespace newtos {

struct OperatingPoint {
  FreqKhz freq = 0;
  double voltage = 0.0;  // volts

  friend bool operator==(const OperatingPoint&, const OperatingPoint&) = default;
};

// Descending-frequency table for a big core: 3.6 GHz .. 0.6 GHz.
std::vector<OperatingPoint> BigCoreOperatingPoints();

// Descending-frequency table for a wimpy core: 1.6 GHz .. 0.3 GHz.
std::vector<OperatingPoint> WimpyCoreOperatingPoints();

// Returns the table entry with the highest frequency <= `want`; if `want` is
// below the lowest entry, returns the lowest. Precondition: table non-empty,
// sorted by descending frequency.
const OperatingPoint& PickOperatingPoint(const std::vector<OperatingPoint>& table, FreqKhz want);

}  // namespace newtos

#endif  // SRC_HW_OPERATING_POINT_H_
