// NIC and point-to-point link model.
//
// Each NIC has a TX ring and an RX ring (bounded descriptor rings, like real
// DMA rings). Transmission serializes frames at line rate including Ethernet
// preamble/FCS/IFG overhead; the link adds propagation delay and (optionally,
// for protocol tests) random loss. A frame arriving at a full RX ring is
// dropped — exactly the failure mode that appears when the driver core is too
// slow to drain the ring, which is what the frequency-sweep experiments look
// for.

#ifndef SRC_HW_NIC_H_
#define SRC_HW_NIC_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/ring_deque.h"
#include "src/sim/simulation.h"
#include "src/trace/recorder.h"

namespace newtos {

// Tracing hooks for one NIC (wired by StackTracer). The tx/rx instants carry
// the packet's flow id, so a frame leaving one machine's NIC track and
// appearing on the peer's links the two timelines causally; drop instants
// make ring overruns and wire loss visible exactly where they happen.
struct NicTraceHooks {
  TraceRecorder* rec = nullptr;
  TrackId track = 0;
  NameId tx = 0;       // instant: frame serialization started
  NameId rx = 0;       // instant: frame became host-visible in the RX ring
  NameId rx_drop = 0;  // instant: RX ring full, frame lost
  NameId loss = 0;     // instant: frame lost on the wire (link loss model)
};

// Egress binding for a NIC cabled to a switch-fabric port instead of a
// point-to-point peer (src/fabric/switch.h). The NIC hands each frame over
// at the instant it has left the adapter — serialization and TX-side DMA
// done; everything after that (cable, fabric arbitration, egress queueing)
// is the port's problem. Implementations must be safe to call from the
// simulation thread that owns this NIC's lane.
class NicPort {
 public:
  virtual ~NicPort() = default;
  virtual void FrameFromNic(PacketPtr p, SimTime now) = 0;
};

class Nic {
 public:
  struct Params {
    double line_rate_gbps = 10.0;
    size_t tx_ring_slots = 1024;
    size_t rx_ring_slots = 1024;
    // Ethernet per-frame overhead on the wire: preamble(8) + FCS(4) + IFG(12).
    uint32_t frame_overhead_bytes = 24;
    // PCIe/DMA latency from "descriptor posted" to "bytes on the wire" and
    // from "bytes off the wire" to "descriptor visible to the host".
    SimTime dma_latency = 800 * kNanosecond;
  };

  struct Stats {
    uint64_t tx_packets = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_packets = 0;
    uint64_t rx_bytes = 0;
    uint64_t rx_ring_drops = 0;
    uint64_t tx_ring_rejects = 0;
    uint64_t link_loss_drops = 0;
    uint64_t wire_corrupt_frames = 0;  // frames the wire-fault hook corrupted
  };

  Nic(Simulation* sim, std::string name, const Params& params);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const std::string& name() const { return name_; }
  const Params& params() const { return params_; }
  const Stats& stats() const { return stats_; }

  // Connects this NIC to `peer` with the given one-way propagation delay and
  // per-frame loss probability (applied with `loss_rng` for determinism).
  // Call on both NICs (links are full-duplex and may be asymmetric).
  void AttachPeer(Nic* peer, SimTime propagation = 2 * kMicrosecond, double loss_prob = 0.0,
                  uint64_t loss_seed = 1);

  // Binds this NIC to a switch-fabric port instead of a peer; mutually
  // exclusive with AttachPeer (the last call wins). The fabric owns all
  // delivery timing past the adapter edge and injects inbound frames with
  // DeliverFromWire().
  void AttachPort(NicPort* port);

  // A frame arriving off the wire/fabric at this NIC: the wire-fault hook,
  // RX-side DMA latency and RX ring bounds all apply, exactly as for frames
  // from a point-to-point peer. Public for the switch fabric; tests may use
  // it to inject raw frames.
  void DeliverFromWire(PacketPtr p);

  // --- Host TX side (called by the driver) ---

  // Posts a frame for transmission. Returns false (and counts a reject) if
  // the TX ring is full.
  bool Transmit(PacketPtr p);

  size_t tx_queued() const { return tx_ring_.size(); }
  size_t tx_free() const { return params_.tx_ring_slots - tx_ring_.size(); }

  // --- Host RX side (called by the driver) ---

  // `fn` fires when the RX ring transitions empty -> non-empty (the model's
  // stand-in for a wired interrupt / the poll loop noticing new descriptors).
  void SetRxNotify(std::function<void()> fn) { rx_notify_ = std::move(fn); }

  // Takes one frame off the RX ring; nullptr if empty.
  PacketPtr PollRx();

  size_t rx_pending() const { return rx_ring_.size(); }

  // Time to serialize one frame of `bytes` payload at line rate.
  SimTime SerializationTime(uint32_t frame_bytes) const;

  // --- Wire-fault injection ---
  // Called for every frame that survives link loss, as it arrives at this
  // NIC and before it becomes host-visible. The hook may mutate the packet
  // (typically setting Packet::corrupt bits — a bit flip on the wire that
  // the receive path's checksum verification is expected to catch); return
  // true to count the frame as corrupted. Unset = fault-free wire.
  void SetWireFault(std::function<bool(Packet&)> fn) { wire_fault_ = std::move(fn); }

  // --- Link shaping ---
  // Returns extra one-way wire delay for a frame, added on top of the link's
  // propagation (point-to-point links only; a fabric owns its own timing).
  // Frames given different extra delays can overtake each other in flight —
  // the reorder-window model the scripted lossy-WAN scenarios use. The hook
  // runs on the *sending* NIC as the frame leaves the adapter; keep it
  // deterministic (seeded Rng) and allocation-free. Unset = no shaping.
  void SetLinkShaper(std::function<SimTime(const Packet&)> fn) { link_shaper_ = std::move(fn); }

  // --- Capture tap ---
  enum class TapDirection { kTx, kRx };
  // Observes every frame leaving (kTx, at transmit start) and arriving
  // (kRx, when host-visible). Feed a PcapWriter for Wireshark-readable
  // captures of simulated traffic.
  void SetTap(std::function<void(TapDirection, const PacketPtr&)> tap) { tap_ = std::move(tap); }

  // Wires tracing (see NicTraceHooks). Allocation-free per event.
  void EnableTrace(const NicTraceHooks& hooks) { trace_ = hooks; }

 private:
  void StartNextTx();

  Simulation* sim_;
  std::string name_;
  Params params_;

  Nic* peer_ = nullptr;
  NicPort* port_ = nullptr;
  SimTime propagation_ = 0;
  double loss_prob_ = 0.0;
  Rng loss_rng_;

  RingDeque<PacketPtr> tx_ring_;
  RingDeque<PacketPtr> rx_ring_;
  bool tx_in_progress_ = false;
  std::function<void()> rx_notify_;
  std::function<void(TapDirection, const PacketPtr&)> tap_;
  std::function<bool(Packet&)> wire_fault_;
  std::function<SimTime(const Packet&)> link_shaper_;

  Stats stats_;
  NicTraceHooks trace_;
};

}  // namespace newtos

#endif  // SRC_HW_NIC_H_
