// First-order CMOS power model and a piecewise-constant energy integrator.
//
//   P_active(op) = P_static + C_eff · V² · f
//
// Polling spins the core flat out, so "polling but no useful work" draws the
// same dynamic power as useful work — that observation is the energy half of
// the paper. A halted core (MWAIT/C-state) draws only (reduced) static power.

#ifndef SRC_HW_POWER_H_
#define SRC_HW_POWER_H_

#include "src/hw/operating_point.h"
#include "src/sim/time.h"

namespace newtos {

// Coarse activity states a core can be in, for power purposes.
enum class CoreActivity {
  kBusy,     // executing useful work
  kPolling,  // spinning on empty channels: full dynamic power, zero useful work
  kHalted,   // in a sleep state: static power only, wake latency applies
};

struct PowerModelParams {
  double static_watts = 2.0;        // leakage etc., always drawn while not halted
  double halted_watts = 0.6;        // residual draw in the sleep state
  double ceff = 0.85;               // effective capacitance scale, W / (V²·GHz)
  double uncore_watts = 8.0;        // chip-wide constant (memory ctrl, caches, NIC glue)
};

class PowerModel {
 public:
  PowerModel() : PowerModel(PowerModelParams{}) {}
  explicit PowerModel(const PowerModelParams& params) : params_(params) {}

  // Instantaneous per-core draw in the given activity at the given OP.
  double CoreWatts(const OperatingPoint& op, CoreActivity activity) const;

  // Peak (busy) draw at an OP; what a power-budget governor must provision.
  double PeakWatts(const OperatingPoint& op) const { return CoreWatts(op, CoreActivity::kBusy); }

  double uncore_watts() const { return params_.uncore_watts; }
  const PowerModelParams& params() const { return params_; }

 private:
  PowerModelParams params_;
};

// Integrates a piecewise-constant power signal into joules. Components call
// SetPower whenever their draw changes; the meter accumulates the previous
// level over the elapsed interval.
class EnergyMeter {
 public:
  // `now` is the time accounting starts.
  explicit EnergyMeter(SimTime now = 0) : last_change_(now) {}

  // Records that the power level changed to `watts` at time `now`.
  // `now` must be >= the previous change time.
  void SetPower(double watts, SimTime now);

  // Total energy consumed up to `now` (flushes the current segment).
  double JoulesAt(SimTime now) const;

  double current_watts() const { return watts_; }

  // Resets the accumulator (e.g. after a warm-up phase), keeping the level.
  void ResetAt(SimTime now);

 private:
  double watts_ = 0.0;
  double joules_ = 0.0;
  SimTime last_change_ = 0;
};

}  // namespace newtos

#endif  // SRC_HW_POWER_H_
