#include "src/hw/nic.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "src/sim/logger.h"

namespace newtos {

Nic::Nic(Simulation* sim, std::string name, const Params& params)
    : sim_(sim), name_(std::move(name)), params_(params), loss_rng_(1) {
  assert(params_.line_rate_gbps > 0.0);
}

void Nic::AttachPeer(Nic* peer, SimTime propagation, double loss_prob, uint64_t loss_seed) {
  peer_ = peer;
  port_ = nullptr;
  propagation_ = propagation;
  loss_prob_ = loss_prob;
  loss_rng_ = Rng(loss_seed);
}

void Nic::AttachPort(NicPort* port) {
  port_ = port;
  peer_ = nullptr;
}

SimTime Nic::SerializationTime(uint32_t frame_bytes) const {
  const double bits = static_cast<double>(frame_bytes + params_.frame_overhead_bytes) * 8.0;
  const double seconds = bits / (params_.line_rate_gbps * 1e9);
  return static_cast<SimTime>(std::llround(seconds * static_cast<double>(kSecond)));
}

bool Nic::Transmit(PacketPtr p) {
  if (tx_ring_.size() >= params_.tx_ring_slots) {
    ++stats_.tx_ring_rejects;
    return false;
  }
  tx_ring_.push_back(std::move(p));
  if (!tx_in_progress_) {
    StartNextTx();
  }
  return true;
}

void Nic::StartNextTx() {
  if (tx_ring_.empty()) {
    tx_in_progress_ = false;
    return;
  }
  tx_in_progress_ = true;
  PacketPtr p = std::move(tx_ring_.front());
  tx_ring_.pop_front();
  if (tap_) {
    tap_(TapDirection::kTx, p);
  }
  const uint32_t frame_bytes = p->FrameBytes();
  const SimTime serialize = SerializationTime(frame_bytes);
  ++stats_.tx_packets;
  stats_.tx_bytes += frame_bytes;
  if (TraceOn(trace_.rec)) {
    trace_.rec->Instant(sim_->Now(), trace_.track, trace_.tx, p->trace_id);
  }

  // The wire is occupied for the serialization time only; DMA latency delays
  // each frame but pipelines with the next one's serialization.
  sim_->Schedule(serialize, [this] { StartNextTx(); });
  sim_->Schedule(params_.dma_latency + serialize, [this, p = std::move(p)]() mutable {
    if (port_ != nullptr) {
      // Fabric-attached: the frame is off the adapter; the switch owns it now.
      port_->FrameFromNic(std::move(p), sim_->Now());
      return;
    }
    if (peer_ == nullptr) {
      return;
    }
    const bool lost = loss_prob_ > 0.0 && loss_rng_.Bernoulli(loss_prob_);
    if (lost) {
      ++stats_.link_loss_drops;
      if (TraceOn(trace_.rec)) {
        trace_.rec->Instant(sim_->Now(), trace_.track, trace_.loss, p->trace_id);
      }
      return;
    }
    const SimTime shaped = link_shaper_ ? link_shaper_(*p) : 0;
    sim_->Schedule(propagation_ + shaped, [peer = peer_, p = std::move(p)]() mutable {
      peer->DeliverFromWire(std::move(p));
    });
  });
}

void Nic::DeliverFromWire(PacketPtr p) {
  if (wire_fault_ && wire_fault_(*p)) {
    ++stats_.wire_corrupt_frames;
  }
  // RX-side DMA latency before the descriptor is host-visible.
  sim_->Schedule(params_.dma_latency, [this, p = std::move(p)]() mutable {
    if (rx_ring_.size() >= params_.rx_ring_slots) {
      ++stats_.rx_ring_drops;
      if (TraceOn(trace_.rec)) {
        trace_.rec->Instant(sim_->Now(), trace_.track, trace_.rx_drop, p->trace_id);
      }
      NEWTOS_LOG(kTrace, sim_->Now(), name_, "rx ring full, dropping " << p->ToString());
      return;
    }
    const uint32_t frame_bytes = p->FrameBytes();
    ++stats_.rx_packets;
    stats_.rx_bytes += frame_bytes;
    if (TraceOn(trace_.rec)) {
      trace_.rec->Instant(sim_->Now(), trace_.track, trace_.rx, p->trace_id);
    }
    if (tap_) {
      tap_(TapDirection::kRx, p);
    }
    const bool was_empty = rx_ring_.empty();
    rx_ring_.push_back(std::move(p));
    if (was_empty && rx_notify_) {
      rx_notify_();
    }
  });
}

PacketPtr Nic::PollRx() {
  if (rx_ring_.empty()) {
    return nullptr;
  }
  PacketPtr p = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  return p;
}

}  // namespace newtos
