// SifGovernor: the adaptive "slower is faster" frequency controller.
//
// Periodically measures the utilization of each system core and walks its
// operating point down while it has headroom (utilization below util_lo) or
// back up when it is close to saturating (above util_hi). After every
// adjustment the TurboGovernor re-spends the freed budget on the application
// cores. The closed loop converges to: system cores just fast enough for the
// offered load, applications boosted with the remainder — the paper's
// steady state.

#ifndef SRC_CORE_SIF_GOVERNOR_H_
#define SRC_CORE_SIF_GOVERNOR_H_

#include <vector>

#include "src/core/turbo.h"
#include "src/hw/machine.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace newtos {

struct SifParams {
  SimTime period = 2 * kMillisecond;  // control interval
  double util_hi = 0.85;              // step frequency up above this
  double util_lo = 0.60;              // step frequency down below this
  double budget_watts = 0.0;          // 0 -> machine's package budget
};

class SifGovernor {
 public:
  struct Sample {
    SimTime at = 0;
    std::vector<FreqKhz> system_freq;  // one per system core
    std::vector<double> system_util;
    FreqKhz app_freq = 0;              // first app core (they move together)
    double provisioned_watts = 0.0;
  };

  SifGovernor(Simulation* sim, Machine* machine, std::vector<Core*> system_cores,
              std::vector<Core*> app_cores, SifParams params = {});

  void Start();
  void Stop();

  const std::vector<Sample>& history() const { return history_; }
  bool running() const { return running_; }

 private:
  void Tick();
  void Rebalance();

  Simulation* sim_;
  Machine* machine_;
  std::vector<Core*> system_cores_;
  std::vector<Core*> app_cores_;
  SifParams params_;
  TurboGovernor turbo_;

  std::vector<SimTime> last_busy_;  // per system core, busy_time at last tick
  std::vector<Sample> history_;
  EventHandle tick_;
  bool running_ = false;
};

}  // namespace newtos

#endif  // SRC_CORE_SIF_GOVERNOR_H_
