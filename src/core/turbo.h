// TurboGovernor: redistributes a fixed package power budget across cores.
//
// This is the mechanism behind "slower is faster": every watt a system core
// does not draw is a watt an application core can convert into a higher
// boost bin. The governor provisions for worst-case (busy) draw at each
// core's operating point — like real turbo licensing, which must assume the
// core can be fully active.

#ifndef SRC_CORE_TURBO_H_
#define SRC_CORE_TURBO_H_

#include <utility>
#include <vector>

#include "src/hw/machine.h"

namespace newtos {

class TurboGovernor {
 public:
  // Budget defaults to the machine's configured package budget.
  explicit TurboGovernor(Machine* machine, double budget_watts = 0.0);

  // Pins `fixed` cores to the given frequencies, then grants each core in
  // `boost` (in priority order) the highest operating point that keeps the
  // provisioned package draw (uncore + every core busy at its OP) within
  // budget, assuming cores later in the list run at their lowest OP.
  // Returns the provisioned draw after assignment.
  double Apply(const std::vector<std::pair<Core*, FreqKhz>>& fixed,
               const std::vector<Core*>& boost);

  // Provisioned package draw for the machine's current OPs (all cores busy).
  double ProvisionedWatts() const;

  double budget_watts() const { return budget_; }

 private:
  Machine* machine_;
  double budget_;
};

}  // namespace newtos

#endif  // SRC_CORE_TURBO_H_
