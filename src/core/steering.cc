#include "src/core/steering.h"

#include <algorithm>
#include <cassert>

namespace newtos {

void SteeringPlan::Apply(Machine& machine) const {
  for (const Placement& p : placements) {
    assert(p.core_index < machine.num_cores());
    p.server->BindCore(machine.core(p.core_index));
  }
  for (const FrequencyAssignment& f : frequencies) {
    machine.core(f.core_index)->SetFrequency(f.freq);
  }
}

namespace {

// Shared placement skeleton used by the dedicated plans.
std::vector<Placement> DedicatedPlacements(MultiserverStack& stack) {
  std::vector<Placement> p;
  p.push_back({stack.driver(), 1});
  p.push_back({stack.ip(), 2});
  if (stack.pf() != nullptr) {
    p.push_back({stack.pf(), 2});
  }
  for (int i = 0; i < stack.tcp_shard_count(); ++i) {
    p.push_back({stack.tcp_shard(i), 3});
  }
  p.push_back({stack.udp(), 3});
  if (stack.syscall() != nullptr) {
    p.push_back({stack.syscall(), 3});
  }
  return p;
}

}  // namespace

SteeringPlan DedicatedPlan(MultiserverStack& stack, FreqKhz all_freq) {
  SteeringPlan plan;
  plan.name = "dedicated";
  plan.placements = DedicatedPlacements(stack);
  const int n = stack.machine()->num_cores();
  for (int i = 0; i < n; ++i) {
    plan.frequencies.push_back({i, all_freq});
  }
  return plan;
}

SteeringPlan DedicatedSlowPlan(MultiserverStack& stack, FreqKhz system_freq, FreqKhz app_freq) {
  SteeringPlan plan;
  plan.name = "dedicated-slow";
  plan.placements = DedicatedPlacements(stack);
  const int n = stack.machine()->num_cores();
  for (int i = 0; i < n; ++i) {
    const bool is_system = i >= 1 && i <= 3;
    plan.frequencies.push_back({i, is_system ? system_freq : app_freq});
  }
  return plan;
}

SteeringPlan ConsolidatedPlan(MultiserverStack& stack, int system_core, FreqKhz system_freq,
                              FreqKhz app_freq) {
  SteeringPlan plan;
  plan.name = "consolidated";
  for (Server* s : stack.SystemServers()) {
    plan.placements.push_back({s, system_core});
  }
  const int n = stack.machine()->num_cores();
  for (int i = 0; i < n; ++i) {
    plan.frequencies.push_back({i, i == system_core ? system_freq : app_freq});
  }
  return plan;
}

SteeringPlan WimpyStackPlan(MultiserverStack& stack, FreqKhz wimpy_freq, FreqKhz app_freq) {
  SteeringPlan plan;
  plan.name = "wimpy-stack";
  plan.placements.push_back({stack.driver(), 2});
  plan.placements.push_back({stack.ip(), 3});
  if (stack.pf() != nullptr) {
    plan.placements.push_back({stack.pf(), 3});
  }
  for (int i = 0; i < stack.tcp_shard_count(); ++i) {
    plan.placements.push_back({stack.tcp_shard(i), 4});
  }
  plan.placements.push_back({stack.udp(), 4});
  if (stack.syscall() != nullptr) {
    plan.placements.push_back({stack.syscall(), 4});
  }
  const int n = stack.machine()->num_cores();
  for (int i = 0; i < n; ++i) {
    plan.frequencies.push_back({i, i >= 2 ? wimpy_freq : app_freq});
  }
  return plan;
}

std::vector<int> SystemCores(const SteeringPlan& plan) {
  std::vector<int> cores;
  for (const Placement& p : plan.placements) {
    if (std::find(cores.begin(), cores.end(), p.core_index) == cores.end()) {
      cores.push_back(p.core_index);
    }
  }
  std::sort(cores.begin(), cores.end());
  return cores;
}

}  // namespace newtos
