#include "src/core/poll_policy.h"

namespace newtos {

void PollPolicy::Manage(Core* core, std::vector<Server*> servers) {
  cores_.push_back(std::make_unique<ManagedCore>());
  ManagedCore* mc = cores_.back().get();
  mc->core = core;
  mc->servers = std::move(servers);

  if (mode_ == PollMode::kPollAlways) {
    core->SetIdleActivity(CoreActivity::kPolling);
    return;  // nothing to observe
  }

  for (Server* s : mc->servers) {
    s->SetIdleObserver([this, mc](bool) { OnIdleChange(mc); });
  }
  OnIdleChange(mc);  // initialize
}

bool PollPolicy::AllIdle(const ManagedCore& mc) {
  for (Server* s : mc.servers) {
    if (!s->Idle()) {
      return false;
    }
  }
  return true;
}

void PollPolicy::OnIdleChange(ManagedCore* mc) {
  if (AllIdle(*mc)) {
    if (!mc->halt_timer.pending() && mc->core->idle_activity() != CoreActivity::kHalted) {
      mc->halt_timer = sim_->Schedule(halt_after_, [this, mc] {
        if (AllIdle(*mc)) {
          mc->core->SetIdleActivity(CoreActivity::kHalted);
          ++halts_;
        }
      });
    }
  } else {
    mc->halt_timer.Cancel();
    if (mc->core->idle_activity() == CoreActivity::kHalted) {
      mc->core->SetIdleActivity(CoreActivity::kPolling);
    }
  }
}

}  // namespace newtos
