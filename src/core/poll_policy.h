// PollPolicy: poll-always vs. queue-aware halting for system cores.
//
// NewtOS's fast path polls: a dedicated core spins on its channels and never
// sleeps — minimum latency, maximum energy. The alternative the paper
// examines monitors the queues and halts the core after a grace period of
// emptiness; the next message pays a wake-up latency. Fig. 7 sweeps offered
// load and compares the two on both throughput and watts.

#ifndef SRC_CORE_POLL_POLICY_H_
#define SRC_CORE_POLL_POLICY_H_

#include <memory>
#include <vector>

#include "src/hw/cpu.h"
#include "src/os/server.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace newtos {

enum class PollMode {
  kPollAlways,    // idle cores spin at full power (NewtOS default)
  kHaltWhenIdle,  // idle cores halt after a grace period; wake costs latency
};

class PollPolicy {
 public:
  PollPolicy(Simulation* sim, PollMode mode, SimTime halt_after = 5 * kMicrosecond)
      : sim_(sim), mode_(mode), halt_after_(halt_after) {}

  PollPolicy(const PollPolicy&) = delete;
  PollPolicy& operator=(const PollPolicy&) = delete;

  // Takes over idle management of `core`, watching the servers bound to it.
  // Installs itself as each server's idle observer.
  void Manage(Core* core, std::vector<Server*> servers);

  PollMode mode() const { return mode_; }
  uint64_t halts() const { return halts_; }

 private:
  struct ManagedCore {
    Core* core = nullptr;
    std::vector<Server*> servers;
    EventHandle halt_timer;
  };

  void OnIdleChange(ManagedCore* mc);
  static bool AllIdle(const ManagedCore& mc);

  Simulation* sim_;
  PollMode mode_;
  SimTime halt_after_;
  std::vector<std::unique_ptr<ManagedCore>> cores_;
  uint64_t halts_ = 0;
};

}  // namespace newtos

#endif  // SRC_CORE_POLL_POLICY_H_
