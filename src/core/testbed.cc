#include "src/core/testbed.h"

namespace newtos {

Testbed::Testbed(const TestbedOptions& options) {
  sut_addr_ = options.stack.addr;
  peer_addr_ = options.peer_addr;

  machine_ = std::make_unique<Machine>(&sim_, "sut", options.machine);

  // The peer's NIC mirrors the SUT's link parameters.
  peer_nic_ = std::make_unique<Nic>(&sim_, "peer/nic0", options.machine.nic);
  machine_->nic()->AttachPeer(peer_nic_.get(), options.link_propagation, options.link_loss,
                              options.link_loss_seed);
  peer_nic_->AttachPeer(machine_->nic(), options.link_propagation, options.link_loss,
                        options.link_loss_seed + 1);
  peer_ = std::make_unique<PeerHost>(&sim_, peer_addr_, peer_nic_.get(),
                                     options.stack.tcp_params);

  if (options.monolithic) {
    mono_ = std::make_unique<MonolithicStack>(&sim_, machine_.get(), options.monolithic_core,
                                              sut_addr_, options.monolithic_costs,
                                              options.stack.tcp_params);
  } else {
    stack_ = std::make_unique<MultiserverStack>(&sim_, machine_.get(), options.stack);
    stack_->BindDefaultLayout();
  }
}

void Testbed::WarmUp(SimTime d) {
  sim_.RunFor(d);
  machine_->ResetStatsAt(sim_.Now());
}

}  // namespace newtos
