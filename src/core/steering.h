// Core steering: which server runs where, and how fast that core runs.
//
// This module is the paper's subject. A SteeringPlan assigns stack servers
// to cores and pins per-core frequencies; builders produce the layouts the
// evaluation compares:
//   * Dedicated      — one big core per stage (NewtOS's original design)
//   * DedicatedSlow  — one core per stage, system cores frequency-scaled
//   * Consolidated   — every system server packed onto one (slow) core
// The reliability property (isolation + microreboot) is identical across
// plans; only performance and power move.

#ifndef SRC_CORE_STEERING_H_
#define SRC_CORE_STEERING_H_

#include <string>
#include <vector>

#include "src/hw/machine.h"
#include "src/os/stack.h"

namespace newtos {

struct Placement {
  Server* server = nullptr;
  int core_index = 0;
};

struct FrequencyAssignment {
  int core_index = 0;
  FreqKhz freq = 0;
};

struct SteeringPlan {
  std::string name;
  std::vector<Placement> placements;
  std::vector<FrequencyAssignment> frequencies;

  // Binds servers and sets frequencies. Safe to apply while idle.
  void Apply(Machine& machine) const;
};

// One core per stage: driver->1, ip(+pf)->2, tcp(+udp,+gateway)->3; all
// cores (system and app alike) at `all_freq`.
SteeringPlan DedicatedPlan(MultiserverStack& stack, FreqKhz all_freq);

// Dedicated placement, but system cores at `system_freq` while the app
// core(s) stay at `app_freq` — the paper's frequency-sweep configuration.
SteeringPlan DedicatedSlowPlan(MultiserverStack& stack, FreqKhz system_freq, FreqKhz app_freq);

// Every system server on `system_core` at `system_freq`; apps keep
// `app_freq`. The packing the paper proposes once slow cores are fast
// enough for the whole stack.
SteeringPlan ConsolidatedPlan(MultiserverStack& stack, int system_core, FreqKhz system_freq,
                              FreqKhz app_freq);

// Heterogeneous placement for a BigLittleParams(2, 3) machine: applications
// on big core 0 (big core 1 spare), driver on wimpy core 2, IP(+PF) on wimpy
// core 3, TCP(+UDP, +gateway) on wimpy core 4, all wimpies at `wimpy_freq`.
SteeringPlan WimpyStackPlan(MultiserverStack& stack, FreqKhz wimpy_freq, FreqKhz app_freq);

// Indices of the cores that host system servers in `plan`.
std::vector<int> SystemCores(const SteeringPlan& plan);

}  // namespace newtos

#endif  // SRC_CORE_STEERING_H_
