#include "src/core/sif_governor.h"

#include <algorithm>
#include <cassert>

#include "src/sim/logger.h"

namespace newtos {

SifGovernor::SifGovernor(Simulation* sim, Machine* machine, std::vector<Core*> system_cores,
                         std::vector<Core*> app_cores, SifParams params)
    : sim_(sim),
      machine_(machine),
      system_cores_(std::move(system_cores)),
      app_cores_(std::move(app_cores)),
      params_(params),
      turbo_(machine, params.budget_watts) {
  last_busy_.resize(system_cores_.size(), 0);
}

void SifGovernor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  for (size_t i = 0; i < system_cores_.size(); ++i) {
    last_busy_[i] = system_cores_[i]->busy_time();
  }
  Rebalance();
  tick_ = sim_->Schedule(params_.period, [this] { Tick(); });
}

void SifGovernor::Stop() {
  running_ = false;
  tick_.Cancel();
}

void SifGovernor::Rebalance() {
  std::vector<std::pair<Core*, FreqKhz>> fixed;
  fixed.reserve(system_cores_.size());
  for (Core* c : system_cores_) {
    fixed.emplace_back(c, c->frequency());
  }
  const double provisioned = turbo_.Apply(fixed, app_cores_);

  Sample s;
  s.at = sim_->Now();
  for (Core* c : system_cores_) {
    s.system_freq.push_back(c->frequency());
  }
  s.system_util.resize(system_cores_.size(), 0.0);
  s.app_freq = app_cores_.empty() ? 0 : app_cores_.front()->frequency();
  s.provisioned_watts = provisioned;
  history_.push_back(std::move(s));
}

void SifGovernor::Tick() {
  if (!running_) {
    return;
  }
  bool changed = false;
  std::vector<double> utils(system_cores_.size());
  for (size_t i = 0; i < system_cores_.size(); ++i) {
    Core* c = system_cores_[i];
    const SimTime busy = c->busy_time();
    const double util =
        std::clamp(static_cast<double>(busy - last_busy_[i]) / static_cast<double>(params_.period),
                   0.0, 1.0);
    last_busy_[i] = busy;
    utils[i] = util;

    // Locate the current OP in the table and step one bin.
    const auto& table = c->table();
    size_t idx = 0;
    for (size_t k = 0; k < table.size(); ++k) {
      if (table[k].freq == c->frequency()) {
        idx = k;
        break;
      }
    }
    if (util > params_.util_hi && idx > 0) {
      c->SetFrequency(table[idx - 1].freq);  // faster
      changed = true;
    } else if (util < params_.util_lo && idx + 1 < table.size()) {
      c->SetFrequency(table[idx + 1].freq);  // slower
      changed = true;
    }
  }

  Rebalance();
  if (!history_.empty()) {
    history_.back().system_util = utils;
  }
  if (changed) {
    NEWTOS_LOG(kDebug, sim_->Now(), "sif", "re-steered; provisioned "
                                               << history_.back().provisioned_watts << " W");
  }
  tick_ = sim_->Schedule(params_.period, [this] { Tick(); });
}

}  // namespace newtos
