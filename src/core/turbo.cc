#include "src/core/turbo.h"

#include <cassert>

namespace newtos {

TurboGovernor::TurboGovernor(Machine* machine, double budget_watts)
    : machine_(machine),
      budget_(budget_watts > 0.0 ? budget_watts : machine->chip_power_budget_watts()) {}

double TurboGovernor::ProvisionedWatts() const {
  const PowerModel& pm = machine_->power_model();
  double w = pm.uncore_watts();
  for (int i = 0; i < machine_->num_cores(); ++i) {
    w += pm.PeakWatts(machine_->core(i)->operating_point());
  }
  return w;
}

double TurboGovernor::Apply(const std::vector<std::pair<Core*, FreqKhz>>& fixed,
                            const std::vector<Core*>& boost) {
  const PowerModel& pm = machine_->power_model();

  for (const auto& [core, freq] : fixed) {
    core->SetFrequency(freq);
  }

  // Committed draw: uncore + fixed cores + non-participating cores at their
  // current OPs.
  double committed = pm.uncore_watts();
  for (int i = 0; i < machine_->num_cores(); ++i) {
    Core* c = machine_->core(i);
    bool is_boost = false;
    for (Core* b : boost) {
      if (b == c) {
        is_boost = true;
        break;
      }
    }
    if (!is_boost) {
      committed += pm.PeakWatts(c->operating_point());
    }
  }

  // Grant boost cores in priority order; later cores are provisioned at
  // their floor while earlier ones pick.
  for (size_t i = 0; i < boost.size(); ++i) {
    Core* c = boost[i];
    double floor_later = 0.0;
    for (size_t j = i + 1; j < boost.size(); ++j) {
      floor_later += pm.PeakWatts(boost[j]->table().back());
    }
    const OperatingPoint* chosen = &c->table().back();
    for (const OperatingPoint& op : c->table()) {  // descending frequency
      if (committed + pm.PeakWatts(op) + floor_later <= budget_) {
        chosen = &op;
        break;
      }
    }
    c->SetFrequency(chosen->freq);
    committed += pm.PeakWatts(c->operating_point());
  }
  return committed;
}

}  // namespace newtos
