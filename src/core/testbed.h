// Testbed: the standard evaluation rig — a system-under-test machine, a
// zero-cost peer host, and the link between them.
//
// Every bench and most integration tests build one of these; keeping the
// construction in one place makes the experiments directly comparable (same
// machine, same NIC, same link) and keeps bench code about the experiment,
// not the plumbing.

#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include <memory>
#include <vector>

#include "src/hw/machine.h"
#include "src/os/monolithic_stack.h"
#include "src/os/peer_host.h"
#include "src/os/stack.h"
#include "src/sim/simulation.h"

namespace newtos {

struct TestbedOptions {
  Machine::Params machine;          // SUT hardware
  StackConfig stack;                // multiserver stack configuration
  Ipv4Addr peer_addr = Ipv4(10, 0, 0, 2);
  SimTime link_propagation = 5 * kMicrosecond;  // one-way
  double link_loss = 0.0;
  uint64_t link_loss_seed = 42;

  // When true, build the monolithic baseline instead of the multiserver
  // stack (stack config's costs are ignored; MonolithicStack::Costs apply).
  bool monolithic = false;
  int monolithic_core = 0;
  MonolithicCosts monolithic_costs;
};

class Testbed {
 public:
  explicit Testbed(const TestbedOptions& options = {});

  Simulation& sim() { return sim_; }
  Machine& machine() { return *machine_; }
  PeerHost& peer() { return *peer_; }

  // Exactly one of these is non-null, per options.monolithic.
  MultiserverStack* stack() { return stack_.get(); }
  MonolithicStack* mono() { return mono_.get(); }

  Ipv4Addr sut_addr() const { return sut_addr_; }
  Ipv4Addr peer_addr() const { return peer_addr_; }

  // Warm-up barrier: runs the sim for `d`, then zeroes machine stats so
  // that measurement windows exclude connection setup and slow start.
  void WarmUp(SimTime d);

  // Ties an auxiliary object's lifetime (poll policy, governor, …) to the
  // testbed — convenient for configure-callbacks in the bench harness.
  template <typename T>
  T* Keep(std::shared_ptr<T> obj) {
    owned_.push_back(obj);
    return obj.get();
  }

 private:
  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Nic> peer_nic_;
  std::unique_ptr<PeerHost> peer_;
  std::unique_ptr<MultiserverStack> stack_;
  std::unique_ptr<MonolithicStack> mono_;
  Ipv4Addr sut_addr_ = 0;
  Ipv4Addr peer_addr_ = 0;
  std::vector<std::shared_ptr<void>> owned_;
};

}  // namespace newtos

#endif  // SRC_CORE_TESTBED_H_
