#include "src/workload/httpd.h"

namespace newtos {

// --- HttpServerApp ---

HttpServerApp::HttpServerApp(SocketApi* api, const HttpParams& params)
    : api_(api), params_(params) {
  api_->SetEventHandler([this](const Msg& m) { OnEvent(m); });
}

void HttpServerApp::Start() { api_->Listen(params_.port); }

void HttpServerApp::OnEvent(const Msg& m) {
  switch (m.type) {
    case MsgType::kEvtAccepted:
      conns_[m.handle] = ConnState{params_.request_bytes};
      break;
    case MsgType::kEvtData: {
      auto it = conns_.find(m.handle);
      if (it == conns_.end()) {
        return;
      }
      ConnState& st = it->second;
      uint64_t bytes = m.value;
      while (bytes > 0) {
        if (bytes < st.request_bytes_pending) {
          st.request_bytes_pending -= bytes;
          bytes = 0;
        } else {
          bytes -= st.request_bytes_pending;
          st.request_bytes_pending = params_.request_bytes;  // re-arm for the next one
          const uint64_t handle = m.handle;
          // Full request received: compute, then respond.
          api_->Compute(params_.server_compute_cycles, [this, handle] {
            api_->Send(handle, params_.response_bytes);
            ++requests_served_;
            if (!params_.keep_alive) {
              api_->Close(handle);  // FIN after the queued response drains
            }
          });
        }
      }
      break;
    }
    case MsgType::kEvtClosed:
      conns_.erase(m.handle);
      break;
    default:
      break;
  }
}

// --- HttpPeerClient ---

HttpPeerClient::HttpPeerClient(PeerHost* peer, Ipv4Addr sut, const HttpParams& params)
    : peer_(peer), sut_(sut), params_(params) {}

void HttpPeerClient::Start() {
  for (int i = 0; i < params_.concurrency; ++i) {
    OpenConnection();
  }
}

void HttpPeerClient::OpenConnection() {
  ++connections_opened_;
  if (!params_.keep_alive && connections_opened_ % 64 == 0) {
    peer_->tcp().ReapClosed();  // periodic TIME_WAIT garbage collection
  }
  TcpHost::AppHooks hooks;
  hooks.on_established = [this](TcpConnection* c) {
    conns_[c] = ConnState{};
    SendRequest(c);
  };
  hooks.on_data = [this](TcpConnection* c, uint32_t bytes) {
    auto it = conns_.find(c);
    if (it == conns_.end()) {
      return;
    }
    ConnState& st = it->second;
    uint64_t got = bytes;
    while (got > 0 && st.response_bytes_pending > 0) {
      const uint64_t used = got < st.response_bytes_pending ? got : st.response_bytes_pending;
      st.response_bytes_pending -= used;
      got -= used;
      if (st.response_bytes_pending == 0) {
        ++responses_;
        latency_.Record(peer_->sim()->Now() - st.request_sent_at);
        window_.Add(1, params_.response_bytes);
        if (params_.keep_alive) {
          SendRequest(c);  // next request on the same connection
        } else {
          conns_.erase(c);
          c->CloseSend();
          OpenConnection();  // churn: a fresh connection per request
        }
      }
    }
  };
  hooks.on_closed = [this](TcpConnection* c) { conns_.erase(c); };
  peer_->tcp().Connect(sut_, params_.port, hooks, peer_->tcp_params());
}

void HttpPeerClient::SendRequest(TcpConnection* c) {
  ConnState& st = conns_[c];
  st.response_bytes_pending = params_.response_bytes;
  st.request_sent_at = peer_->sim()->Now();
  c->Send(params_.request_bytes);
}

}  // namespace newtos
