// HTTP-like request/response workload (the paper's lighttpd experiments).
//
// The peer runs a closed-loop client: `concurrency` keep-alive connections,
// each sending a fixed-size request, waiting for the full fixed-size
// response, recording the latency, and immediately issuing the next request.
// The SUT runs the server application: after a request fully arrives it
// burns `server_compute_cycles` on its own core (static files -> near zero;
// dynamic content -> tens of kilocycles) and then sends the response. Fixed
// response sizes per run mirror how lighttpd benchmarks sweep file size.

#ifndef SRC_WORKLOAD_HTTPD_H_
#define SRC_WORKLOAD_HTTPD_H_

#include <cstdint>
#include <unordered_map>

#include "src/metrics/histogram.h"
#include "src/metrics/stats.h"
#include "src/os/peer_host.h"
#include "src/os/socket_api.h"

namespace newtos {

struct HttpParams {
  uint16_t port = 80;
  uint32_t request_bytes = 300;
  uint32_t response_bytes = 8 * 1024;
  Cycles server_compute_cycles = 10'000;
  int concurrency = 16;
  // false = HTTP/1.0-style churn: one request per connection, both sides
  // close after the response and the client dials a fresh connection.
  // Exercises the handshake/teardown path and TIME_WAIT reaping under load.
  bool keep_alive = true;
};

// Server application on the system under test.
class HttpServerApp {
 public:
  HttpServerApp(SocketApi* api, const HttpParams& params);
  void Start();

  uint64_t requests_served() const { return requests_served_; }
  int open_connections() const { return static_cast<int>(conns_.size()); }

 private:
  struct ConnState {
    uint64_t request_bytes_pending = 0;
  };

  void OnEvent(const Msg& m);

  SocketApi* api_;
  HttpParams params_;
  std::unordered_map<uint64_t, ConnState> conns_;
  uint64_t requests_served_ = 0;
};

// Closed-loop client on the peer host.
class HttpPeerClient {
 public:
  HttpPeerClient(PeerHost* peer, Ipv4Addr sut, const HttpParams& params);
  void Start();

  uint64_t responses() const { return responses_; }
  LatencyHistogram& latency() { return latency_; }
  RateMeter& window() { return window_; }

  // Excludes warm-up: zeroes the window counters and latency histogram.
  void ResetWindow(SimTime now) {
    window_.Reset(now);
    latency_.Reset();
  }

  uint64_t connections_opened() const { return connections_opened_; }

 private:
  struct ConnState {
    uint64_t response_bytes_pending = 0;
    SimTime request_sent_at = 0;
  };

  void OpenConnection();
  void SendRequest(TcpConnection* c);

  PeerHost* peer_;
  Ipv4Addr sut_;
  HttpParams params_;
  std::unordered_map<TcpConnection*, ConnState> conns_;
  uint64_t responses_ = 0;
  uint64_t connections_opened_ = 0;
  LatencyHistogram latency_;
  RateMeter window_;
};

}  // namespace newtos

#endif  // SRC_WORKLOAD_HTTPD_H_
