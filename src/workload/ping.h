// Ping: ICMP echo round-trips from the peer into the SUT's IP server.
//
// Ping never touches PF, TCP, or the application — the reply is generated
// at the SUT's IP layer — so its RTT isolates the NIC + driver + IP portion
// of the pipeline. Sweeping the stack frequency with ping gives the purest
// per-stage latency picture (Fig. 12).

#ifndef SRC_WORKLOAD_PING_H_
#define SRC_WORKLOAD_PING_H_

#include <cstdint>

#include "src/metrics/histogram.h"
#include "src/os/peer_host.h"

namespace newtos {

class PingClient {
 public:
  struct Params {
    Ipv4Addr target = 0;
    uint32_t payload_bytes = 56;  // classic ping default
    double pings_per_sec = 1000.0;
    uint16_t id = 0x1dea;
  };

  PingClient(PeerHost* peer, const Params& params);

  void Start();
  void Stop() { running_ = false; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }
  LatencyHistogram& rtt() { return rtt_; }

 private:
  void FireNext();

  PeerHost* peer_;
  Params params_;
  bool running_ = false;
  uint16_t next_seq_ = 1;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  LatencyHistogram rtt_;
};

}  // namespace newtos

#endif  // SRC_WORKLOAD_PING_H_
