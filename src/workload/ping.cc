#include "src/workload/ping.h"

#include <cmath>

namespace newtos {

PingClient::PingClient(PeerHost* peer, const Params& params) : peer_(peer), params_(params) {
  peer_->SetIcmpHandler([this](const PacketPtr& p) {
    if (p->icmp.type == kIcmpEchoReply && p->icmp.id == params_.id) {
      ++received_;
      rtt_.Record(peer_->sim()->Now() - p->created_at);
    }
  });
}

void PingClient::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  FireNext();
}

void PingClient::FireNext() {
  if (!running_ || params_.pings_per_sec <= 0.0) {
    return;
  }
  PacketPtr p = MakePacket();
  p->ip.proto = IpProto::kIcmp;
  p->ip.src = peer_->addr();
  p->ip.dst = params_.target;
  p->icmp.type = kIcmpEchoRequest;
  p->icmp.id = params_.id;
  p->icmp.seq = next_seq_++;
  p->payload_bytes = params_.payload_bytes;
  p->created_at = peer_->sim()->Now();
  peer_->SendPacket(std::move(p));
  ++sent_;

  const SimTime gap = static_cast<SimTime>(
      std::llround(static_cast<double>(kSecond) / params_.pings_per_sec));
  peer_->sim()->Schedule(gap > 0 ? gap : 1, [this] { FireNext(); });
}

}  // namespace newtos
