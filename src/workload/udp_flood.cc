#include "src/workload/udp_flood.h"

#include <cmath>

namespace newtos {

UdpPeerFlood::UdpPeerFlood(PeerHost* peer, const Params& params)
    : peer_(peer), params_(params), rng_(params.seed) {}

void UdpPeerFlood::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  FireNext();
}

void UdpPeerFlood::FireNext() {
  if (!running_ || params_.packets_per_sec <= 0.0) {
    return;
  }
  peer_->udp().Send(kUdpFloodPort, params_.sut, params_.port, params_.payload_bytes, sent_);
  ++sent_;
  const double mean_gap_s = 1.0 / params_.packets_per_sec;
  const double gap_s = params_.poisson ? rng_.Exponential(mean_gap_s) : mean_gap_s;
  const SimTime gap = static_cast<SimTime>(std::llround(gap_s * static_cast<double>(kSecond)));
  peer_->sim()->Schedule(gap > 0 ? gap : 1, [this] { FireNext(); });
}

void UdpSutSink::BindDirect(UdpServer* udp, uint16_t port) {
  sink_ = std::make_unique<SimChannel<Msg>>(udp->sim(), "udp-sink", 4096);
  sink_->SetNotify([this] {
    while (auto m = sink_->Pop()) {
      if (m->type == MsgType::kEvtData) {
        ++received_;
        window_.Add(1, m->value);
      }
    }
  });
  const uint32_t app_id = udp->RegisterApp(sink_.get());
  Msg bind;
  bind.type = MsgType::kSockListen;
  bind.app = app_id;
  bind.handle = 1;
  bind.port = port;
  udp->app_in()->Push(std::move(bind));
}

}  // namespace newtos
