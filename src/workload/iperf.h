// Bulk-TCP (iperf-like) workload.
//
// Four composable pieces cover both directions of the paper's streaming
// tests:
//   SUT transmits:  IperfSender (on a SocketApi)  ->  IperfPeerSink
//   SUT receives:   IperfPeerSender               ->  IperfSutSink
// Senders keep the pipe full with fixed-size bursts re-armed on the drained
// notification; sinks count delivered bytes in a resettable window.

#ifndef SRC_WORKLOAD_IPERF_H_
#define SRC_WORKLOAD_IPERF_H_

#include <cstdint>
#include <unordered_map>

#include "src/metrics/stats.h"
#include "src/os/peer_host.h"
#include "src/os/socket_api.h"

namespace newtos {

inline constexpr uint16_t kIperfPort = 5001;

// Application on the system under test that streams data to the peer.
class IperfSender {
 public:
  struct Params {
    Ipv4Addr dst = 0;
    uint16_t port = kIperfPort;
    uint64_t burst_bytes = 1024 * 1024;  // submitted two-deep per drain
    int connections = 1;
  };

  IperfSender(SocketApi* api, const Params& params);
  void Start();

  uint64_t bytes_submitted() const { return bytes_submitted_; }
  int established() const { return established_; }

 private:
  void OnEvent(const Msg& m);

  SocketApi* api_;
  Params params_;
  uint64_t bytes_submitted_ = 0;
  int established_ = 0;
};

// Peer-side listener that counts what actually arrived (the measured end).
class IperfPeerSink {
 public:
  IperfPeerSink(PeerHost* peer, uint16_t port = kIperfPort);

  uint64_t total_bytes() const { return total_bytes_; }
  RateMeter& window() { return window_; }

 private:
  RateMeter window_;
  uint64_t total_bytes_ = 0;
};

// Peer-side bulk sender (for SUT-receive tests). Zero CPU cost, real TCP.
class IperfPeerSender {
 public:
  struct Params {
    Ipv4Addr sut = 0;
    uint16_t port = kIperfPort;
    uint64_t burst_bytes = 256 * 1024;
    int connections = 1;
  };

  IperfPeerSender(PeerHost* peer, const Params& params);
  void Start();

  uint64_t bytes_submitted() const { return bytes_submitted_; }

 private:
  PeerHost* peer_;
  Params params_;
  uint64_t bytes_submitted_ = 0;
};

// SUT application that listens and counts received bytes.
class IperfSutSink {
 public:
  IperfSutSink(SocketApi* api, uint16_t port = kIperfPort);
  void Start();

  uint64_t total_bytes() const { return total_bytes_; }
  RateMeter& window() { return window_; }

 private:
  void OnEvent(const Msg& m);

  SocketApi* api_;
  uint16_t port_;
  RateMeter window_;
  uint64_t total_bytes_ = 0;
};

}  // namespace newtos

#endif  // SRC_WORKLOAD_IPERF_H_
