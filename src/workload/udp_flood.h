// UDP packet-rate workload: the peer fires datagrams at a configured rate
// (constant or Poisson); the SUT app counts deliveries. Exercises the
// connectionless path and provides the offered-load axis for the
// poll-vs-halt energy experiment (Fig. 7), where precise low-load control
// matters and TCP's self-clocking would get in the way.

#ifndef SRC_WORKLOAD_UDP_FLOOD_H_
#define SRC_WORKLOAD_UDP_FLOOD_H_

#include <cstdint>
#include <memory>

#include "src/metrics/stats.h"
#include "src/os/peer_host.h"
#include "src/os/server.h"
#include "src/os/udp_server.h"
#include "src/sim/random.h"

namespace newtos {

inline constexpr uint16_t kUdpFloodPort = 9009;

class UdpPeerFlood {
 public:
  struct Params {
    Ipv4Addr sut = 0;
    uint16_t port = kUdpFloodPort;
    uint32_t payload_bytes = 1024;
    double packets_per_sec = 100'000.0;
    bool poisson = false;  // false: constant spacing
    uint64_t seed = 7;
  };

  UdpPeerFlood(PeerHost* peer, const Params& params);
  void Start();
  void Stop() { running_ = false; }

  uint64_t sent() const { return sent_; }

 private:
  void FireNext();

  PeerHost* peer_;
  Params params_;
  Rng rng_;
  bool running_ = false;
  uint64_t sent_ = 0;
};

// SUT-side receiver: binds the port on the UDP server via an app channel.
// (UDP binding goes through the normal request path so it pays app + server
// costs like everything else.)
class UdpSutSink {
 public:
  // `app_events` is an AppProcess registered with the UDP server; see
  // tests/bench for wiring. Simplest use: call BindDirect to register with
  // the UdpServer without an app process (counts in the server only).
  UdpSutSink() = default;

  // Registers directly with the UDP server: creates a sink channel, binds
  // the port, and counts kEvtData messages (drained with zero app cost).
  void BindDirect(UdpServer* udp, uint16_t port);

  uint64_t received() const { return received_; }
  RateMeter& window() { return window_; }

 private:
  std::unique_ptr<SimChannel<Msg>> sink_;
  RateMeter window_;
  uint64_t received_ = 0;
};

}  // namespace newtos

#endif  // SRC_WORKLOAD_UDP_FLOOD_H_
