#include "src/workload/iperf.h"

namespace newtos {

// --- IperfSender ---

IperfSender::IperfSender(SocketApi* api, const Params& params) : api_(api), params_(params) {
  api_->SetEventHandler([this](const Msg& m) { OnEvent(m); });
}

void IperfSender::Start() {
  for (int i = 0; i < params_.connections; ++i) {
    api_->Connect(params_.dst, params_.port);
  }
}

void IperfSender::OnEvent(const Msg& m) {
  switch (m.type) {
    case MsgType::kEvtEstablished:
      ++established_;
      // Two outstanding bursts (double buffering): the refill submitted on
      // each drained notification overlaps the drain of the other burst, so
      // the pipe never empties while the notification crosses the channels.
      api_->Send(m.handle, params_.burst_bytes);
      api_->Send(m.handle, params_.burst_bytes);
      bytes_submitted_ += 2 * params_.burst_bytes;
      break;
    case MsgType::kEvtDrained:
      // Pipe ran dry: top it up two bursts deep again.
      api_->Send(m.handle, params_.burst_bytes);
      api_->Send(m.handle, params_.burst_bytes);
      bytes_submitted_ += 2 * params_.burst_bytes;
      break;
    default:
      break;
  }
}

// --- IperfPeerSink ---

IperfPeerSink::IperfPeerSink(PeerHost* peer, uint16_t port) {
  TcpHost::AppHooks hooks;
  hooks.on_data = [this](TcpConnection*, uint32_t bytes) {
    total_bytes_ += bytes;
    window_.Add(1, bytes);
  };
  peer->tcp().Listen(port, hooks, peer->tcp_params());
}

// --- IperfPeerSender ---

IperfPeerSender::IperfPeerSender(PeerHost* peer, const Params& params)
    : peer_(peer), params_(params) {}

void IperfPeerSender::Start() {
  for (int i = 0; i < params_.connections; ++i) {
    TcpHost::AppHooks hooks;
    hooks.on_established = [this](TcpConnection* c) {
      c->Send(params_.burst_bytes);
      bytes_submitted_ += params_.burst_bytes;
    };
    hooks.on_drained = [this](TcpConnection* c) {
      c->Send(params_.burst_bytes);
      bytes_submitted_ += params_.burst_bytes;
    };
    peer_->tcp().Connect(params_.sut, params_.port, hooks, peer_->tcp_params());
  }
}

// --- IperfSutSink ---

IperfSutSink::IperfSutSink(SocketApi* api, uint16_t port) : api_(api), port_(port) {
  api_->SetEventHandler([this](const Msg& m) { OnEvent(m); });
}

void IperfSutSink::Start() { api_->Listen(port_); }

void IperfSutSink::OnEvent(const Msg& m) {
  if (m.type == MsgType::kEvtData) {
    total_bytes_ += m.value;
    window_.Add(1, m.value);
  }
}

}  // namespace newtos
