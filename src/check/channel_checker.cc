#include "src/check/channel_checker.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace newtos {
namespace {

// Rule bits for per-ring flood control: the first occurrence of a rule on a
// ring is stored with full detail, repeats only bump the suppressed counter.
enum RuleBit : uint32_t {
  kSecondProducer = 1u << 0,
  kSecondConsumer = 1u << 1,
  kPushSeqRegression = 1u << 2,
  kDeliverReorder = 1u << 3,
  kPopBeforePush = 1u << 4,
  kHandleReuse = 1u << 5,
};

// Cap on stored trace violations per AnalyzeTrace call; a trace with a
// systematic fault would otherwise flood the report with one entry per event.
constexpr size_t kTraceViolationBudget = 64;

}  // namespace

uint32_t ChannelChecker::RegisterActor(std::string name) {
  actor_names_.push_back(std::move(name));
  return static_cast<uint32_t>(actor_names_.size());
}

void ChannelChecker::Register(const void* ring, std::string name) {
  auto [it, inserted] = rings_.try_emplace(ring);
  if (inserted) {
    ring_order_.push_back(ring);
  }
  it->second.name = std::move(name);
}

void ChannelChecker::DeclareSharedProducers(const void* ring, std::string reason) {
  RingState& rs = StateFor(ring);
  rs.shared = true;
  rs.shared_reason = std::move(reason);
}

void ChannelChecker::BindConsumer(const void* ring, uint32_t actor) {
  if (actor == 0) {
    return;
  }
  RingState& rs = StateFor(ring);
  if (rs.consumer == 0) {
    rs.consumer = actor;
  } else if (rs.consumer != actor) {
    std::ostringstream os;
    os << "ring is owned by consumer '" << ActorName(rs.consumer) << "' but '" << ActorName(actor)
       << "' was bound as its consumer";
    AddViolation(rs, kSecondConsumer, "second-consumer", os.str());
  }
}

ChannelChecker::RingState& ChannelChecker::StateFor(const void* ring) {
  auto [it, inserted] = rings_.try_emplace(ring);
  if (inserted) {
    ring_order_.push_back(ring);
    it->second.name = "<unregistered>";
  }
  return it->second;
}

const std::string& ChannelChecker::ActorName(uint32_t actor) const {
  static const std::string kAnon = "<anonymous>";
  if (actor == 0 || actor > actor_names_.size()) {
    return kAnon;
  }
  return actor_names_[actor - 1];
}

void ChannelChecker::AddViolation(RingState& rs, uint32_t bit, const char* rule,
                                  std::string detail) {
  if ((rs.reported & bit) != 0) {
    ++suppressed_;
    return;
  }
  rs.reported |= bit;
  violations_.push_back(Violation{rs.name, rule, std::move(detail)});
}

void ChannelChecker::EraseLiveHop(RingState& rs, uint64_t hop) {
  if (hop == 0) {
    return;
  }
  for (size_t i = 0; i < rs.live_hops.size(); ++i) {
    if (rs.live_hops[i] == hop) {
      rs.live_hops[i] = rs.live_hops.back();
      rs.live_hops.pop_back();
      return;
    }
  }
}

void ChannelChecker::OnProducerPush(const void* ring, uint64_t seq, uint64_t hop) {
  RingState& rs = StateFor(ring);
  ++rs.pushes;
  if (current_actor_ != 0) {
    bool known = false;
    for (const uint32_t p : rs.all_producers) {
      if (p == current_actor_) {
        known = true;
        break;
      }
    }
    if (!known) {
      rs.all_producers.push_back(current_actor_);
    }
  }
  if (!rs.shared && current_actor_ != 0) {
    if (rs.producer == 0) {
      rs.producer = current_actor_;
    } else if (rs.producer != current_actor_) {
      std::ostringstream os;
      os << "ring is owned by producer '" << ActorName(rs.producer) << "' but '"
         << ActorName(current_actor_)
         << "' pushed into it (declare shared producers if intended)";
      AddViolation(rs, kSecondProducer, "second-producer", os.str());
    }
  }
  if (seq != 0) {
    if (seq <= rs.last_push_seq) {
      std::ostringstream os;
      os << "push cursor moved backwards: seq " << seq << " after " << rs.last_push_seq;
      AddViolation(rs, kPushSeqRegression, "push-seq-regression", os.str());
    } else {
      rs.last_push_seq = seq;
    }
  }
  if (hop != 0) {
    for (const uint64_t live : rs.live_hops) {
      if (live == hop) {
        std::ostringstream os;
        os << "hop/handle " << hop << " pushed while its previous life is still in flight "
           << "(pooled handle recycled too early?)";
        AddViolation(rs, kHandleReuse, "handle-reuse", os.str());
        break;
      }
    }
    rs.live_hops.push_back(hop);
  }
}

void ChannelChecker::OnDeliver(const void* ring, uint64_t seq) {
  RingState& rs = StateFor(ring);
  ++rs.delivers;
  if (seq != 0) {
    // Equal is legal: a duplicate tap delivers one push twice. Backwards is
    // the FIFO violation — a later push overtook an earlier one in transit.
    if (seq < rs.last_deliver_seq) {
      std::ostringstream os;
      os << "FIFO broken: push #" << seq << " delivered after push #" << rs.last_deliver_seq;
      AddViolation(rs, kDeliverReorder, "deliver-reorder", os.str());
    } else {
      rs.last_deliver_seq = seq;
    }
  }
  rs.delivered_fifo.push_back(seq);
}

void ChannelChecker::OnDrop(const void* ring, uint64_t hop) {
  RingState& rs = StateFor(ring);
  ++rs.drops;
  EraseLiveHop(rs, hop);
}

void ChannelChecker::OnPop(const void* ring, uint64_t hop) {
  RingState& rs = StateFor(ring);
  ++rs.pops;
  if (current_actor_ != 0) {
    // Consumer identity is checked even on declared-shared rings: shared
    // means many producers, never many consumers (MPSC at worst).
    if (rs.consumer == 0) {
      rs.consumer = current_actor_;
    } else if (rs.consumer != current_actor_) {
      std::ostringstream os;
      os << "ring is owned by consumer '" << ActorName(rs.consumer) << "' but '"
         << ActorName(current_actor_) << "' popped from it";
      AddViolation(rs, kSecondConsumer, "second-consumer", os.str());
    }
  }
  if (rs.fifo_head == rs.delivered_fifo.size()) {
    AddViolation(rs, kPopBeforePush, "pop-before-push",
                 "a message was popped that the checker never saw delivered");
  } else {
    ++rs.fifo_head;
    if (rs.fifo_head == rs.delivered_fifo.size()) {
      rs.delivered_fifo.clear();
      rs.fifo_head = 0;
    }
  }
  EraseLiveHop(rs, hop);
}

void ChannelChecker::AddTraceViolation(std::string track, const char* rule, std::string detail,
                                       size_t* budget) {
  if (*budget == 0) {
    ++suppressed_;
    return;
  }
  --*budget;
  violations_.push_back(Violation{std::move(track), rule, std::move(detail)});
}

size_t ChannelChecker::AnalyzeTrace(const TraceRecorder& rec, const TraceOptions& opts) {
  // Offline happens-before replay. In a single-threaded DES the recording
  // order is a total order consistent with causality, so every async edge
  // (enqueue -> dequeue of one message in one ring, paired by hop id on the
  // ring's track) must satisfy: the begin is recorded before its end, the
  // end's timestamp is not before the begin's, and each track's async
  // timestamps never run backwards. Each track carries a vector clock,
  // ticked on its own async events; a begin snapshots its track's clock and
  // the matching end joins that snapshot into the consumer-side clock — so
  // the clocks encode the full cross-ring causal order of the run, and any
  // edge that contradicts the recorded order surfaces as a violation here.
  struct PendingBegin {
    SimTime ts = 0;
    std::vector<uint64_t> clock;
  };
  struct HopKey {
    uint32_t track = 0;
    uint32_t name = 0;
    uint64_t hop = 0;
    bool operator==(const HopKey& o) const {
      return track == o.track && name == o.name && hop == o.hop;
    }
  };
  struct HopKeyHash {
    size_t operator()(const HopKey& k) const {
      uint64_t h = k.hop * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(k.track) << 32) | k.name;
      h *= 0xff51afd7ed558ccdull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };

  const size_t before = violations_.size();
  size_t budget = kTraceViolationBudget;
  std::vector<std::vector<uint64_t>> clocks;   // per track
  std::vector<SimTime> last_async_ts;          // per track
  std::vector<uint8_t> ts_seen;                // per track: last_async_ts valid
  std::unordered_map<HopKey, std::vector<PendingBegin>, HopKeyHash> in_flight;

  auto track_slot = [&](uint32_t t) {
    if (t >= clocks.size()) {
      clocks.resize(t + 1);
      last_async_ts.resize(t + 1, 0);
      ts_seen.resize(t + 1, 0);
    }
    if (clocks[t].size() < clocks.size()) {
      clocks[t].resize(clocks.size(), 0);
    }
  };
  auto join = [](std::vector<uint64_t>& into, const std::vector<uint64_t>& from) {
    if (into.size() < from.size()) {
      into.resize(from.size(), 0);
    }
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i] > into[i]) {
        into[i] = from[i];
      }
    }
  };

  rec.ForEach([&](const TraceEvent& e) {
    if (e.type != TraceEventType::kAsyncBegin && e.type != TraceEventType::kAsyncEnd) {
      return;
    }
    const uint32_t t = e.track;
    track_slot(t);
    ++clocks[t][t];  // local tick
    if (ts_seen[t] != 0 && e.ts < last_async_ts[t]) {
      std::ostringstream os;
      os << "async time ran backwards on track '" << rec.TrackOf(e.track).name << "': "
         << e.ts << " after " << last_async_ts[t];
      AddTraceViolation(rec.TrackOf(e.track).name, "track-time-regression", os.str(), &budget);
    }
    last_async_ts[t] = e.ts;
    ts_seen[t] = 1;

    const HopKey key{t, e.name, e.flow};
    if (e.type == TraceEventType::kAsyncBegin) {
      std::vector<PendingBegin>& fifo = in_flight[key];
      if (opts.strict_handle_reuse && !fifo.empty()) {
        std::ostringstream os;
        os << "hop " << e.flow << " ('" << rec.NameOf(e.name) << "') began again on track '"
           << rec.TrackOf(e.track).name << "' while still in flight";
        AddTraceViolation(rec.TrackOf(e.track).name, "handle-reuse", os.str(), &budget);
      }
      fifo.push_back(PendingBegin{e.ts, clocks[t]});
      return;
    }
    auto it = in_flight.find(key);
    if (it == in_flight.end() || it->second.empty()) {
      std::ostringstream os;
      os << "hop " << e.flow << " ('" << rec.NameOf(e.name) << "') dequeued on track '"
         << rec.TrackOf(e.track).name << "' with no matching enqueue";
      AddTraceViolation(rec.TrackOf(e.track).name, "end-without-begin", os.str(), &budget);
      return;
    }
    PendingBegin begin = std::move(it->second.front());
    it->second.erase(it->second.begin());
    if (e.ts < begin.ts) {
      std::ostringstream os;
      os << "hop " << e.flow << " ('" << rec.NameOf(e.name) << "') delivered at " << e.ts
         << ", before its enqueue at " << begin.ts;
      AddTraceViolation(rec.TrackOf(e.track).name, "hb-inversion", os.str(), &budget);
    }
    join(clocks[t], begin.clock);
  });
  // Hops still in flight at the end of the window are normal (messages
  // resident in rings when the run stopped, or begins that fell off the
  // ring's overwrite window) — not violations.
  return violations_.size() - before;
}

void ChannelChecker::OnLiveRingSummary(const std::string& ring_name, uint64_t pushes,
                                       uint64_t pops, uint64_t imposters) {
  live_rings_.push_back(LiveRing{ring_name, pushes, pops, imposters});
  if (imposters > 0) {
    violations_.push_back(Violation{ring_name, "imposter-actor",
                                    std::to_string(imposters) +
                                        " foreign-thread operation(s) on a bound SPSC side"});
  }
  if (pushes != pops) {
    violations_.push_back(Violation{ring_name, "live-conservation",
                                    "pushes=" + std::to_string(pushes) +
                                        " != pops=" + std::to_string(pops) +
                                        " after quiesce (messages lost or stuck)"});
  }
}

void ChannelChecker::Report(std::ostream& os) const {
  os << "channel checker: " << (ok() ? "OK" : "VIOLATIONS") << " — " << violations_.size()
     << " violation(s), " << suppressed_ << " suppressed, " << ring_order_.size()
     << " ring(s)\n";
  for (const void* ring : ring_order_) {
    const auto it = rings_.find(ring);
    if (it == rings_.end()) {
      continue;
    }
    const RingState& rs = it->second;
    os << "  ring '" << rs.name << "': pushes=" << rs.pushes << " delivers=" << rs.delivers
       << " pops=" << rs.pops << " drops=" << rs.drops;
    if (rs.producer != 0 || rs.consumer != 0) {
      os << " producer='" << ActorName(rs.producer) << "' consumer='" << ActorName(rs.consumer)
         << "'";
    }
    if (rs.shared) {
      os << " [shared producers: " << rs.shared_reason << "]";
    }
    os << "\n";
  }
  for (const LiveRing& lr : live_rings_) {
    os << "  live ring '" << lr.name << "': pushes=" << lr.pushes << " pops=" << lr.pops
       << " imposters=" << lr.imposters << "\n";
  }
  for (const Violation& v : violations_) {
    os << "  VIOLATION [" << v.rule << "] " << (v.ring.empty() ? "<trace>" : v.ring) << ": "
       << v.detail << "\n";
  }
}

void ChannelChecker::WriteWiring(std::ostream& os) const {
  // Merged by NAME across registrations: the equivalence gate runs several
  // stack configurations through one checker, each re-creating its channels
  // at fresh addresses, and the union over runs is what the static graph
  // models. Walks ring_order_, not the address map, for a stable order.
  struct Entry {
    std::string name;
    std::vector<std::string> consumers;
    std::vector<std::string> producers;
  };
  std::vector<Entry> entries;
  auto entry_for = [&entries](const std::string& name) -> Entry& {
    for (Entry& e : entries) {
      if (e.name == name) {
        return e;
      }
    }
    entries.push_back(Entry{name, {}, {}});
    return entries.back();
  };
  auto add_unique = [](std::vector<std::string>& v, const std::string& s) {
    for (const std::string& have : v) {
      if (have == s) {
        return;
      }
    }
    v.push_back(s);
  };
  for (const void* ring : ring_order_) {
    const auto it = rings_.find(ring);
    if (it == rings_.end()) {
      continue;
    }
    const RingState& rs = it->second;
    if (rs.name == "<unregistered>") {
      continue;
    }
    Entry& e = entry_for(rs.name);
    if (rs.consumer != 0) {
      add_unique(e.consumers, ActorName(rs.consumer));
    }
    for (const uint32_t p : rs.all_producers) {
      add_unique(e.producers, ActorName(p));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  auto join = [](std::vector<std::string>& v) {
    std::sort(v.begin(), v.end());
    std::string out;
    for (const std::string& s : v) {
      if (!out.empty()) {
        out += ',';
      }
      out += s;
    }
    return out;
  };
  for (Entry& e : entries) {
    os << "ring " << e.name << " consumer=" << join(e.consumers)
       << " producers=" << join(e.producers) << "\n";
  }
}

}  // namespace newtos
