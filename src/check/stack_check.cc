#include "src/check/stack_check.h"

#include <string>
#include <string_view>

namespace newtos {

namespace {

bool EndsWith(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

}  // namespace

// The stack's sanctioned deviations from strict SPSC. Everything not listed
// here stays strict: one producer, one consumer, forever. Defined outside the
// NEWTOS_CHECKERS gate: the table is a fact about the stack's design, and the
// analyzer-mirror test reads it in every build type.
//
//   ip/tx      <- every TCP shard and the UDP server emit TX segments
//   */acks     <- every watched server acks heartbeats into the watchdog
//   */events   <- TCP, UDP and the syscall gateway all deliver to one app
//   */app      <- socket requests arrive from every registered app (or the
//                 gateway routing on their behalf)
//   syscall/req<- every app funnels requests through the one gateway
//   syscall/evt<- both L4 servers hand events back through the gateway
const char* StackChecker::SharedReasonFor(std::string_view name) {
  if (name == "ip/tx") {
    return "every L4 server (TCP shards, UDP) emits TX segments into the one IP TX ring";
  }
  if (EndsWith(name, "/acks")) {
    return "every watched server acks heartbeats into the watchdog's ring";
  }
  if (EndsWith(name, "/events")) {
    return "TCP, UDP and the syscall gateway all deliver events to one app ring";
  }
  if (EndsWith(name, "/app")) {
    return "socket requests arrive from every registered app (or the gateway)";
  }
  if (EndsWith(name, "/req")) {
    return "every app funnels socket requests through the one gateway ring";
  }
  if (EndsWith(name, "/evt")) {
    return "both L4 servers hand app events back through the gateway";
  }
  return nullptr;
}

#if NEWTOS_CHECKERS

void StackChecker::AttachServer(Server* server) {
  if (check_ == nullptr || server == nullptr) {
    return;
  }
  const uint32_t actor = check_->RegisterActor(server->name());
  server->EnableCheck(check_, actor);
  for (Server::Chan* ch : server->Inputs()) {
    if (const char* reason = SharedReasonFor(ch->name())) {
      check_->DeclareSharedProducers(ch, reason);
    }
  }
}

void StackChecker::Attach(MultiserverStack* stack) {
  if (check_ == nullptr || stack == nullptr) {
    return;
  }
  for (Server* s : stack->SystemServers()) {
    AttachServer(s);
  }
  for (AppProcess* app : stack->Apps()) {
    AttachServer(app);
  }
}

#else  // !NEWTOS_CHECKERS

void StackChecker::AttachServer(Server*) {}
void StackChecker::Attach(MultiserverStack*) {}

#endif  // NEWTOS_CHECKERS

}  // namespace newtos
