// ChannelChecker: a debug-gated protocol validator for the simulated rings.
//
// The simulator's channels are SPSC by construction — one producer server,
// one consumer server per ring, exactly like the shared-memory rings of the
// NewtOS stack the model reproduces. Nothing *enforces* that: a mis-wired
// testbed, a buggy fault tap, or a refactor that routes two servers into one
// ring silently breaks the discipline, and the only symptom is a determinism
// golden changing three PRs later. This checker makes the discipline an
// explicit, checkable protocol:
//
//   * identity    — the first non-anonymous actor to Push into a ring owns
//                   its producer side forever; same for Pop and the consumer
//                   side. A second identity on either side is a violation,
//                   unless the ring was declared shared (see below).
//   * cursors     — push sequence numbers are assigned by the channel and
//                   must be strictly monotone; delivery must be monotone too
//                   (equal allowed: a duplicate tap delivers one seq twice).
//                   A delivery that goes *backwards* is a FIFO violation —
//                   this is exactly how a fault tap that lets fresh messages
//                   overtake delayed ones gets caught.
//   * handles     — a hop id (packet id) pushed while the same id is still
//                   in flight in the same ring means a pooled handle was
//                   recycled while its previous life was still traveling.
//
// Some rings are multi-producer BY DESIGN (the IP TX ring takes segments
// from every L4 server; the watchdog's ack ring hears from every watched
// server). Those are declared with DeclareSharedProducers(ring, reason) —
// the deviation is recorded and reported, never silent.
//
// Violations are collected, not asserted: the tier-1 build compiles with
// NDEBUG, and a checker that only works in one build type checks nothing.
// Call ok() / Report() at the end of a run.
//
// AnalyzeTrace() is the offline half: it replays the recorder's async-hop
// events (enqueue/dequeue edges) through per-track vector clocks and flags
// causal races — a dequeue with no matching enqueue, a delivery timestamped
// before its send, per-track time running backwards.
//
// Threading: single-threaded, like the simulator. The real-thread SPSC ring
// has its own independent identity check (src/chan/spsc_ring.h).

#ifndef SRC_CHECK_CHANNEL_CHECKER_H_
#define SRC_CHECK_CHANNEL_CHECKER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/recorder.h"

namespace newtos {

class ChannelChecker {
 public:
  struct Violation {
    std::string ring;    // channel (or trace track) name; may be empty
    std::string rule;    // stable rule id, e.g. "second-producer"
    std::string detail;  // human-readable specifics
  };

  ChannelChecker() = default;
  ChannelChecker(const ChannelChecker&) = delete;
  ChannelChecker& operator=(const ChannelChecker&) = delete;

  // --- Wiring (may allocate; happens at testbed construction) ---

  // Registers a named actor (a server); returns its id (>= 1). Id 0 is the
  // anonymous actor: operations from unregistered contexts (tests poking a
  // channel directly, timer callbacks) neither bind nor violate identities.
  uint32_t RegisterActor(std::string name);

  // Registers a ring under `name`. Channels call this from EnableCheck.
  void Register(const void* ring, std::string name);

  // Declares the ring multi-producer by design. The reason is mandatory and
  // shows up in Report() — shared rings are deviations, not defaults.
  void DeclareSharedProducers(const void* ring, std::string reason);

  // Binds the consumer identity at wiring time (Server::EnableCheck calls
  // this for every owned input). Popping already binds lazily; the explicit
  // bind makes never-popped rings carry their consumer in WriteWiring(), and
  // a second bind is the same second-consumer violation a foreign Pop is.
  void BindConsumer(const void* ring, uint32_t actor);

  // Scopes the current actor identity (RAII; the sim is single-threaded, so
  // a plain save/restore is exact). Null checker is a no-op.
  class ScopedActor {
   public:
    ScopedActor(ChannelChecker* check, uint32_t actor) : check_(check) {
      if (check_ != nullptr) {
        prev_ = check_->current_actor_;
        check_->current_actor_ = actor;
      }
    }
    ~ScopedActor() {
      if (check_ != nullptr) {
        check_->current_actor_ = prev_;
      }
    }
    ScopedActor(const ScopedActor&) = delete;
    ScopedActor& operator=(const ScopedActor&) = delete;

   private:
    ChannelChecker* check_;
    uint32_t prev_ = 0;
  };

  uint32_t current_actor() const { return current_actor_; }

  // --- Live hooks (called by SimChannel; cheap, but only wired in debug) ---

  // Producer side: a message entered Push. `seq` is the channel's push
  // cursor (strictly monotone per ring); `hop` the message's trace id, 0 if
  // untraceable.
  void OnProducerPush(const void* ring, uint64_t seq, uint64_t hop);

  // A message landed in the ring (after any tap) carrying push-cursor `seq`.
  void OnDeliver(const void* ring, uint64_t seq);

  // A message left the system without delivery (tap drop, capacity drop).
  void OnDrop(const void* ring, uint64_t hop);

  // Consumer side: a message was popped.
  void OnPop(const void* ring, uint64_t hop);

  // --- Live-mode summary (real-thread backend) ---

  // The live backend's ThreadChannels run on real threads, where the
  // single-threaded hooks above cannot be called; there the SpscRing's own
  // first-touch identity check counts imposters during the run, and the
  // LiveStack folds each ring's post-join counters in here. A non-zero
  // imposter count or a push/pop imbalance becomes a regular violation, so
  // both backends end a run answering "did anything break the channel
  // protocol?" through the same ok()/Report() surface.
  void OnLiveRingSummary(const std::string& ring_name, uint64_t pushes, uint64_t pops,
                         uint64_t imposters);

  // --- Offline trace analysis ---

  struct TraceOptions {
    // Flag a hop id beginning twice on one track while still in flight.
    // Off by default: duplicate taps legitimately alias hop ids.
    bool strict_handle_reuse = false;
  };

  // Replays async begin/end events through per-track vector clocks; appends
  // any causal violations and returns how many were found.
  size_t AnalyzeTrace(const TraceRecorder& rec, const TraceOptions& opts);
  size_t AnalyzeTrace(const TraceRecorder& rec) { return AnalyzeTrace(rec, TraceOptions()); }

  // --- Results ---

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  struct LiveRing {
    std::string name;
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t imposters = 0;
  };
  const std::vector<LiveRing>& live_rings() const { return live_rings_; }
  // Repeats of an already-reported (ring, rule) pair, counted not stored.
  uint64_t suppressed() const { return suppressed_; }
  void Report(std::ostream& os) const;

  // Canonical observed-wiring text, one line per ring name:
  //   ring <name> consumer=<actor> producers=<a1,a2>
  // sorted by ring name, producers sorted and deduplicated. Rings are merged
  // by NAME, not address: the wiring-equivalence gate runs several stack
  // configurations through one checker, and each run re-creates channels at
  // fresh addresses under the same names. Producers come from the full
  // observed set (every non-anonymous pushing actor, shared rings included),
  // so the output is exactly comparable with the statically extracted graph
  // (tools/analyze WriteDesWiring).
  void WriteWiring(std::ostream& os) const;

 private:
  struct RingState {
    std::string name;
    bool shared = false;
    std::string shared_reason;
    uint32_t producer = 0;  // actor ids; 0 = not yet bound
    uint32_t consumer = 0;
    // Every non-anonymous actor ever seen pushing, shared rings included —
    // the identity check above stops at `producer`, but WriteWiring() needs
    // the full producer set to compare against the static graph.
    std::vector<uint32_t> all_producers;
    uint64_t last_push_seq = 0;
    uint64_t last_deliver_seq = 0;
    uint64_t pushes = 0;
    uint64_t delivers = 0;
    uint64_t drops = 0;
    uint64_t pops = 0;
    // Delivery window: seqs delivered but not yet popped, a flat FIFO.
    std::vector<uint64_t> delivered_fifo;
    size_t fifo_head = 0;
    // Hop ids pushed and neither popped nor dropped yet.
    std::vector<uint64_t> live_hops;
    uint32_t reported = 0;  // bitmask of rules already reported for this ring
  };

  RingState& StateFor(const void* ring);
  const std::string& ActorName(uint32_t actor) const;
  void AddViolation(RingState& rs, uint32_t bit, const char* rule, std::string detail);
  void AddTraceViolation(std::string track, const char* rule, std::string detail,
                         size_t* budget);
  static void EraseLiveHop(RingState& rs, uint64_t hop);

  uint32_t current_actor_ = 0;
  std::vector<LiveRing> live_rings_;
  std::vector<std::string> actor_names_;  // index = actor id - 1
  std::unordered_map<const void*, RingState> rings_;
  std::vector<const void*> ring_order_;  // registration order, for Report()
  std::vector<Violation> violations_;
  uint64_t suppressed_ = 0;
};

}  // namespace newtos

#endif  // SRC_CHECK_CHANNEL_CHECKER_H_
