// StackChecker: wires a ChannelChecker onto a full multiserver stack.
//
// One call attaches every system server and app: each gets an actor
// identity, each owned input ring registers with the checker, and the rings
// that are multi-producer by design (see the table in the .cc) are declared
// shared with their reasons. After a run, read the verdict off the
// ChannelChecker (ok() / Report()).
//
// Compiled to no-ops when NEWTOS_CHECKERS is off, so fault campaigns can
// keep the wiring call sites unconditionally.

#ifndef SRC_CHECK_STACK_CHECK_H_
#define SRC_CHECK_STACK_CHECK_H_

#include <string_view>

#include "src/check/channel_checker.h"
#include "src/os/server.h"
#include "src/os/stack.h"

namespace newtos {

class StackChecker {
 public:
  explicit StackChecker(ChannelChecker* check) : check_(check) {}

  // The sanctioned shared-producer table (reason string, or nullptr for
  // strictly-SPSC rings). Public and checker-independent so tests can assert
  // the static analyzer's analyze.toml [[shared]] entries mirror it.
  static const char* SharedReasonFor(std::string_view ring_name);

  // Attaches every system server and app of the stack. Call after the stack
  // (and its apps) are built, before traffic flows.
  void Attach(MultiserverStack* stack);

  // Attaches one extra server (e.g. the fault tooling's WatchdogServer,
  // which the stack itself never builds).
  void AttachServer(Server* server);

 private:
  ChannelChecker* check_;
};

}  // namespace newtos

#endif  // SRC_CHECK_STACK_CHECK_H_
