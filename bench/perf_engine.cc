// Engine perf microbench: events/sec, packets/sec, and allocations/event.
//
// Runs the fig2-style bulk-TCP scenario (one iperf connection, dedicated
// stack cores at base clock) for a fixed simulated window and reports how
// fast the *host* executes it. A counting global allocator measures how many
// heap allocations the engine performs per simulated event — the pooled
// fast path must hold this at zero in steady state.
//
// Modes:
//   (default)  full measurement window, prints a table and writes
//              BENCH_engine.json at the repo root (override with --out PATH)
//   --check    short window asserting allocations/event == 0 in steady
//              state; exits non-zero on regression. Wired into ctest.
//   --trace M  M = off (no tracer built), wired (full tracing wired but
//              disabled — the shipping configuration), on (recording with
//              samplers). The --check gate passes in *all three* modes: the
//              trace fast path is a POD copy into a preallocated ring.
//   --lanes N  fabric mode: a 32-client UDP incast through the switch
//              fabric, swept over lane counts up to N, written to
//              BENCH_fabric.json. Reports honest host wall-clock plus each
//              lane's event share — the serial fraction that bounds the
//              speedup a multicore host can extract (speedup <= 1/share);
//              host_cpus records how many cores this host actually had.
//              With --check: asserts the N-lane run reproduces the 1-lane
//              digest bit-for-bit, performs zero steady-state allocations
//              on every lane, and stays balanced enough that >= 2x speedup
//              is available on a 4-core host (max share <= 0.5).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/fabric/incast.h"
#include "src/metrics/report.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

// --- Counting allocator hook -----------------------------------------------
// Replaces global operator new/delete for this binary only. Counts every
// allocation; forwarding to malloc keeps behaviour identical.

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace newtos {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

enum class TraceMode { kOff, kWired, kOn };

const char* TraceModeName(TraceMode m) {
  switch (m) {
    case TraceMode::kOff:
      return "off";
    case TraceMode::kWired:
      return "wired";
    case TraceMode::kOn:
      return "on";
  }
  return "?";
}

struct PerfResult {
  uint64_t events = 0;
  uint64_t packets = 0;
  uint64_t allocs = 0;
  uint64_t alloc_bytes = 0;
  uint64_t trace_events = 0;
  double wall_seconds = 0.0;
  double goodput_gbps = 0.0;
  double sim_window_ms = 0.0;

  double events_per_sec() const { return static_cast<double>(events) / wall_seconds; }
  double packets_per_sec() const { return static_cast<double>(packets) / wall_seconds; }
  double allocs_per_event() const {
    return events == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(events);
  }
};

// The fig2 first sweep point: all cores at base clock, bulk TCP TX at line
// rate. Steady state is pure engine churn: segments, ACKs, channel hops,
// core work items, delayed-ACK timers.
PerfResult MeasureEngine(SimTime window, TraceMode trace_mode) {
  TestbedOptions options;
  Testbed tb(options);
  DedicatedSlowPlan(*tb.stack(), 3'600'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());

  // Trace wiring happens before warm-up so the recorder ring, sampler
  // probes, and burst-duration buffers all reach steady state inside it.
  std::unique_ptr<StackTracer> tracer;
  if (trace_mode != TraceMode::kOff) {
    StackTracer::Options topt;
    topt.ring_capacity = 1 << 18;
    tracer = std::make_unique<StackTracer>(&tb.sim(), tb.stack(), topt);
    if (trace_mode == TraceMode::kOn) {
      tracer->Enable();
    }
  }

  sender.Start();

  // Warm-up: connection setup, slow start, and every pool/ring growing to
  // its steady-state footprint.
  tb.sim().RunFor(150 * kMillisecond);
  sink.window().Reset(tb.sim().Now());

  const Nic::Stats& nic = tb.machine().nic()->stats();
  const uint64_t events0 = tb.sim().events_processed();
  const uint64_t packets0 = nic.tx_packets + nic.rx_packets;
  const uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  const auto wall0 = std::chrono::steady_clock::now();

  tb.sim().RunFor(window);

  const auto wall1 = std::chrono::steady_clock::now();
  PerfResult r;
  r.events = tb.sim().events_processed() - events0;
  r.packets = nic.tx_packets + nic.rx_packets - packets0;
  r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  r.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
  r.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  r.goodput_gbps = sink.window().GbitsPerSec(tb.sim().Now());
  r.sim_window_ms = ToSeconds(window) * 1e3;
  r.trace_events = tracer != nullptr ? tracer->recorder().recorded() : 0;
  return r;
}

// --- Fabric mode (--lanes) -------------------------------------------------

struct FabricPerf {
  int lanes = 0;
  uint64_t events = 0;
  uint64_t allocs = 0;
  double wall_seconds = 0.0;
  double max_lane_share = 0.0;
  uint64_t digest = 0;
  uint64_t delivered = 0;
  std::vector<uint64_t> per_lane_events;

  double events_per_sec() const { return static_cast<double>(events) / wall_seconds; }
};

// 32 clients flooding one sink at ~4x its egress line rate. The excess is
// tail-dropped inside the fabric at zero cost to the destination lane, so
// event load concentrates on the client lanes — the topology lanes exploit.
FabricPerf MeasureFabric(int lanes, SimTime window) {
  UdpIncastOptions o;
  o.topo.n_clients = 32;
  o.topo.lanes = lanes;
  o.topo.seed = 42;
  o.topo.fabric = IncastFabricDefaults();
  o.topo.fabric.port_propagation = 20 * kMicrosecond;
  o.payload_bytes = 1024;
  o.pps_per_client = 150'000.0;
  o.poisson = true;
  UdpIncastBed bed(o);
  bed.Start();

  // Warm-up: every pool, ring and staging buffer to its high-water mark.
  bed.RunFor(50 * kMillisecond);

  LaneEngine& engine = bed.engine();
  std::vector<uint64_t> events0(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    events0[static_cast<size_t>(i)] = engine.lane(i).sim().events_processed();
  }
  const uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto wall0 = std::chrono::steady_clock::now();

  bed.RunFor(window);

  const auto wall1 = std::chrono::steady_clock::now();
  FabricPerf r;
  r.lanes = lanes;
  r.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  r.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  r.per_lane_events.resize(static_cast<size_t>(lanes));
  uint64_t max_lane = 0;
  for (int i = 0; i < lanes; ++i) {
    const uint64_t d =
        engine.lane(i).sim().events_processed() - events0[static_cast<size_t>(i)];
    r.per_lane_events[static_cast<size_t>(i)] = d;
    r.events += d;
    max_lane = max_lane > d ? max_lane : d;
  }
  r.max_lane_share =
      r.events > 0 ? static_cast<double>(max_lane) / static_cast<double>(r.events) : 0.0;
  r.digest = bed.Digest();
  r.delivered = bed.delivered();
  return r;
}

std::string LaneSweepJson(const std::vector<FabricPerf>& sweep) {
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < sweep.size(); ++i) {
    const FabricPerf& r = sweep[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"lanes\": %d, \"events\": %llu, \"events_per_sec\": %.0f, "
                  "\"wall_seconds\": %.6f, \"allocs\": %llu, \"max_lane_share\": %.4f}",
                  i == 0 ? "" : ", ", r.lanes, static_cast<unsigned long long>(r.events),
                  r.events_per_sec(), r.wall_seconds,
                  static_cast<unsigned long long>(r.allocs), r.max_lane_share);
    out += buf;
  }
  out += "]";
  return out;
}

int RunFabric(int lanes, bool check, const std::string& out_path) {
  const SimTime window = check ? 50 * kMillisecond : 200 * kMillisecond;

  std::vector<FabricPerf> sweep;
  std::vector<int> counts;
  for (int n = 1; n < lanes; n *= 2) {
    counts.push_back(n);
  }
  counts.push_back(lanes);
  if (check && lanes > 1) {
    counts = {1, lanes};  // the equivalence pair; keep the gate fast
  }
  for (int n : counts) {
    sweep.push_back(MeasureFabric(n, window));
    const FabricPerf& r = sweep.back();
    std::printf("lanes %-2d  events %10llu  events/sec %10.0f  allocs %6llu  "
                "max lane share %.3f  digest %016llx\n",
                r.lanes, static_cast<unsigned long long>(r.events), r.events_per_sec(),
                static_cast<unsigned long long>(r.allocs), r.max_lane_share,
                static_cast<unsigned long long>(r.digest));
  }

  const FabricPerf& base = sweep.front();
  const FabricPerf& top = sweep.back();

  if (check) {
    if (top.digest != base.digest || top.delivered != base.delivered) {
      std::fprintf(stderr,
                   "FAIL: %d-lane run diverged from the 1-lane oracle "
                   "(digest %016llx vs %016llx, delivered %llu vs %llu)\n",
                   top.lanes, static_cast<unsigned long long>(top.digest),
                   static_cast<unsigned long long>(base.digest),
                   static_cast<unsigned long long>(top.delivered),
                   static_cast<unsigned long long>(base.delivered));
      return 1;
    }
    for (const FabricPerf& r : sweep) {
      if (r.allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu steady-state allocations in the %d-lane run; every lane's "
                     "fast path must be allocation-free after warm-up\n",
                     static_cast<unsigned long long>(r.allocs), r.lanes);
        return 1;
      }
    }
    if (top.lanes >= 4 && top.max_lane_share > 0.5) {
      std::fprintf(stderr,
                   "FAIL: max lane share %.3f > 0.5 — the busiest lane bounds speedup to "
                   "%.1fx; the incast topology must leave >= 2x on a 4-core host\n",
                   top.max_lane_share, 1.0 / top.max_lane_share);
      return 1;
    }
    std::printf("OK: %d-lane run is bit-identical to the oracle, allocation-free, and "
                "balanced (max lane share %.3f => %.1fx speedup available)\n",
                top.lanes, top.max_lane_share, 1.0 / top.max_lane_share);
    return 0;
  }

  JsonWriter w;
  w.Str("bench", "perf_engine_fabric")
      .Str("scenario", "udp_incast_32_clients")
      .Int("host_cpus", static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Num("sim_window_ms", ToSeconds(window) * 1e3, 1)
      .Raw("lane_sweep", LaneSweepJson(sweep))
      .Num("events_per_sec_1lane", base.events_per_sec(), 0)
      .Num("events_per_sec_top", top.events_per_sec(), 0)
      .Num("wall_speedup_measured", base.wall_seconds / top.wall_seconds, 3)
      .Num("max_lane_share_top", top.max_lane_share, 4)
      .Num("speedup_bound_from_share",
           top.max_lane_share > 0.0 ? 1.0 / top.max_lane_share : 0.0, 3)
      .Bool("digests_identical", top.digest == base.digest)
      .Uint("digest", base.digest)
      .Uint("delivered_datagrams", base.delivered);
  if (!WriteFileChecked(out_path, w.Finish())) {
    std::fprintf(stderr, "perf_engine: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

bool WriteJson(const PerfResult& r, TraceMode trace_mode, const std::string& path) {
  JsonWriter w;
  w.Str("bench", "perf_engine")
      .Str("scenario", "fig2_bulk_tx_base_clock")
      .Str("trace", TraceModeName(trace_mode))
      .Num("sim_window_ms", r.sim_window_ms, 1)
      .Uint("events", r.events)
      .Uint("packets", r.packets)
      .Num("wall_seconds", r.wall_seconds, 6)
      .Num("events_per_sec", r.events_per_sec(), 0)
      .Num("packets_per_sec", r.packets_per_sec(), 0)
      .Uint("allocs", r.allocs)
      .Uint("alloc_bytes", r.alloc_bytes)
      .Num("allocs_per_event", r.allocs_per_event(), 6)
      .Uint("trace_events", r.trace_events)
      .Num("goodput_gbps", r.goodput_gbps, 3);
  if (!WriteFileChecked(path, w.Finish())) {
    std::fprintf(stderr, "perf_engine: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int Run(int argc, char** argv) {
  bool check = false;
  int lanes = 0;  // 0 = engine mode; >= 1 = fabric mode
  TraceMode trace_mode = TraceMode::kOff;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lanes = std::atoi(argv[++i]);
      if (lanes < 1) {
        std::fprintf(stderr, "--lanes must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "off") == 0) {
        trace_mode = TraceMode::kOff;
      } else if (std::strcmp(mode, "wired") == 0) {
        trace_mode = TraceMode::kWired;
      } else if (std::strcmp(mode, "on") == 0) {
        trace_mode = TraceMode::kOn;
      } else {
        std::fprintf(stderr, "unknown --trace mode '%s' (off|wired|on)\n", mode);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check] [--trace off|wired|on] [--lanes N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  if (lanes > 0) {
    if (out.empty()) {
      out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_fabric.json";
    }
    return RunFabric(lanes, check, out);
  }
  if (out.empty()) {
    out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_engine.json";
  }

  const SimTime window = check ? 50 * kMillisecond : 500 * kMillisecond;
  const PerfResult r = MeasureEngine(window, trace_mode);

  std::printf("perf_engine — fig2-style bulk TCP TX, %0.0f ms simulated window (trace %s)\n",
              r.sim_window_ms, TraceModeName(trace_mode));
  std::printf("  events            %12llu\n", static_cast<unsigned long long>(r.events));
  std::printf("  packets           %12llu\n", static_cast<unsigned long long>(r.packets));
  std::printf("  wall seconds      %12.4f\n", r.wall_seconds);
  std::printf("  events/sec        %12.0f\n", r.events_per_sec());
  std::printf("  packets/sec       %12.0f\n", r.packets_per_sec());
  std::printf("  allocations       %12llu (%llu bytes)\n",
              static_cast<unsigned long long>(r.allocs),
              static_cast<unsigned long long>(r.alloc_bytes));
  std::printf("  allocs/event      %12.6f\n", r.allocs_per_event());
  std::printf("  trace events      %12llu\n", static_cast<unsigned long long>(r.trace_events));
  std::printf("  goodput           %12.3f Gbit/s\n", r.goodput_gbps);

  if (check) {
    if (r.allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu steady-state allocations (%.6f per event); the engine fast "
                   "path must be allocation-free after warm-up\n",
                   static_cast<unsigned long long>(r.allocs), r.allocs_per_event());
      return 1;
    }
    std::printf("OK: steady state is allocation-free (trace %s)\n", TraceModeName(trace_mode));
    return 0;
  }

  return WriteJson(r, trace_mode, out) ? 0 : 1;
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) { return newtos::Run(argc, argv); }
