// Trace overhead bench: how much does the tracing subsystem cost?
//
// Runs the fig2-style bulk-TCP scenario three times:
//   off    no tracer constructed (baseline engine)
//   wired  StackTracer constructed and every hook wired, recorder disabled —
//          the shipping configuration; the hot-path cost is one branch
//   on     recorder enabled with samplers, events land in the ring
//
// Each rep runs the three modes back-to-back and the reported overhead is
// the median per-rep slowdown ratio (see the comment in Run() for why).
// The result is written to BENCH_trace.json at the repo root. The acceptance
// targets from the design: `wired` within noise of `off`, `on` within a few
// percent.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/metrics/report.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

enum class TraceMode { kOff, kWired, kOn };

const char* TraceModeName(TraceMode m) {
  switch (m) {
    case TraceMode::kOff:
      return "off";
    case TraceMode::kWired:
      return "wired";
    case TraceMode::kOn:
      return "on";
  }
  return "?";
}

struct Sample {
  uint64_t events = 0;
  uint64_t trace_events = 0;
  double wall_seconds = 0.0;

  double events_per_sec() const { return static_cast<double>(events) / wall_seconds; }
};

Sample MeasureOnce(SimTime window, TraceMode mode) {
  TestbedOptions options;
  Testbed tb(options);
  DedicatedSlowPlan(*tb.stack(), 3'600'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());

  std::unique_ptr<StackTracer> tracer;
  if (mode != TraceMode::kOff) {
    StackTracer::Options topt;
    topt.ring_capacity = 1 << 18;
    tracer = std::make_unique<StackTracer>(&tb.sim(), tb.stack(), topt);
    if (mode == TraceMode::kOn) {
      tracer->Enable();
    }
  }

  sender.Start();
  tb.sim().RunFor(150 * kMillisecond);

  const uint64_t events0 = tb.sim().events_processed();
  const auto wall0 = std::chrono::steady_clock::now();
  tb.sim().RunFor(window);
  const auto wall1 = std::chrono::steady_clock::now();

  Sample s;
  s.events = tb.sim().events_processed() - events0;
  s.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  s.trace_events = tracer != nullptr ? tracer->recorder().recorded() : 0;
  return s;
}

int Run(int argc, char** argv) {
  int reps = 5;
  SimTime window = 300 * kMillisecond;
  std::string out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  std::printf("trace_overhead — fig2-style bulk TCP TX, %0.0f ms window, best of %d\n",
              ToSeconds(window) * 1e3, reps);

  // Machine-wide noise (thermal, noisy neighbours) swamps a naive best-of
  // comparison: independent bests for each mode can land in different noise
  // regimes and swing the apparent overhead by several points either way.
  // Instead each rep runs the three modes back-to-back — drift within one
  // rep is highly correlated, so the per-rep slowdown ratio mostly cancels
  // it — and the reported overhead is the median ratio across reps (robust
  // to individual reps disturbed in either direction).
  Sample samples[3];
  std::vector<double> wired_pcts;
  std::vector<double> on_pcts;
  const TraceMode modes[3] = {TraceMode::kOff, TraceMode::kWired, TraceMode::kOn};
  for (int rep = 0; rep < reps; ++rep) {
    Sample s[3];
    for (int i = 0; i < 3; ++i) {
      s[i] = MeasureOnce(window, modes[i]);
      if (samples[i].wall_seconds == 0.0 ||
          s[i].events_per_sec() > samples[i].events_per_sec()) {
        samples[i] = s[i];
      }
    }
    const double base = s[0].events_per_sec();
    const double w = (base - s[1].events_per_sec()) / base * 100.0;
    const double o = (base - s[2].events_per_sec()) / base * 100.0;
    std::printf("  rep %d: off %10.0f  wired %10.0f (%+.2f%%)  on %10.0f (%+.2f%%)\n",
                rep, base, s[1].events_per_sec(), w, s[2].events_per_sec(), o);
    wired_pcts.push_back(w);
    on_pcts.push_back(o);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
  };
  const double wired_pct = median(wired_pcts);
  const double on_pct = median(on_pcts);
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-6s %12.0f events/s best  (%llu events, %llu trace events)\n",
                TraceModeName(modes[i]), samples[i].events_per_sec(),
                static_cast<unsigned long long>(samples[i].events),
                static_cast<unsigned long long>(samples[i].trace_events));
  }
  std::printf("  overhead (median per-rep ratio): wired %+.2f%%, on %+.2f%%\n", wired_pct,
              on_pct);

  JsonWriter w;
  w.Str("bench", "trace_overhead")
      .Str("scenario", "fig2_bulk_tx_base_clock")
      .Num("sim_window_ms", ToSeconds(window) * 1e3, 1)
      .Int("reps", reps)
      .Num("events_per_sec_off", samples[0].events_per_sec(), 0)
      .Num("events_per_sec_wired", samples[1].events_per_sec(), 0)
      .Num("events_per_sec_on", samples[2].events_per_sec(), 0)
      .Num("overhead_wired_pct", wired_pct, 2)
      .Num("overhead_on_pct", on_pct, 2)
      .Uint("trace_events_on", samples[2].trace_events);
  if (!WriteFileChecked(out, w.Finish())) {
    std::fprintf(stderr, "trace_overhead: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) { return newtos::Run(argc, argv); }
