// Tab. 2 — End-to-end comparison: multiserver (best plan) vs. monolithic.
//
// Holds workload and protocol code constant and changes only the
// architecture. Three workloads:
//   bulk TX        network-bound; architectures tie near line rate
//   http-static    light app compute; monolithic's cheaper per-packet path
//                  competes with the multiserver's dedicated app core
//   http-dynamic   heavy app compute; the multiserver wins because the app
//                  core never pays for the stack
// The multiserver rows use the paper's plan: stack cores slowed to 2.4 GHz
// with idle halting; reliability (isolation + microreboot) comes with it,
// which the monolithic design simply does not offer.

#include <iostream>

#include "bench/common.h"
#include "src/core/poll_policy.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void ConfigureMultiserver(Testbed& tb) {
  DedicatedSlowPlan(*tb.stack(), 2'400'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
  PollPolicy* policy = tb.Keep(std::make_shared<PollPolicy>(&tb.sim(), PollMode::kHaltWhenIdle));
  policy->Manage(tb.machine().core(1), {tb.stack()->driver()});
  policy->Manage(tb.machine().core(2), {tb.stack()->ip(), tb.stack()->pf()});
  policy->Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});
  tb.machine().core(4)->SetIdleActivity(CoreActivity::kHalted);
}

void ConfigureMonolithic(Testbed& tb) {
  for (int i = 1; i < tb.machine().num_cores(); ++i) {
    tb.machine().core(i)->SetFrequency(600'000 * kKhz);
    tb.machine().core(i)->SetIdleActivity(CoreActivity::kHalted);
  }
}

void Run(const char* argv0) {
  TestbedOptions multi;
  TestbedOptions mono;
  mono.monolithic = true;

  Table t({"workload", "arch", "result", "p50_us", "pkg_watts"});

  // Bulk TX.
  {
    const BulkResult m = MeasureBulkTx(multi, ConfigureMultiserver);
    const BulkResult o = MeasureBulkTx(mono, ConfigureMonolithic);
    t.AddRow({"bulk-tx", "multiserver", Table::Num(m.goodput_gbps, 2) + " Gbit/s", "-",
              Table::Num(m.avg_pkg_watts, 1)});
    t.AddRow({"bulk-tx", "monolithic", Table::Num(o.goodput_gbps, 2) + " Gbit/s", "-",
              Table::Num(o.avg_pkg_watts, 1)});
  }

  // HTTP static (2 kcycles/request).
  {
    HttpParams hp;
    hp.concurrency = 32;
    hp.server_compute_cycles = 2'000;
    const HttpResult m = MeasureHttp(multi, hp, ConfigureMultiserver);
    const HttpResult o = MeasureHttp(mono, hp, ConfigureMonolithic);
    t.AddRow({"http-static", "multiserver", Table::Num(m.responses_per_sec / 1e3, 1) + "k req/s",
              Table::Num(static_cast<double>(m.p50) / kMicrosecond, 1),
              Table::Num(m.avg_pkg_watts, 1)});
    t.AddRow({"http-static", "monolithic", Table::Num(o.responses_per_sec / 1e3, 1) + "k req/s",
              Table::Num(static_cast<double>(o.p50) / kMicrosecond, 1),
              Table::Num(o.avg_pkg_watts, 1)});
  }

  // HTTP dynamic (120 kcycles/request).
  {
    HttpParams hp;
    hp.concurrency = 32;
    hp.server_compute_cycles = 120'000;
    const HttpResult m = MeasureHttp(multi, hp, ConfigureMultiserver);
    const HttpResult o = MeasureHttp(mono, hp, ConfigureMonolithic);
    t.AddRow({"http-dynamic", "multiserver", Table::Num(m.responses_per_sec / 1e3, 1) + "k req/s",
              Table::Num(static_cast<double>(m.p50) / kMicrosecond, 1),
              Table::Num(m.avg_pkg_watts, 1)});
    t.AddRow({"http-dynamic", "monolithic", Table::Num(o.responses_per_sec / 1e3, 1) + "k req/s",
              Table::Num(static_cast<double>(o.p50) / kMicrosecond, 1),
              Table::Num(o.avg_pkg_watts, 1)});
  }

  t.Print(std::cout, "Tab.2 — multiserver (slow stack + halt) vs. monolithic baseline");
  WriteBenchCsv(t, argv0, "tab2_vs_monolithic");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
