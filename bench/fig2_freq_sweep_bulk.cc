// Fig. 2 — Bulk TCP throughput vs. frequency of the system cores.
//
// The paper's F-flat result: the stack's three dedicated cores (driver, IP,
// TCP) are swept from base clock down to 600 MHz while the application core
// stays at 3.6 GHz. Goodput holds at line rate until a stack stage becomes
// compute-bound (the knee), then degrades roughly linearly.
//
// Expected shape: flat at ~9.3 Gbit/s from 3.6 down to ~2.4 GHz; knee near
// 2.0 GHz (TCP segment processing saturates); roughly linear below.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  Table t({"stack_ghz", "goodput_gbps", "vs_base", "pkg_watts"});
  double base = 0.0;
  for (FreqKhz f : StackFrequencySweep()) {
    const BulkResult r = MeasureBulkTx({}, [f](Testbed& tb) {
      DedicatedSlowPlan(*tb.stack(), f, 3'600'000 * kKhz).Apply(tb.machine());
    });
    if (base == 0.0) {
      base = r.goodput_gbps;
    }
    t.AddRow({GhzStr(f), Table::Num(r.goodput_gbps, 2), Table::Pct(r.goodput_gbps / base),
              Table::Num(r.avg_pkg_watts, 1)});
  }
  t.Print(std::cout, "Fig.2 — bulk TCP TX goodput vs. system-core frequency (app @3.6GHz)");
  WriteBenchCsv(t, argv0, "fig2_freq_sweep_bulk");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
