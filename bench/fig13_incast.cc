// Fig. 13 — N-to-1 TCP incast through the switch fabric vs. system-core
// frequency.
//
// N clients bulk-stream into one multiserver-stack SUT through a shared
// switch. Two regimes interact:
//   * the fabric: N synchronized senders oversubscribe the SUT-facing
//     egress port, whose small buffer tail-drops bursts — goodput is
//     capped at egress line rate while client RTT inflates with queueing
//     and recovery;
//   * the stack: once the system cores are slowed past the knee, the SUT
//     itself (driver/IP/TCP stages) becomes the bottleneck below what the
//     fabric delivers.
// Sweeping N at 3.6 GHz against 1.2 GHz system cores separates the two:
// at base clock the throughput knee is the fabric's egress port; with slow
// system cores the curve falls off earlier and RTTs grow — the stack, not
// the switch, is dropping the load.
//
// Expected shape: goodput rises with N to the egress cap at 3.6 GHz and to
// a lower, stack-bound plateau at 1.2 GHz; p99 RTT grows with N in both,
// dominated by egress queueing at base clock and by recovery (retransmits)
// when the stack is slow.
//
// Multi-lane note: --lanes N runs the same simulation partitioned across
// worker threads; results are bit-identical for any lane count (the
// lane_test equivalence suite pins this, including a golden for the small-N
// row this bench emits).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/fabric/incast.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

struct Fig13Row {
  int n_clients = 0;
  FreqKhz system_freq = 0;
  double goodput_gbps = 0.0;
  SimTime rtt_p50 = 0;
  SimTime rtt_p99 = 0;
  uint64_t retransmits = 0;
  uint64_t egress_drops = 0;
};

Fig13Row Measure(int n_clients, FreqKhz system_freq, int lanes) {
  TcpIncastOptions o;
  o.topo.n_clients = n_clients;
  o.topo.lanes = lanes;
  o.topo.seed = 42;
  o.topo.fabric = IncastFabricDefaults();
  o.topo.fabric.egress_queue_slots = 16;  // shallow buffer: visible incast
  o.system_freq = system_freq;
  o.burst_bytes = 128 * 1024;

  TcpIncastBed bed(o);
  bed.Start();
  // Warm-up covers jittered connects + slow start; measure a steady window.
  bed.RunFor(40 * kMillisecond);
  bed.window().Reset(bed.engine().Now());
  const uint64_t drops_before = bed.fabric().port_stats(0).egress_drops;
  const TcpStats before = bed.AggregateClientStats();
  const SimTime window = 160 * kMillisecond;
  bed.RunFor(window);

  Fig13Row row;
  row.n_clients = n_clients;
  row.system_freq = system_freq;
  row.goodput_gbps = static_cast<double>(bed.window().bytes()) * 8.0 /
                     (static_cast<double>(window) / kSecond) / 1e9;
  const LatencyHistogram rtt = bed.ClientRttHistogram();
  row.rtt_p50 = rtt.P50();
  row.rtt_p99 = rtt.P99();
  row.retransmits = bed.AggregateClientStats().retransmits - before.retransmits;
  row.egress_drops = bed.fabric().port_stats(0).egress_drops - drops_before;
  return row;
}

void Run(const char* argv0, int lanes) {
  Table t({"clients", "sys_ghz", "goodput_gbps", "rtt_p50_us", "rtt_p99_us", "retransmits",
           "egress_drops"});
  for (int n : {2, 4, 8, 12, 16, 24, 32}) {
    for (FreqKhz f : {3'600'000 * kKhz, 1'200'000 * kKhz}) {
      const Fig13Row r = Measure(n, f, lanes);
      t.AddRow({Table::Int(r.n_clients), GhzStr(r.system_freq), Table::Num(r.goodput_gbps, 2),
                Table::Num(static_cast<double>(r.rtt_p50) / kMicrosecond, 1),
                Table::Num(static_cast<double>(r.rtt_p99) / kMicrosecond, 1),
                Table::Int(static_cast<int64_t>(r.retransmits)),
                Table::Int(static_cast<int64_t>(r.egress_drops))});
    }
  }
  t.Print(std::cout, "Fig.13 — N-to-1 incast through the switch fabric (" +
                         std::to_string(lanes) + " lane" + (lanes == 1 ? "" : "s") + ")");
  WriteBenchCsv(t, argv0, "fig13_incast");
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) {
  int lanes = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lanes = std::atoi(argv[++i]);
    }
  }
  if (lanes < 1) {
    std::cerr << "--lanes must be >= 1\n";
    return 1;
  }
  newtos::Run(argv[0], lanes);
  return 0;
}
