// Fig. 3 — Per-stage core utilization across the Fig. 2 frequency sweep.
//
// Shows *which* server saturates first as the stack slows down: the TCP
// core carries the most cycles per packet, so its utilization hits 1.0 at
// the knee frequency, while the driver and IP cores still have headroom —
// the observation that motivates consolidating cheap stages onto one core
// (Fig. 6) and steering per-stage frequencies instead of one global setting.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  Table t({"stack_ghz", "goodput_gbps", "util_driver", "util_ip_pf", "util_tcp", "util_app"});
  for (FreqKhz f : StackFrequencySweep()) {
    const BulkResult r = MeasureBulkTx({}, [f](Testbed& tb) {
      DedicatedSlowPlan(*tb.stack(), f, 3'600'000 * kKhz).Apply(tb.machine());
    });
    t.AddRow({GhzStr(f), Table::Num(r.goodput_gbps, 2), Table::Pct(r.core_util[1]),
              Table::Pct(r.core_util[2]), Table::Pct(r.core_util[3]),
              Table::Pct(r.core_util[0])});
  }
  t.Print(std::cout, "Fig.3 — per-stage core utilization vs. system-core frequency");
  WriteBenchCsv(t, argv0, "fig3_stage_utilization");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
