// Fig. 12 — Ping RTT: the driver+IP slice of the pipeline under DVFS.
//
// ICMP echoes turn around at the SUT's IP server, so their RTT contains the
// wire, the NIC, the driver stage, and the IP stage — but no PF/TCP/app.
// Sweeping driver+IP frequency shows exactly how many microseconds each
// frequency bin adds to the lower pipeline, and the constant wire/NIC floor
// the stack can never get under.
//
// Expected shape: RTT floor ≈ 2×(DMA+propagation+serialization) ~ 15 us;
// per-stage processing adds ~1 us at 3.6 GHz, growing inversely with
// frequency; even at 0.6 GHz the lower pipeline only adds ~10 us.

#include <iostream>

#include "bench/common.h"
#include "src/metrics/table.h"
#include "src/workload/ping.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  Table t({"drv_ip_ghz", "rtt_p50_us", "rtt_p99_us", "answered"});
  for (FreqKhz f : StackFrequencySweep()) {
    Testbed tb;
    tb.machine().core(1)->SetFrequency(f);  // driver
    tb.machine().core(2)->SetFrequency(f);  // ip (+pf, unused by ping)

    PingClient::Params pp;
    pp.target = tb.sut_addr();
    pp.pings_per_sec = 20'000;
    PingClient ping(&tb.peer(), pp);
    ping.Start();

    tb.sim().RunFor(50 * kMillisecond);
    ping.rtt().Reset();
    tb.sim().RunFor(200 * kMillisecond);

    t.AddRow({GhzStr(f), Table::Num(static_cast<double>(ping.rtt().P50()) / kMicrosecond, 2),
              Table::Num(static_cast<double>(ping.rtt().P99()) / kMicrosecond, 2),
              Table::Int(static_cast<int64_t>(ping.received()))});
  }
  t.Print(std::cout, "Fig.12 — ICMP echo RTT vs. driver/IP core frequency");
  WriteBenchCsv(t, argv0, "fig12_ping_latency");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
