// runtime_vs_sim: the fig2 bulk-TCP workload in both execution backends.
//
// DES mode is the simulator (src/sim + src/os): modeled time, one thread,
// the Testbed the figure benches use. Live mode is src/runtime: each server
// role on a real OS thread over ThreadChannels, wall-clock time. The two
// must produce byte-identical application streams (equal FNV digests) — the
// `--check` mode asserts exactly that and is wired into ctest as the
// digest-equivalence gate — while their *timing* is expected to differ and
// is what this bench reports:
//
//   - wall seconds + throughput for each backend,
//   - per-message latency: the live stack's end-to-end app-push -> peer-pop
//     histogram (P50/P95/P99) next to the DES peer's simulated
//     inter-delivery gap (the model's per-message service interval — a
//     different view of per-message timing, labeled distinctly),
//   - a pinned-core sweep 1..host_cpus: with k cores the first k server
//     roles are pinned and the rest float (never aliased onto a taken
//     core), so the sweep shows what dedicating cores buys on this host,
//   - the SpscRing two-thread throughput, measured against an in-bench
//     replica of the pre-audit cursor layout (producer and consumer indices
//     packed into one cache line) — the before/after number for the
//     false-sharing fix, measured in the same binary with the same harness.
//
// host_cpus is recorded honestly (like BENCH_fabric.json): on a 1-core CI
// container the live stack timeslices six threads on one core and the
// before/after ring numbers sit within noise — cross-core effects need
// cross-core hardware. The JSON keeps the honest host count next to every
// wall number so readers can judge.
//
// Writes BENCH_runtime.json at the repo root.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <fstream>

#include "src/chan/spsc_ring.h"
#include "src/host/affinity.h"
#include "src/metrics/histogram.h"
#include "src/metrics/report.h"
#include "src/runtime/clock.h"
#include "src/runtime/fig2_ref.h"
#include "src/runtime/live_stack.h"
#include "src/sim/time.h"
#include "src/trace/chrome_trace.h"

namespace newtos {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

// --- Ring layout before/after -----------------------------------------------
//
// Two replicas of the SpscRing fast path that differ ONLY in cursor layout —
// the audit's before/after isolated from every other variable (the shipped
// SpscRing also carries NEWTOS_CHECKERS identity tokens in default builds,
// so it is measured separately rather than passed off as "after"):
//
//   packed   the pre-audit layout: head, cached_tail, tail, cached_head
//            contiguous in one cache line, so every release-store by one
//            side invalidates the line the other side's fast path reads
//   aligned  the shipped layout: each side's cursors grouped into its own
//            cache-line-aligned struct (what spsc_ring.h static_asserts)

template <bool kAligned>
class LayoutRing {
 public:
  explicit LayoutRing(size_t capacity) : mask_(capacity - 1), slots_(capacity) {}

  bool TryPush(uint64_t v) {
    const size_t head = prod_.head.load(std::memory_order_relaxed);
    if (head - prod_.cached_tail == slots_.size()) {
      prod_.cached_tail = cons_.tail.load(std::memory_order_acquire);
      if (head - prod_.cached_tail == slots_.size()) {
        return false;
      }
    }
    slots_[head & mask_] = v;
    prod_.head.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<uint64_t> TryPop() {
    const size_t tail = cons_.tail.load(std::memory_order_relaxed);
    if (tail == cons_.cached_head) {
      cons_.cached_head = prod_.head.load(std::memory_order_acquire);
      if (tail == cons_.cached_head) {
        return std::nullopt;
      }
    }
    uint64_t v = slots_[tail & mask_];
    cons_.tail.store(tail + 1, std::memory_order_release);
    return v;
  }

 private:
  struct Producer {
    std::atomic<size_t> head{0};
    size_t cached_tail = 0;
  };
  struct Consumer {
    std::atomic<size_t> tail{0};
    size_t cached_head = 0;
  };
  struct PackedCursors {
    Producer prod;
    Consumer cons;
  };
  struct AlignedCursors {
    alignas(kCacheLineBytes) Producer prod;
    alignas(kCacheLineBytes) Consumer cons;
  };
  using Cursors = std::conditional_t<kAligned, AlignedCursors, PackedCursors>;

  Cursors cursors_;
  Producer& prod_ = cursors_.prod;
  Consumer& cons_ = cursors_.cons;
  const size_t mask_;
  std::vector<uint64_t> slots_;
};

template <typename Ring>
double MeasureRingThroughput(uint64_t messages) {
  Ring ring(1024);
  const uint64_t t0 = MonotonicNowNs();
  // Yield on full/empty: a no-op when both sides have their own core, but on
  // an oversubscribed host it hands the CPU over instead of burning the rest
  // of the timeslice spinning against a peer that cannot run.
  std::thread producer([&ring, messages] {
    for (uint64_t i = 0; i < messages; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t received = 0;
  while (received < messages) {
    if (ring.TryPop()) {
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  const double secs = static_cast<double>(MonotonicNowNs() - t0) * 1e-9;
  return static_cast<double>(messages) / secs;
}

// --- fig2 in both backends --------------------------------------------------

struct LivePoint {
  int cores = 0;     // pin budget for this sweep point
  int pinned = 0;    // threads that actually got a core
  double wall_seconds = 0.0;
  uint64_t parks = 0;
  LatencyHistogram latency;
};

LivePoint MeasureLive(uint64_t bytes, int cores, int reps, uint64_t* digest) {
  LivePoint best;
  best.cores = cores;
  for (int rep = 0; rep < reps; ++rep) {
    LiveStackConfig cfg;
    cfg.transfer_bytes = bytes;
    cfg.pin_cpu_limit = cores;
    const LiveStackResult r = RunLiveFig2(cfg);
    if (!r.completed) {
      std::fprintf(stderr, "runtime_vs_sim: live run (%d cores) hit the deadline\n", cores);
      continue;
    }
    *digest = r.digest;
    if (best.wall_seconds == 0.0 || r.wall_seconds < best.wall_seconds) {
      best.wall_seconds = r.wall_seconds;
      best.latency = r.latency;
      best.parks = 0;
      best.pinned = 0;
      for (const ThreadStats& t : r.threads) {
        best.parks += t.parks;
        best.pinned += t.pinned ? 1 : 0;
      }
    }
  }
  return best;
}

std::string LiveSweepJson(const std::vector<LivePoint>& sweep, uint64_t bytes) {
  std::string json = "[";
  char buf[256];
  for (size_t i = 0; i < sweep.size(); ++i) {
    const LivePoint& p = sweep[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"cores\": %d, \"threads_pinned\": %d, \"wall_seconds\": %.6f, "
                  "\"mbytes_per_sec\": %.1f, \"latency_p50_us\": %.2f, "
                  "\"latency_p95_us\": %.2f, \"latency_p99_us\": %.2f, \"parks\": %llu}",
                  i == 0 ? "" : ", ", p.cores, p.pinned, p.wall_seconds,
                  static_cast<double>(bytes) / p.wall_seconds / 1e6,
                  ToSeconds(p.latency.P50()) * 1e6, ToSeconds(p.latency.P95()) * 1e6,
                  ToSeconds(p.latency.P99()) * 1e6,
                  static_cast<unsigned long long>(p.parks));
    json += buf;
  }
  json += "]";
  return json;
}

// --check: the CI digest-equivalence gate. One DES run (validated loss-free
// via the retransmit tripwire) against one live run of each topology; any
// byte-stream divergence or channel-protocol violation fails the gate.
int RunCheck(uint64_t bytes) {
  const Fig2DesResult des = RunFig2Des(bytes);
  if (!des.completed || des.retransmits != 0) {
    std::fprintf(stderr, "FAIL: DES reference invalid (completed=%d retransmits=%llu)\n",
                 des.completed, static_cast<unsigned long long>(des.retransmits));
    return 1;
  }
  for (const bool mini : {false, true}) {
    LiveStackConfig cfg;
    cfg.transfer_bytes = bytes;
    cfg.mini = mini;
    const LiveStackResult live = RunLiveFig2(cfg);
    const char* topo = mini ? "mini" : "full";
    if (!live.completed || !live.conservation_ok) {
      std::fprintf(stderr, "FAIL: %s live run (completed=%d conservation=%d)\n", topo,
                   live.completed, live.conservation_ok);
      return 1;
    }
    if (live.digest != des.digest || live.chunks != des.chunks ||
        live.delivered != des.delivered) {
      std::fprintf(stderr,
                   "FAIL: %s stream diverged from DES — digest %016llx vs %016llx, "
                   "chunks %llu vs %llu, bytes %llu vs %llu\n",
                   topo, static_cast<unsigned long long>(live.digest),
                   static_cast<unsigned long long>(des.digest),
                   static_cast<unsigned long long>(live.chunks),
                   static_cast<unsigned long long>(des.chunks),
                   static_cast<unsigned long long>(live.delivered),
                   static_cast<unsigned long long>(des.delivered));
      return 1;
    }
    if (live.payload_errors != 0 || live.TotalImposters() != 0) {
      std::fprintf(stderr, "FAIL: %s live run payload_errors=%llu imposters=%llu\n", topo,
                   static_cast<unsigned long long>(live.payload_errors),
                   static_cast<unsigned long long>(live.TotalImposters()));
      return 1;
    }
  }
  std::printf("OK: DES and live backends delivered byte-identical streams "
              "(digest %016llx, %llu chunks, %llu bytes) in full and mini topologies\n",
              static_cast<unsigned long long>(des.digest),
              static_cast<unsigned long long>(des.chunks),
              static_cast<unsigned long long>(des.delivered));
  return 0;
}

// --trace: one traced live run, per-server recorders merged into a single
// Perfetto-loadable timeline (six thread tracks, async data-path arrows).
int RunTrace(uint64_t bytes, const std::string& path) {
  LiveStackConfig cfg;
  cfg.transfer_bytes = bytes;
  cfg.enable_trace = true;
  const LiveStackResult r = RunLiveFig2(cfg);
  if (!r.completed) {
    std::fprintf(stderr, "runtime_vs_sim: traced live run hit the deadline\n");
    return 1;
  }
  std::vector<const TraceRecorder*> recs;
  for (const auto& rec : r.recorders) {
    recs.push_back(rec.get());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open() || !WriteChromeTraceMerged(recs, out) || !out.flush()) {
    std::fprintf(stderr, "runtime_vs_sim: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu segments across %zu server tracks)\n", path.c_str(),
              static_cast<unsigned long long>(r.chunks), recs.size());
  return 0;
}

int Run(int argc, char** argv) {
  uint64_t bytes = 1 << 20;
  int reps = 3;
  bool check = false;
  bool trace = false;
  std::string out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_runtime.json";
  std::string trace_out = "trace_live_fig2.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--bytes") == 0 && i + 1 < argc) {
      bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check] [--trace] [--bytes N] [--reps N] [--out PATH] "
                   "[--trace-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (check) {
    return RunCheck(bytes);
  }
  if (trace) {
    return RunTrace(bytes, trace_out);
  }

  const int host_cpus = AvailableCpuCount();
  std::printf("runtime_vs_sim — fig2 bulk TCP, %llu bytes, best of %d, host_cpus=%d\n",
              static_cast<unsigned long long>(bytes), reps, host_cpus);

  // Ring layout before/after (replicas differing only in cursor layout),
  // plus the shipped SpscRing as built (checkers included when enabled).
  constexpr uint64_t kRingMsgs = 20'000'000;
  const double ring_before = MeasureRingThroughput<LayoutRing<false>>(kRingMsgs);
  const double ring_after = MeasureRingThroughput<LayoutRing<true>>(kRingMsgs);
  const double ring_shipped = MeasureRingThroughput<SpscRing<uint64_t>>(kRingMsgs);
  std::printf("  ring 2-thread: packed cursors %.1fM msgs/s, aligned %.1fM msgs/s "
              "(%+.1f%%), shipped SpscRing %.1fM msgs/s\n",
              ring_before / 1e6, ring_after / 1e6,
              (ring_after - ring_before) / ring_before * 100.0, ring_shipped / 1e6);

  // DES backend: wall-clock around the simulator run, plus the model's view.
  Fig2DesResult des;
  double des_wall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t t0 = MonotonicNowNs();
    Fig2DesResult r = RunFig2Des(bytes);
    const double wall = static_cast<double>(MonotonicNowNs() - t0) * 1e-9;
    if (!r.completed) {
      std::fprintf(stderr, "runtime_vs_sim: DES run did not complete\n");
      return 1;
    }
    if (des_wall == 0.0 || wall < des_wall) {
      des_wall = wall;
      des = std::move(r);
    }
  }
  std::printf("  DES : %8.4f s wall (%0.4f s simulated, %llu events) — "
              "delivery gap p50 %.2f us\n",
              des_wall, des.sim_seconds,
              static_cast<unsigned long long>(des.sim_events),
              ToSeconds(des.delivery_gap.P50()) * 1e6);

  // Live backend: pin budget sweep 1..host_cpus.
  std::vector<LivePoint> sweep;
  uint64_t live_digest = 0;
  for (int cores = 1; cores <= host_cpus; ++cores) {
    LivePoint p = MeasureLive(bytes, cores, reps, &live_digest);
    if (p.wall_seconds == 0.0) {
      return 1;
    }
    std::printf("  live: %8.4f s wall @ %d core%s (%d/6 pinned) — e2e p50 %.2f us "
                "p99 %.2f us, %llu parks\n",
                p.wall_seconds, cores, cores == 1 ? "" : "s", p.pinned,
                ToSeconds(p.latency.P50()) * 1e6, ToSeconds(p.latency.P99()) * 1e6,
                static_cast<unsigned long long>(p.parks));
    sweep.push_back(std::move(p));
  }
  const LivePoint& top = sweep.back();

  if (live_digest != des.digest) {
    std::fprintf(stderr, "FAIL: live digest %016llx != DES digest %016llx\n",
                 static_cast<unsigned long long>(live_digest),
                 static_cast<unsigned long long>(des.digest));
    return 1;
  }

  JsonWriter w;
  w.Str("bench", "runtime_vs_sim")
      .Str("scenario", "fig2_bulk_tcp")
      .Int("host_cpus", host_cpus)
      .Uint("transfer_bytes", bytes)
      .Int("reps", reps)
      .Bool("digests_identical", live_digest == des.digest)
      .Uint("digest", des.digest)
      .Uint("chunks", des.chunks)
      .Num("des_wall_seconds", des_wall, 6)
      .Num("des_sim_seconds", des.sim_seconds, 6)
      .Uint("des_events", des.sim_events)
      .Num("des_delivery_gap_p50_us", ToSeconds(des.delivery_gap.P50()) * 1e6, 2)
      .Num("des_delivery_gap_p99_us", ToSeconds(des.delivery_gap.P99()) * 1e6, 2)
      .Raw("live_sweep", LiveSweepJson(sweep, bytes))
      .Num("live_wall_seconds_top", top.wall_seconds, 6)
      .Num("live_latency_p50_us_top", ToSeconds(top.latency.P50()) * 1e6, 2)
      .Num("live_latency_p99_us_top", ToSeconds(top.latency.P99()) * 1e6, 2)
      .Num("ring_packed_msgs_per_sec", ring_before, 0)
      .Num("ring_aligned_msgs_per_sec", ring_after, 0)
      .Num("ring_aligned_gain_pct", (ring_after - ring_before) / ring_before * 100.0, 2)
      .Num("ring_shipped_msgs_per_sec", ring_shipped, 0);
  if (!WriteFileChecked(out, w.Finish())) {
    std::fprintf(stderr, "runtime_vs_sim: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) { return newtos::Run(argc, argv); }
