#include "bench/common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

namespace newtos {

BulkResult MeasureBulkTx(const TestbedOptions& options,
                         const std::function<void(Testbed&)>& configure, SimTime warmup,
                         SimTime window, int connections) {
  Testbed tb(options);
  if (configure) {
    configure(tb);
  }

  SocketApi* api = options.monolithic ? static_cast<SocketApi*>(tb.mono()->CreateApp())
                                      : tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.connections = connections;
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(warmup);
  tb.machine().ResetStatsAt(tb.sim().Now());
  sink.window().Reset(tb.sim().Now());
  const SimTime t0 = tb.sim().Now();
  tb.sim().RunFor(window);
  const SimTime now = tb.sim().Now();

  BulkResult r;
  r.goodput_gbps = sink.window().GbitsPerSec(now);
  r.bytes = sink.window().bytes();
  r.joules = tb.machine().PackageJoulesAt(now);
  r.avg_pkg_watts = r.joules / ToSeconds(window);
  for (int i = 0; i < tb.machine().num_cores(); ++i) {
    r.core_util.push_back(tb.machine().core(i)->UtilizationSince(t0, now));
  }
  return r;
}

HttpResult MeasureHttp(const TestbedOptions& options, const HttpParams& params,
                       const std::function<void(Testbed&)>& configure, SimTime warmup,
                       SimTime window) {
  Testbed tb(options);
  if (configure) {
    configure(tb);
  }

  SocketApi* api = options.monolithic ? static_cast<SocketApi*>(tb.mono()->CreateApp())
                                      : tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpServerApp server(api, params);
  server.Start();
  tb.sim().RunFor(kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), params);
  client.Start();

  tb.sim().RunFor(warmup);
  tb.machine().ResetStatsAt(tb.sim().Now());
  client.ResetWindow(tb.sim().Now());
  tb.sim().RunFor(window);
  const SimTime now = tb.sim().Now();

  HttpResult r;
  r.responses = client.window().events();
  r.responses_per_sec = client.window().EventsPerSec(now);
  r.p50 = client.latency().P50();
  r.p99 = client.latency().P99();
  r.joules = tb.machine().PackageJoulesAt(now);
  r.avg_pkg_watts = r.joules / ToSeconds(window);
  const int app_core = options.monolithic ? options.monolithic_core : 0;
  r.app_freq = tb.machine().core(app_core)->frequency();
  return r;
}

std::vector<FreqKhz> StackFrequencySweep() {
  return {3'600'000 * kKhz, 3'200'000 * kKhz, 2'800'000 * kKhz, 2'400'000 * kKhz,
          2'000'000 * kKhz, 1'600'000 * kKhz, 1'200'000 * kKhz, 800'000 * kKhz,
          600'000 * kKhz};
}

std::string GhzStr(FreqKhz f) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f", ToGhz(f));
  return buf;
}

std::string CsvPath(const char* argv0, const std::string& name) {
  // CSVs land in a `results/` directory next to the binaries, so that
  // running every file in the bench directory never trips over data files.
  std::string path(argv0);
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string results = dir + "/results";
  std::filesystem::create_directories(results);
  return results + "/" + name + ".csv";
}

bool WriteBenchCsv(const Table& t, const char* argv0, const std::string& name) {
  const std::string path = CsvPath(argv0, name);
  if (!t.WriteCsvFile(path)) {
    std::fprintf(stderr, "warning: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string ReadJsonSection(const std::string& path, const std::string& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return "";
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const std::string needle = "\"" + key + "\":";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  pos += needle.size();
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n')) {
    ++pos;
  }
  if (pos >= text.size() || (text[pos] != '{' && text[pos] != '[')) {
    return "";
  }
  // Bracket-match to the end of the value. JsonWriter never emits brackets
  // inside strings in these reports, but skip quoted spans anyway.
  const char open = text[pos];
  const char close = open == '{' ? '}' : ']';
  int depth = 0;
  bool in_string = false;
  for (size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == open) {
      ++depth;
    } else if (c == close) {
      if (--depth == 0) {
        return text.substr(pos, i - pos + 1);
      }
    }
  }
  return "";
}

}  // namespace newtos
