// Fig. 5 — Request/response latency vs. system-core frequency.
//
// Light closed-loop HTTP load (8 connections, 8 KiB static responses, near
// zero app compute): latency is dominated by wire and per-stage processing
// times, so slowing the stack from 3.6 to ~1.2 GHz adds only microseconds
// to the median. Only near the knee, where queues form, does p99 take off.
//
// Expected shape: p50 rises gently (tens of microseconds) across the sweep;
// p99 explodes once the offered load approaches the slowed stack's capacity.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  HttpParams hp;
  hp.concurrency = 8;
  hp.response_bytes = 8 * 1024;
  hp.server_compute_cycles = 2'000;  // static file serving

  Table t({"stack_ghz", "rps", "p50_us", "p99_us"});
  for (FreqKhz f : StackFrequencySweep()) {
    const HttpResult r = MeasureHttp({}, hp, [f](Testbed& tb) {
      DedicatedSlowPlan(*tb.stack(), f, 3'600'000 * kKhz).Apply(tb.machine());
    });
    t.AddRow({GhzStr(f), Table::Num(r.responses_per_sec / 1e3, 1) + "k",
              Table::Num(static_cast<double>(r.p50) / kMicrosecond, 1),
              Table::Num(static_cast<double>(r.p99) / kMicrosecond, 1)});
  }
  t.Print(std::cout, "Fig.5 — HTTP latency vs. system-core frequency (8 conns, 8 KiB)");
  WriteBenchCsv(t, argv0, "fig5_latency");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
