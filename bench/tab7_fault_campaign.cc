// Tab. 7 — Resilience matrix: fault taxonomy x stack frequency.
//
// The CampaignRunner sweeps every fault class (channel drop/duplicate/delay/
// corrupt, wire bit flips, server crash/hang/livelock) against representative
// stack stages, at full-speed (3.6 GHz) and slow (1.2 GHz) stack cores, with
// the watchdog + microreboot recovery plane armed. Each cell reports whether
// the fault was injected, detected, and recovered within the bound, plus the
// stream-integrity and progress verdicts.
//
// Expected shape: every cell passes at both frequencies. Detection latency is
// frequency-independent (the watchdog lives on the fast app core); only the
// reboot tail stretches at 1.2 GHz, and it stays well inside the 100 ms
// recovery bound — the paper's argument that slow cores do not compromise
// recoverability.

#include <iostream>

#include "bench/common.h"
#include "src/fault/campaign.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  CampaignRunner runner;
  runner.Run();

  Table t = runner.ToTable();
  t.Print(std::cout, "Tab.7 — fault-injection campaign, resilience by fault class and stack frequency");
  WriteBenchCsv(t, argv0, "tab7_fault_campaign");

  int pass = 0;
  for (const CampaignCell& c : runner.cells()) {
    pass += c.pass ? 1 : 0;
  }
  std::cout << "\n" << pass << "/" << runner.cells().size() << " cells pass\n";
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
