// Fig. 4 — "Slower is faster": CPU-bound web serving under a power budget.
//
// The headline experiment. The machine has a fixed package budget (42 W).
// A dynamic-content web server (60 kcycles per request) is CPU-bound on the
// application core. Sweeping the system cores' frequency with the turbo
// governor ON converts every watt the stack does not draw into application
// boost — so running the OS *slower* serves requests *faster*, up to the
// point where the stack itself becomes the bottleneck. With the governor
// OFF the app core is pinned at base clock and slowing the stack can only
// ever hurt.
//
// Expected shape: the steered curve rises as the stack slows (the app core
// climbs 3.6 -> 4.4 GHz in turbo bins), peaks at an intermediate stack
// frequency, then collapses when the slowed stack saturates — an interior
// maximum, the literal "slower is faster". The no-steering baseline keeps
// the stack at base clock and is a flat reference line.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/core/turbo.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

constexpr double kBudgetWatts = 38.0;

HttpParams Workload() {
  HttpParams hp;
  hp.concurrency = 32;
  hp.response_bytes = 8 * 1024;
  hp.server_compute_cycles = 60'000;  // dynamic content: CPU-bound app
  return hp;
}

void Configure(Testbed& tb, FreqKhz stack_freq) {
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());
  // Park the spare core; it hosts nothing in this experiment.
  tb.machine().core(4)->SetFrequency(600'000 * kKhz);
  TurboGovernor gov(&tb.machine(), kBudgetWatts);
  gov.Apply({{tb.machine().core(1), stack_freq},
             {tb.machine().core(2), stack_freq},
             {tb.machine().core(3), stack_freq}},
            {tb.machine().core(0)});
}

void Run(const char* argv0) {
  TestbedOptions opt;
  opt.machine.chip_power_budget_watts = kBudgetWatts;

  // Baseline: no SIF steering — the stack runs at base clock, the turbo
  // governor hands the app whatever fits next to three full-speed cores.
  const HttpResult base =
      MeasureHttp(opt, Workload(), [](Testbed& tb) { Configure(tb, 3'600'000 * kKhz); });

  Table t({"stack_ghz", "app_ghz", "rps", "vs_no_steering", "watts"});
  for (FreqKhz f : StackFrequencySweep()) {
    const HttpResult r = MeasureHttp(opt, Workload(), [f](Testbed& tb) { Configure(tb, f); });
    t.AddRow({GhzStr(f), GhzStr(r.app_freq), Table::Num(r.responses_per_sec / 1e3, 1) + "k",
              Table::Pct(r.responses_per_sec / base.responses_per_sec - 1.0),
              Table::Num(r.avg_pkg_watts, 1)});
  }
  t.Print(std::cout,
          "Fig.4 — slower-is-faster: dynamic-content req/s vs. stack frequency (38 W budget)");
  std::cout << "  (no-steering baseline: stack @3.6, app @" << GhzStr(base.app_freq) << ", "
            << base.responses_per_sec / 1e3 << "k req/s)\n";
  WriteBenchCsv(t, argv0, "fig4_sif_turbo");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
