// Fig. 7 — Polling vs. queue-aware halting across offered load.
//
// NewtOS's dedicated cores poll their channels, burning full dynamic power
// whether or not packets arrive. The alternative halts an idle core after a
// 5 us grace period and pays a wake-up latency on the next message. A UDP
// flood sweeps offered load from 1k to 500k packets/s; we report delivery
// rate, package power, and energy per packet for both policies.
//
// Expected shape: at low load halting cuts package power dramatically (the
// stack cores sleep between packets) at equal delivery; as load rises the
// cores never get to sleep and the two policies converge in both power and
// throughput.

#include <iostream>

#include "bench/common.h"
#include "src/core/poll_policy.h"
#include "src/metrics/table.h"
#include "src/workload/udp_flood.h"

namespace newtos {
namespace {

struct FloodResult {
  double delivered_pps = 0.0;
  double watts = 0.0;
};

FloodResult MeasureFlood(double pps, PollMode mode) {
  Testbed tb;
  PollPolicy policy(&tb.sim(), mode, 5 * kMicrosecond);
  policy.Manage(tb.machine().core(1), {tb.stack()->driver()});
  policy.Manage(tb.machine().core(2), {tb.stack()->ip(), tb.stack()->pf()});
  policy.Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});
  tb.machine().core(0)->SetIdleActivity(CoreActivity::kHalted);  // app idle here
  tb.machine().core(4)->SetIdleActivity(CoreActivity::kHalted);

  UdpSutSink sink;
  sink.BindDirect(tb.stack()->udp(), kUdpFloodPort);
  tb.sim().RunFor(kMillisecond);
  UdpPeerFlood::Params fp;
  fp.sut = tb.sut_addr();
  fp.packets_per_sec = pps;
  fp.poisson = true;
  UdpPeerFlood flood(&tb.peer(), fp);
  flood.Start();

  tb.sim().RunFor(50 * kMillisecond);
  tb.machine().ResetStatsAt(tb.sim().Now());
  sink.window().Reset(tb.sim().Now());
  const SimTime window = 200 * kMillisecond;
  tb.sim().RunFor(window);

  FloodResult r;
  r.delivered_pps = sink.window().EventsPerSec(tb.sim().Now());
  r.watts = tb.machine().PackageJoulesAt(tb.sim().Now()) / ToSeconds(window);
  return r;
}

void Run(const char* argv0) {
  Table t({"offered_pps", "poll_pps", "halt_pps", "poll_watts", "halt_watts", "savings"});
  for (double pps : {1e3, 5e3, 20e3, 50e3, 100e3, 200e3, 500e3}) {
    const FloodResult poll = MeasureFlood(pps, PollMode::kPollAlways);
    const FloodResult halt = MeasureFlood(pps, PollMode::kHaltWhenIdle);
    t.AddRow({Table::Num(pps / 1e3, 0) + "k", Table::Num(poll.delivered_pps / 1e3, 1) + "k",
              Table::Num(halt.delivered_pps / 1e3, 1) + "k", Table::Num(poll.watts, 1),
              Table::Num(halt.watts, 1), Table::Pct(1.0 - halt.watts / poll.watts)});
  }
  t.Print(std::cout, "Fig.7 — poll-always vs. halt-when-idle across offered UDP load");
  WriteBenchCsv(t, argv0, "fig7_poll_vs_halt");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
