// Fig. 8 — Microreboot under load: does a slower core hurt recovery?
//
// Mid-transfer, one stack server is crashed and rebooted (detection 200 us,
// reboot cost charged to the server's own core). We report recovery time
// and the goodput over the second containing the incident, for each server,
// at stack frequencies 3.6 / 1.6 / 0.8 GHz; the TCP server is measured both
// cold (connections lost) and checkpointed (connections survive).
//
// Expected shape: recovery time grows sub-linearly as the core slows
// (detection latency is frequency-independent); the goodput dip is a few
// hundred milliseconds of retransmission for stateless servers and for the
// checkpointed TCP server, while a cold TCP reboot kills the transfer.

#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"
#include "src/os/microreboot.h"

namespace newtos {
namespace {

struct CrashOutcome {
  SimTime recovery = 0;
  double dip_gbps = 0.0;     // goodput over the incident second
  double steady_gbps = 0.0;  // goodput before the crash
  bool transfer_alive = false;
};

CrashOutcome CrashServer(const std::string& which, FreqKhz stack_freq, bool checkpoint) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());
  tb.stack()->tcp()->set_checkpointing(checkpoint);

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(200 * kMillisecond);

  CrashOutcome out;
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);
  out.steady_gbps = sink.window().GbitsPerSec(tb.sim().Now());

  Server* victim = nullptr;
  Cycles reboot = 0;
  const StackConfig& cfg = tb.stack()->config();
  if (which == "driver") {
    victim = tb.stack()->driver();
    reboot = cfg.driver.restart_cycles;
  } else if (which == "ip") {
    victim = tb.stack()->ip();
    reboot = cfg.ip.restart_cycles;
  } else {
    victim = tb.stack()->tcp();
    reboot = cfg.tcp.restart_cycles;
  }

  MicrorebootManager mgr(&tb.sim());
  mgr.InjectCrash(victim, tb.sim().Now() + 10 * kMillisecond, reboot);

  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(kSecond);  // the incident second
  out.dip_gbps = sink.window().GbitsPerSec(tb.sim().Now());
  out.recovery = mgr.incidents()[0].recovered_at != 0 ? mgr.incidents()[0].RecoveryTime() : -1;

  // Is data still moving afterwards?
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);
  out.transfer_alive = sink.window().bytes() > 0;
  return out;
}

void Run(const char* argv0) {
  Table t({"victim", "stack_ghz", "recovery_ms", "incident_gbps", "steady_gbps", "alive_after"});
  const std::vector<FreqKhz> freqs{3'600'000 * kKhz, 1'600'000 * kKhz, 800'000 * kKhz};
  for (const std::string& which : {"driver", "ip", "tcp-cold", "tcp-ckpt"}) {
    for (FreqKhz f : freqs) {
      const bool ckpt = which == "tcp-ckpt";
      const std::string server = which.substr(0, 3) == "tcp" ? "tcp" : which;
      const CrashOutcome o = CrashServer(server, f, ckpt);
      t.AddRow({which, GhzStr(f),
                Table::Num(static_cast<double>(o.recovery) / kMillisecond, 2),
                Table::Num(o.dip_gbps, 2), Table::Num(o.steady_gbps, 2),
                o.transfer_alive ? "yes" : "no"});
    }
  }
  t.Print(std::cout, "Fig.8 — microreboot during bulk transfer, by victim and stack frequency");
  WriteBenchCsv(t, argv0, "fig8_microreboot");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
