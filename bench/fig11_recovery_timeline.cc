// Fig. 11 — Recovery timeline: goodput per 10 ms bucket around a crash.
//
// The time-resolved version of Fig. 8 (the classic "dip and recover" plot).
// A bulk transfer runs; at t=100 ms into the plotted window the IP server is
// crashed, and at t=300 ms the (checkpointed) TCP server is. Each row is a
// 10 ms bucket of delivered goodput; an ASCII bar makes the dips visible on
// the console, and the CSV holds the series for plotting.
//
// Expected shape: steady line rate; a short dip to zero lasting detection +
// reboot (+ one RTO for retransmission to kick back in) per incident;
// recovery back to the pre-crash level with no long-term loss.

#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/metrics/table.h"
#include "src/metrics/timeseries.h"
#include "src/os/microreboot.h"

namespace newtos {
namespace {

void Run(const char* argv0) {
  Testbed tb;
  tb.stack()->tcp()->set_checkpointing(true);

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(200 * kMillisecond);  // warm up

  // Per-bucket goodput: sample the byte counter delta every 10 ms.
  uint64_t last_bytes = sink.total_bytes();
  TimeSeries series(&tb.sim(), 10 * kMillisecond, [&] {
    const uint64_t now_bytes = sink.total_bytes();
    const double gbps = static_cast<double>(now_bytes - last_bytes) * 8.0 / 0.010 / 1e9;
    last_bytes = now_bytes;
    return gbps;
  });
  const SimTime t0 = tb.sim().Now();
  series.Start();

  MicrorebootManager mgr(&tb.sim());
  const StackConfig& cfg = tb.stack()->config();
  mgr.InjectCrash(tb.stack()->ip(), t0 + 100 * kMillisecond, cfg.ip.restart_cycles);
  mgr.InjectCrash(tb.stack()->tcp(), t0 + 300 * kMillisecond, cfg.tcp.restart_cycles);

  tb.sim().RunFor(500 * kMillisecond);
  series.Stop();

  Table t({"t_ms", "gbps", "", "event"});
  const double max = series.Max();
  for (const TimeSeries::Point& p : series.points()) {
    const SimTime rel = p.at - t0;
    std::string bar(static_cast<size_t>(max > 0 ? 40.0 * p.value / max : 0.0), '#');
    std::string event;
    if (rel == 110 * kMillisecond) {
      event = "<- ip crashed at 100ms";
    } else if (rel == 310 * kMillisecond) {
      event = "<- tcp crashed at 300ms (checkpointed)";
    }
    t.AddRow({Table::Int(rel / kMillisecond), Table::Num(p.value, 2), bar, event});
  }
  t.Print(std::cout, "Fig.11 — goodput per 10 ms bucket across two microreboots");
  WriteBenchCsv(t, argv0, "fig11_recovery_timeline");

  std::cout << "incidents:\n";
  for (const auto& inc : mgr.incidents()) {
    std::cout << "  " << inc.server << ": recovery "
              << FormatTime(inc.RecoveryTime()) << "\n";
  }
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
