// Tab. 1 — Energy per gigabit by configuration, at matched throughput.
//
// The efficiency claim: a reliable multiserver stack need not be an energy
// hog if its cores are slowed (and, even better, halted when idle). Bulk
// TCP at whatever each configuration sustains; we report goodput, package
// power, and J/Gbit — the figure of merit the paper's energy argument uses.
//
// Expected shape: dedicated-fast burns the most; slowing the stack cores
// cuts J/Gbit substantially at (near-)equal goodput; adding halt-when-idle
// cuts the app/spare-core waste too; consolidation is the most frugal
// multiserver option at line rate.

#include <iostream>

#include "bench/common.h"
#include "src/core/poll_policy.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void AddRow(Table& t, const std::string& name, const BulkResult& r) {
  t.AddRow({name, Table::Num(r.goodput_gbps, 2), Table::Num(r.avg_pkg_watts, 1),
            Table::Num(r.goodput_gbps > 0 ? r.avg_pkg_watts / r.goodput_gbps : 0.0, 2)});
}

void Run(const char* argv0) {
  Table t({"configuration", "goodput_gbps", "pkg_watts", "J_per_gbit"});

  AddRow(t, "dedicated @3.6, poll", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
         }));
  AddRow(t, "dedicated @2.4, poll", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedSlowPlan(*tb.stack(), 2'400'000 * kKhz, 3'600'000 * kKhz)
               .Apply(tb.machine());
         }));
  AddRow(t, "dedicated @2.4, halt-idle", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedSlowPlan(*tb.stack(), 2'400'000 * kKhz, 3'600'000 * kKhz)
               .Apply(tb.machine());
           PollPolicy* policy =
               tb.Keep(std::make_shared<PollPolicy>(&tb.sim(), PollMode::kHaltWhenIdle));
           policy->Manage(tb.machine().core(1), {tb.stack()->driver()});
           policy->Manage(tb.machine().core(2), {tb.stack()->ip(), tb.stack()->pf()});
           policy->Manage(tb.machine().core(3), {tb.stack()->tcp(), tb.stack()->udp()});
           tb.machine().core(4)->SetIdleActivity(CoreActivity::kHalted);
         }));
  AddRow(t, "consolidated @3.2", MeasureBulkTx({}, [](Testbed& tb) {
           ConsolidatedPlan(*tb.stack(), 1, 3'200'000 * kKhz, 3'600'000 * kKhz)
               .Apply(tb.machine());
           tb.machine().core(2)->SetFrequency(600'000 * kKhz);
           tb.machine().core(3)->SetFrequency(600'000 * kKhz);
           tb.machine().core(2)->SetIdleActivity(CoreActivity::kHalted);
           tb.machine().core(3)->SetIdleActivity(CoreActivity::kHalted);
           tb.machine().core(4)->SetIdleActivity(CoreActivity::kHalted);
         }));
  {
    TestbedOptions mono;
    mono.monolithic = true;
    AddRow(t, "monolithic @3.6", MeasureBulkTx(mono, [](Testbed& tb) {
             for (int i = 1; i < tb.machine().num_cores(); ++i) {
               tb.machine().core(i)->SetFrequency(600'000 * kKhz);
               tb.machine().core(i)->SetIdleActivity(CoreActivity::kHalted);
             }
           }));
  }

  t.Print(std::cout, "Tab.1 — energy per gigabit by configuration (bulk TCP TX)");
  WriteBenchCsv(t, argv0, "tab1_energy");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
