// Lossy-WAN sweep over the scenario DSL: loss rate × RTT grid.
//
// Each grid cell is a generated .nsc script (the same surface the checked-in
// scenarios/wan/ family uses) run through ScenarioRunner with tracing forced
// on, so the per-packet latency percentiles come from the same async-hop
// decomposition the newtos_scenario --decomp tool reports. Per cell:
//
//   goodput      application bytes delivered over the measurement window
//   p50/p95/p99  end-to-end per-packet pipeline latency (LatencyDecomposer
//                episodes over the trace ring — late-window steady state once
//                the ring wraps)
//   retransmits / link_loss_drops  the TCP cost of the configured loss
//
// Results land in BENCH_scenario.json at the repo root. host_cpus is
// recorded honestly so a number produced on a loaded 1-core CI box is never
// mistaken for a workstation run. Wall-clock insensitive in its metrics (all
// simulated time), but a full grid takes tens of seconds — run manually, not
// from ctest.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/metrics/report.h"
#include "src/scenario/parser.h"
#include "src/scenario/runner.h"
#include "src/trace/latency_decomp.h"

namespace newtos::scenario {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

struct Cell {
  double loss = 0.0;
  SimTime rtt = 0;
  ScenarioOutcome outcome;
  SimTime p50 = 0;
  SimTime p95 = 0;
  SimTime p99 = 0;
  uint64_t episodes = 0;
};

std::string CellScript(double loss, SimTime rtt, SimTime run_for) {
  // The generated text is the same dialect as scenarios/wan/*.nsc — the
  // bench is a consumer of the DSL, not a parallel code path into the
  // engine, so any lowering bug shows up here too.
  std::string s;
  s += "scenario wan_sweep_cell\n";
  s += "seed 7\n";
  s += "freq 3.6GHz\n";
  s += "warmup 60ms\n";
  s += "run_for " + std::to_string(run_for / kMillisecond) + "ms\n";
  s += "burst 4MiB\n";
  s += "link rtt " + std::to_string(rtt / kMillisecond) + "ms\n";
  if (loss > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "link loss %g seed 42\n", loss);
    s += buf;
  }
  return s;
}

Cell RunCell(double loss, SimTime rtt, SimTime run_for) {
  Script script;
  ParseError err;
  if (!ParseScript(CellScript(loss, rtt, run_for), "<wan_sweep>", &script, &err)) {
    std::fprintf(stderr, "wan_sweep: generated script rejected:\n%s\n", err.Format().c_str());
    std::exit(1);
  }

  Cell cell;
  cell.loss = loss;
  cell.rtt = rtt;
  LatencyDecomposer decomp;
  RunnerOptions ro;
  ro.force_trace = true;
  ro.on_trace = [&decomp](const TraceRecorder& rec) { decomp.Consume(rec); };
  ScenarioRunner runner(std::move(ro));
  cell.outcome = runner.RunOne(script, script.freqs[0]);
  cell.p50 = decomp.e2e().P50();
  cell.p95 = decomp.e2e().P95();
  cell.p99 = decomp.e2e().P99();
  cell.episodes = decomp.episodes();
  return cell;
}

double GoodputGbps(const Cell& c, SimTime run_for) {
  return static_cast<double>(c.outcome.cell.delivered) * 8.0 / ToSeconds(run_for) / 1e9;
}

int Run(int argc, char** argv) {
  std::vector<double> losses = {0.0, 0.001, 0.01, 0.03};
  std::vector<SimTime> rtts = {10 * kMillisecond, 40 * kMillisecond, 80 * kMillisecond};
  SimTime run_for = 200 * kMillisecond;
  std::string out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_scenario.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (quick) {
    losses = {0.0, 0.01};
    rtts = {10 * kMillisecond, 40 * kMillisecond};
    run_for = 80 * kMillisecond;
  }

  std::printf("wan_sweep — lossy-WAN grid over the scenario DSL, %lld ms window\n",
              static_cast<long long>(run_for / kMillisecond));
  std::printf("  %8s %8s %12s %10s %10s %10s %12s %10s\n", "loss", "rtt_ms", "goodput_gbps",
              "p50_us", "p95_us", "p99_us", "retransmits", "loss_drops");

  std::vector<Cell> cells;
  std::string cells_json = "[";
  for (SimTime rtt : rtts) {
    for (double loss : losses) {
      Cell c = RunCell(loss, rtt, run_for);
      std::printf("  %8g %8lld %12.3f %10.1f %10.1f %10.1f %12llu %10llu\n", loss,
                  static_cast<long long>(rtt / kMillisecond), GoodputGbps(c, run_for),
                  ToSeconds(c.p50) * 1e6, ToSeconds(c.p95) * 1e6, ToSeconds(c.p99) * 1e6,
                  static_cast<unsigned long long>(c.outcome.Counter("retransmits")),
                  static_cast<unsigned long long>(c.outcome.Counter("link_loss_drops")));
      JsonWriter cw;
      cw.Num("loss", loss, 4)
          .Int("rtt_ms", rtt / kMillisecond)
          .Num("goodput_gbps", GoodputGbps(c, run_for), 3)
          .Num("p50_us", ToSeconds(c.p50) * 1e6, 1)
          .Num("p95_us", ToSeconds(c.p95) * 1e6, 1)
          .Num("p99_us", ToSeconds(c.p99) * 1e6, 1)
          .Uint("retransmits", c.outcome.Counter("retransmits"))
          .Uint("link_loss_drops", c.outcome.Counter("link_loss_drops"))
          .Uint("delivered_bytes", c.outcome.cell.delivered)
          .Uint("latency_episodes", c.episodes)
          .Bool("integrity", c.outcome.cell.integrity);
      std::string rendered = cw.Finish();
      while (!rendered.empty() && rendered.back() == '\n') {
        rendered.pop_back();
      }
      cells_json += rendered;
      if (cells.size() + 1 < losses.size() * rtts.size()) {
        cells_json += ",";
      }
      cells.push_back(std::move(c));
    }
  }
  cells_json += "]";

  JsonWriter w;
  w.Str("bench", "wan_sweep")
      .Str("scenario", "lossy_wan_grid_via_nsc_dsl")
      .Int("sim_window_ms", run_for / kMillisecond)
      .Int("host_cpus", static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Bool("quick", quick)
      .Raw("cells", cells_json);
  if (!WriteFileChecked(out, w.Finish())) {
    std::fprintf(stderr, "wan_sweep: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu cells)\n", out.c_str(), cells.size());
  return 0;
}

}  // namespace
}  // namespace newtos::scenario

int main(int argc, char** argv) { return newtos::scenario::Run(argc, argv); }
