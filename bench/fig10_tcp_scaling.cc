// Fig. 10 — Scaling the TCP server across slow cores.
//
// Once the stack runs on slow cores, the TCP server is the first stage to
// saturate (Fig. 3). The sharded stack splits TCP state across N server
// instances, each on its own slow core, with flows spread by symmetric flow
// hash — the multiserver answer to "one slow core isn't enough". Driver and
// IP stay at base clock so TCP is the only bottleneck; the TCP shard cores
// run at 1.2 GHz (below the single-shard knee).
//
// Expected shape: bulk goodput recovers from the 1.2 GHz single-shard level
// (~6.6 Gbit/s, cf. Fig. 2) back to line rate with 2 shards, flat at 3;
// HTTP request rate scales near-linearly until the NIC or the gateway caps.

#include <iostream>

#include "bench/common.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

constexpr FreqKhz kShardFreq = 1'200'000 * kKhz;

void Configure(Testbed& tb, int shards) {
  Machine& m = tb.machine();
  // driver -> 1 @3.6, ip/pf -> 2 @3.6, gateway -> 2, shards -> 3.. @1.2.
  tb.stack()->driver()->BindCore(m.core(1));
  tb.stack()->ip()->BindCore(m.core(2));
  if (tb.stack()->pf() != nullptr) {
    tb.stack()->pf()->BindCore(m.core(2));
  }
  if (tb.stack()->syscall() != nullptr) {
    tb.stack()->syscall()->BindCore(m.core(2));
  }
  tb.stack()->udp()->BindCore(m.core(1));
  for (int i = 0; i < shards; ++i) {
    Core* c = m.core(3 + i);
    tb.stack()->tcp_shard(i)->BindCore(c);
    c->SetFrequency(kShardFreq);
  }
  for (int i = 3 + shards; i < m.num_cores(); ++i) {
    m.core(i)->SetFrequency(600'000 * kKhz);
    m.core(i)->SetIdleActivity(CoreActivity::kHalted);
  }
}

void Run(const char* argv0) {
  Table t({"tcp_shards", "bulk_gbps", "http_krps", "pkg_watts_bulk"});
  for (int shards = 1; shards <= 3; ++shards) {
    TestbedOptions opt;
    opt.machine.num_cores = 7;  // app, driver, ip, up to 3 shards, spare
    opt.stack.tcp_shards = shards;

    const BulkResult bulk = MeasureBulkTx(
        opt, [shards](Testbed& tb) { Configure(tb, shards); },
        /*warmup=*/150 * kMillisecond, /*window=*/200 * kMillisecond, /*connections=*/8);

    HttpParams hp;
    hp.concurrency = 64;
    hp.response_bytes = 8 * 1024;
    hp.server_compute_cycles = 2'000;
    const HttpResult http =
        MeasureHttp(opt, hp, [shards](Testbed& tb) { Configure(tb, shards); });

    t.AddRow({Table::Int(shards), Table::Num(bulk.goodput_gbps, 2),
              Table::Num(http.responses_per_sec / 1e3, 1), Table::Num(bulk.avg_pkg_watts, 1)});
  }
  t.Print(std::cout, "Fig.10 — TCP server shards on 1.2 GHz cores (driver/IP @3.6)");
  WriteBenchCsv(t, argv0, "fig10_tcp_scaling");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
