// Fig. 1 — Motivation: kernel IPC vs. polled user-space channels.
//
// Reproduces the gap that justifies the multiserver fast-path redesign: a
// synchronous kernel IPC costs traps + context switches per message, while
// an asynchronous shared-memory channel costs two ring operations. We report
// cycles/message and messages/s at 3.6 GHz for message sizes 8 B .. 4 KiB,
// plus a simulated two-core ping-pong cross-check of the small-message case.
//
// Expected shape: channels win by roughly an order of magnitude at small
// sizes; the gap narrows as per-byte copy costs start to dominate.

#include <iostream>

#include "bench/common.h"
#include "src/chan/kernel_ipc.h"
#include "src/hw/cpu.h"
#include "src/metrics/table.h"
#include "src/sim/simulation.h"

namespace newtos {
namespace {

// Simulated ping-pong between two cores using explicit cycle charges —
// validates the analytic table in an executable model.
double SimulatedPingPongMsgsPerSec(Cycles one_way_cycles, FreqKhz freq) {
  Simulation sim;
  PowerModel pm;
  Core a(&sim, 0, "a", BigCoreOperatingPoints(), &pm);
  Core b(&sim, 1, "b", BigCoreOperatingPoints(), &pm);
  a.SetFrequency(freq);
  b.SetFrequency(freq);

  uint64_t round_trips = 0;
  std::function<void()> ping;
  std::function<void()> pong = [&] {
    b.Execute(one_way_cycles, [&] {
      ++round_trips;
      ping();
    });
  };
  ping = [&] { a.Execute(one_way_cycles, pong); };
  ping();
  sim.RunFor(10 * kMillisecond);
  return static_cast<double>(2 * round_trips) / ToSeconds(10 * kMillisecond);
}

void Run(const char* argv0) {
  const FreqKhz freq = 3'600'000 * kKhz;
  const double ghz = ToGhz(freq);
  KernelIpcCosts kernel;
  ChannelCostModel chan;

  Table t({"msg_bytes", "kipc_cycles", "chan_cycles", "speedup", "kipc_msgs_per_s",
           "chan_msgs_per_s"});
  for (size_t bytes : {8u, 64u, 256u, 1024u, 4096u}) {
    const Cycles k = kernel.OneWayCycles(bytes);
    const Cycles c = ChannelOneWayCycles(chan, bytes);
    const double k_rate = ghz * 1e9 / static_cast<double>(k);
    const double c_rate = ghz * 1e9 / static_cast<double>(c);
    t.AddRow({Table::Int(static_cast<int64_t>(bytes)), Table::Int(k), Table::Int(c),
              Table::Num(static_cast<double>(k) / static_cast<double>(c), 1),
              Table::Num(k_rate / 1e6, 2) + "M", Table::Num(c_rate / 1e6, 2) + "M"});
  }
  t.Print(std::cout, "Fig.1 — one-way message cost: kernel IPC vs. async channel (3.6 GHz)");
  WriteBenchCsv(t, argv0, "fig1_ipc_vs_channels");

  // Cross-check via simulated ping-pong at 64 B.
  const double k_pp = SimulatedPingPongMsgsPerSec(kernel.OneWayCycles(64), freq);
  const double c_pp = SimulatedPingPongMsgsPerSec(ChannelOneWayCycles(chan, 64), freq);
  Table x({"mechanism", "pingpong_msgs_per_s", "usec_per_rt"});
  x.AddRow({"kernel IPC", Table::Num(k_pp / 1e6, 2) + "M", Table::Num(2e6 / k_pp, 3)});
  x.AddRow({"channels", Table::Num(c_pp / 1e6, 2) + "M", Table::Num(2e6 / c_pp, 3)});
  x.Print(std::cout, "Fig.1b — simulated two-core ping-pong (64 B messages)");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
