// Tab. 3 — Channel microbenchmarks on the real machine (google-benchmark).
//
// Unlike the other benches, these numbers come from actually executing the
// lock-free SpscRing on the host CPU: push/pop cost, empty-poll cost, cached
// vs. uncached index reads, and the end-to-end real-thread pipeline. On a
// single-CPU container the threaded pipeline time-slices; the single-thread
// operation costs are the stable, comparable part.

#include <benchmark/benchmark.h>

#include "src/chan/spsc_ring.h"
#include "src/host/pipeline.h"

namespace newtos {
namespace {

void BM_PushPopPaired(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(v++));
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PushPopPaired);

void BM_EmptyPoll(benchmark::State& state) {
  SpscRing<uint64_t> ring(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EmptyPoll);

void BM_FullPush(benchmark::State& state) {
  SpscRing<uint64_t> ring(16);
  while (ring.TryPush(1)) {
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(1));  // always fails: full-detect cost
  }
}
BENCHMARK(BM_FullPush);

void BM_BurstPushThenPop(benchmark::State& state) {
  const size_t burst = static_cast<size_t>(state.range(0));
  SpscRing<uint64_t> ring(4096);
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.TryPush(i));
    }
    for (size_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.TryPop());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * burst));
}
BENCHMARK(BM_BurstPushThenPop)->Arg(8)->Arg(64)->Arg(512);

void BM_RealThreadPipeline(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PipelineParams p;
    p.stages = stages;
    p.messages = 100'000;
    const PipelineResult r = RunPipeline(p);
    benchmark::DoNotOptimize(r.checksum);
    state.SetIterationTime(r.seconds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_RealThreadPipeline)->Arg(1)->Arg(3)->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace newtos

BENCHMARK_MAIN();
