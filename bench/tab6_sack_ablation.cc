// Tab. 6 — SACK ablation: bulk TCP over a lossy link, Reno vs. SACK.
//
// The stack's TCP implements RFC 2018 selective acknowledgment as an option
// (TcpParams::sack). This bench streams through the full multiserver
// pipeline over links with injected random loss and compares goodput and
// sender retransmission/timeout counts with SACK off (NewReno) and on.
//
// Expected shape: no difference on a clean link (the option costs 12-28
// header bytes on ACKs only); under loss, SACK fills multiple holes per
// round trip, converting retransmission timeouts into fast recoveries —
// the gap widens with the loss rate.

#include <iostream>

#include "bench/common.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

struct LossyResult {
  double gbps = 0.0;
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
};

LossyResult Measure(double loss, bool sack) {
  TestbedOptions opt;
  opt.link_loss = loss;
  opt.stack.tcp_params.sack = sack;

  Testbed tb(opt);
  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  sp.connections = 4;
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();

  tb.sim().RunFor(300 * kMillisecond);
  sink.window().Reset(tb.sim().Now());
  tb.sim().RunFor(500 * kMillisecond);

  LossyResult r;
  r.gbps = sink.window().GbitsPerSec(tb.sim().Now());
  for (TcpConnection* c : tb.stack()->tcp()->host().Connections()) {
    r.retransmits += c->stats().retransmits;
    r.timeouts += c->stats().timeouts;
  }
  return r;
}

void Run(const char* argv0) {
  Table t({"loss", "reno_gbps", "sack_gbps", "gain", "reno_timeouts", "sack_timeouts"});
  for (double loss : {0.0, 0.001, 0.005, 0.01, 0.02}) {
    const LossyResult reno = Measure(loss, false);
    const LossyResult sack = Measure(loss, true);
    t.AddRow({Table::Pct(loss, 1), Table::Num(reno.gbps, 2), Table::Num(sack.gbps, 2),
              Table::Pct(reno.gbps > 0 ? sack.gbps / reno.gbps - 1.0 : 0.0),
              Table::Int(static_cast<int64_t>(reno.timeouts)),
              Table::Int(static_cast<int64_t>(sack.timeouts))});
  }
  t.Print(std::cout, "Tab.6 — SACK vs. NewReno through the multiserver stack, lossy link");
  WriteBenchCsv(t, argv0, "tab6_sack_ablation");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
