// Fig. 9 — Heterogeneous multicores: the stack on truly wimpy cores.
//
// The title experiment. A big.LITTLE machine (2 big out-of-order cores + 3
// little in-order cores) steers all system servers onto the little cores and
// keeps the big cores for applications. Compared against the homogeneous
// all-big machine on the same workloads.
//
// Expected shape: at 1.6 GHz the little cores carry bulk TCP within a few
// percent of line rate (Fig. 2's knee is below 1.6), at a fraction of the
// big-core power — heterogeneous silicon gives reliability's cycles away
// almost for free. Halving the little cores' clock again (0.8 GHz) finally
// drops goodput, bounding how wimpy is wimpy enough.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void AddRow(Table& t, const std::string& name, const BulkResult& r) {
  t.AddRow({name, Table::Num(r.goodput_gbps, 2), Table::Num(r.avg_pkg_watts, 1),
            Table::Num(r.goodput_gbps > 0 ? r.avg_pkg_watts / r.goodput_gbps : 0.0, 2)});
}

void Run(const char* argv0) {
  Table t({"machine / plan", "goodput_gbps", "pkg_watts", "J_per_gbit"});

  // Homogeneous baselines.
  AddRow(t, "5 big, dedicated @3.6", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
         }));
  AddRow(t, "5 big, dedicated @1.6", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedSlowPlan(*tb.stack(), 1'600'000 * kKhz, 3'600'000 * kKhz)
               .Apply(tb.machine());
         }));

  // Heterogeneous: 2 big + 3 wimpy, stack on the wimpies.
  for (FreqKhz wf : {1'600'000 * kKhz, 1'200'000 * kKhz, 800'000 * kKhz}) {
    TestbedOptions opt;
    opt.machine = BigLittleParams(2, 3);
    AddRow(t, "2 big + 3 wimpy, stack on wimpy @" + GhzStr(wf),
           MeasureBulkTx(opt, [wf](Testbed& tb) {
             WimpyStackPlan(*tb.stack(), wf, 3'600'000 * kKhz).Apply(tb.machine());
             // Spare big core idles in a sleep state.
             tb.machine().core(1)->SetIdleActivity(CoreActivity::kHalted);
           }));
  }

  t.Print(std::cout, "Fig.9 — heterogeneous multicore: system servers on little cores");
  WriteBenchCsv(t, argv0, "fig9_wimpy_cores");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
