// Timer microbenchmark: hierarchical wheel vs. event-queue heap.
//
// The wheel exists for one reason — per-flow timers as heap entries cost
// O(log n) sifts per arm/cancel and keep one queue slot per pending timer,
// which at 10^6 live timers is both slow and fat. This bench isolates the
// timer substrate from TCP entirely and measures, at 10^3, 10^5 and 10^6
// live timers:
//
//   - arm+cancel throughput (the dominant pattern: a TCP RTO is armed per
//     send and cancelled by the ACK — the timer almost never fires),
//   - re-arm (move) throughput on already-armed nodes,
//   - fire throughput (drain the whole population through expiry),
//   - pending simulator events while N timers are live: the wheel holds ONE
//     wake event regardless of N; the heap holds N.
//
// Both substrates run the same deterministic workload (same Rng seed, same
// delay distribution) inside the same Simulation, so the comparison is
// apples to apples. Results land in the "micro" section of
// BENCH_timers.json; the "million"/"knee" sections written by
// tab5_conn_churn --million are preserved.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/metrics/report.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"

namespace newtos {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

uint64_t g_fired = 0;
void CountFire(void*) { ++g_fired; }

// Delays spread across wheel levels the way TCP timers are: mostly short
// (delayed ACK ~500 us, RTO ~10-200 ms), occasionally long (TIME_WAIT,
// keepalive). Uniform in [1 us, 256 ms] covers levels 0-4.
SimTime NextDelay(Rng& rng) {
  return rng.UniformInt(kMicrosecond, 256 * kMillisecond);
}

struct SubstrateResult {
  double arm_cancel_per_sec = 0.0;
  double rearm_per_sec = 0.0;
  double fire_per_sec = 0.0;
  size_t pending_events_at_n = 0;  // simulator queue entries with N timers live
};

double Rate(uint64_t ops, std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1) {
  const double s = std::chrono::duration<double>(t1 - t0).count();
  return s > 0 ? static_cast<double>(ops) / s : 0.0;
}

SubstrateResult RunWheel(size_t n, int churn_rounds) {
  Simulation sim;
  TimerWheel wheel(&sim);
  wheel.Reserve(1024);
  // TimerNode is intrusive (non-copyable, address-stable), so a flat array —
  // exactly how sockets embed them — not a vector.
  std::unique_ptr<TimerNode[]> nodes(new TimerNode[n]);
  for (size_t i = 0; i < n; ++i) {
    nodes[i].fn = &CountFire;
  }
  Rng rng(0x7e3);

  SubstrateResult r;

  // Arm+cancel churn over a live population: arm all N, then repeatedly
  // cancel and re-arm each node with a fresh delay.
  for (size_t i = 0; i < n; ++i) {
    wheel.Arm(&nodes[i], sim.Now() + NextDelay(rng));
  }
  r.pending_events_at_n = sim.PendingEvents();
  const auto ac0 = std::chrono::steady_clock::now();
  for (int round = 0; round < churn_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      wheel.Cancel(&nodes[i]);
      wheel.Arm(&nodes[i], sim.Now() + NextDelay(rng));
    }
  }
  const auto ac1 = std::chrono::steady_clock::now();
  r.arm_cancel_per_sec = Rate(static_cast<uint64_t>(n) * churn_rounds, ac0, ac1);

  // Re-arm (Arm on an armed node moves it — the common RTO restart).
  const auto re0 = std::chrono::steady_clock::now();
  for (int round = 0; round < churn_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      wheel.Arm(&nodes[i], sim.Now() + NextDelay(rng));
    }
  }
  const auto re1 = std::chrono::steady_clock::now();
  r.rearm_per_sec = Rate(static_cast<uint64_t>(n) * churn_rounds, re0, re1);

  // Fire: drain the entire population through expiry.
  g_fired = 0;
  const auto f0 = std::chrono::steady_clock::now();
  while (wheel.armed() > 0) {
    sim.RunFor(64 * kMillisecond);
  }
  const auto f1 = std::chrono::steady_clock::now();
  r.fire_per_sec = Rate(g_fired, f0, f1);
  return r;
}

SubstrateResult RunHeap(size_t n, int churn_rounds) {
  Simulation sim;
  std::vector<EventHandle> handles(n);
  Rng rng(0x7e3);

  SubstrateResult r;

  for (size_t i = 0; i < n; ++i) {
    handles[i] = sim.Schedule(NextDelay(rng), [] { ++g_fired; });
  }
  r.pending_events_at_n = sim.PendingEvents();
  const auto ac0 = std::chrono::steady_clock::now();
  for (int round = 0; round < churn_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      handles[i].Cancel();
      handles[i] = sim.Schedule(NextDelay(rng), [] { ++g_fired; });
    }
  }
  const auto ac1 = std::chrono::steady_clock::now();
  r.arm_cancel_per_sec = Rate(static_cast<uint64_t>(n) * churn_rounds, ac0, ac1);

  // The heap has no move operation — a re-arm IS cancel + schedule.
  const auto re0 = std::chrono::steady_clock::now();
  for (int round = 0; round < churn_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) {
      handles[i].Cancel();
      handles[i] = sim.Schedule(NextDelay(rng), [] { ++g_fired; });
    }
  }
  const auto re1 = std::chrono::steady_clock::now();
  r.rearm_per_sec = Rate(static_cast<uint64_t>(n) * churn_rounds, re0, re1);

  g_fired = 0;
  const auto f0 = std::chrono::steady_clock::now();
  while (g_fired < n) {
    sim.RunFor(64 * kMillisecond);
  }
  const auto f1 = std::chrono::steady_clock::now();
  r.fire_per_sec = Rate(g_fired, f0, f1);
  return r;
}

std::string SizeJson(size_t n, const SubstrateResult& wheel, const SubstrateResult& heap) {
  JsonWriter w;
  w.Uint("live_timers", n)
      .Num("wheel_arm_cancel_per_sec", wheel.arm_cancel_per_sec, 0)
      .Num("wheel_rearm_per_sec", wheel.rearm_per_sec, 0)
      .Num("wheel_fire_per_sec", wheel.fire_per_sec, 0)
      .Uint("wheel_pending_events", wheel.pending_events_at_n)
      .Num("heap_arm_cancel_per_sec", heap.arm_cancel_per_sec, 0)
      .Num("heap_rearm_per_sec", heap.rearm_per_sec, 0)
      .Num("heap_fire_per_sec", heap.fire_per_sec, 0)
      .Uint("heap_pending_events", heap.pending_events_at_n)
      .Num("arm_cancel_speedup",
           heap.arm_cancel_per_sec > 0 ? wheel.arm_cancel_per_sec / heap.arm_cancel_per_sec
                                       : 0.0,
           2);
  return w.Finish();
}

int Run(const std::string& out_path) {
  std::string micro = "[";
  for (size_t n : {size_t{1'000}, size_t{100'000}, size_t{1'000'000}}) {
    // Smaller populations get more churn rounds so every row measures a
    // comparable op count.
    const int rounds = n >= 1'000'000 ? 4 : n >= 100'000 ? 16 : 64;
    const SubstrateResult wheel = RunWheel(n, rounds);
    const SubstrateResult heap = RunHeap(n, rounds);
    std::printf("n=%zu: arm+cancel wheel %.1fM/s heap %.1fM/s  (x%.1f)  "
                "fire wheel %.1fM/s heap %.1fM/s  pending %zu vs %zu\n",
                n, wheel.arm_cancel_per_sec / 1e6, heap.arm_cancel_per_sec / 1e6,
                heap.arm_cancel_per_sec > 0
                    ? wheel.arm_cancel_per_sec / heap.arm_cancel_per_sec
                    : 0.0,
                wheel.fire_per_sec / 1e6, heap.fire_per_sec / 1e6,
                wheel.pending_events_at_n, heap.pending_events_at_n);
    if (micro.size() > 1) {
      micro += ", ";
    }
    micro += SizeJson(n, wheel, heap);
  }
  micro += "]";

  JsonWriter top;
  const std::string million = ReadJsonSection(out_path, "million");
  const std::string knee = ReadJsonSection(out_path, "knee");
  if (!million.empty()) {
    top.Raw("million", million);
  }
  if (!knee.empty()) {
    top.Raw("knee", knee);
  }
  top.Raw("micro", micro);
  if (!WriteFileChecked(out_path, top.Finish())) {
    std::fprintf(stderr, "timer_micro: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) {
  std::string out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_timers.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return newtos::Run(out);
}
