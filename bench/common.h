// Shared measurement harness for the figure/table benches.
//
// Every experiment follows the paper's methodology: construct the testbed,
// apply a steering configuration, warm the workload up (connection setup +
// slow start excluded), then measure goodput/latency/power over a steady
// window. Helpers here keep the per-bench code about the sweep, not the
// plumbing, and guarantee all benches measure the same way.

#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/metrics/histogram.h"
#include "src/metrics/table.h"
#include "src/workload/httpd.h"
#include "src/workload/iperf.h"

namespace newtos {

struct BulkResult {
  double goodput_gbps = 0.0;   // application bytes delivered at the peer
  double avg_pkg_watts = 0.0;  // SUT package power over the window
  double joules = 0.0;         // SUT package energy over the window
  uint64_t bytes = 0;
  std::vector<double> core_util;  // per-core utilization over the window
};

// Bulk-TCP transmit (SUT -> peer). `configure` runs after construction and
// may apply steering plans, poll policies, governors; it may be nullptr.
BulkResult MeasureBulkTx(const TestbedOptions& options,
                         const std::function<void(Testbed&)>& configure,
                         SimTime warmup = 150 * kMillisecond,
                         SimTime window = 200 * kMillisecond, int connections = 1);

struct HttpResult {
  double responses_per_sec = 0.0;
  SimTime p50 = 0;
  SimTime p99 = 0;
  double avg_pkg_watts = 0.0;
  double joules = 0.0;
  uint64_t responses = 0;
  FreqKhz app_freq = 0;  // app-core frequency during the window
};

// HTTP closed-loop (peer clients -> SUT server app on core 0).
HttpResult MeasureHttp(const TestbedOptions& options, const HttpParams& params,
                       const std::function<void(Testbed&)>& configure,
                       SimTime warmup = 100 * kMillisecond,
                       SimTime window = 300 * kMillisecond);

// The frequency axis most figures sweep (descending, base clock down).
std::vector<FreqKhz> StackFrequencySweep();

// Formats kHz as "3.6" (GHz, one decimal).
std::string GhzStr(FreqKhz f);

// Resolves the CSV output path next to the binary: "<name>.csv".
std::string CsvPath(const char* argv0, const std::string& name);

// Writes `t` to CsvPath(argv0, name) and warns on stderr if the write fails
// (full disk, unwritable results dir). Returns false on failure so benches
// can propagate it as an exit code.
bool WriteBenchCsv(const Table& t, const char* argv0, const std::string& name);

// Extracts the raw JSON value of top-level `key` from the report file at
// `path` ("{...}" or "[...]"), or "" if the file or key is absent. Lets two
// binaries fold their sections into one report (tab5_conn_churn --million
// owns "million"/"knee" in BENCH_timers.json, timer_micro owns "micro") —
// each rewrites the file, preserving the sections it does not own.
std::string ReadJsonSection(const std::string& path, const std::string& key);

}  // namespace newtos

#endif  // BENCH_COMMON_H_
