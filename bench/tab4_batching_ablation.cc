// Tab. 4 — Ablations of the two batching mechanisms.
//
// Two design choices DESIGN.md calls out get isolated here, on bulk TCP with
// the stack at 1.6 GHz (just above the knee, where per-message overheads
// matter most):
//   driver RX batching   — amortized descriptor work on backlogged rings
//                          (rx_batched_packet < rx_per_packet) vs. off;
//   server burst drains  — poll loops draining up to 16 messages per core
//                          work item vs. strict one-message round-robin.
//
// Expected shape: each mechanism matters exactly where its stage is the
// bottleneck. Driver RX batching is invisible while the driver has slack
// (dedicated@1.6) but buys measurable goodput once the driver core is the
// choke point (driver@0.8, rest fast). Server burst drains are the big
// lever for consolidation: they amortize the cold-cache tenant switch, so
// consolidated throughput drops sharply with burst=1.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

constexpr FreqKhz kStackFreq = 1'600'000 * kKhz;

void AddRow(Table& t, const std::string& name, const BulkResult& r) {
  t.AddRow({name, Table::Num(r.goodput_gbps, 2), Table::Num(r.avg_pkg_watts, 1)});
}

void Run(const char* argv0) {
  Table t({"configuration", "goodput_gbps", "pkg_watts"});

  enum class Layout { kDedicated, kDriverSlow, kConsolidated };
  auto measure = [&](bool rx_batching, int burst_limit, Layout layout) {
    TestbedOptions opt;
    if (!rx_batching) {
      opt.stack.driver.rx_batched_packet = opt.stack.driver.rx_per_packet;
    }
    return MeasureBulkTx(opt, [burst_limit, layout](Testbed& tb) {
      switch (layout) {
        case Layout::kDedicated:
          DedicatedSlowPlan(*tb.stack(), kStackFreq, 3'600'000 * kKhz).Apply(tb.machine());
          break;
        case Layout::kDriverSlow:
          // Only the driver core is slow: isolates the RX-batching effect.
          DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
          tb.machine().core(1)->SetFrequency(800'000 * kKhz);
          break;
        case Layout::kConsolidated:
          ConsolidatedPlan(*tb.stack(), 1, 3'200'000 * kKhz, 3'600'000 * kKhz)
              .Apply(tb.machine());
          break;
      }
      for (Server* s : tb.stack()->SystemServers()) {
        s->set_source_batch_limit(burst_limit);
      }
    });
  };

  AddRow(t, "dedicated@1.6: batching on, burst 16", measure(true, 16, Layout::kDedicated));
  AddRow(t, "dedicated@1.6: batching off, burst 16", measure(false, 16, Layout::kDedicated));
  AddRow(t, "driver@0.8 only: batching on", measure(true, 16, Layout::kDriverSlow));
  AddRow(t, "driver@0.8 only: batching off", measure(false, 16, Layout::kDriverSlow));
  AddRow(t, "consolidated@3.2: burst 16", measure(true, 16, Layout::kConsolidated));
  AddRow(t, "consolidated@3.2: burst 1", measure(true, 1, Layout::kConsolidated));

  t.Print(std::cout, "Tab.4 — ablation: driver RX batching and server burst drains");
  WriteBenchCsv(t, argv0, "tab4_batching_ablation");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
