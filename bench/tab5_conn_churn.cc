// Tab. 5 — Connection churn: the handshake/teardown path on slow cores.
//
// Short-lived connections (HTTP/1.0 style: connect, one request, close) are
// the stress case for the TCP server's control path — SYN handling, accept
// dispatch, FIN teardown, TIME_WAIT reaping — none of which appears in bulk
// streaming. Sweeping the stack frequency answers whether the control path
// knees earlier than the data path.
//
// Expected shape: at full clock the handshake overhead is hidden behind the
// closed-loop latency (churn costs only a few percent). Once the stack
// saturates, the control path's extra segments and events (SYN exchange,
// FIN exchange, accept/close notifications — roughly double the messages of
// a keep-alive request) come straight out of throughput, so churn serves
// about half the keep-alive rate below the knee. Keep-alive wins everywhere.
//
// --million mode: the timer-wheel scale test. Builds 10^6 concurrent TCP
// connections between two bare TcpHosts (no cycle-cost model — this measures
// the *host engine*, not the simulated CPU), drives a rotating slice of them
// with small sends so RTO/delayed-ACK timers continuously arm, fire and
// cancel across both per-host wheels, and measures:
//   - setup and teardown rates (host wall-clock),
//   - steady-state allocations per event (a counting global allocator; the
//     wheel's intrusive nodes and the engine's pools must hold this at ZERO),
//   - allocated bytes per socket at two ramp points (flat = per-socket
//     memory does not grow with connection count),
//   - wheel stats (fires, wakes, spurious wakes, cascades) and the pending
//     simulator events while ~10^6 sockets hold live timers (one wake per
//     wheel, not one event per flow).
// Results land in the "million" and "knee" sections of BENCH_timers.json
// (the "micro" section, written by bench/timer_micro, is preserved).
// --million --check is the ctest gate: full 10^6 flows, asserts zero
// steady-state allocations, skips the slow knee sweep and teardown timing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/report.h"
#include "src/metrics/table.h"
#include "src/metrics/timeseries.h"
#include "src/net/tcp_host.h"
#include "src/sim/timer_wheel.h"

// --- Counting allocator hook (same pattern as bench/perf_engine.cc) --------

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace newtos {
namespace {

#ifndef NEWTOS_REPO_ROOT
#define NEWTOS_REPO_ROOT "."
#endif

// --- Knee curve (the original Tab. 5 measurement) --------------------------

double MeasureChurnRps(FreqKhz stack_freq, bool keep_alive) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams hp;
  hp.concurrency = 32;
  hp.server_compute_cycles = 2'000;
  hp.keep_alive = keep_alive;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(2 * kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(100 * kMillisecond);
  client.ResetWindow(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);
  return client.window().EventsPerSec(tb.sim().Now());
}

// --- Million-flow churn -----------------------------------------------------

constexpr Ipv4Addr kMillionClientIp = Ipv4(10, 1, 0, 1);
constexpr Ipv4Addr kMillionServerIp = Ipv4(10, 1, 0, 2);
constexpr uint16_t kMillionBasePort = 80;
// One TcpHost owns one ephemeral range (16384 ports), so flow-key capacity
// scales with listening ports: 64 ports x 16384 = 1,048,576 distinct keys.
constexpr int kMillionPortBlocks = 64;
constexpr int kPortBlockCapacity = 16384;
constexpr SimTime kMillionWireDelay = 50 * kMicrosecond;

class MillionBed {
 public:
  explicit MillionBed(size_t target)
      : target_(target),
        server_(&sim_, kMillionServerIp, [this](PacketPtr p) { Wire(std::move(p), &client_); }),
        client_(&sim_, kMillionClientIp, [this](PacketPtr p) { Wire(std::move(p), &server_); }) {
    TcpHost::AppHooks server_hooks;
    server_hooks.on_established = [this](TcpConnection* c) {
      server_by_key_[c->key()] = c;
    };
    server_hooks.on_closed = [this](TcpConnection* c) { server_by_key_.erase(c->key()); };
    for (int b = 0; b < kMillionPortBlocks; ++b) {
      server_.Listen(static_cast<uint16_t>(kMillionBasePort + b), server_hooks);
    }
  }

  Simulation& sim() { return sim_; }
  TcpHost& server() { return server_; }
  TcpHost& client() { return client_; }
  size_t established() const { return established_; }
  uint64_t sends() const { return sends_; }

  // Opens `count` connections against listening port `port`. Fresh port
  // blocks never collide in the ephemeral allocator, so this is O(count).
  void OpenBlock(uint16_t port, size_t count) {
    TcpHost::AppHooks hooks;
    hooks.on_established = [this](TcpConnection*) { ++established_; };
    hooks.on_closed = [this](TcpConnection*) { --established_; };
    for (size_t i = 0; i < count; ++i) {
      TcpConnection* c = client_.Connect(kMillionServerIp, port, hooks);
      if (c == nullptr) {
        std::fprintf(stderr, "million: ephemeral range exhausted on port %u\n", port);
        std::abort();
      }
      conns_.push_back(c);
    }
  }

  // Runs the simulation until all opened connections are established.
  bool SettleEstablished() {
    for (int i = 0; i < 1000 && established_ < conns_.size(); ++i) {
      sim_.RunFor(10 * kMillisecond);
    }
    return established_ == conns_.size();
  }

  // Rotating-slice driver: every 100 us, `per_tick` connections each send a
  // small payload. Every send arms the client RTO and the server delayed-ACK
  // on the wheels; the ACK cancels the RTO — continuous arm/fire/cancel
  // churn across the whole socket population.
  void StartDriver(size_t per_tick) {
    per_tick_ = per_tick;
    driving_ = true;
    sim_.Schedule(100 * kMicrosecond, [this] { DriverTick(); });
  }
  void StopDriver() { driving_ = false; }

  // Gracefully closes the first `count` connections from both ends and runs
  // the sim until FIN/TIME_WAIT teardown finishes and both tables shrink.
  void CloseSlice(size_t count) {
    for (size_t i = 0; i < count && i < conns_.size(); ++i) {
      TcpConnection* c = conns_[i];
      auto it = server_by_key_.find(c->key().Reversed());
      if (it != server_by_key_.end()) {
        it->second->CloseSend();
      }
      c->CloseSend();
    }
    const size_t want = conns_.size() - count;
    for (int i = 0; i < 1000 && (client_.connection_count() > want ||
                                 server_.connection_count() > want); ++i) {
      sim_.RunFor(15 * kMillisecond);  // > TIME_WAIT (10 ms)
      client_.ReapClosed();
      server_.ReapClosed();
    }
    conns_.erase(conns_.begin(), conns_.begin() + static_cast<ptrdiff_t>(count));
  }

 private:
  void Wire(PacketPtr p, TcpHost* dst) {
    sim_.Schedule(kMillionWireDelay, [p = std::move(p), dst] { dst->OnPacket(p); });
  }

  void DriverTick() {
    if (!driving_) {
      return;
    }
    const size_t n = conns_.size();
    for (size_t i = 0; i < per_tick_ && n > 0; ++i) {
      cursor_ = cursor_ + 1 < n ? cursor_ + 1 : 0;
      conns_[cursor_]->Send(256);
      ++sends_;
    }
    sim_.Schedule(100 * kMicrosecond, [this] { DriverTick(); });
  }

  size_t target_;
  Simulation sim_;
  TcpHost server_;
  TcpHost client_;
  std::vector<TcpConnection*> conns_;
  std::unordered_map<FlowKey, TcpConnection*, FlowKeyHash> server_by_key_;
  size_t established_ = 0;
  size_t cursor_ = 0;
  size_t per_tick_ = 0;
  uint64_t sends_ = 0;
  bool driving_ = false;
};

struct MillionResult {
  size_t flows = 0;
  double setup_wall_s = 0.0;
  double teardown_wall_s = 0.0;
  double reopen_wall_s = 0.0;
  size_t churn_slice = 0;
  uint64_t steady_events = 0;
  uint64_t steady_sends = 0;
  uint64_t steady_allocs = 0;
  double steady_wall_s = 0.0;
  double bytes_per_socket_early = 0.0;  // averaged over the first ramp block
  double bytes_per_socket_late = 0.0;   // incremental over the last 90%
  uint64_t wheel_fires = 0;
  uint64_t wheel_wakes = 0;
  uint64_t wheel_spurious = 0;
  uint64_t wheel_cascades = 0;
  size_t peak_armed_timers = 0;
  size_t pending_events_steady = 0;

  double setup_per_sec() const {
    return setup_wall_s > 0 ? static_cast<double>(flows) / setup_wall_s : 0.0;
  }
  double teardown_per_sec() const {
    return teardown_wall_s > 0 ? static_cast<double>(churn_slice) / teardown_wall_s : 0.0;
  }
  double reopen_per_sec() const {
    return reopen_wall_s > 0 ? static_cast<double>(churn_slice) / reopen_wall_s : 0.0;
  }
  double allocs_per_event() const {
    return steady_events == 0
               ? 0.0
               : static_cast<double>(steady_allocs) / static_cast<double>(steady_events);
  }
};

int RunMillion(size_t flows, bool check, const std::string& out_path) {
  MillionBed bed(flows);

  // --- Ramp: one fresh port block at a time (collision-free). Sample the
  // allocator early and late so per-socket memory flatness is measurable.
  const uint64_t bytes_start = g_alloc_bytes.load(std::memory_order_relaxed);
  uint64_t bytes_early = 0;
  size_t early_count = 0;
  const auto setup0 = std::chrono::steady_clock::now();
  size_t opened = 0;
  for (int b = 0; b < kMillionPortBlocks && opened < flows; ++b) {
    const size_t count = std::min<size_t>(kPortBlockCapacity, flows - opened);
    bed.OpenBlock(static_cast<uint16_t>(kMillionBasePort + b), count);
    opened += count;
    bed.sim().RunFor(2 * kMillisecond);
    if (b == 0) {
      bytes_early = g_alloc_bytes.load(std::memory_order_relaxed);
      early_count = opened;
    }
  }
  if (!bed.SettleEstablished()) {
    std::fprintf(stderr, "million: only %zu/%zu connections established\n",
                 bed.established(), flows);
    return 1;
  }
  const auto setup1 = std::chrono::steady_clock::now();
  const uint64_t bytes_full = g_alloc_bytes.load(std::memory_order_relaxed);

  MillionResult r;
  r.flows = flows;
  r.setup_wall_s = std::chrono::duration<double>(setup1 - setup0).count();
  r.bytes_per_socket_early =
      early_count > 0 ? static_cast<double>(bytes_early - bytes_start) /
                            (2.0 * static_cast<double>(early_count))
                      : 0.0;
  r.bytes_per_socket_late =
      flows > early_count ? static_cast<double>(bytes_full - bytes_early) /
                                (2.0 * static_cast<double>(flows - early_count))
                          : 0.0;

  // --- Steady state: rotating sends keep both wheels churning. Warm up
  // first so every pool, ring, hash table and scratch list reaches its
  // high-water mark, then demand zero allocations in the measured window.
  bed.server().wheel()->Reserve(1 << 13);
  bed.client().wheel()->Reserve(1 << 13);
  bed.sim().ReserveEvents(1 << 16);
  TimeSeries armed_series(&bed.sim(), 5 * kMillisecond, [&bed] {
    return static_cast<double>(bed.server().wheel()->armed() + bed.client().wheel()->armed());
  });
  armed_series.Reserve(256);  // steady window / interval, with slack
  armed_series.Start();
  bed.StartDriver(/*per_tick=*/1000);
  bed.sim().RunFor(20 * kMillisecond);

  const uint64_t sends0 = bed.sends();
  const uint64_t events0 = bed.sim().events_processed();
  const uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto steady0 = std::chrono::steady_clock::now();
  const SimTime window = check ? 20 * kMillisecond : 50 * kMillisecond;
  bed.sim().RunFor(window);
  const auto steady1 = std::chrono::steady_clock::now();

  r.steady_events = bed.sim().events_processed() - events0;
  r.steady_sends = bed.sends() - sends0;
  r.steady_allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  r.steady_wall_s = std::chrono::duration<double>(steady1 - steady0).count();
  r.pending_events_steady = bed.sim().PendingEvents();
  for (const TimeSeries::Point& p : armed_series.points()) {
    r.peak_armed_timers =
        std::max(r.peak_armed_timers, static_cast<size_t>(p.value));
  }
  armed_series.Stop();
  bed.StopDriver();
  bed.sim().RunFor(20 * kMillisecond);

  r.wheel_fires = bed.server().wheel()->fires() + bed.client().wheel()->fires();
  r.wheel_wakes = bed.server().wheel()->wakes() + bed.client().wheel()->wakes();
  r.wheel_spurious =
      bed.server().wheel()->spurious_wakes() + bed.client().wheel()->spurious_wakes();
  r.wheel_cascades = bed.server().wheel()->cascades() + bed.client().wheel()->cascades();

  std::printf("million: %zu flows  setup %.0f conns/s  steady %.2fM events/s  "
              "allocs/event %.6f  pending events %zu  peak armed %zu\n",
              r.flows, r.setup_per_sec(),
              r.steady_wall_s > 0
                  ? static_cast<double>(r.steady_events) / r.steady_wall_s / 1e6
                  : 0.0,
              r.allocs_per_event(), r.pending_events_steady, r.peak_armed_timers);
  std::printf("million: bytes/socket %.0f (first block) vs %.0f (rest of ramp)  "
              "wheel fires %llu wakes %llu spurious %llu cascades %llu\n",
              r.bytes_per_socket_early, r.bytes_per_socket_late,
              static_cast<unsigned long long>(r.wheel_fires),
              static_cast<unsigned long long>(r.wheel_wakes),
              static_cast<unsigned long long>(r.wheel_spurious),
              static_cast<unsigned long long>(r.wheel_cascades));

  if (check) {
    if (bed.client().connection_count() != flows ||
        bed.server().connection_count() != flows) {
      std::fprintf(stderr, "FAIL: connection tables hold %zu/%zu conns, want %zu\n",
                   bed.client().connection_count(), bed.server().connection_count(), flows);
      return 1;
    }
    if (r.steady_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu steady-state allocations across %llu events at %zu flows; "
                   "the timer/packet fast path must be allocation-free\n",
                   static_cast<unsigned long long>(r.steady_allocs),
                   static_cast<unsigned long long>(r.steady_events), flows);
      return 1;
    }
    if (r.wheel_fires == 0) {
      std::fprintf(stderr, "FAIL: the steady window fired no wheel timers — the bench "
                           "is not exercising the timer path\n");
      return 1;
    }
    std::printf("OK: %zu concurrent flows, %llu events, 0 steady-state allocations\n",
                flows, static_cast<unsigned long long>(r.steady_events));
    return 0;
  }

  // --- Churn: graceful FIN/TIME_WAIT teardown of one port block, then
  // reopen it. Both are honest rates: teardown includes reaping, reopen
  // includes connection allocation and the handshake.
  r.churn_slice = std::min<size_t>(kPortBlockCapacity, flows);
  const auto tear0 = std::chrono::steady_clock::now();
  bed.CloseSlice(r.churn_slice);
  const auto tear1 = std::chrono::steady_clock::now();
  r.teardown_wall_s = std::chrono::duration<double>(tear1 - tear0).count();

  const auto reopen0 = std::chrono::steady_clock::now();
  bed.OpenBlock(kMillionBasePort, r.churn_slice);
  if (!bed.SettleEstablished()) {
    std::fprintf(stderr, "million: reopen failed to establish\n");
    return 1;
  }
  const auto reopen1 = std::chrono::steady_clock::now();
  r.reopen_wall_s = std::chrono::duration<double>(reopen1 - reopen0).count();

  std::printf("million: teardown %.0f conns/s  reopen %.0f conns/s (slice %zu)\n",
              r.teardown_per_sec(), r.reopen_per_sec(), r.churn_slice);

  // --- Knee curve: the modeled control-path rate vs stack frequency.
  std::string knee = "[";
  char buf[160];
  for (FreqKhz f : {3'600'000 * kKhz, 2'400'000 * kKhz, 1'600'000 * kKhz,
                    1'200'000 * kKhz, 800'000 * kKhz}) {
    const double churn = MeasureChurnRps(f, false);
    const double ka = MeasureChurnRps(f, true);
    std::snprintf(buf, sizeof(buf),
                  "%s{\"stack_ghz\": %s, \"churn_rps\": %.0f, \"keepalive_rps\": %.0f}",
                  knee.size() > 1 ? ", " : "", GhzStr(f).c_str(), churn, ka);
    knee += buf;
  }
  knee += "]";

  JsonWriter million;
  million.Uint("flows", r.flows)
      .Int("host_cpus", static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Num("setup_conns_per_sec", r.setup_per_sec(), 0)
      .Num("teardown_conns_per_sec", r.teardown_per_sec(), 0)
      .Num("reopen_conns_per_sec", r.reopen_per_sec(), 0)
      .Uint("churn_slice", r.churn_slice)
      .Uint("steady_events", r.steady_events)
      .Uint("steady_sends", r.steady_sends)
      .Num("steady_events_per_sec",
           r.steady_wall_s > 0 ? static_cast<double>(r.steady_events) / r.steady_wall_s
                               : 0.0,
           0)
      .Uint("steady_allocs", r.steady_allocs)
      .Num("allocs_per_event", r.allocs_per_event(), 6)
      .Num("bytes_per_socket_early", r.bytes_per_socket_early, 0)
      .Num("bytes_per_socket_late", r.bytes_per_socket_late, 0)
      .Uint("peak_armed_timers", r.peak_armed_timers)
      .Uint("pending_events_steady", r.pending_events_steady)
      .Uint("wheel_fires", r.wheel_fires)
      .Uint("wheel_wakes", r.wheel_wakes)
      .Uint("wheel_spurious_wakes", r.wheel_spurious)
      .Uint("wheel_cascades", r.wheel_cascades);

  JsonWriter top;
  top.Raw("million", million.Finish()).Raw("knee", knee);
  const std::string micro = ReadJsonSection(out_path, "micro");
  if (!micro.empty()) {
    top.Raw("micro", micro);
  }
  if (!WriteFileChecked(out_path, top.Finish())) {
    std::fprintf(stderr, "tab5_conn_churn: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// --- Default mode: the original table --------------------------------------

void RunTable(const char* argv0) {
  Table t({"stack_ghz", "churn_rps", "keepalive_rps", "churn_cost"});
  for (FreqKhz f : {3'600'000 * kKhz, 2'400'000 * kKhz, 1'600'000 * kKhz, 1'200'000 * kKhz,
                    800'000 * kKhz}) {
    const double churn = MeasureChurnRps(f, false);
    const double ka = MeasureChurnRps(f, true);
    t.AddRow({GhzStr(f), Table::Num(churn / 1e3, 1) + "k", Table::Num(ka / 1e3, 1) + "k",
              Table::Pct(1.0 - churn / ka)});
  }
  t.Print(std::cout, "Tab.5 — connection-per-request churn vs. keep-alive, by stack frequency");
  WriteBenchCsv(t, argv0, "tab5_conn_churn");
}

}  // namespace
}  // namespace newtos

int main(int argc, char** argv) {
  bool million = false;
  bool check = false;
  size_t flows = 1'000'000;
  std::string out = std::string(NEWTOS_REPO_ROOT) + "/BENCH_timers.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--million") == 0) {
      million = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--flows") == 0 && i + 1 < argc) {
      flows = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--million [--check] [--flows N] [--out PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (million) {
    return newtos::RunMillion(flows, check, out);
  }
  newtos::RunTable(argv[0]);
  return 0;
}
