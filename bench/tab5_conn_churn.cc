// Tab. 5 — Connection churn: the handshake/teardown path on slow cores.
//
// Short-lived connections (HTTP/1.0 style: connect, one request, close) are
// the stress case for the TCP server's control path — SYN handling, accept
// dispatch, FIN teardown, TIME_WAIT reaping — none of which appears in bulk
// streaming. Sweeping the stack frequency answers whether the control path
// knees earlier than the data path.
//
// Expected shape: at full clock the handshake overhead is hidden behind the
// closed-loop latency (churn costs only a few percent). Once the stack
// saturates, the control path's extra segments and events (SYN exchange,
// FIN exchange, accept/close notifications — roughly double the messages of
// a keep-alive request) come straight out of throughput, so churn serves
// about half the keep-alive rate below the knee. Keep-alive wins everywhere.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

double MeasureChurnRps(FreqKhz stack_freq, bool keep_alive) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), stack_freq, 3'600'000 * kKhz).Apply(tb.machine());
  SocketApi* api = tb.stack()->CreateApp("httpd", tb.machine().core(0));
  HttpParams hp;
  hp.concurrency = 32;
  hp.server_compute_cycles = 2'000;
  hp.keep_alive = keep_alive;
  HttpServerApp server(api, hp);
  server.Start();
  tb.sim().RunFor(2 * kMillisecond);
  HttpPeerClient client(&tb.peer(), tb.sut_addr(), hp);
  client.Start();
  tb.sim().RunFor(100 * kMillisecond);
  client.ResetWindow(tb.sim().Now());
  tb.sim().RunFor(200 * kMillisecond);
  return client.window().EventsPerSec(tb.sim().Now());
}

void Run(const char* argv0) {
  Table t({"stack_ghz", "churn_rps", "keepalive_rps", "churn_cost"});
  for (FreqKhz f : {3'600'000 * kKhz, 2'400'000 * kKhz, 1'600'000 * kKhz, 1'200'000 * kKhz,
                    800'000 * kKhz}) {
    const double churn = MeasureChurnRps(f, false);
    const double ka = MeasureChurnRps(f, true);
    t.AddRow({GhzStr(f), Table::Num(churn / 1e3, 1) + "k", Table::Num(ka / 1e3, 1) + "k",
              Table::Pct(1.0 - churn / ka)});
  }
  t.Print(std::cout, "Tab.5 — connection-per-request churn vs. keep-alive, by stack frequency");
  WriteBenchCsv(t, argv0, "tab5_conn_churn");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
