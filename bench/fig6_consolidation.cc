// Fig. 6 — Consolidation: the whole stack on one core.
//
// Once per-stage cores have slack (Fig. 3), the stages can share. This bench
// compares four architectures on the same bulk-TCP workload:
//   dedicated-3.6   three big cores for the stack (NewtOS baseline)
//   dedicated-1.6   three slow cores for the stack
//   consolidated-*  ALL system servers on ONE core at 3.6 / 2.4 / 1.6 GHz
//   monolithic      stack fused into the app's core (Linux-like)
// and reports goodput, package power, and energy per gigabit.
//
// Expected shape: consolidated-3.6 holds near line rate (sum of stage costs
// still fits one fast core); consolidated-1.6 does not. Dedicated-slow and
// consolidated-fast bracket the throughput/power trade; every multiserver
// variant beats monolithic on app-core availability (see Tab. 2 for that
// axis) while monolithic wins on raw packet cost.

#include <iostream>

#include "bench/common.h"
#include "src/core/steering.h"
#include "src/metrics/table.h"

namespace newtos {
namespace {

void AddRow(Table& t, const std::string& name, const BulkResult& r) {
  const double joules_per_gbit =
      r.goodput_gbps > 0.0 ? r.avg_pkg_watts / r.goodput_gbps : 0.0;
  t.AddRow({name, Table::Num(r.goodput_gbps, 2), Table::Num(r.avg_pkg_watts, 1),
            Table::Num(joules_per_gbit, 2)});
}

void Run(const char* argv0) {
  Table t({"configuration", "goodput_gbps", "pkg_watts", "J_per_gbit"});

  AddRow(t, "dedicated @3.6", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedPlan(*tb.stack(), 3'600'000 * kKhz).Apply(tb.machine());
         }));
  AddRow(t, "dedicated @1.6", MeasureBulkTx({}, [](Testbed& tb) {
           DedicatedSlowPlan(*tb.stack(), 1'600'000 * kKhz, 3'600'000 * kKhz)
               .Apply(tb.machine());
         }));
  for (FreqKhz f : {3'600'000 * kKhz, 2'400'000 * kKhz, 1'600'000 * kKhz}) {
    AddRow(t, "consolidated @" + GhzStr(f), MeasureBulkTx({}, [f](Testbed& tb) {
             ConsolidatedPlan(*tb.stack(), 1, f, 3'600'000 * kKhz).Apply(tb.machine());
             // Unused former stack cores are parked at the floor.
             tb.machine().core(2)->SetFrequency(600'000 * kKhz);
             tb.machine().core(3)->SetFrequency(600'000 * kKhz);
           }));
  }
  {
    TestbedOptions mono;
    mono.monolithic = true;
    AddRow(t, "monolithic @3.6", MeasureBulkTx(mono, [](Testbed& tb) {
             for (int i = 1; i < tb.machine().num_cores(); ++i) {
               tb.machine().core(i)->SetFrequency(600'000 * kKhz);  // park unused
             }
           }));
  }

  t.Print(std::cout, "Fig.6 — consolidation: bulk TCP goodput and power by architecture");
  WriteBenchCsv(t, argv0, "fig6_consolidation");
}

}  // namespace
}  // namespace newtos

int main(int, char** argv) {
  newtos::Run(argv[0]);
  return 0;
}
