// Extraction passes for newtos_analyze: lex the sources, recover just enough
// structure (classes, members, functions, params) to resolve channel
// expressions, then lower ring declarations, wiring calls and Emit sites into
// the Model's ring graph.
//
// The passes, in order, over every extracted file:
//   P1  structure     — class regions with base lists, member declarations,
//                       function definitions (incl. out-of-class `Cls::Fn`),
//                       constructor role literals (`: Server(sim, "ip")`).
//   P2  accessors     — bodies of exactly `return member_;`, and setters —
//                       `member_ = param;` / `= std::move(param)` /
//                       `= {param}` / `member_.push_back(param)`.
//   P3  ring decls    — `CreateInput("chan", cap, ...)` call sites; the ring
//                       is `role/chan` where role comes from the receiver
//                       (implicit this, or a resolved object expression).
//   P4  wiring calls  — `recv->set_x(arg)` style calls whose callee has a
//                       setter mapping; each resolved argument adds ring
//                       targets to the receiver's member.
//   P5  emit sites    — `Emit(chan_expr, ...)`: the enclosing class's role
//                       becomes a producer of every ring the expression can
//                       denote (locals resolve as the union of their
//                       assignments — the graph is a union over branches).
//   P6  finalize      — "*"-role wildcards expand over the configured watched
//                       list (the watchdog's `server->CreateInput("wd", ...)`
//                       and the base-class heartbeat ack Emit), producers are
//                       sorted and deduped, rings sorted by name.
//
// Resolution is deliberately conservative: anything it cannot pin down
// becomes a note, never a silent guess — the equivalence gate against the
// dynamic checkers is what keeps the extraction honest.

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/token.h"

namespace newtos::analyze {
namespace {

using TokVec = std::vector<Tok>;
using Key = std::pair<std::string, std::string>;  // (class, name)

bool IsOpen(const Tok& t) {
  return t.kind == Tok::kPunct && (t.text == "(" || t.text == "[" || t.text == "{");
}
bool IsClose(const Tok& t) {
  return t.kind == Tok::kPunct && (t.text == ")" || t.text == "]" || t.text == "}");
}
bool Is(const Tok& t, const char* p) { return t.kind == Tok::kPunct && t.text == p; }
bool IsId(const Tok& t, const char* name) { return t.kind == Tok::kIdent && t.text == name; }

// Index of the token matching the opener at `open`, or toks.size().
size_t MatchGroup(const TokVec& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsOpen(toks[i])) {
      ++depth;
    } else if (IsClose(toks[i])) {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

// Splits the group opened at `open` into top-level comma-separated ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(const TokVec& toks, size_t open) {
  std::vector<std::pair<size_t, size_t>> parts;
  const size_t close = MatchGroup(toks, open);
  if (close >= toks.size()) {
    return parts;
  }
  size_t begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    if (IsOpen(toks[i])) {
      ++depth;
    } else if (IsClose(toks[i])) {
      --depth;
    } else if (depth == 0 && Is(toks[i], ",")) {
      parts.push_back({begin, i});
      begin = i + 1;
    }
  }
  if (begin < close) {
    parts.push_back({begin, close});
  } else if (!parts.empty() || begin != open + 1) {
    parts.push_back({begin, close});  // trailing empty part after a comma
  }
  if (parts.empty() && close > open + 1) {
    parts.push_back({open + 1, close});
  }
  return parts;
}

std::string JoinTokens(const TokVec& toks, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (!out.empty()) {
      out += ' ';
    }
    out += toks[i].kind == Tok::kString ? "\"" + toks[i].text + "\"" : toks[i].text;
  }
  return out;
}

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "const",    "static",  "mutable",   "inline", "constexpr", "virtual", "explicit",
      "volatile", "typename", "struct",   "class",  "enum",      "union",   "unsigned",
      "signed",   "public",  "protected", "private", "override", "final",   "auto",
      "void",     "bool",    "char",      "int",    "long",      "short",   "float",
      "double",   "using",   "friend",    "return", "if",        "else",    "for",
      "while",    "switch",  "case",      "break",  "continue",  "default", "new",
      "delete",   "this",    "nullptr",   "true",   "false",     "operator", "template",
      "namespace", "sizeof", "static_assert", "noexcept", "extern"};
  return kKw.count(s) > 0;
}

struct Param {
  std::string name;
  std::vector<std::string> types;  // identifiers appearing in the type
};

struct FnInfo {
  std::string cls;   // enclosing or qualifying class ("" = free function)
  std::string name;
  std::vector<Param> params;
  size_t head_begin = 0, head_end = 0;  // ctor init-list region: ")"+1 .. "{"
  size_t body_begin = 0, body_end = 0;  // inside the braces
  size_t file_index = 0;
};

struct RingDecl {
  std::string name;
  std::string consumer;  // owning role ("*" = wildcard, expanded in P6)
  std::string capacity;
  std::string file;
  int line = 0;
};

struct Extractor {
  const Config& config;
  Model* model;
  std::vector<const SourceFile*> files;
  std::vector<TokVec> toks;

  std::map<std::string, std::vector<std::string>> class_bases;
  std::map<Key, std::vector<std::string>> member_types;  // (cls, member) -> type idents
  std::map<std::string, std::string> role_of;            // class -> role name
  std::map<Key, std::string> accessors;                  // (cls, fn) -> member
  std::map<Key, std::vector<std::pair<int, std::string>>> setters;
  std::vector<FnInfo> fns;

  std::map<std::string, RingDecl> rings;
  std::map<Key, std::set<std::string>> chan_binding;    // (cls, ident) -> rings
  std::map<Key, std::set<std::string>> member_targets;  // (cls, member) -> rings
  std::map<std::string, std::set<std::string>> ring_producers;

  Extractor(const Config& cfg, Model* m) : config(cfg), model(m) {}

  void Note(const std::string& msg) { model->notes.push_back(msg); }

  bool KnownClass(const std::string& name) const { return class_bases.count(name) > 0; }

  static bool ProbeHit(bool b) { return b; }
  static bool ProbeHit(const std::string& s) { return !s.empty(); }
  template <typename T>
  static bool ProbeHit(const std::vector<T>& v) {
    return !v.empty();
  }

  // Walks `cls` and its transitive bases; returns the first non-empty result
  // `probe` yields along the chain.
  template <typename Probe>
  auto LookupChain(const std::string& cls, Probe probe) -> decltype(probe(cls)) {
    std::set<std::string> seen;
    std::vector<std::string> queue = {cls};
    while (!queue.empty()) {
      const std::string c = queue.front();
      queue.erase(queue.begin());
      if (!seen.insert(c).second) {
        continue;
      }
      auto r = probe(c);
      if (ProbeHit(r)) {
        return r;
      }
      auto it = class_bases.find(c);
      if (it != class_bases.end()) {
        for (const std::string& b : it->second) {
          queue.push_back(b);
        }
      }
    }
    return decltype(probe(cls)){};
  }

  std::string RoleForClass(const std::string& cls) {
    if (cls == "Server") {
      return "*";
    }
    auto r = LookupChain(cls, [&](const std::string& c) -> std::string {
      if (c == "Server") {
        return "*";
      }
      auto it = role_of.find(c);
      return it != role_of.end() ? it->second : std::string();
    });
    return r;
  }

  // ----- P1: structure ---------------------------------------------------

  void ScanStructure(size_t fi) {
    const TokVec& t = toks[fi];
    struct Frame {
      enum K { kNs, kClass, kFn, kBlock } k = kBlock;
      std::string name;
      size_t fn_index = 0;
    };
    std::vector<Frame> stack;
    auto in_function = [&] {
      for (const Frame& f : stack) {
        if (f.k == Frame::kFn) {
          return true;
        }
      }
      return false;
    };
    auto enclosing_class = [&]() -> std::string {
      for (size_t i = stack.size(); i-- > 0;) {
        if (stack[i].k == Frame::kClass) {
          return stack[i].name;
        }
      }
      return std::string();
    };

    size_t stmt = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      if (Is(t[i], ";")) {
        // Member declaration? Only at class scope, outside functions.
        if (!stack.empty() && stack.back().k == Frame::kClass && !in_function()) {
          RecordMemberDecl(fi, stmt, i, stack.back().name);
        }
        stmt = i + 1;
        continue;
      }
      if (Is(t[i], "}")) {
        if (!stack.empty()) {
          if (stack.back().k == Frame::kFn) {
            fns[stack.back().fn_index].body_end = i;
          }
          stack.pop_back();
        }
        stmt = i + 1;
        continue;
      }
      if (Is(t[i], ":") && i > 0 && t[i - 1].kind == Tok::kIdent &&
          (t[i - 1].text == "public" || t[i - 1].text == "protected" ||
           t[i - 1].text == "private")) {
        stmt = i + 1;  // access label resets the statement
        continue;
      }
      if (!Is(t[i], "{")) {
        continue;
      }
      // Classify this brace from the statement head [stmt, i).
      Frame f;
      if (in_function()) {
        f.k = Frame::kBlock;
      } else if (stmt < i && IsId(t[stmt], "namespace")) {
        f.k = Frame::kNs;
      } else {
        size_t kw = i;  // class/struct keyword position, if any
        size_t paren = i;
        int depth = 0;
        for (size_t j = stmt; j < i; ++j) {
          if (IsOpen(t[j])) {
            if (depth == 0 && Is(t[j], "(") && paren == i) {
              paren = j;
            }
            ++depth;
          } else if (IsClose(t[j])) {
            --depth;
          } else if (depth == 0 && kw == i && t[j].kind == Tok::kIdent &&
                     (t[j].text == "class" || t[j].text == "struct") && j + 1 < i &&
                     t[j + 1].kind == Tok::kIdent) {
            kw = j;
          }
        }
        // `enum class X {` is an enum, not a class region.
        const bool is_enum = stmt < i && IsId(t[stmt], "enum");
        if (kw < i && !is_enum && (paren == i || paren > kw)) {
          f.k = Frame::kClass;
          f.name = t[kw + 1].text;
          class_bases.emplace(f.name, std::vector<std::string>());
          // Bases: identifiers between a top-level ':' (after the name) and '{'.
          for (size_t j = kw + 2; j < i; ++j) {
            if (Is(t[j], ":")) {
              for (size_t b = j + 1; b < i; ++b) {
                if (t[b].kind == Tok::kIdent && !IsKeyword(t[b].text) &&
                    !(b + 1 < i && Is(t[b + 1], "::"))) {
                  class_bases[f.name].push_back(t[b].text);
                }
              }
              break;
            }
          }
        } else if (paren < i) {
          f.k = Frame::kFn;
          f.fn_index = RegisterFunction(fi, stmt, paren, i, enclosing_class());
        } else {
          f.k = Frame::kBlock;
        }
      }
      stack.push_back(f);
      stmt = i + 1;
    }
  }

  // Registers the function definition whose parameter list opens at `paren`
  // and whose body opens at `brace`; returns its index in `fns`.
  size_t RegisterFunction(size_t fi, size_t stmt, size_t paren, size_t brace,
                          const std::string& encl_class) {
    const TokVec& t = toks[fi];
    FnInfo fn;
    fn.file_index = fi;
    // Name: identifier right before the '('; class qualifier: `Cls ::` before it.
    std::string name;
    std::string cls = encl_class;
    if (paren > stmt && t[paren - 1].kind == Tok::kIdent) {
      name = t[paren - 1].text;
      if (paren >= stmt + 3 && Is(t[paren - 2], "::") && t[paren - 3].kind == Tok::kIdent) {
        cls = t[paren - 3].text;
      }
    }
    fn.cls = cls;
    fn.name = name;
    const size_t close = MatchGroup(t, paren);
    for (const auto& [pb, pe] : SplitArgs(t, paren)) {
      Param p;
      std::vector<std::string> ids;
      for (size_t j = pb; j < pe; ++j) {
        if (t[j].kind == Tok::kIdent && !IsKeyword(t[j].text)) {
          ids.push_back(t[j].text);
        }
      }
      if (!ids.empty()) {
        p.name = ids.back();
        ids.pop_back();
        p.types = std::move(ids);
        fn.params.push_back(std::move(p));
      }
    }
    fn.head_begin = close + 1;
    fn.head_end = brace;
    fn.body_begin = brace + 1;
    fn.body_end = t.size();  // patched when the brace closes
    // Constructor role literal: `: ... Server( ..., "role" ...) ...` in the head.
    if (!fn.cls.empty() && fn.name == fn.cls) {
      for (size_t j = fn.head_begin; j + 1 < fn.head_end; ++j) {
        if (IsId(t[j], "Server") && Is(t[j + 1], "(")) {
          const size_t sc = MatchGroup(t, j + 1);
          for (size_t s = j + 2; s < sc; ++s) {
            if (t[s].kind == Tok::kString) {
              role_of.emplace(fn.cls, t[s].text);
              break;
            }
          }
          break;
        }
      }
    }
    fns.push_back(std::move(fn));
    return fns.size() - 1;
  }

  void RecordMemberDecl(size_t fi, size_t stmt, size_t semi, const std::string& cls) {
    const TokVec& t = toks[fi];
    if (stmt >= semi) {
      return;
    }
    if (IsId(t[stmt], "using") || IsId(t[stmt], "friend") || IsId(t[stmt], "static_assert") ||
        IsId(t[stmt], "template") || IsId(t[stmt], "enum")) {
      return;
    }
    // Method declarations contain a top-level '('; skip them.
    size_t boundary = semi;
    int depth = 0;
    for (size_t j = stmt; j < semi; ++j) {
      if (IsOpen(t[j])) {
        if (depth == 0 && Is(t[j], "(")) {
          return;
        }
        ++depth;
      } else if (IsClose(t[j])) {
        --depth;
      } else if (depth == 0 && Is(t[j], "=") && boundary == semi) {
        boundary = j;
      }
    }
    // Name: last identifier before the boundary, stepping back over [dims].
    size_t k = boundary;
    while (k > stmt && Is(t[k - 1], "]")) {
      size_t open = k - 1;
      int d = 0;
      while (open > stmt) {
        if (IsClose(t[open])) {
          ++d;
        } else if (IsOpen(t[open])) {
          --d;
          if (d == 0) {
            break;
          }
        }
        --open;
      }
      k = open;
    }
    if (k == stmt || t[k - 1].kind != Tok::kIdent || IsKeyword(t[k - 1].text)) {
      return;
    }
    const std::string member = t[k - 1].text;
    std::vector<std::string> types;
    for (size_t j = stmt; j + 1 < k; ++j) {
      if (t[j].kind == Tok::kIdent && !IsKeyword(t[j].text)) {
        types.push_back(t[j].text);
      }
    }
    member_types.emplace(Key{cls, member}, std::move(types));
  }

  // ----- P2: accessors and setters ---------------------------------------

  void ScanAccessorsAndSetters() {
    for (const FnInfo& fn : fns) {
      if (fn.cls.empty() || fn.name.empty()) {
        continue;
      }
      const TokVec& t = toks[fn.file_index];
      // Accessor: body is exactly `return member_ ;`.
      if (fn.body_end == fn.body_begin + 3 && IsId(t[fn.body_begin], "return") &&
          t[fn.body_begin + 1].kind == Tok::kIdent && Is(t[fn.body_begin + 2], ";")) {
        accessors.emplace(Key{fn.cls, fn.name}, t[fn.body_begin + 1].text);
      }
      // Setters: statement-anchored assignment / push_back of a parameter.
      auto param_index = [&](const std::string& name) {
        for (size_t p = 0; p < fn.params.size(); ++p) {
          if (fn.params[p].name == name) {
            return static_cast<int>(p);
          }
        }
        return -1;
      };
      auto record = [&](int idx, const std::string& member) {
        auto& vec = setters[Key{fn.cls, fn.name}];
        for (const auto& [i2, m2] : vec) {
          if (i2 == idx && m2 == member) {
            return;
          }
        }
        vec.push_back({idx, member});
      };
      size_t anchor = fn.body_begin;
      for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
        const bool at_anchor = i == anchor;
        if (Is(t[i], ";") || Is(t[i], "{") || Is(t[i], "}")) {
          anchor = i + 1;
          continue;
        }
        if (!at_anchor || t[i].kind != Tok::kIdent) {
          continue;
        }
        const std::string member = t[i].text;
        // `member = param ;` | `= std::move(param) ;` | `= { param } ;`
        if (i + 1 < fn.body_end && Is(t[i + 1], "=")) {
          const size_t r = i + 2;
          if (r + 1 < fn.body_end && t[r].kind == Tok::kIdent && Is(t[r + 1], ";")) {
            const int idx = param_index(t[r].text);
            if (idx >= 0) {
              record(idx, member);
            }
          } else if (r + 6 < fn.body_end && IsId(t[r], "std") && Is(t[r + 1], "::") &&
                     IsId(t[r + 2], "move") && Is(t[r + 3], "(") &&
                     t[r + 4].kind == Tok::kIdent && Is(t[r + 5], ")") && Is(t[r + 6], ";")) {
            const int idx = param_index(t[r + 4].text);
            if (idx >= 0) {
              record(idx, member);
            }
          } else if (r + 3 < fn.body_end && Is(t[r], "{") && t[r + 1].kind == Tok::kIdent &&
                     Is(t[r + 2], "}") && Is(t[r + 3], ";")) {
            const int idx = param_index(t[r + 1].text);
            if (idx >= 0) {
              record(idx, member);
            }
          }
        }
        // `member.push_back(param) ;` (also with std::move)
        if (i + 3 < fn.body_end && Is(t[i + 1], ".") && IsId(t[i + 2], "push_back") &&
            Is(t[i + 3], "(")) {
          const auto args = SplitArgs(t, i + 3);
          if (args.size() == 1) {
            auto [ab, ae] = args[0];
            std::string pname;
            if (ae == ab + 1 && t[ab].kind == Tok::kIdent) {
              pname = t[ab].text;
            } else if (ae == ab + 6 && IsId(t[ab], "std") && IsId(t[ab + 2], "move") &&
                       t[ab + 4].kind == Tok::kIdent) {
              pname = t[ab + 4].text;
            }
            const int idx = pname.empty() ? -1 : param_index(pname);
            if (idx >= 0) {
              record(idx, member);
            }
          }
        }
      }
    }
  }

  // ----- receiver / expression resolution --------------------------------

  // Class of the object denoted by identifier `name` inside `fn`.
  std::string ClassOfIdent(const FnInfo& fn, const std::string& name) {
    const TokVec& t = toks[fn.file_index];
    for (const Param& p : fn.params) {
      if (p.name == name) {
        for (size_t j = p.types.size(); j-- > 0;) {
          if (KnownClass(p.types[j])) {
            return p.types[j];
          }
        }
        return std::string();
      }
    }
    // Local declarations and make_unique initializers.
    for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || t[i].text != name) {
        continue;
      }
      if (i > fn.body_begin && (Is(t[i - 1], "*") || Is(t[i - 1], "&")) && i >= 2 &&
          t[i - 2].kind == Tok::kIdent && KnownClass(t[i - 2].text)) {
        return t[i - 2].text;
      }
      if (i > fn.body_begin && t[i - 1].kind == Tok::kIdent && KnownClass(t[i - 1].text)) {
        return t[i - 1].text;
      }
      if (i + 1 < fn.body_end && Is(t[i + 1], "=")) {
        for (size_t j = i + 2; j < fn.body_end && !Is(t[j], ";"); ++j) {
          if (IsId(t[j], "make_unique") && j + 2 < fn.body_end && Is(t[j + 1], "<") &&
              t[j + 2].kind == Tok::kIdent) {
            return t[j + 2].text;
          }
        }
      }
    }
    // Range-for element: `for (... name : container)`.
    std::string container = RangeForContainer(fn, name);
    if (!container.empty()) {
      auto types = LookupChain(fn.cls, [&](const std::string& c) -> std::vector<std::string> {
        auto it = member_types.find(Key{c, container});
        return it != member_types.end() ? it->second : std::vector<std::string>();
      });
      for (size_t j = types.size(); j-- > 0;) {
        if (KnownClass(types[j])) {
          return types[j];
        }
      }
    }
    // Member of the enclosing class.
    auto types = LookupChain(fn.cls, [&](const std::string& c) -> std::vector<std::string> {
      auto it = member_types.find(Key{c, name});
      return it != member_types.end() ? it->second : std::vector<std::string>();
    });
    for (size_t j = types.size(); j-- > 0;) {
      if (KnownClass(types[j])) {
        return types[j];
      }
    }
    return std::string();
  }

  // If `name` is a range-for variable in `fn`, the container's identifier.
  std::string RangeForContainer(const FnInfo& fn, const std::string& name) {
    const TokVec& t = toks[fn.file_index];
    for (size_t i = fn.body_begin; i + 1 < fn.body_end && i < t.size(); ++i) {
      if (!IsId(t[i], "for") || !Is(t[i + 1], "(")) {
        continue;
      }
      const size_t close = MatchGroup(t, i + 1);
      size_t colon = close;
      int depth = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (IsOpen(t[j])) {
          ++depth;
        } else if (IsClose(t[j])) {
          --depth;
        } else if (depth == 0 && Is(t[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == close || colon == i + 2) {
        continue;
      }
      if (t[colon - 1].kind == Tok::kIdent && t[colon - 1].text == name) {
        // Container: last identifier run before ')' — handles plain members.
        if (t[close - 1].kind == Tok::kIdent) {
          return t[close - 1].text;
        }
      }
    }
    return std::string();
  }

  std::set<std::string> RingsForMember(const std::string& cls, const std::string& member) {
    std::set<std::string> out;
    LookupChain(cls, [&](const std::string& c) -> bool {
      auto b = chan_binding.find(Key{c, member});
      if (b != chan_binding.end()) {
        out.insert(b->second.begin(), b->second.end());
      }
      auto m = member_targets.find(Key{c, member});
      if (m != member_targets.end()) {
        out.insert(m->second.begin(), m->second.end());
      }
      return !out.empty();
    });
    return out;
  }

  // Resolves a channel-valued expression [begin, end) to the set of ring
  // names it can denote. `guard` breaks recursion through local variables.
  std::set<std::string> ResolveChanExpr(const FnInfo& fn, size_t begin, size_t end,
                                        std::set<std::string>* guard) {
    const TokVec& t = toks[fn.file_index];
    while (end > begin) {
      // Strip std::move(X), (X), &X, *X.
      if (end - begin >= 5 && IsId(t[begin], "std") && Is(t[begin + 1], "::") &&
          IsId(t[begin + 2], "move") && Is(t[begin + 3], "(") &&
          MatchGroup(t, begin + 3) == end - 1) {
        begin += 4;
        --end;
        continue;
      }
      if (Is(t[begin], "(") && MatchGroup(t, begin) == end - 1) {
        ++begin;
        --end;
        continue;
      }
      if (Is(t[begin], "&") || Is(t[begin], "*")) {
        ++begin;
        continue;
      }
      break;
    }
    if (begin >= end) {
      return {};
    }
    if (end == begin + 1 && IsId(t[begin], "nullptr")) {
      return {};
    }
    // `BASE [ idx ]` — the element set is the container's set.
    if (Is(t[end - 1], "]")) {
      size_t open = end - 1;
      int d = 0;
      while (open > begin) {
        if (IsClose(t[open])) {
          ++d;
        } else if (IsOpen(t[open])) {
          --d;
          if (d == 0) {
            break;
          }
        }
        --open;
      }
      return ResolveChanExpr(fn, begin, open, guard);
    }
    // Accessor call: `BASE -> fn ( )` / `BASE . fn ( )`.
    if (Is(t[end - 1], ")") && end >= begin + 4) {
      const size_t open = [&] {
        size_t o = end - 1;
        int d = 0;
        while (o > begin) {
          if (IsClose(t[o])) {
            ++d;
          } else if (IsOpen(t[o])) {
            --d;
            if (d == 0) {
              break;
            }
          }
          --o;
        }
        return o;
      }();
      if (open > begin + 1 && t[open - 1].kind == Tok::kIdent &&
          (Is(t[open - 2], "->") || Is(t[open - 2], "."))) {
        const std::string callee = t[open - 1].text;
        const std::string base_cls = ClassOfExpr(fn, begin, open - 2);
        if (!base_cls.empty()) {
          auto member = LookupChain(base_cls, [&](const std::string& c) -> std::string {
            auto it = accessors.find(Key{c, callee});
            return it != accessors.end() ? it->second : std::string();
          });
          if (!member.empty()) {
            return RingsForMember(base_cls, member);
          }
        }
      }
      return {};
    }
    // `BASE -> field` / `BASE . field`.
    if (end >= begin + 3 && t[end - 1].kind == Tok::kIdent &&
        (Is(t[end - 2], "->") || Is(t[end - 2], "."))) {
      const std::string field = t[end - 1].text;
      const std::string base_cls = ClassOfExpr(fn, begin, end - 2);
      if (!base_cls.empty()) {
        auto found = RingsForMember(base_cls, field);
        if (!found.empty()) {
          return found;
        }
      }
      // Fallback: a binding recorded under the enclosing class (e.g. `w.ctl`
      // bound inside the same class's method).
      return RingsForMember(fn.cls, field);
    }
    // Single identifier: member binding, then local-variable union.
    if (end == begin + 1 && t[begin].kind == Tok::kIdent) {
      const std::string name = t[begin].text;
      if (!fn.cls.empty()) {
        auto found = RingsForMember(fn.cls, name);
        if (!found.empty()) {
          return found;
        }
      }
      const std::string guard_key = fn.cls + "::" + fn.name + "/" + name;
      if (guard->count(guard_key) > 0) {
        return {};
      }
      guard->insert(guard_key);
      std::set<std::string> out;
      // Union over every `name = expr ;` and `name.push_back(expr) ;` in the
      // body (declaration initializers included — the '=' form covers both).
      for (size_t i = fn.body_begin; i < fn.body_end && i < t.size(); ++i) {
        if (t[i].kind != Tok::kIdent || t[i].text != name) {
          continue;
        }
        if (i > 0 && (Is(t[i - 1], ".") || Is(t[i - 1], "->"))) {
          continue;  // a field of something else
        }
        if (i + 1 < fn.body_end && Is(t[i + 1], "=")) {
          size_t stop = i + 2;
          int d = 0;
          while (stop < fn.body_end && (d > 0 || !Is(t[stop], ";"))) {
            if (IsOpen(t[stop])) {
              ++d;
            } else if (IsClose(t[stop])) {
              --d;
            }
            ++stop;
          }
          auto sub = ResolveChanExpr(fn, i + 2, stop, guard);
          out.insert(sub.begin(), sub.end());
        } else if (i + 3 < fn.body_end && Is(t[i + 1], ".") && IsId(t[i + 2], "push_back") &&
                   Is(t[i + 3], "(")) {
          const auto args = SplitArgs(t, i + 3);
          if (args.size() == 1) {
            auto sub = ResolveChanExpr(fn, args[0].first, args[0].second, guard);
            out.insert(sub.begin(), sub.end());
          }
        }
      }
      if (out.empty()) {
        // Range-for element over a channel container.
        const std::string container = RangeForContainer(fn, name);
        if (!container.empty()) {
          out = RingsForMember(fn.cls, container);
        }
      }
      guard->erase(guard_key);
      return out;
    }
    return {};
  }

  // Class of an object expression [begin, end): identifier, `x[i]`, `a.b`.
  std::string ClassOfExpr(const FnInfo& fn, size_t begin, size_t end) {
    const TokVec& t = toks[fn.file_index];
    if (begin >= end) {
      return std::string();
    }
    if (Is(t[end - 1], "]")) {
      size_t open = end - 1;
      int d = 0;
      while (open > begin) {
        if (IsClose(t[open])) {
          ++d;
        } else if (IsOpen(t[open])) {
          --d;
          if (d == 0) {
            break;
          }
        }
        --open;
      }
      return ClassOfExpr(fn, begin, open);
    }
    if (end == begin + 1 && t[begin].kind == Tok::kIdent) {
      if (t[begin].text == "this") {
        return fn.cls;
      }
      return ClassOfIdent(fn, t[begin].text);
    }
    if (end >= begin + 3 && t[end - 1].kind == Tok::kIdent &&
        (Is(t[end - 2], "->") || Is(t[end - 2], "."))) {
      const std::string base = ClassOfExpr(fn, begin, end - 2);
      if (base.empty()) {
        return std::string();
      }
      const std::string field = t[end - 1].text;
      auto types = LookupChain(base, [&](const std::string& c) -> std::vector<std::string> {
        auto it = member_types.find(Key{c, field});
        return it != member_types.end() ? it->second : std::vector<std::string>();
      });
      for (size_t j = types.size(); j-- > 0;) {
        if (KnownClass(types[j])) {
          return types[j];
        }
      }
      return std::string();
    }
    return std::string();
  }

  // Receiver expression of a member call: tokens ending right before the
  // `->`/`.` at index `op`. Returns {begin, op} of the primary expression.
  size_t ReceiverBegin(const TokVec& t, size_t op, size_t lo) {
    size_t k = op;
    while (k > lo) {
      if (Is(t[k - 1], "]")) {
        size_t open = k - 1;
        int d = 0;
        while (open > lo) {
          if (IsClose(t[open])) {
            ++d;
          } else if (IsOpen(t[open])) {
            --d;
            if (d == 0) {
              break;
            }
          }
          --open;
        }
        k = open;
        continue;
      }
      if (t[k - 1].kind == Tok::kIdent) {
        k = k - 1;
        if (k > lo + 1 && (Is(t[k - 1], "->") || Is(t[k - 1], "."))) {
          k = k - 1;
          continue;
        }
        return k;
      }
      return op;  // unresolvable (call chain, cast, ...)
    }
    return op;
  }

  // ----- P3: ring declarations -------------------------------------------

  void ScanCreateInput(const FnInfo& fn) {
    const TokVec& t = toks[fn.file_index];
    for (size_t i = fn.body_begin; i + 2 < fn.body_end && i < t.size(); ++i) {
      if (!IsId(t[i], "CreateInput") || !Is(t[i + 1], "(") || t[i + 2].kind != Tok::kString) {
        continue;
      }
      const std::string chan = t[i + 2].text;
      // Owner role: implicit this, or the receiver object before `->`/`.`.
      std::string owner_cls = fn.cls;
      if (i > fn.body_begin && (Is(t[i - 1], "->") || Is(t[i - 1], "."))) {
        const size_t rb = ReceiverBegin(t, i - 1, fn.body_begin);
        owner_cls = rb < i - 1 ? ClassOfExpr(fn, rb, i - 1) : std::string();
      }
      const std::string role = owner_cls.empty() ? std::string() : RoleForClass(owner_cls);
      if (role.empty()) {
        Note(files[fn.file_index]->path + ":" + std::to_string(t[i].line) +
             ": CreateInput with unresolvable owner role (class '" + owner_cls +
             "'); add a [[role]] entry to analyze.toml if this server's role is dynamic");
        continue;
      }
      const std::string ring = role + "/" + chan;
      const auto args = SplitArgs(t, i + 1);
      RingDecl decl;
      decl.name = ring;
      decl.consumer = role;
      decl.capacity = args.size() > 1 ? JoinTokens(t, args[1].first, args[1].second) : "";
      decl.file = files[fn.file_index]->path;
      decl.line = t[i].line;
      auto [it, inserted] = rings.emplace(ring, decl);
      if (!inserted && it->second.consumer != role) {
        Note(decl.file + ":" + std::to_string(decl.line) + ": ring '" + ring +
             "' re-declared with a different owner ('" + it->second.consumer + "' vs '" +
             role + "')");
      }
      // LHS binding: `lhs = [recv->]CreateInput(...)`.
      size_t stmt = i;
      while (stmt > fn.body_begin && !Is(t[stmt - 1], ";") && !Is(t[stmt - 1], "{") &&
             !Is(t[stmt - 1], "}")) {
        --stmt;
      }
      size_t eq = i;
      for (size_t j = stmt; j < i; ++j) {
        if (Is(t[j], "=")) {
          eq = j;
          break;
        }
      }
      if (eq < i && eq > stmt && t[eq - 1].kind == Tok::kIdent) {
        const std::string lhs = t[eq - 1].text;
        chan_binding[Key{fn.cls, lhs}].insert(ring);
        if (eq >= stmt + 3 && (Is(t[eq - 2], ".") || Is(t[eq - 2], "->"))) {
          const std::string base_cls = ClassOfExpr(fn, stmt, eq - 2);
          if (!base_cls.empty()) {
            chan_binding[Key{base_cls, lhs}].insert(ring);
          }
        }
      }
    }
  }

  // ----- P4: wiring calls -------------------------------------------------

  void ScanWiringCalls(const FnInfo& fn) {
    const TokVec& t = toks[fn.file_index];
    for (size_t i = fn.body_begin; i + 2 < fn.body_end && i < t.size(); ++i) {
      if (!(Is(t[i], "->") || Is(t[i], ".")) || t[i + 1].kind != Tok::kIdent ||
          !Is(t[i + 2], "(")) {
        continue;
      }
      const std::string callee = t[i + 1].text;
      if (callee == "CreateInput" || callee == "push_back") {
        continue;
      }
      const size_t rb = ReceiverBegin(t, i, fn.body_begin);
      if (rb >= i) {
        continue;
      }
      const std::string recv_cls = ClassOfExpr(fn, rb, i);
      if (recv_cls.empty()) {
        continue;
      }
      // Find the setter mapping on the receiver's class chain.
      std::string owner;
      const std::vector<std::pair<int, std::string>>* mapping = nullptr;
      LookupChain(recv_cls, [&](const std::string& c) -> bool {
        auto it = setters.find(Key{c, callee});
        if (it != setters.end()) {
          owner = c;
          mapping = &it->second;
          return true;
        }
        return false;
      });
      if (mapping == nullptr) {
        continue;
      }
      const auto args = SplitArgs(t, i + 2);
      for (const auto& [idx, member] : *mapping) {
        if (idx < 0 || static_cast<size_t>(idx) >= args.size()) {
          continue;
        }
        std::set<std::string> guard;
        auto ringset = ResolveChanExpr(fn, args[idx].first, args[idx].second, &guard);
        if (ringset.empty()) {
          continue;  // non-channel setter argument (ids, counts, ...)
        }
        auto& dst = member_targets[Key{owner, member}];
        dst.insert(ringset.begin(), ringset.end());
      }
    }
  }

  // ----- P5: Emit sites ---------------------------------------------------

  void ScanEmits(const FnInfo& fn) {
    const TokVec& t = toks[fn.file_index];
    for (size_t i = fn.body_begin; i + 1 < fn.body_end && i < t.size(); ++i) {
      if (!IsId(t[i], "Emit") || !Is(t[i + 1], "(")) {
        continue;
      }
      if (i > 0 && (t[i - 1].kind == Tok::kIdent || Is(t[i - 1], "->") || Is(t[i - 1], ".") ||
                    Is(t[i - 1], "::"))) {
        continue;  // declaration, definition, or qualified member
      }
      const std::string producer = fn.cls.empty() ? std::string() : RoleForClass(fn.cls);
      const auto args = SplitArgs(t, i + 1);
      if (producer.empty() || args.empty()) {
        Note(files[fn.file_index]->path + ":" + std::to_string(t[i].line) +
             ": Emit site with unresolvable producer role (class '" + fn.cls + "')");
        continue;
      }
      std::set<std::string> guard;
      auto ringset = ResolveChanExpr(fn, args[0].first, args[0].second, &guard);
      if (ringset.empty()) {
        Note(files[fn.file_index]->path + ":" + std::to_string(t[i].line) +
             ": Emit target '" + JoinTokens(t, args[0].first, args[0].second) +
             "' resolves to no ring (producer '" + producer + "')");
        continue;
      }
      for (const std::string& ring : ringset) {
        ring_producers[ring].insert(producer);
      }
    }
  }

  // ----- P6: finalize ------------------------------------------------------

  void Finalize() {
    auto expand_producers = [&](const std::set<std::string>& in) {
      std::set<std::string> out;
      for (const std::string& p : in) {
        if (p == "*") {
          out.insert(config.watched.begin(), config.watched.end());
        } else {
          out.insert(p);
        }
      }
      return out;
    };
    for (const auto& [name, decl] : rings) {
      auto prods = expand_producers(ring_producers.count(name) > 0 ? ring_producers.at(name)
                                                                   : std::set<std::string>());
      if (name.rfind("*/", 0) == 0) {
        const std::string suffix = name.substr(1);  // "/wd"
        if (config.watched.empty()) {
          Note(decl.file + ":" + std::to_string(decl.line) + ": wildcard ring '" + name +
               "' but [graph].watched is empty in analyze.toml");
        }
        for (const std::string& r : config.watched) {
          Ring ring;
          ring.name = r + suffix;
          ring.consumer = r;
          ring.producers.assign(prods.begin(), prods.end());
          ring.capacity = decl.capacity;
          ring.file = decl.file;
          ring.line = decl.line;
          model->des.push_back(std::move(ring));
        }
        continue;
      }
      Ring ring;
      ring.name = name;
      ring.consumer = decl.consumer;
      ring.producers.assign(prods.begin(), prods.end());
      ring.capacity = decl.capacity;
      ring.file = decl.file;
      ring.line = decl.line;
      model->des.push_back(std::move(ring));
    }
    std::sort(model->des.begin(), model->des.end(),
              [](const Ring& a, const Ring& b) { return a.name < b.name; });
    // Producers emitting to rings that were never declared: surface them.
    for (const auto& [ring, prods] : ring_producers) {
      if (rings.count(ring) == 0) {
        Note("producers {" + JoinRoles(prods) + "} emit to undeclared ring '" + ring + "'");
      }
    }
  }

  static std::string JoinRoles(const std::set<std::string>& roles) {
    std::string out;
    for (const std::string& r : roles) {
      if (!out.empty()) {
        out += ", ";
      }
      out += r;
    }
    return out;
  }
};

// Blocking-site scan: `while ( ...! ... Push( / TryPush( ... )` — a busy-wait
// on a ring push. Token-accurate, so comments and strings can't trigger it.
void ScanBlockingSites(const SourceFile& file, const TokVec& t, Model* model) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsId(t[i], "while") || !Is(t[i + 1], "(")) {
      continue;
    }
    const size_t close = MatchGroup(t, i + 1);
    bool has_not = false;
    bool has_push = false;
    for (size_t j = i + 2; j < close; ++j) {
      if (Is(t[j], "!")) {
        has_not = true;
      }
      if (t[j].kind == Tok::kIdent && (t[j].text == "Push" || t[j].text == "TryPush" ||
                                       t[j].text == "TryEmplace") &&
          j + 1 < close && Is(t[j + 1], "(")) {
        has_push = true;
      }
    }
    if (has_not && has_push) {
      BlockSite site;
      site.file = file.path;
      site.line = t[i].line;
      site.text = JoinTokens(t, i, close + 1 < t.size() ? close + 1 : t.size());
      model->block_sites.push_back(std::move(site));
    }
  }
}

// Live wiring table parse: the rows of kLiveRingSpecs and the strings of
// kLiveWatchedRoles, straight from the header's tokens.
void ParseLiveWiring(const SourceFile& file, const TokVec& t, Model* model) {
  // Both tables are anchored on their declaration shape (`name [ ] = {`) so
  // later mentions — the sizeof() in the element-count constants — don't
  // restart a parse and skip real declarations.
  auto decl_brace = [&](size_t i) -> size_t {
    if (i + 4 < t.size() && Is(t[i + 1], "[") && Is(t[i + 2], "]") && Is(t[i + 3], "=") &&
        Is(t[i + 4], "{")) {
      return i + 4;
    }
    return t.size();
  };
  for (size_t i = 0; i < t.size(); ++i) {
    if (IsId(t[i], "kLiveRingSpecs")) {
      const size_t brace = decl_brace(i);
      if (brace >= t.size()) {
        continue;
      }
      const size_t close = MatchGroup(t, brace);
      size_t j = brace + 1;
      while (j < close) {
        if (Is(t[j], "{")) {
          const size_t rc = MatchGroup(t, j);
          std::vector<const Tok*> fields;
          for (size_t k = j + 1; k < rc; ++k) {
            if (t[k].kind == Tok::kString || t[k].kind == Tok::kIdent) {
              fields.push_back(&t[k]);
            }
          }
          if (fields.size() == 5 && fields[0]->kind == Tok::kString) {
            LiveRing lr;
            lr.name = fields[0]->text;
            lr.producer = fields[1]->text;
            lr.consumer = fields[2]->text;
            lr.in_mini = fields[3]->text == "true";
            lr.in_full = fields[4]->text == "true";
            lr.file = file.path;
            lr.line = fields[0]->line;
            model->live.push_back(std::move(lr));
          }
          j = rc + 1;
          continue;
        }
        ++j;
      }
      i = close;
      continue;
    }
    if (IsId(t[i], "kLiveWatchedRoles")) {
      const size_t brace = decl_brace(i);
      if (brace >= t.size()) {
        continue;
      }
      const size_t close = MatchGroup(t, brace);
      for (size_t k = brace + 1; k < close; ++k) {
        if (t[k].kind == Tok::kString) {
          model->live_watched.push_back(t[k].text);
        }
      }
      i = close;
    }
  }
}

bool UnderPath(const std::string& file, const std::string& prefix) {
  if (prefix.empty()) {
    return false;
  }
  if (file == prefix) {
    return true;
  }
  return file.size() > prefix.size() && file.compare(0, prefix.size(), prefix) == 0 &&
         file[prefix.size()] == '/';
}

}  // namespace

void ExtractSources(const std::vector<SourceFile>& files, const Config& config, Model* model) {
  Extractor ex(config, model);
  std::vector<TokVec> all_toks;
  all_toks.reserve(files.size());
  for (const SourceFile& f : files) {
    all_toks.push_back(Lex(f.text));
  }
  for (size_t i = 0; i < files.size(); ++i) {
    const bool is_live = !config.live_wiring.empty() && files[i].path == config.live_wiring;
    if (is_live) {
      ParseLiveWiring(files[i], all_toks[i], model);
    }
    ScanBlockingSites(files[i], all_toks[i], model);
    bool is_extract = false;
    if (config.extract_paths.empty()) {
      is_extract = !is_live;
    } else {
      for (const std::string& p : config.extract_paths) {
        if (UnderPath(files[i].path, p)) {
          is_extract = true;
          break;
        }
      }
    }
    if (is_extract) {
      ex.files.push_back(&files[i]);
      ex.toks.push_back(all_toks[i]);
    }
  }
  // P1 over every extracted file first: cross-TU resolution needs the full
  // class/member tables before any body is interpreted.
  for (size_t i = 0; i < ex.files.size(); ++i) {
    ex.ScanStructure(i);
  }
  for (const RoleEntry& r : config.roles) {
    if (ex.role_of.emplace(r.cls, r.role).second) {
      r.used = ex.class_bases.count(r.cls) > 0;
    } else {
      r.used = true;  // overrides a literal — still referenced
    }
  }
  ex.ScanAccessorsAndSetters();
  for (const auto& fn : ex.fns) {
    ex.ScanCreateInput(fn);
  }
  for (const auto& fn : ex.fns) {
    ex.ScanWiringCalls(fn);
  }
  for (const auto& fn : ex.fns) {
    ex.ScanEmits(fn);
  }
  ex.Finalize();
}

}  // namespace newtos::analyze
