// analyze.toml parser: the same deliberate TOML subset as lint.toml —
// `[extract]`/`[graph]` tables with string/array values and
// `[[shared]]`/`[[blocking]]`/`[[role]]` array-of-tables entries. Every
// waiver-shaped entry must carry a reason: an unexplained exception is a
// configuration error, exactly as in the linter.

#include <cctype>
#include <fstream>
#include <sstream>

#include "tools/analyze/analyze.h"

namespace newtos::analyze {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Strips a trailing # comment that is not inside a double-quoted string.
std::string StripComment(const std::string& s) {
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') {
      in_string = !in_string;
    } else if (s[i] == '#' && !in_string) {
      return s.substr(0, i);
    }
  }
  return s;
}

// Parses `"quoted"` at position `i` (on a quote); no escape sequences —
// paths, ring names and reasons never need them.
bool ParseString(const std::string& s, size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') {
    return false;
  }
  const size_t end = s.find('"', *i + 1);
  if (end == std::string::npos) {
    return false;
  }
  *out = s.substr(*i + 1, end - *i - 1);
  *i = end + 1;
  return true;
}

bool ParseStringArray(const std::string& v, std::vector<std::string>* out) {
  const std::string t = Trim(v);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return false;
  }
  size_t i = 1;
  while (i < t.size() - 1) {
    while (i < t.size() - 1 && (std::isspace(static_cast<unsigned char>(t[i])) || t[i] == ',')) {
      ++i;
    }
    if (i >= t.size() - 1) {
      break;
    }
    std::string item;
    if (!ParseString(t, &i, &item)) {
      return false;
    }
    out->push_back(item);
  }
  return true;
}

}  // namespace

const SharedEntry* Config::FindShared(const std::string& ring_name) const {
  for (const SharedEntry& e : shared) {
    const bool match =
        e.pattern.front() == '/'
            ? ring_name.size() >= e.pattern.size() &&
                  ring_name.compare(ring_name.size() - e.pattern.size(), e.pattern.size(),
                                    e.pattern) == 0
            : ring_name == e.pattern;
    if (match) {
      e.used = true;
      return &e;
    }
  }
  return nullptr;
}

bool ParseConfig(const std::string& text, Config* config, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  enum class Section { kNone, kExtract, kGraph, kShared, kBlocking, kRole };
  Section section = Section::kNone;
  SharedEntry* shared = nullptr;
  BlockingEntry* blocking = nullptr;
  RoleEntry* role = nullptr;

  auto fail = [&](const std::string& why) {
    std::ostringstream oss;
    oss << "analyze.toml:" << lineno << ": " << why;
    *error = oss.str();
    return false;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = Trim(StripComment(line));
    if (t.empty()) {
      continue;
    }
    if (t == "[[shared]]") {
      config->shared.emplace_back();
      shared = &config->shared.back();
      section = Section::kShared;
      continue;
    }
    if (t == "[[blocking]]") {
      config->blocking.emplace_back();
      blocking = &config->blocking.back();
      section = Section::kBlocking;
      continue;
    }
    if (t == "[[role]]") {
      config->roles.emplace_back();
      role = &config->roles.back();
      section = Section::kRole;
      continue;
    }
    if (t.front() == '[') {
      if (t.back() != ']') {
        return fail("unterminated table header");
      }
      const std::string name = Trim(t.substr(1, t.size() - 2));
      if (name == "extract") {
        section = Section::kExtract;
      } else if (name == "graph") {
        section = Section::kGraph;
      } else {
        return fail("unknown table [" + name +
                    "] (expected [extract], [graph], [[shared]], [[blocking]] or [[role]])");
      }
      continue;
    }
    const size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return fail("expected key = value");
    }
    const std::string key = Trim(t.substr(0, eq));
    const std::string value = Trim(t.substr(eq + 1));
    size_t i = 0;
    std::string sval;
    if (section == Section::kExtract) {
      if (key == "paths") {
        if (!ParseStringArray(value, &config->extract_paths)) {
          return fail("paths must be an array of strings");
        }
      } else if (key == "blocking_paths") {
        if (!ParseStringArray(value, &config->blocking_paths)) {
          return fail("blocking_paths must be an array of strings");
        }
      } else if (key == "live_wiring") {
        if (!ParseString(value, &i, &config->live_wiring)) {
          return fail("live_wiring must be a quoted string");
        }
      } else {
        return fail("unknown key '" + key + "' in [extract]");
      }
    } else if (section == Section::kGraph) {
      if (key != "watched") {
        return fail("unknown key '" + key + "' in [graph] (expected watched)");
      }
      if (!ParseStringArray(value, &config->watched)) {
        return fail("watched must be an array of strings");
      }
    } else if (section == Section::kShared) {
      if (!ParseString(value, &i, &sval)) {
        return fail(key + " must be a quoted string");
      }
      if (key == "ring") {
        shared->pattern = sval;
      } else if (key == "reason") {
        shared->reason = sval;
      } else {
        return fail("unknown key '" + key + "' in [[shared]]");
      }
    } else if (section == Section::kBlocking) {
      if (!ParseString(value, &i, &sval)) {
        return fail(key + " must be a quoted string");
      }
      if (key == "file") {
        blocking->file = sval;
      } else if (key == "ring") {
        blocking->ring = sval;
      } else if (key == "reason") {
        blocking->reason = sval;
      } else {
        return fail("unknown key '" + key + "' in [[blocking]]");
      }
    } else if (section == Section::kRole) {
      if (!ParseString(value, &i, &sval)) {
        return fail(key + " must be a quoted string");
      }
      if (key == "class") {
        role->cls = sval;
      } else if (key == "role") {
        role->role = sval;
      } else if (key == "reason") {
        role->reason = sval;
      } else {
        return fail("unknown key '" + key + "' in [[role]]");
      }
    } else {
      return fail("key outside any table");
    }
  }

  for (const SharedEntry& e : config->shared) {
    if (e.pattern.empty()) {
      *error = "analyze.toml: [[shared]] entry missing ring";
      return false;
    }
    if (e.reason.empty()) {
      *error = "analyze.toml: shared ring '" + e.pattern +
               "' has no reason — unexplained waivers are analysis failures";
      return false;
    }
  }
  for (const BlockingEntry& e : config->blocking) {
    if (e.file.empty() || e.ring.empty()) {
      *error = "analyze.toml: [[blocking]] entry missing file or ring";
      return false;
    }
    if (e.reason.empty()) {
      *error = "analyze.toml: blocking site in '" + e.file +
               "' has no reason — unexplained waivers are analysis failures";
      return false;
    }
  }
  for (const RoleEntry& e : config->roles) {
    if (e.cls.empty() || e.role.empty()) {
      *error = "analyze.toml: [[role]] entry missing class or role";
      return false;
    }
    if (e.reason.empty()) {
      *error = "analyze.toml: role mapping for '" + e.cls + "' has no reason";
      return false;
    }
  }
  return true;
}

bool LoadConfig(const std::string& path, Config* config, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config: " + path;
    return false;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseConfig(oss.str(), config, error);
}

}  // namespace newtos::analyze
