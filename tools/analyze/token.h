// Minimal C++ lexer for newtos_analyze. The extractor and the blocking-site
// scanner both work on this token stream instead of raw lines: comments and
// string contents can never fake a call site, and multi-line declarations
// need no special casing.
//
// Deliberate simplifications, safe for this codebase's style:
//   - Preprocessor lines are skipped wholesale (honoring \ continuations),
//     which keeps the code of *every* #if branch — the extractor wants the
//     union over configurations anyway.
//   - Only the two-character operators that change parsing decisions are
//     combined ("::", "->", "==", ...); "<<" and ">>" stay split so template
//     argument lists close one token at a time.
//   - String tokens carry their unquoted value: ring and role names come
//     straight out of the literal.

#ifndef TOOLS_ANALYZE_TOKEN_H_
#define TOOLS_ANALYZE_TOKEN_H_

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace newtos::analyze {

struct Tok {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = kPunct;
  std::string text;  // for kString: the literal's value, quotes stripped
  int line = 1;
};

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::vector<Tok> Lex(const std::string& text) {
  std::vector<Tok> out;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, following continuations.
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == '"' || (c == 'R' && i + 1 < n && text[i + 1] == '"')) {
      Tok t;
      t.kind = Tok::kString;
      t.line = line;
      if (c == 'R') {
        // Raw string: R"delim( ... )delim"
        size_t j = i + 2;
        std::string delim;
        while (j < n && text[j] != '(') {
          delim += text[j++];
        }
        const std::string closer = ")" + delim + "\"";
        const size_t end = text.find(closer, j);
        const size_t stop = end == std::string::npos ? n : end;
        for (size_t k = j + 1; k < stop; ++k) {
          if (text[k] == '\n') {
            ++line;
          }
          t.text += text[k];
        }
        i = stop == n ? n : stop + closer.size();
      } else {
        ++i;
        while (i < n && text[i] != '"') {
          if (text[i] == '\\' && i + 1 < n) {
            t.text += text[i + 1];
            i += 2;
            continue;
          }
          if (text[i] == '\n') {
            ++line;  // unterminated; keep line counts sane
          }
          t.text += text[i++];
        }
        if (i < n) {
          ++i;  // closing quote
        }
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      // Character literal — treat as an opaque number-like token.
      Tok t;
      t.kind = Tok::kNumber;
      t.line = line;
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) {
          t.text += text[i + 1];
          i += 2;
          continue;
        }
        t.text += text[i++];
      }
      if (i < n) {
        ++i;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (IsIdentStart(c)) {
      Tok t;
      t.kind = Tok::kIdent;
      t.line = line;
      while (i < n && IsIdentChar(text[i])) {
        t.text += text[i++];
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      Tok t;
      t.kind = Tok::kNumber;
      t.line = line;
      while (i < n && (IsIdentChar(text[i]) || text[i] == '\'' || text[i] == '.' ||
                       ((text[i] == '+' || text[i] == '-') && i > 0 &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E' || text[i - 1] == 'p' ||
                         text[i - 1] == 'P')))) {
        if (text[i] != '\'') {  // drop digit separators
          t.text += text[i];
        }
        ++i;
      }
      out.push_back(std::move(t));
      continue;
    }
    Tok t;
    t.kind = Tok::kPunct;
    t.line = line;
    t.text = std::string(1, c);
    if (i + 1 < n) {
      const char d = text[i + 1];
      // Combine only the pairs whose split forms would confuse the scans.
      static const char* kPairs[] = {"::", "->", "==", "!=", "<=", ">=", "+=", "-=",
                                     "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||",
                                     "++", "--"};
      const std::string two = std::string(1, c) + d;
      for (const char* p : kPairs) {
        if (two == p) {
          t.text = two;
          ++i;
          break;
        }
      }
    }
    ++i;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace newtos::analyze

#endif  // TOOLS_ANALYZE_TOKEN_H_
