// newtos_analyze CLI.
//
//   newtos_analyze --root <repo> [--config <analyze.toml>] [--github]
//                  [--verbose] [--print]
//
// Extracts the ring graph from the configured source trees, runs the SPSC /
// blocking-site / wait-cycle checks, and prints any violations. --github
// wraps them in workflow commands so CI annotates the offending lines.
// --print dumps the canonical wiring text (DES graph plus both live stack
// flavours) — the same text the equivalence gate compares against the
// dynamic checkers. Exit codes: 0 clean, 1 violations, 2 configuration or
// extraction error.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: newtos_analyze [--root DIR] [--config FILE] [--github] "
        "[--verbose] [--print]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using newtos::analyze::Config;
  using newtos::analyze::Diagnostic;
  using newtos::analyze::Model;

  std::string root = ".";
  std::string config_path;
  bool github = false;
  bool verbose = false;
  bool print = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--print") {
      print = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::cerr << "newtos_analyze: unknown argument '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    }
  }
  if (config_path.empty()) {
    config_path = root + "/tools/analyze/analyze.toml";
  }

  Config config;
  std::string error;
  if (!newtos::analyze::LoadConfig(config_path, &config, &error)) {
    std::cerr << "newtos_analyze: " << error << "\n";
    return 2;
  }
  Model model;
  if (!newtos::analyze::ExtractTree(root, config, &model, &error)) {
    std::cerr << "newtos_analyze: " << error << "\n";
    return 2;
  }
  std::vector<Diagnostic> diags;
  newtos::analyze::RunChecks(model, config, &diags);

  if (print) {
    std::cout << "# DES ring graph (union over stack configurations)\n";
    newtos::analyze::WriteDesWiring(model, std::cout);
    std::cout << "# live stack, full flavour\n";
    newtos::analyze::WriteLiveWiring(model, /*mini=*/false, std::cout);
    std::cout << "# live stack, mini flavour\n";
    newtos::analyze::WriteLiveWiring(model, /*mini=*/true, std::cout);
  }

  size_t violations = 0;
  size_t waived = 0;
  size_t notes = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == "note") {
      ++notes;
      if (verbose) {
        std::cout << "note: " << d.message << "\n";
      }
      continue;
    }
    if (d.waived) {
      ++waived;
      if (verbose) {
        std::cout << d.file << ":" << d.line << ": waived [" << d.rule << "] " << d.message
                  << " (reason: " << d.waive_reason << ")\n";
      }
      continue;
    }
    ++violations;
    if (github) {
      std::cout << "::error file=" << d.file << ",line=" << d.line << "::" << d.rule << ": "
                << d.message << "\n";
    } else {
      std::cout << d.file << ":" << d.line << ": error [" << d.rule << "] " << d.message
                << "\n";
    }
  }
  if (verbose) {
    for (const std::string& note : model.notes) {
      std::cout << "note: " << note << "\n";
    }
  }
  notes += model.notes.size();

  std::cout << "newtos_analyze: " << model.des.size() << " DES rings, " << model.live.size()
            << " live table rows, " << model.block_sites.size() << " spin sites; "
            << violations << " violation(s), " << waived << " waived, " << notes
            << " note(s)\n";
  return violations > 0 ? 1 : 0;
}
