// newtos_analyze: static ring-graph extraction and verification.
//
// Where newtos_lint pattern-matches single lines, this tool is
// declaration-aware: it lexes the C++ sources into tokens, recognizes ring
// declarations (Server::CreateInput call sites and the live-stack wiring
// table), accessor/setter definitions, cross-server wiring calls and Emit
// sites, and lowers them into a small IR — nodes are server roles, edges are
// rings with a direction, a capacity expression, and a declaration site.
//
// Over that IR run three checks:
//   1. SPSC discipline — every ring has exactly one producing role, unless
//      declared shared-by-design in analyze.toml with a mandatory reason.
//   2. Deadlock freedom — blocking waits exist only at sanctioned
//      busy-wait-push sites ([[blocking]] entries); the resulting wait
//      graph (blocked producer -> ring consumer) must be acyclic.
//   3. Static/dynamic agreement — the extracted graph serializes to a
//      canonical sorted text that a ctest gate compares against the wiring
//      the runtime checkers actually observed (see tests/wiring_equiv_test).
//
// The DES graph is a *union over stack configurations*: `ip` feeds the L4
// rings directly or through `pf` depending on StackConfig, and both wirings
// appear as producers. The equivalence gate mirrors this by folding several
// dynamic runs into one observation. Like the linter, this tool has zero
// dependencies beyond the standard library.

#ifndef TOOLS_ANALYZE_ANALYZE_H_
#define TOOLS_ANALYZE_ANALYZE_H_

#include <ostream>
#include <string>
#include <vector>

namespace newtos::analyze {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;  // "multi-producer", "wait-cycle", "blocking-push"
  std::string message;
  bool waived = false;
  std::string waive_reason;
};

// [[role]]: maps a Server subclass whose role name is not a string literal in
// its constructor (e.g. AppProcess, named at runtime) onto a static role.
struct RoleEntry {
  std::string cls;
  std::string role;
  std::string reason;
  mutable bool used = false;
};

// [[shared]]: a ring allowed to have several producing roles. `pattern` is an
// exact ring name ("ip/tx") or a "/suffix" matching any ring ending with it.
struct SharedEntry {
  std::string pattern;
  std::string reason;
  mutable bool used = false;
};

// [[blocking]]: sanctions a busy-wait push site. `file` is a path prefix;
// `ring` is an exact ring name or a "*/suffix" pattern naming the rings the
// site can block on. Each sanctioned site contributes wait edges
// (ring producer -> ring consumer) to the deadlock check; a spin site not
// covered by any entry is a "blocking-push" violation.
struct BlockingEntry {
  std::string file;
  std::string ring;
  std::string reason;
  mutable bool used = false;
};

struct Config {
  std::vector<std::string> extract_paths;   // dirs lexed for the DES graph
  std::vector<std::string> blocking_paths;  // extra dirs scanned for spin sites
  std::string live_wiring;                  // live wiring table header, "" = none
  std::vector<std::string> watched;         // roles the "*" wildcard expands to
  std::vector<RoleEntry> roles;
  std::vector<SharedEntry> shared;
  std::vector<BlockingEntry> blocking;

  const SharedEntry* FindShared(const std::string& ring_name) const;
};

// Parses the analyze.toml subset (same dialect as lint.toml: [section] tables,
// [[entry]] arrays, key = "string" / ["array", "of", "strings"]). Every
// [[shared]]/[[blocking]]/[[role]] entry must carry a reason — unexplained
// waivers are configuration errors, mirroring the linter.
bool ParseConfig(const std::string& text, Config* config, std::string* error);
bool LoadConfig(const std::string& path, Config* config, std::string* error);

// --------------------------------------------------------------------------
// IR.

struct Ring {
  std::string name;      // "role/chan", e.g. "ip/rx"
  std::string consumer;  // owning role (CreateInput caller)
  std::vector<std::string> producers;  // sorted, unique
  std::string capacity;  // capacity expression text from the declaration
  std::string file;
  int line = 0;
};

struct LiveRing {
  std::string name;
  std::string producer;
  std::string consumer;
  bool in_mini = false;
  bool in_full = false;
  std::string file;
  int line = 0;
};

struct BlockSite {
  std::string file;
  int line = 0;
  std::string text;  // the spin condition, for the report
};

struct Model {
  std::vector<Ring> des;          // sorted by name after extraction
  std::vector<LiveRing> live;     // data rings from the live wiring table
  std::vector<std::string> live_watched;  // roles with wd/<r> + <r>/wd rings
  std::vector<BlockSite> block_sites;
  std::vector<std::string> notes;  // informational: unresolved emits, etc.
};

struct SourceFile {
  std::string path;  // repo-relative, forward slashes
  std::string text;
};

// Lexes the given sources and lowers them into `model` (passes: roles,
// ring declarations, accessors/setters, wiring calls, Emit sites, wildcard
// expansion). Fixture tests drive this directly with synthetic files.
void ExtractSources(const std::vector<SourceFile>& files, const Config& config, Model* model);

// Walks config.extract_paths (+ blocking_paths + live_wiring) under `root`
// and runs ExtractSources over what it finds.
bool ExtractTree(const std::string& root, const Config& config, Model* model, std::string* error);

// Runs the SPSC, blocking-site and deadlock checks; appends diagnostics
// (waived ones included) and informational notes (unused config entries).
void RunChecks(const Model& model, const Config& config, std::vector<Diagnostic>* out);

// Canonical sorted wiring text, one ring per line:
//   ring <name> consumer=<role> producers=<r1,r2>
// The dynamic checkers emit the same format (ChannelChecker::WriteWiring,
// WriteLiveWiring), so equality is plain string comparison.
void WriteDesWiring(const Model& model, std::ostream& os);
void WriteLiveWiring(const Model& model, bool mini, std::ostream& os);

}  // namespace newtos::analyze

#endif  // TOOLS_ANALYZE_ANALYZE_H_
