// Checks and serialization for newtos_analyze: the SPSC-discipline and
// blocking-site rules, the blocking-wait-graph cycle search, and the
// canonical wiring text the equivalence gate compares against the dynamic
// checkers.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"

namespace newtos::analyze {
namespace {

// Role of the watchdog thread in the live stack; the wd/<r> and <r>/wd rings
// are synthesized per watched role (src/runtime/live_stack.cc) rather than
// listed row-by-row in the wiring table.
constexpr const char* kLiveWatchdogRole = "watchdog";

std::string JoinComma(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) {
      out += ',';
    }
    out += s;
  }
  return out;
}

bool PathPrefix(const std::string& file, const std::string& prefix) {
  if (prefix.empty() || file.size() < prefix.size() ||
      file.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return file.size() == prefix.size() || file[prefix.size()] == '/' ||
         prefix.back() == '/';
}

// "*/wd"-style pattern: "*" before a suffix matches any ring ending with it;
// otherwise the match is exact.
bool RingMatches(const std::string& pattern, const std::string& ring) {
  if (pattern.size() > 1 && pattern[0] == '*') {
    const std::string suffix = pattern.substr(1);
    return ring.size() >= suffix.size() &&
           ring.compare(ring.size() - suffix.size(), suffix.size(), suffix) == 0;
  }
  return pattern == ring;
}

// One directed edge of a blocking-wait graph: the producer of `ring` can
// busy-wait until the consumer drains it.
struct WaitEdge {
  std::string from;
  std::string ring;
  std::string to;
  std::string file;
  int line = 0;
};

// Depth-first cycle search. Every cycle found is canonicalized (rotated so
// the lexicographically smallest role leads) and reported once, as a
// "role -> ring -> role -> ... -> role" chain.
void FindWaitCycles(const std::vector<WaitEdge>& edges, const std::string& graph,
                    std::set<std::string>* reported, std::vector<Diagnostic>* out) {
  std::map<std::string, std::vector<const WaitEdge*>> adj;
  for (const WaitEdge& e : edges) {
    adj[e.from].push_back(&e);
  }
  std::vector<const WaitEdge*> path;
  std::set<std::string> on_path;
  std::set<std::string> done;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    on_path.insert(node);
    auto it = adj.find(node);
    if (it != adj.end()) {
      for (const WaitEdge* e : it->second) {
        if (on_path.count(e->to) > 0) {
          std::vector<const WaitEdge*> cyc;
          size_t start = 0;
          while (start < path.size() && path[start]->from != e->to) {
            ++start;
          }
          for (size_t i = start; i < path.size(); ++i) {
            cyc.push_back(path[i]);
          }
          cyc.push_back(e);
          size_t lead = 0;
          for (size_t i = 1; i < cyc.size(); ++i) {
            if (cyc[i]->from < cyc[lead]->from) {
              lead = i;
            }
          }
          std::string chain = cyc[lead]->from;
          for (size_t i = 0; i < cyc.size(); ++i) {
            const WaitEdge* step = cyc[(lead + i) % cyc.size()];
            chain += " -> " + step->ring + " -> " + step->to;
          }
          const std::string key = graph + ":" + chain;
          if (reported->insert(key).second) {
            Diagnostic d;
            d.file = cyc[lead]->file;
            d.line = cyc[lead]->line;
            d.rule = "wait-cycle";
            d.message = "blocking-wait cycle in the " + graph + " graph: " + chain;
            out->push_back(std::move(d));
          }
        } else if (done.count(e->to) == 0) {
          path.push_back(e);
          dfs(e->to);
          path.pop_back();
        }
      }
    }
    on_path.erase(node);
    done.insert(node);
  };
  for (const auto& [node, unused] : adj) {
    (void)unused;
    if (done.count(node) == 0) {
      dfs(node);
    }
  }
}

void Note(std::vector<Diagnostic>* out, const std::string& message) {
  Diagnostic d;
  d.rule = "note";
  d.message = message;
  d.waived = true;
  out->push_back(std::move(d));
}

// The live rings of one flavour, wd rings synthesized for the full stack.
std::vector<LiveRing> LiveRingsFor(const Model& model, bool mini) {
  std::vector<LiveRing> rings;
  for (const LiveRing& r : model.live) {
    if (mini ? r.in_mini : r.in_full) {
      rings.push_back(r);
    }
  }
  if (!mini) {
    for (const std::string& r : model.live_watched) {
      LiveRing hb;  // watchdog -> server heartbeats
      hb.name = "wd/" + r;
      hb.producer = kLiveWatchdogRole;
      hb.consumer = r;
      rings.push_back(hb);
      LiveRing ack;  // server -> watchdog acks
      ack.name = r + "/wd";
      ack.producer = r;
      ack.consumer = kLiveWatchdogRole;
      rings.push_back(ack);
    }
  }
  std::sort(rings.begin(), rings.end(),
            [](const LiveRing& a, const LiveRing& b) { return a.name < b.name; });
  return rings;
}

}  // namespace

bool ExtractTree(const std::string& root, const Config& config, Model* model,
                 std::string* error) {
  namespace fs = std::filesystem;
  std::set<std::string> rel_paths;
  auto add_dir = [&](const std::string& dir) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      return false;
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        return false;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp") {
        rel_paths.insert(fs::relative(it->path(), root, ec).generic_string());
      }
    }
    return true;
  };
  for (const std::string& dir : config.extract_paths) {
    if (!add_dir(dir)) {
      *error = "cannot walk extract path: " + dir + " (under " + root + ")";
      return false;
    }
  }
  for (const std::string& dir : config.blocking_paths) {
    if (!add_dir(dir)) {
      *error = "cannot walk blocking path: " + dir + " (under " + root + ")";
      return false;
    }
  }
  if (!config.live_wiring.empty()) {
    rel_paths.insert(config.live_wiring);
  }
  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      *error = "cannot read source file: " + rel;
      return false;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    files.push_back(SourceFile{rel, oss.str()});
  }
  ExtractSources(files, config, model);
  return true;
}

void RunChecks(const Model& model, const Config& config, std::vector<Diagnostic>* out) {
  // 1. SPSC discipline: one producing role per ring, or a reasoned waiver.
  for (const Ring& ring : model.des) {
    if (ring.producers.size() > 1) {
      Diagnostic d;
      d.file = ring.file;
      d.line = ring.line;
      d.rule = "multi-producer";
      d.message = "ring '" + ring.name + "' has " +
                  std::to_string(ring.producers.size()) + " producing roles {" +
                  JoinComma(ring.producers) + "} (consumer: " + ring.consumer + ")";
      if (const SharedEntry* e = config.FindShared(ring.name)) {
        d.waived = true;
        d.waive_reason = e->reason;
      }
      out->push_back(std::move(d));
    } else if (ring.producers.empty()) {
      Note(out, ring.file + ":" + std::to_string(ring.line) + ": ring '" + ring.name +
                    "' has no statically resolved producer (pushed only from "
                    "outside the server graph, or never)");
    }
  }

  // 2. Blocking-push sites: each spin-on-push must be sanctioned.
  for (const BlockSite& site : model.block_sites) {
    Diagnostic d;
    d.file = site.file;
    d.line = site.line;
    d.rule = "blocking-push";
    d.message = "busy-wait on a ring push: `" + site.text + "`";
    for (const BlockingEntry& e : config.blocking) {
      if (PathPrefix(site.file, e.file)) {
        d.waived = true;
        d.waive_reason = e.reason;
        e.used = true;
        break;
      }
    }
    out->push_back(std::move(d));
  }

  // 3. Deadlock freedom: the sanctioned blocking sites induce wait edges
  // (blocked producer -> ring consumer) over every graph a matching ring
  // lives in; each graph must stay acyclic. DES Emit never blocks, so the
  // DES graph only gains edges through [[blocking]] ring patterns too.
  std::set<std::string> reported;
  {
    std::vector<WaitEdge> edges;
    for (const Ring& ring : model.des) {
      for (const BlockingEntry& e : config.blocking) {
        if (!RingMatches(e.ring, ring.name)) {
          continue;
        }
        for (const std::string& p : ring.producers) {
          edges.push_back(WaitEdge{p, ring.name, ring.consumer, ring.file, ring.line});
        }
        break;
      }
    }
    FindWaitCycles(edges, "DES", &reported, out);
  }
  for (const bool mini : {false, true}) {
    std::vector<WaitEdge> edges;
    for (const LiveRing& ring : LiveRingsFor(model, mini)) {
      for (const BlockingEntry& e : config.blocking) {
        if (!RingMatches(e.ring, ring.name)) {
          continue;
        }
        edges.push_back(
            WaitEdge{ring.producer, ring.name, ring.consumer, ring.file, ring.line});
        break;
      }
    }
    FindWaitCycles(edges, mini ? "live-mini" : "live-full", &reported, out);
  }

  // Unused waivers are stale configuration — surface them.
  for (const SharedEntry& e : config.shared) {
    if (!e.used) {
      Note(out, "analyze.toml: [[shared]] ring '" + e.pattern +
                    "' matched no multi-producer ring (stale waiver?)");
    }
  }
  for (const BlockingEntry& e : config.blocking) {
    if (!e.used) {
      Note(out, "analyze.toml: [[blocking]] entry for '" + e.file +
                    "' sanctioned no spin site (stale waiver?)");
    }
  }
  for (const RoleEntry& e : config.roles) {
    if (!e.used) {
      Note(out, "analyze.toml: [[role]] mapping '" + e.cls + "' -> '" + e.role +
                    "' matched no extracted class");
    }
  }
}

void WriteDesWiring(const Model& model, std::ostream& os) {
  for (const Ring& ring : model.des) {
    os << "ring " << ring.name << " consumer=" << ring.consumer
       << " producers=" << JoinComma(ring.producers) << "\n";
  }
}

void WriteLiveWiring(const Model& model, bool mini, std::ostream& os) {
  for (const LiveRing& ring : LiveRingsFor(model, mini)) {
    os << "ring " << ring.name << " consumer=" << ring.consumer
       << " producers=" << ring.producer << "\n";
  }
}

}  // namespace newtos::analyze
