// newtos_scenario: run .nsc scenario scripts and judge their expectations.
//
//   newtos_scenario scenarios/wan/loss_1pct.nsc        one script, all freqs
//   newtos_scenario --dir scenarios/wan --check        sweep a directory,
//                                                      exit 1 on any FAIL
//   newtos_scenario --dir scenarios/tab7 --campaign-csv out.csv
//       run the scripts in campaign order (freq outer, script inner) and
//       write the CampaignTable CSV — byte-comparable to tab7's output
//   newtos_scenario --decomp out/wan_ x.nsc            force tracing and
//       write per-stage latency decomposition + CDF CSVs per run
//   newtos_scenario --alloc-gate x.nsc                 fail unless the
//       measurement window performed ZERO heap allocations — the scripted
//       interpreter must not add per-event cost over the engine it drives
//   newtos_scenario --lanes N ...                      override incast lanes
//   newtos_scenario --list --dir scenarios             parse + describe only
//
// The counting allocator mirrors bench/perf_engine.cc: global operator
// new/delete count every allocation in this binary, and the runner's window
// hooks sample the counter exactly at the measurement window's edges.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "src/fault/campaign.h"
#include "src/scenario/parser.h"
#include "src/scenario/runner.h"
#include "src/trace/latency_decomp.h"

// --- Counting allocator hook -----------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace newtos::scenario {
namespace {

struct Args {
  std::vector<std::string> files;
  std::string dir;
  std::string csv;
  std::string campaign_csv;
  std::string decomp_prefix;
  int lanes = 0;
  bool check = false;
  bool list = false;
  bool alloc_gate = false;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [SCRIPT.nsc ...] [--dir PATH] [--check] [--list] [--lanes N]\n"
               "          [--csv PATH] [--campaign-csv PATH] [--decomp PREFIX] [--alloc-gate]\n",
               argv0);
  return 2;
}

std::string FreqTag(FreqKhz f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lldkhz", static_cast<long long>(f));
  return buf;
}

int Run(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--dir") == 0 && i + 1 < argc) {
      args.dir = argv[++i];
    } else if (std::strcmp(a, "--csv") == 0 && i + 1 < argc) {
      args.csv = argv[++i];
    } else if (std::strcmp(a, "--campaign-csv") == 0 && i + 1 < argc) {
      args.campaign_csv = argv[++i];
    } else if (std::strcmp(a, "--decomp") == 0 && i + 1 < argc) {
      args.decomp_prefix = argv[++i];
    } else if (std::strcmp(a, "--lanes") == 0 && i + 1 < argc) {
      args.lanes = std::atoi(argv[++i]);
      if (args.lanes < 1) {
        std::fprintf(stderr, "--lanes must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(a, "--check") == 0) {
      args.check = true;
    } else if (std::strcmp(a, "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(a, "--alloc-gate") == 0) {
      args.alloc_gate = true;
    } else if (a[0] == '-') {
      return Usage(argv[0]);
    } else {
      args.files.push_back(a);
    }
  }
  if (args.files.empty() && args.dir.empty()) {
    return Usage(argv[0]);
  }

  std::vector<Script> scripts;
  ParseError err;
  if (!args.dir.empty() && !LoadScriptDir(args.dir, &scripts, &err)) {
    std::fprintf(stderr, "%s\n", err.Format().c_str());
    return 2;
  }
  for (const std::string& f : args.files) {
    Script s;
    if (!LoadScript(f, &s, &err)) {
      std::fprintf(stderr, "%s\n", err.Format().c_str());
      return 2;
    }
    scripts.push_back(std::move(s));
  }

  if (args.list) {
    for (const Script& s : scripts) {
      std::string freqs;
      for (FreqKhz f : s.freqs) {
        freqs += (freqs.empty() ? "" : " ") + Table::Num(static_cast<double>(f) / 1e6, 1);
      }
      std::printf("%-28s %-8s freqs[GHz]: %-12s injects: %zu expects: %zu  (%s)\n",
                  s.name.c_str(), s.topology == Topology::kIncast ? "incast" : "p2p",
                  freqs.c_str(), s.injects.size(), s.expects.size(), s.path.c_str());
    }
    return 0;
  }

  if (!args.campaign_csv.empty()) {
    ScenarioRunner runner;
    const std::vector<CampaignCell> cells = runner.RunCampaignOrder(scripts);
    const Table t = CampaignTable(cells);
    if (!t.WriteCsvFile(args.campaign_csv)) {
      std::fprintf(stderr, "cannot write %s\n", args.campaign_csv.c_str());
      return 1;
    }
    t.Print(std::cout, "scripted fault campaign");
    std::printf("wrote %s\n", args.campaign_csv.c_str());
    int failed = 0;
    for (const CampaignCell& c : cells) {
      failed += c.pass ? 0 : 1;
    }
    if (args.check && failed > 0) {
      std::fprintf(stderr, "FAIL: %d campaign cell(s) failed\n", failed);
      return 1;
    }
    return 0;
  }

  std::vector<ScenarioOutcome> outcomes;
  bool alloc_ok = true;
  for (const Script& s : scripts) {
    for (FreqKhz freq : s.freqs) {
      RunnerOptions ro;
      ro.lanes_override = args.lanes;
      uint64_t window_allocs = 0;
      uint64_t allocs_at_begin = 0;
      if (args.alloc_gate) {
        ro.on_window_begin = [&allocs_at_begin] {
          allocs_at_begin = g_allocs.load(std::memory_order_relaxed);
        };
        ro.on_window_end = [&allocs_at_begin, &window_allocs] {
          window_allocs = g_allocs.load(std::memory_order_relaxed) - allocs_at_begin;
        };
      }
      LatencyDecomposer decomp;
      if (!args.decomp_prefix.empty()) {
        ro.force_trace = true;
        ro.on_trace = [&decomp](const TraceRecorder& rec) { decomp.Consume(rec); };
      }
      ScenarioRunner runner(std::move(ro));
      ScenarioOutcome o = runner.RunOne(s, freq);

      if (args.alloc_gate) {
        std::printf("%s @ %s: %llu allocs over %llu window events\n", o.name.c_str(),
                    FreqTag(freq).c_str(), static_cast<unsigned long long>(window_allocs),
                    static_cast<unsigned long long>(o.window_events));
        if (window_allocs != 0) {
          std::fprintf(stderr,
                       "FAIL: scenario '%s' performed %llu heap allocations in the "
                       "measurement window; the scripted interpreter must be "
                       "allocation-free per event in steady state\n",
                       o.name.c_str(), static_cast<unsigned long long>(window_allocs));
          alloc_ok = false;
        }
      }
      if (!args.decomp_prefix.empty()) {
        const std::string base = args.decomp_prefix + o.name + "_" + FreqTag(freq);
        if (!decomp.WriteStageCsv(base + "_stages.csv") ||
            !decomp.WriteCdfCsv(base + "_cdf.csv")) {
          std::fprintf(stderr, "cannot write %s_{stages,cdf}.csv\n", base.c_str());
          return 1;
        }
        decomp.StageTable().Print(std::cout, o.name + " latency decomposition");
        std::printf("episodes %llu, hops %llu, unmatched %llu; wrote %s_{stages,cdf}.csv\n",
                    static_cast<unsigned long long>(decomp.episodes()),
                    static_cast<unsigned long long>(decomp.hops()),
                    static_cast<unsigned long long>(decomp.unmatched()), base.c_str());
      }

      for (const ExpectResult& r : o.expects) {
        if (!r.pass) {
          std::fprintf(stderr, "%s:%d: FAILED expect %s\n", s.path.c_str(), r.line,
                       r.what.c_str());
        }
      }
      outcomes.push_back(std::move(o));
    }
  }

  const Table matrix = ScenarioMatrix(outcomes);
  matrix.Print(std::cout, "scenario matrix");
  if (!args.csv.empty()) {
    if (!matrix.WriteCsvFile(args.csv)) {
      std::fprintf(stderr, "cannot write %s\n", args.csv.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.csv.c_str());
  }

  int failed = 0;
  for (const ScenarioOutcome& o : outcomes) {
    failed += o.pass ? 0 : 1;
  }
  if (!alloc_ok) {
    return 1;
  }
  if (args.check && failed > 0) {
    std::fprintf(stderr, "FAIL: %d scenario run(s) failed\n", failed);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace newtos::scenario

int main(int argc, char** argv) { return newtos::scenario::Run(argc, argv); }
