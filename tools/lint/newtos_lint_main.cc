// newtos_lint CLI.
//
//   newtos_lint [--root DIR] [--config FILE] [--github] [--verbose]
//
// Exit codes: 0 clean (waivers are fine), 1 violations found, 2 usage or
// I/O error. --github additionally emits GitHub Actions workflow commands
// (`::error file=...,line=...`) so CI failures annotate the diff at the
// offending line. --verbose also lists every waived finding with its reason,
// which is how a reviewer audits the waiver surface.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  using newtos::lint::Config;
  using newtos::lint::Diagnostic;

  std::string root = ".";
  std::string config_path;
  bool github = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: newtos_lint [--root DIR] [--config FILE] [--github] [--verbose]\n");
      return 2;
    }
  }
  if (config_path.empty()) {
    config_path = root + "/tools/lint/lint.toml";
  }

  Config config;
  std::string error;
  if (!newtos::lint::LoadConfig(config_path, &config, &error)) {
    std::fprintf(stderr, "newtos_lint: %s\n", error.c_str());
    return 2;
  }

  std::vector<Diagnostic> diags;
  if (!newtos::lint::LintTree(root, config, &diags, &error)) {
    std::fprintf(stderr, "newtos_lint: %s\n", error.c_str());
    return 2;
  }

  int violations = 0;
  int waived = 0;
  for (const Diagnostic& d : diags) {
    if (d.waived) {
      ++waived;
      if (verbose) {
        std::printf("%s:%d: waived [%s]: %s (reason: %s)\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str(), d.waive_reason.c_str());
      }
      continue;
    }
    ++violations;
    std::printf("%s:%d: error [%s]: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
    if (github) {
      std::printf("::error file=%s,line=%d,title=newtos_lint %s::%s\n", d.file.c_str(), d.line,
                  d.rule.c_str(), d.message.c_str());
    }
  }

  // Stale waivers rot: an allow entry nothing matched any more is reported
  // (but not fatal — a fix having landed is not an emergency).
  for (const auto& a : config.allows) {
    if (!a.used) {
      std::fprintf(stderr, "newtos_lint: note: unused allow entry (rule=%s path=%s) — remove it\n",
                   a.rule.empty() ? "*" : a.rule.c_str(), a.path.c_str());
    }
  }

  std::printf("newtos_lint: %d violation%s, %d waived\n", violations, violations == 1 ? "" : "s",
              waived);
  return violations == 0 ? 0 : 1;
}
