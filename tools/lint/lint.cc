// Token-level rule engine for newtos_lint. See lint.h for the catalogue.
//
// The scanner never builds an AST: each file is split into lines with
// comments and string/char literals blanked out (so a banned identifier in a
// comment never fires), then rules pattern-match identifiers with word
// boundaries. Two rules look slightly further: map-iteration correlates
// container *declarations* (in the file and its sibling header) with
// iteration sites, and server-handle correlates a `: public Server` class
// head with the presence of a Handle() override in the same file. That is as
// much structure as the invariants need, and it keeps the tool dependency-free.

#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace newtos::lint {

namespace {

namespace fs = std::filesystem;

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comments and string/char literals, preserving line structure and
// column positions (every blanked byte becomes a space).
std::vector<std::string> StripToCode(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) {
        st = St::kCode;
      }
      lines.push_back(cur);
      cur.clear();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          cur += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          cur += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kString;
          cur += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          cur += ' ';
        } else {
          cur += c;
        }
        break;
      case St::kLineComment:
        cur += ' ';
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          cur += "  ";
          ++i;
        } else {
          cur += ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          cur += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          cur += ' ';
        } else {
          cur += ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          cur += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          cur += ' ';
        } else {
          cur += ' ';
        }
        break;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<std::string> SplitRaw(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// Finds `word` as a whole identifier in `line`, starting at `from`.
// Returns npos if absent.
size_t FindWord(const std::string& line, const std::string& word, size_t from = 0) {
  size_t pos = from;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdent(line[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsIdent(line[end]);
    if (left_ok && right_ok) {
      return pos;
    }
    pos = end;
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

// From an opening '<' at `i`, returns the index one past the matching '>'
// (same line only), or npos.
size_t SkipTemplateArgs(const std::string& s, size_t i) {
  if (i >= s.size() || s[i] != '<') {
    return std::string::npos;
  }
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::string ReadIdent(const std::string& s, size_t* i) {
  const size_t b = *i;
  while (*i < s.size() && IsIdent(s[*i])) {
    ++(*i);
  }
  return s.substr(b, *i - b);
}

// Parses a pure integer literal (decimal or 0x hex, ' separators allowed).
// Returns true and the value when `s` is nothing but the literal.
bool ParseIntLiteral(std::string s, uint64_t* value) {
  s.erase(std::remove(s.begin(), s.end(), '\''), s.end());
  s = [&] {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }();
  if (s.empty()) {
    return false;
  }
  // Trailing integer suffixes (u, l, ull, ...) are part of a literal.
  while (!s.empty() && (std::tolower(static_cast<unsigned char>(s.back())) == 'u' ||
                        std::tolower(static_cast<unsigned char>(s.back())) == 'l')) {
    s.pop_back();
  }
  if (s.empty()) {
    return false;
  }
  int base = 10;
  size_t i = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  }
  uint64_t v = 0;
  for (; i < s.size(); ++i) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(s[i])));
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = v * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
  }
  *value = v;
  return true;
}

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

struct FileText {
  std::vector<std::string> code;  // comments/strings blanked
  std::vector<std::string> raw;   // original, for inline waivers
};

// An inline waiver covers diagnostics on its own line or the line below:
//   foo();  // lint:allow(rule-id): reason
//   // lint:allow(rule-id): reason
//   foo();
bool InlineWaived(const FileText& f, int line1, const std::string& rule, std::string* reason) {
  const std::string needle = "lint:allow(" + rule + ")";
  for (int l = line1; l >= line1 - 1 && l >= 1; --l) {
    const std::string& raw = f.raw[static_cast<size_t>(l - 1)];
    const size_t pos = raw.find(needle);
    if (pos == std::string::npos) {
      continue;
    }
    size_t r = pos + needle.size();
    if (r < raw.size() && raw[r] == ':') {
      ++r;
    }
    while (r < raw.size() && raw[r] == ' ') {
      ++r;
    }
    *reason = raw.substr(r);
    return true;
  }
  return false;
}

class Linter {
 public:
  Linter(std::string rel_path, const FileText& file, const FileText& sibling,
         const Config& config, std::vector<Diagnostic>* out)
      : rel_path_(std::move(rel_path)),
        file_(file),
        sibling_(sibling),
        config_(config),
        out_(out) {}

  void Run() {
    if (On("heap-new")) CheckHeapNew();
    if (On("heap-make")) CheckCall("heap-make", "std::make_unique",
                                   "std::make_unique allocates; pool or waive with a reason");
    if (On("heap-make")) CheckCall("heap-make", "std::make_shared",
                                   "std::make_shared allocates; use PacketPool / MakePacket or waive");
    if (On("std-function")) CheckCall("std-function", "std::function",
                                      "std::function heap-allocates big captures; use InlineCallback");
    if (On("banned-deque")) CheckCall("banned-deque", "std::deque",
                                      "std::deque churns chunk allocations; use RingDeque");
    if (On("map-iteration")) CheckMapIteration();
    if (On("wall-clock")) CheckWallClock();
    if (On("runtime-clock")) CheckRuntimeClock();
    if (On("nondet-source")) CheckNondetSource();
    if (On("ptr-key-order")) CheckPtrKeyOrder();
    if (On("server-handle")) CheckServerHandle();
    if (On("ring-pow2")) CheckRingPow2();
    if (On("fabric-shared-state")) CheckFabricSharedState();
    if (On("flow-timer")) CheckFlowTimer();
    if (On("scenario-literals")) CheckScenarioLiterals();
    if (On("blocking-push")) CheckBlockingPush();
  }

 private:
  bool On(const char* rule) const { return config_.RuleAppliesTo(rule, rel_path_); }

  void Report(const std::string& rule, int line1, const std::string& message) {
    Diagnostic d;
    d.file = rel_path_;
    d.line = line1;
    d.rule = rule;
    d.message = message;
    std::string reason;
    if (InlineWaived(file_, line1, rule, &reason)) {
      d.waived = true;
      d.waive_reason = reason;
    } else if (const AllowEntry* a = config_.FindAllow(rule, rel_path_)) {
      d.waived = true;
      d.waive_reason = a->reason;
    }
    out_->push_back(std::move(d));
  }

  // --- heap-new: a `new` expression that is not placement new and not an
  // `operator new` declaration/call.
  void CheckHeapNew() {
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      // Preprocessor lines are not expressions (`#include <new>`).
      const size_t first = SkipSpaces(line, 0);
      if (first < line.size() && line[first] == '#') {
        continue;
      }
      size_t pos = 0;
      while ((pos = FindWord(line, "new", pos)) != std::string::npos) {
        const size_t after = SkipSpaces(line, pos + 3);
        // Placement new: `new (addr) T`. Operator forms: `operator new`,
        // `::operator new(...)` — the word before is `operator`.
        bool is_operator = false;
        if (pos >= 1) {
          size_t b = pos;
          while (b > 0 && std::isspace(static_cast<unsigned char>(line[b - 1]))) {
            --b;
          }
          if (b >= 8 && line.compare(b - 8, 8, "operator") == 0) {
            is_operator = true;
          }
        }
        const bool is_placement = after < line.size() && line[after] == '(';
        if (!is_operator && !is_placement) {
          Report("heap-new", static_cast<int>(l + 1),
                 "`new` expression on a project path; slab/pool allocation only");
        }
        pos += 3;
      }
    }
  }

  // Generic "this qualified name must not appear" rule. `name` is matched
  // with an identifier boundary on its last component.
  void CheckCall(const std::string& rule, const std::string& name, const std::string& msg) {
    for (size_t l = 0; l < file_.code.size(); ++l) {
      size_t pos = 0;
      const std::string& line = file_.code[l];
      while ((pos = line.find(name, pos)) != std::string::npos) {
        const size_t end = pos + name.size();
        const bool right_ok = end >= line.size() || !IsIdent(line[end]);
        const bool left_ok = pos == 0 || (!IsIdent(line[pos - 1]) && line[pos - 1] != ':');
        if (left_ok && right_ok) {
          Report(rule, static_cast<int>(l + 1), msg);
        }
        pos = end;
      }
    }
  }

  // Collects names of variables/members declared as std::map/std::unordered_map
  // in `f` (single-line declarations; matches the house style).
  static std::vector<std::string> MapVarNames(const FileText& f) {
    std::vector<std::string> names;
    for (const std::string& line : f.code) {
      for (const char* type : {"std::unordered_map", "std::map"}) {
        size_t pos = 0;
        while ((pos = line.find(type, pos)) != std::string::npos) {
          size_t i = pos + std::string(type).size();
          if (i >= line.size() || line[i] != '<') {
            ++pos;
            continue;
          }
          i = SkipTemplateArgs(line, i);
          if (i == std::string::npos) {
            break;
          }
          i = SkipSpaces(line, i);
          // Pointers/references to maps count too: `std::map<...>* m`.
          while (i < line.size() && (line[i] == '*' || line[i] == '&')) {
            i = SkipSpaces(line, i + 1);
          }
          const std::string name = ReadIdent(line, &i);
          if (!name.empty()) {
            names.push_back(name);
          }
          pos = i;
        }
      }
    }
    return names;
  }

  void CheckMapIteration() {
    std::vector<std::string> names = MapVarNames(file_);
    const std::vector<std::string> sib = MapVarNames(sibling_);
    names.insert(names.end(), sib.begin(), sib.end());
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    if (names.empty()) {
      return;
    }
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      for (const std::string& name : names) {
        // Range-for:  for (... : name)   (allowing *name, this->name)
        const size_t fpos = FindWord(line, "for");
        if (fpos != std::string::npos) {
          const size_t colon = line.find(':', fpos);
          if (colon != std::string::npos) {
            size_t i = SkipSpaces(line, colon + 1);
            while (i < line.size() && (line[i] == '*' || line[i] == '&')) {
              i = SkipSpaces(line, i + 1);
            }
            if (line.compare(i, 6, "this->") == 0) {
              i += 6;
            }
            size_t j = i;
            const std::string ident = ReadIdent(line, &j);
            const size_t after = SkipSpaces(line, j);
            if (ident == name && after < line.size() && line[after] == ')') {
              Report("map-iteration", static_cast<int>(l + 1),
                     "iterating map '" + name + "' in event-ordering code; " +
                         "iteration order is not a replayable quantity");
              continue;
            }
          }
        }
        // Iterator loops: name.begin() / name->begin().
        for (const std::string& probe : {name + ".begin()", name + "->begin()"}) {
          const size_t p = line.find(probe);
          if (p != std::string::npos && (p == 0 || !IsIdent(line[p - 1]))) {
            Report("map-iteration", static_cast<int>(l + 1),
                   "iterating map '" + name + "' in event-ordering code; " +
                       "iteration order is not a replayable quantity");
          }
        }
      }
    }
  }

  void CheckWallClock() {
    for (const char* banned : {"steady_clock", "high_resolution_clock", "gettimeofday",
                               "clock_gettime"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        if (FindWord(file_.code[l], banned) != std::string::npos) {
          Report("wall-clock", static_cast<int>(l + 1),
                 std::string(banned) + " reads the host clock; model code uses SimTime only");
        }
      }
    }
  }

  // runtime-clock: host-time primitives are the runtime backend's monopoly.
  // wall-clock already bans the raw clock reads in model code; this rule adds
  // the std::chrono surface and the sleep/timespec plumbing, so the sim's
  // wall-clock ban survives the live backend's existence — new code either
  // takes SimTime or goes through RuntimeClock (src/runtime/clock.h).
  void CheckRuntimeClock() {
    for (const char* banned : {"chrono", "clock_gettime", "CLOCK_MONOTONIC",
                               "CLOCK_REALTIME", "timespec_get", "nanosleep"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        if (FindWord(file_.code[l], banned) != std::string::npos) {
          Report("runtime-clock", static_cast<int>(l + 1),
                 std::string(banned) +
                     " is a host-time primitive; outside src/runtime use SimTime or go "
                     "through RuntimeClock (src/runtime/clock.h)");
        }
      }
    }
  }

  void CheckNondetSource() {
    for (const char* banned : {"system_clock", "localtime", "gmtime", "random_device",
                               "drand48", "srand"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        if (FindWord(file_.code[l], banned) != std::string::npos) {
          Report("nondet-source", static_cast<int>(l + 1),
                 std::string(banned) + " is a nondeterminism source; seed an Rng instead");
        }
      }
    }
    // `rand(` and `time(` need the call parenthesis to avoid identifier
    // collisions (SimTime, rand_state_, ...).
    for (const char* fn : {"rand", "time"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        const std::string& line = file_.code[l];
        size_t pos = 0;
        while ((pos = FindWord(line, fn, pos)) != std::string::npos) {
          const size_t after = SkipSpaces(line, pos + std::string(fn).size());
          const bool member = pos >= 1 && (line[pos - 1] == '.' ||
                                           (pos >= 2 && line.compare(pos - 2, 2, "->") == 0));
          if (!member && after < line.size() && line[after] == '(') {
            Report("nondet-source", static_cast<int>(l + 1),
                   std::string(fn) + "() is a libc nondeterminism source; seed an Rng instead");
          }
          pos += std::string(fn).size();
        }
      }
    }
  }

  void CheckPtrKeyOrder() {
    for (const char* type : {"std::map", "std::set"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        const std::string& line = file_.code[l];
        size_t pos = 0;
        while ((pos = line.find(type, pos)) != std::string::npos) {
          size_t i = pos + std::string(type).size();
          if (i >= line.size() || line[i] != '<') {
            ++pos;
            continue;
          }
          // First template argument: up to a depth-0 comma or the closing '>'.
          int depth = 0;
          std::string first;
          for (size_t j = i; j < line.size(); ++j) {
            if (line[j] == '<') {
              ++depth;
            } else if (line[j] == '>') {
              if (--depth == 0) {
                break;
              }
            } else if (line[j] == ',' && depth == 1) {
              break;
            }
            if (j > i) {
              first += line[j];
            }
          }
          if (first.find('*') != std::string::npos) {
            Report("ptr-key-order", static_cast<int>(l + 1),
                   std::string(type) + " keyed by a pointer orders by address — different "
                   "every run; key by a stable id");
          }
          pos = i;
        }
      }
    }
  }

  void CheckServerHandle() {
    bool file_has_handle = false;
    for (const std::string& line : file_.code) {
      const size_t pos = FindWord(line, "Handle");
      if (pos != std::string::npos) {
        const size_t after = SkipSpaces(line, pos + 6);
        if (after < line.size() && line[after] == '(') {
          file_has_handle = true;
          break;
        }
      }
    }
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      const size_t cls = FindWord(line, "class");
      if (cls == std::string::npos) {
        continue;
      }
      const size_t colon = line.find(':', cls);
      if (colon == std::string::npos) {
        continue;
      }
      const size_t base = FindWord(line, "Server", colon);
      if (base == std::string::npos) {
        continue;
      }
      // Qualified bases (SomeServerImpl) are excluded by FindWord; exclude
      // derived-from-subclass names like `: public TcpServer` via the
      // preceding character (must not be part of an identifier).
      if (!file_has_handle) {
        size_t i = cls + 6;
        i = SkipSpaces(line, i);
        const std::string name = ReadIdent(line, &i);
        Report("server-handle", static_cast<int>(l + 1),
               "Server subclass '" + name + "' never overrides Handle(); every server " +
                   "must implement its message semantics");
      }
    }
  }

  void CheckRingPow2() {
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      size_t pos = 0;
      while ((pos = line.find("SpscRing", pos)) != std::string::npos) {
        if (pos > 0 && IsIdent(line[pos - 1])) {
          pos += 8;
          continue;
        }
        size_t i = pos + 8;
        if (i >= line.size() || line[i] != '<') {
          ++pos;
          continue;
        }
        i = SkipTemplateArgs(line, i);
        if (i == std::string::npos) {
          break;
        }
        // Declaration (`SpscRing<T> name(cap)`) or direct construction
        // (`SpscRing<T>(cap)`, `make_unique<SpscRing<T>>(cap)`).
        i = SkipSpaces(line, i);
        while (i < line.size() && line[i] == '>') {
          i = SkipSpaces(line, i + 1);
        }
        ReadIdent(line, &i);
        i = SkipSpaces(line, i);
        if (i < line.size() && (line[i] == '(' || line[i] == '{')) {
          const char close = line[i] == '(' ? ')' : '}';
          const size_t end = line.find(close, i + 1);
          if (end != std::string::npos) {
            uint64_t cap = 0;
            if (ParseIntLiteral(line.substr(i + 1, end - i - 1), &cap) && !IsPow2(cap)) {
              std::ostringstream oss;
              oss << "ring capacity " << cap << " is not a power of two; the ring rounds "
                  << "up silently — say what you mean";
              Report("ring-pow2", static_cast<int>(l + 1), oss.str());
            }
          }
        }
        pos = i;
      }
    }
  }

  // --- fabric-shared-state: mutable `static` or `thread_local` data in the
  // fabric layer. Lanes run concurrently between barriers, and the lane-count
  // invariance argument (DESIGN.md §8) requires every piece of mutable state
  // to be owned by exactly one lane or touched only flush-side (Switch
  // members, single-threaded at barriers). A mutable static is shared across
  // lanes with no guard; thread_local silently varies with the partition.
  void CheckFabricSharedState() {
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      if (FindWord(line, "thread_local") != std::string::npos) {
        Report("fabric-shared-state", static_cast<int>(l + 1),
               "thread_local in fabric code varies with the lane partition; bind "
               "per-lane state through Lane / PacketPool::ScopedUse instead");
      }
      size_t pos = 0;
      while ((pos = FindWord(line, "static", pos)) != std::string::npos) {
        size_t i = SkipSpaces(line, pos + 6);
        size_t j = i;
        std::string tok = ReadIdent(line, &j);
        while (tok == "inline") {
          i = SkipSpaces(line, j);
          j = i;
          tok = ReadIdent(line, &j);
        }
        if (tok != "const" && tok != "constexpr") {
          // Variable vs function: the first structural character after the
          // declarator decides — an initializer or terminator means data.
          const size_t stop = line.find_first_of("(;={", i);
          if (stop == std::string::npos || line[stop] != '(') {
            Report("fabric-shared-state", static_cast<int>(l + 1),
                   "mutable static is cross-lane shared state with no guard; own it "
                   "in a Lane or keep it flush-side in the Switch");
          }
        }
        pos = j > pos + 6 ? j : pos + 6;
      }
    }
  }

  // --- flow-timer: a Schedule/ScheduleAt call in the TCP/OS layers. Per-flow
  // timers as event-queue entries are exactly what the TimerWheel replaced
  // (O(log n) heap sifts, one queue slot per pending timer); arming the queue
  // directly from protocol or server code reintroduces them. Whole-word match
  // with a call parenthesis, so MaybeSchedule()/Reschedule() members and
  // declarations of other names never fire.
  void CheckFlowTimer() {
    for (const char* fn : {"Schedule", "ScheduleAt"}) {
      for (size_t l = 0; l < file_.code.size(); ++l) {
        const std::string& line = file_.code[l];
        size_t pos = 0;
        while ((pos = FindWord(line, fn, pos)) != std::string::npos) {
          const size_t after = SkipSpaces(line, pos + std::string(fn).size());
          if (after < line.size() && line[after] == '(') {
            Report("flow-timer", static_cast<int>(l + 1),
                   std::string(fn) + "() arms the event queue directly; flow and "
                   "housekeeping timers go on the owning host's TimerWheel");
          }
          pos += std::string(fn).size();
        }
      }
    }
  }

  // --- scenario-literals: a numeric literal multiplied onto a time-unit
  // constant in scenario-lowering code. The .nsc compiler turns script text
  // into engine plans, and every magic duration it bakes in (`30 *
  // kMillisecond`) is a number an auditor cannot trace back to a script
  // knob or a campaign default. Scenario code names its constants in
  // src/scenario/defaults.h; arithmetic *on* units (division to format, a
  // variable scaled by a unit) stays legal.
  void CheckScenarioLiterals() {
    for (const char* unit :
         {"kPicosecond", "kNanosecond", "kMicrosecond", "kMillisecond", "kSecond"}) {
      const size_t ulen = std::string(unit).size();
      for (size_t l = 0; l < file_.code.size(); ++l) {
        const std::string& line = file_.code[l];
        size_t pos = 0;
        while ((pos = FindWord(line, unit, pos)) != std::string::npos) {
          bool literal = false;
          // `<literal> * kUnit`: walk left over spaces to a '*', then across
          // the token before it; a token starting with a digit is a literal
          // (covers 100, 0x40, 2'000, 0.5, 30ULL — identifiers can't start
          // with a digit).
          size_t b = pos;
          while (b > 0 && std::isspace(static_cast<unsigned char>(line[b - 1]))) --b;
          if (b > 0 && line[b - 1] == '*') {
            --b;
            while (b > 0 && std::isspace(static_cast<unsigned char>(line[b - 1]))) --b;
            const size_t tok_end = b;
            while (b > 0 && (std::isalnum(static_cast<unsigned char>(line[b - 1])) ||
                             line[b - 1] == '\'' || line[b - 1] == '.')) {
              --b;
            }
            literal =
                tok_end > b && std::isdigit(static_cast<unsigned char>(line[b])) != 0;
          }
          // `kUnit * <literal>`: same pattern, commuted.
          if (!literal) {
            size_t a = SkipSpaces(line, pos + ulen);
            if (a < line.size() && line[a] == '*') {
              a = SkipSpaces(line, a + 1);
              literal =
                  a < line.size() && std::isdigit(static_cast<unsigned char>(line[a])) != 0;
            }
          }
          if (literal) {
            Report("scenario-literals", static_cast<int>(l + 1),
                   std::string("magic duration `N * ") + unit +
                       "` in scenario-lowering code; name the constant in "
                       "src/scenario/defaults.h so scripts and defaults stay auditable");
          }
          pos += ulen;
        }
      }
    }
  }

  // --- blocking-push: a producer busy-waiting on a ring push,
  // `while (!ring.Push(x))` / `->TryPush` / `.TryEmplace`. Backpressure must
  // park or drop, never spin: a spinning producer plus a blocked consumer is
  // the deadlock shape the static wait-graph check proves absent, and every
  // sanctioned spin must be visible to it via analyze.toml.
  void CheckBlockingPush() {
    for (size_t l = 0; l < file_.code.size(); ++l) {
      const std::string& line = file_.code[l];
      const size_t w = FindWord(line, "while", 0);
      if (w == std::string::npos) {
        continue;
      }
      const size_t open = SkipSpaces(line, w + 5);
      if (open >= line.size() || line[open] != '(') {
        continue;
      }
      const std::string cond = line.substr(open);
      if (cond.find('!') == std::string::npos) {
        continue;
      }
      for (const char* call : {"Push(", "TryPush(", "TryEmplace("}) {
        const size_t c = cond.find(call);
        const bool member_call =
            c != std::string::npos &&
            ((c >= 1 && cond[c - 1] == '.') ||
             (c >= 2 && cond.compare(c - 2, 2, "->") == 0));
        if (member_call) {
          Report("blocking-push", static_cast<int>(l + 1),
                 "busy-wait on a ring push; park or shed instead — sanctioned "
                 "spin sites need an inline waiver and a matching [[blocking]] "
                 "entry in tools/analyze/analyze.toml");
          break;
        }
      }
    }
  }

  const std::string rel_path_;
  const FileText& file_;
  const FileText& sibling_;
  const Config& config_;
  std::vector<Diagnostic>* out_;
};

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  *out = oss.str();
  return true;
}

}  // namespace

void LintFileText(const std::string& rel_path, const std::string& text,
                  const std::string& sibling_header, const Config& config,
                  std::vector<Diagnostic>* out) {
  FileText file{StripToCode(text), SplitRaw(text)};
  FileText sibling{StripToCode(sibling_header), SplitRaw(sibling_header)};
  Linter(rel_path, file, sibling, config, out).Run();
}

bool LintTree(const std::string& root, const Config& config, std::vector<Diagnostic>* out,
              std::string* error) {
  const fs::path rootp(root);
  std::vector<fs::path> files;
  for (const char* dir : {"src", "bench", "examples", "tools"}) {
    const fs::path d = rootp / dir;
    if (!fs::exists(d)) {
      continue;
    }
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(d, ec);
         it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (ec) {
        *error = "walk failed under " + d.string() + ": " + ec.message();
        return false;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& p : files) {
    std::string text;
    if (!ReadFile(p, &text)) {
      *error = "cannot read " + p.string();
      return false;
    }
    std::string sibling;
    if (p.extension() != ".h") {
      fs::path h = p;
      h.replace_extension(".h");
      if (fs::exists(h)) {
        ReadFile(h, &sibling);  // best effort
      }
    }
    std::string rel = fs::relative(p, rootp).generic_string();
    LintFileText(rel, text, sibling, config, out);
  }
  return true;
}

}  // namespace newtos::lint
