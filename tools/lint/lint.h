// newtos_lint: project-invariant linter for the newtos tree.
//
// The repo's load-bearing claims — zero allocations per event on the fast
// path, single-producer/single-consumer channel discipline, bit-for-bit
// deterministic replay — are runtime-checked by perf_engine --check, the
// ChannelChecker and the determinism goldens, but nothing stops a PR from
// quietly *reintroducing* the idioms those gates exist to catch. This linter
// closes that hole statically: a token-level (AST-lite, no libclang) scanner
// that walks src/, bench/ and examples/ and flags the idioms the project has
// banned, with every exception recorded in a checked-in allowlist
// (tools/lint/lint.toml) or an inline `lint:allow(rule)` comment so waivers
// are explicit and reviewed.
//
// Rule catalogue (ids are stable; DESIGN.md §6 documents the rationale):
//   heap-new         non-placement `new` expression (slab pools only)
//   heap-make        std::make_unique / std::make_shared (PacketPool / init
//                    paths need a waiver with a reason)
//   std-function     std::function in engine/channel code (InlineCallback
//                    exists precisely so the event loop never touches it)
//   banned-deque     std::deque (RingDeque is the allocation-free analogue)
//   map-iteration    iterating a std::map / std::unordered_map in
//                    event-ordering code (unordered iteration order is not a
//                    replayable quantity; ordered maps need a reason)
//   wall-clock       steady_clock / high_resolution_clock / gettimeofday /
//                    clock_gettime in model code (simulated time only)
//   runtime-clock    std::chrono / clock_gettime / CLOCK_* / timespec_get /
//                    nanosleep outside src/runtime — the live backend owns
//                    host time behind RuntimeClock (src/runtime/clock.h);
//                    everything else takes SimTime or a RuntimeClock
//   nondet-source    system_clock, time(), localtime, rand(), srand(),
//                    std::random_device — nondeterminism sources anywhere
//   ptr-key-order    std::map / std::set keyed by a pointer (address-order
//                    is different every run)
//   server-handle    a Server subclass that never overrides Handle()
//   ring-pow2        a ring constructed with a non-power-of-two literal
//                    capacity (the ring rounds up silently; say what you mean)
//   fabric-shared-state  mutable `static` / `thread_local` data in fabric
//                    code (lanes run concurrently between barriers; shared
//                    mutable state must be lane-owned or flush-side)
//   flow-timer       direct event-queue arming (Schedule / ScheduleAt) in
//                    the TCP/OS layers — flow and housekeeping timers must
//                    live on the owning host's TimerWheel, which keeps one
//                    pending event per wheel instead of one per flow
//   scenario-literals  a numeric literal multiplied onto a time-unit
//                    constant (`30 * kMillisecond`) in scenario-lowering
//                    code — every duration the .nsc compiler bakes in must
//                    be a named constant in src/scenario/defaults.h, so the
//                    script surface and the campaign oracle stay auditable
//   blocking-push    a busy-wait loop on a ring push (`while (!q.Push(x))`
//                    and the TryPush/TryEmplace variants) — a producer that
//                    spins until its consumer drains turns backpressure into
//                    a potential deadlock; the sanctioned spin sites carry an
//                    inline waiver plus a matching [[blocking]] entry in
//                    tools/analyze/analyze.toml so the static deadlock check
//                    knows about the wait edge

#ifndef TOOLS_LINT_LINT_H_
#define TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace newtos::lint {

struct Diagnostic {
  std::string file;  // repo-relative path, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  bool waived = false;        // matched an allowlist entry or inline waiver
  std::string waive_reason;   // why, when waived
};

// One allowlist entry from lint.toml. `path` is a repo-relative prefix; an
// empty `rule` matches every rule (discouraged; reserved for vendored code).
struct AllowEntry {
  std::string rule;
  std::string path;
  std::string reason;
  mutable bool used = false;  // set during a run; unused entries are reported
};

// Per-rule scoping: the rule fires only in files under one of these
// repo-relative prefixes. A rule absent from the config is disabled.
struct RuleScope {
  std::string rule;
  std::vector<std::string> paths;
};

struct Config {
  std::vector<RuleScope> scopes;
  std::vector<AllowEntry> allows;

  bool RuleAppliesTo(const std::string& rule, const std::string& rel_path) const;
  // Returns the matching allow entry, or nullptr.
  const AllowEntry* FindAllow(const std::string& rule, const std::string& rel_path) const;
};

// Parses the lint.toml subset: `[rule.<id>]` tables with a `paths` array,
// and `[[allow]]` entries with `rule`, `path`, `reason` strings. Returns
// false (with `error` set) on malformed input or an allow entry without a
// reason — an unexplained waiver is itself a lint failure.
bool ParseConfig(const std::string& text, Config* config, std::string* error);
bool LoadConfig(const std::string& path, Config* config, std::string* error);

// Lints one file (already loaded). `rel_path` is the repo-relative path used
// for scoping and reporting. `sibling_header` may carry the text of the
// matching .h for member-declaration lookups (map-iteration); pass "" if
// there is none. Appends to `out`, including waived diagnostics (callers
// filter on `waived`).
void LintFileText(const std::string& rel_path, const std::string& text,
                  const std::string& sibling_header, const Config& config,
                  std::vector<Diagnostic>* out);

// Walks `root`'s src/, bench/ and examples/ trees (extensions .h, .cc, .cpp)
// and lints every file. Returns false if the walk itself failed.
bool LintTree(const std::string& root, const Config& config, std::vector<Diagnostic>* out,
              std::string* error);

}  // namespace newtos::lint

#endif  // TOOLS_LINT_LINT_H_
