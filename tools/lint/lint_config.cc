// lint.toml parser: a deliberate TOML subset — `[rule.<id>]` tables with a
// `paths` string array, and `[[allow]]` array-of-tables entries with `rule`,
// `path` and `reason` strings. Comments (#) and blank lines are free. The
// subset is small enough to parse by hand, which keeps the linter free of
// third-party dependencies (it must build in the bare CI image).

#include <cctype>
#include <fstream>
#include <sstream>

#include "tools/lint/lint.h"

namespace newtos::lint {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Strips a trailing # comment that is not inside a double-quoted string.
std::string StripComment(const std::string& s) {
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') {
      in_string = !in_string;
    } else if (s[i] == '#' && !in_string) {
      return s.substr(0, i);
    }
  }
  return s;
}

// Parses `"quoted"` at position `i` (on a quote). Advances past the closing
// quote. No escape sequences — paths and rule ids never need them.
bool ParseString(const std::string& s, size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') {
    return false;
  }
  const size_t end = s.find('"', *i + 1);
  if (end == std::string::npos) {
    return false;
  }
  *out = s.substr(*i + 1, end - *i - 1);
  *i = end + 1;
  return true;
}

bool ParseStringArray(const std::string& v, std::vector<std::string>* out) {
  const std::string t = Trim(v);
  if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
    return false;
  }
  size_t i = 1;
  while (i < t.size() - 1) {
    while (i < t.size() - 1 && (std::isspace(static_cast<unsigned char>(t[i])) || t[i] == ',')) {
      ++i;
    }
    if (i >= t.size() - 1) {
      break;
    }
    std::string item;
    if (!ParseString(t, &i, &item)) {
      return false;
    }
    out->push_back(item);
  }
  return true;
}

}  // namespace

bool Config::RuleAppliesTo(const std::string& rule, const std::string& rel_path) const {
  for (const RuleScope& scope : scopes) {
    if (scope.rule != rule) {
      continue;
    }
    for (const std::string& prefix : scope.paths) {
      if (rel_path.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
  }
  return false;
}

const AllowEntry* Config::FindAllow(const std::string& rule, const std::string& rel_path) const {
  for (const AllowEntry& a : allows) {
    if (!a.rule.empty() && a.rule != rule) {
      continue;
    }
    if (rel_path.compare(0, a.path.size(), a.path) == 0) {
      a.used = true;
      return &a;
    }
  }
  return nullptr;
}

bool ParseConfig(const std::string& text, Config* config, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  enum class Section { kNone, kRule, kAllow };
  Section section = Section::kNone;
  RuleScope* rule = nullptr;
  AllowEntry* allow = nullptr;

  auto fail = [&](const std::string& why) {
    std::ostringstream oss;
    oss << "lint.toml:" << lineno << ": " << why;
    *error = oss.str();
    return false;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = Trim(StripComment(line));
    if (t.empty()) {
      continue;
    }
    if (t == "[[allow]]") {
      config->allows.emplace_back();
      allow = &config->allows.back();
      section = Section::kAllow;
      continue;
    }
    if (t.front() == '[') {
      if (t.back() != ']') {
        return fail("unterminated table header");
      }
      const std::string name = Trim(t.substr(1, t.size() - 2));
      if (name.compare(0, 5, "rule.") != 0) {
        return fail("unknown table [" + name + "] (expected [rule.<id>] or [[allow]])");
      }
      config->scopes.emplace_back();
      rule = &config->scopes.back();
      rule->rule = name.substr(5);
      section = Section::kRule;
      continue;
    }
    const size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return fail("expected key = value");
    }
    const std::string key = Trim(t.substr(0, eq));
    const std::string value = Trim(t.substr(eq + 1));
    if (section == Section::kRule) {
      if (key != "paths") {
        return fail("unknown key '" + key + "' in [rule.*] (expected paths)");
      }
      if (!ParseStringArray(value, &rule->paths)) {
        return fail("paths must be an array of strings");
      }
    } else if (section == Section::kAllow) {
      size_t i = 0;
      std::string sval;
      if (!ParseString(value, &i, &sval)) {
        return fail(key + " must be a quoted string");
      }
      if (key == "rule") {
        allow->rule = sval;
      } else if (key == "path") {
        allow->path = sval;
      } else if (key == "reason") {
        allow->reason = sval;
      } else {
        return fail("unknown key '" + key + "' in [[allow]]");
      }
    } else {
      return fail("key outside any table");
    }
  }

  for (const AllowEntry& a : config->allows) {
    if (a.path.empty()) {
      *error = "lint.toml: [[allow]] entry missing path";
      return false;
    }
    if (a.reason.empty()) {
      *error = "lint.toml: waiver for '" + (a.rule.empty() ? a.path : a.rule) + "' at '" +
               a.path + "' has no reason — unexplained waivers are lint failures";
      return false;
    }
  }
  return true;
}

bool LoadConfig(const std::string& path, Config* config, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config: " + path;
    return false;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseConfig(oss.str(), config, error);
}

}  // namespace newtos::lint
