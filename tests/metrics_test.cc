#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/metrics/histogram.h"
#include "src/metrics/stats.h"
#include "src/metrics/table.h"
#include "src/sim/time.h"

namespace newtos {
namespace {

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(StreamingStats, MergeMatchesCombinedStream) {
  StreamingStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

// Per-lane aggregation: each simulation lane accumulates its own histogram
// and counters; after a run they reduce into one view. Reducing in host-id
// order must give the same result as any other grouping — required for the
// lane-count-invariance the fabric subsystem promises (src/fabric/lane.h).
TEST(LaneAggregation, HistogramMergeIsGroupingInvariant) {
  // Four "lanes" recording disjoint host streams.
  LatencyHistogram lanes[4];
  for (int lane = 0; lane < 4; ++lane) {
    for (int i = 0; i < 250; ++i) {
      lanes[lane].Record((lane * 250 + i + 1) * kMicrosecond);
    }
  }

  LatencyHistogram in_order;  // hosts 0..3 (the canonical reduction)
  for (int lane = 0; lane < 4; ++lane) {
    in_order.Merge(lanes[lane]);
  }
  LatencyHistogram reversed;
  for (int lane = 3; lane >= 0; --lane) {
    reversed.Merge(lanes[lane]);
  }
  LatencyHistogram pairwise;  // ((0+2) + (1+3)): a different lane layout
  LatencyHistogram even, odd;
  even.Merge(lanes[0]);
  even.Merge(lanes[2]);
  odd.Merge(lanes[1]);
  odd.Merge(lanes[3]);
  pairwise.Merge(even);
  pairwise.Merge(odd);

  for (const LatencyHistogram* h : {&reversed, &pairwise}) {
    EXPECT_EQ(h->count(), in_order.count());
    EXPECT_EQ(h->min(), in_order.min());
    EXPECT_EQ(h->max(), in_order.max());
    EXPECT_DOUBLE_EQ(h->MeanNs(), in_order.MeanNs());
    EXPECT_EQ(h->P50(), in_order.P50());
    EXPECT_EQ(h->P99(), in_order.P99());
  }
  EXPECT_EQ(in_order.count(), 1000u);
}

TEST(LaneAggregation, CounterReductionMatchesSingleLaneTotals) {
  // Counters kept per lane (one RateMeter each) reduce to the same totals
  // a single-lane run would have accumulated directly.
  RateMeter lane_meters[4];
  RateMeter single(0);
  for (int i = 0; i < 1000; ++i) {
    lane_meters[i % 4].Add(1, 100);
    single.Add(1, 100);
  }
  RateMeter total(0);
  for (const RateMeter& m : lane_meters) {  // host-id order
    total.Add(m.events(), m.bytes());
  }
  EXPECT_EQ(total.events(), single.events());
  EXPECT_EQ(total.bytes(), single.bytes());
}

TEST(RateMeter, RatesAgainstWindow) {
  RateMeter m(0);
  m.Add(100, 1000);
  EXPECT_DOUBLE_EQ(m.EventsPerSec(kSecond), 100.0);
  EXPECT_DOUBLE_EQ(m.BitsPerSec(kSecond), 8000.0);
  EXPECT_DOUBLE_EQ(m.GbitsPerSec(kSecond), 8000.0 / 1e9);
}

TEST(RateMeter, ResetRestartsWindow) {
  RateMeter m(0);
  m.Add(100, 0);
  m.Reset(kSecond);
  EXPECT_EQ(m.events(), 0u);
  m.Add(50, 0);
  EXPECT_DOUBLE_EQ(m.EventsPerSec(2 * kSecond), 50.0);
}

TEST(RateMeter, ZeroWindowIsZeroRate) {
  RateMeter m(kSecond);
  m.Add(10, 10);
  EXPECT_DOUBLE_EQ(m.EventsPerSec(kSecond), 0.0);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  std::ostringstream out;
  t.Print(out, "demo");
  const std::string s = out.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header row then rule then 2 data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"has\"quote", "x"});
  std::ostringstream out;
  t.WriteCsv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream out;
  t.WriteCsv(out);
  EXPECT_NE(out.str().find("1,,"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(-42), "-42");
  EXPECT_EQ(Table::Pct(0.1234, 1), "12.3%");
}

TEST(Table, WriteCsvFileRoundTrips) {
  Table t({"h"});
  t.AddRow({"v"});
  const std::string path = ::testing::TempDir() + "/newtos_table_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "h");
  std::getline(f, line);
  EXPECT_EQ(line, "v");
}

}  // namespace
}  // namespace newtos
