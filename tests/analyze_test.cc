// Tests for newtos_analyze: each fixture fires exactly one diagnostic, the
// waiver fixture fires it waived, and the real tree re-analyzes clean under
// the checked-in analyze.toml.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/analyze.h"

namespace newtos::analyze {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

Config MustParse(const std::string& toml) {
  Config config;
  std::string error;
  EXPECT_TRUE(ParseConfig(toml, &config, &error)) << error;
  return config;
}

// Runs extraction + checks over one fixture file. extract_paths stays empty,
// so the fixture is lexed for the DES graph and scanned for spin sites.
std::vector<Diagnostic> RunFixture(const std::string& name, const Config& config,
                                   Model* model_out = nullptr) {
  Model model;
  ExtractSources({SourceFile{"fixtures/" + name, ReadFixture(name)}}, config, &model);
  std::vector<Diagnostic> diags;
  RunChecks(model, config, &diags);
  if (model_out != nullptr) {
    *model_out = model;
  }
  return diags;
}

// Notes (rule == "note") are informational; violations and waived violations
// are what the fixtures pin down.
std::vector<Diagnostic> NonNotes(const std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule != "note") {
      out.push_back(d);
    }
  }
  return out;
}

TEST(AnalyzeFixture, SpscViolationFiresExactlyOnce) {
  const auto diags = NonNotes(RunFixture("spsc_violation.cc", MustParse("")));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "multi-producer");
  EXPECT_FALSE(diags[0].waived);
  EXPECT_NE(diags[0].message.find("rx/data"), std::string::npos);
  EXPECT_NE(diags[0].message.find("alpha"), std::string::npos);
  EXPECT_NE(diags[0].message.find("beta"), std::string::npos);
}

TEST(AnalyzeFixture, WaitCycleFiresExactlyOnceWithChain) {
  const Config config = MustParse(
      "[[blocking]]\n"
      "file = \"fixtures/wait_cycle.cc\"\n"
      "ring = \"*/in\"\n"
      "reason = \"fixture: both inputs are declared blocking to close the loop\"\n");
  const auto diags = NonNotes(RunFixture("wait_cycle.cc", config));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "wait-cycle");
  EXPECT_FALSE(diags[0].waived);
  // Canonical rotation starts at the lexicographically smallest role.
  EXPECT_NE(diags[0].message.find("ping -> pong/in -> pong -> ping/in -> ping"),
            std::string::npos)
      << diags[0].message;
}

TEST(AnalyzeFixture, CleanGraphHasNoDiagnosticsAndCanonicalWiring) {
  Model model;
  const auto diags = NonNotes(RunFixture("clean.cc", MustParse(""), &model));
  EXPECT_TRUE(diags.empty());
  std::ostringstream wiring;
  WriteDesWiring(model, wiring);
  EXPECT_EQ(wiring.str(),
            "ring mid/in consumer=mid producers=source\n"
            "ring sink/in consumer=sink producers=mid\n");
}

TEST(AnalyzeFixture, SharedWaiverStillFiresButWaivedWithReason) {
  const Config config = MustParse(
      "[[shared]]\n"
      "ring = \"mux/shared\"\n"
      "reason = \"fixture: left and right both feed the mux by design\"\n");
  const auto diags = NonNotes(RunFixture("waiver.cc", config));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "multi-producer");
  EXPECT_TRUE(diags[0].waived);
  EXPECT_EQ(diags[0].waive_reason,
            "fixture: left and right both feed the mux by design");
}

TEST(AnalyzeFixture, UnsanctionedPushFiresExactlyOnce) {
  const auto diags = NonNotes(RunFixture("unsanctioned_push.cc", MustParse("")));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "blocking-push");
  EXPECT_FALSE(diags[0].waived);
  EXPECT_EQ(diags[0].line, 13);
}

TEST(AnalyzeFixture, SanctionedPushIsWaived) {
  const Config config = MustParse(
      "[[blocking]]\n"
      "file = \"fixtures/unsanctioned_push.cc\"\n"
      "ring = \"none/none\"\n"
      "reason = \"fixture: sanctioned for the waiver variant of the test\"\n");
  const auto diags = NonNotes(RunFixture("unsanctioned_push.cc", config));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "blocking-push");
  EXPECT_TRUE(diags[0].waived);
}

TEST(AnalyzeTree, RealTreeAnalyzesCleanUnderCheckedInConfig) {
  Config config;
  std::string error;
  ASSERT_TRUE(
      LoadConfig(std::string(ANALYZE_REPO_ROOT) + "/tools/analyze/analyze.toml",
                 &config, &error))
      << error;
  Model model;
  ASSERT_TRUE(ExtractTree(ANALYZE_REPO_ROOT, config, &model, &error)) << error;
  EXPECT_FALSE(model.des.empty());
  EXPECT_FALSE(model.live.empty());
  EXPECT_FALSE(model.live_watched.empty());
  std::vector<Diagnostic> diags;
  RunChecks(model, config, &diags);
  for (const Diagnostic& d : diags) {
    if (d.rule == "note") {
      continue;
    }
    EXPECT_TRUE(d.waived) << d.rule << " at " << d.file << ":" << d.line << ": "
                          << d.message;
  }
}

}  // namespace
}  // namespace newtos::analyze
