// TCP state-machine tests over a direct loopback wire with fault injection.

#include "src/net/tcp.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"
#include "src/sim/timer_wheel.h"

namespace newtos {
namespace {

constexpr Ipv4Addr kClientIp = Ipv4(10, 0, 0, 1);
constexpr Ipv4Addr kServerIp = Ipv4(10, 0, 0, 2);
constexpr uint16_t kClientPort = 50000;
constexpr uint16_t kServerPort = 80;

// Two TcpConnections joined by a delayed wire. Tests can drop or reorder
// segments via the filter hook.
class TcpPairTest : public ::testing::Test {
 protected:
  void Build(TcpParams params = {}) {
    params_ = params;
    const FlowKey client_key{kClientIp, kServerIp, kClientPort, kServerPort};
    TcpConnection::Callbacks ca;
    ca.output = [this](PacketPtr p) { Deliver(std::move(p), /*to_server=*/true); };
    client_ = std::make_unique<TcpConnection>(&sim_, &wheel_, client_key, params_, std::move(ca));

    TcpConnection::Callbacks cb;
    cb.output = [this](PacketPtr p) { Deliver(std::move(p), /*to_server=*/false); };
    server_ = std::make_unique<TcpConnection>(&sim_, &wheel_, client_key.Reversed(), params_,
                                              std::move(cb));
    server_->Listen();
  }

  void Deliver(PacketPtr p, bool to_server) {
    ++segments_on_wire_;
    if (drop_filter_ && drop_filter_(*p, to_server)) {
      ++dropped_;
      return;
    }
    sim_.Schedule(wire_delay_, [this, p = std::move(p), to_server] {
      TcpConnection* dst = to_server ? server_.get() : client_.get();
      if (dst != nullptr) {
        dst->OnSegment(*p);
      }
    });
  }

  Simulation sim_;
  TimerWheel wheel_{&sim_};  // before the connections: they cancel into it on destruction
  TcpParams params_;
  std::unique_ptr<TcpConnection> client_;
  std::unique_ptr<TcpConnection> server_;
  SimTime wire_delay_ = 50 * kMicrosecond;
  std::function<bool(const Packet&, bool to_server)> drop_filter_;
  uint64_t segments_on_wire_ = 0;
  uint64_t dropped_ = 0;
};

TEST_F(TcpPairTest, HandshakeEstablishesBothSides) {
  Build();
  bool client_up = false;
  client_->Connect();
  sim_.RunFor(10 * kMillisecond);
  (void)client_up;
  EXPECT_EQ(client_->state(), TcpState::kEstablished);
  EXPECT_EQ(server_->state(), TcpState::kEstablished);
}

TEST_F(TcpPairTest, BulkTransferDeliversEveryByte) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  ASSERT_EQ(client_->state(), TcpState::kEstablished);

  constexpr uint64_t kBytes = 1 << 20;  // 1 MiB
  client_->Send(kBytes);
  sim_.RunFor(2 * kSecond);

  EXPECT_EQ(server_->stats().bytes_received, kBytes);
  EXPECT_EQ(client_->stats().bytes_acked, kBytes);
  EXPECT_EQ(client_->stats().retransmits, 0u);
  EXPECT_EQ(client_->send_backlog(), 0u);
}

TEST_F(TcpPairTest, SlowStartGrowsCongestionWindow) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  const uint32_t initial_cwnd = client_->cwnd();
  client_->Send(4 << 20);
  sim_.RunFor(2 * kSecond);
  EXPECT_GT(client_->cwnd(), initial_cwnd);
}

TEST_F(TcpPairTest, GracefulCloseReachesClosedOnBothSides) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(10000);
  sim_.RunFor(50 * kMillisecond);

  client_->CloseSend();
  sim_.RunFor(50 * kMillisecond);
  EXPECT_EQ(server_->state(), TcpState::kCloseWait);

  server_->CloseSend();
  sim_.RunFor(1 * kSecond);  // includes TIME_WAIT expiry
  EXPECT_EQ(client_->state(), TcpState::kClosed);
  EXPECT_EQ(server_->state(), TcpState::kClosed);
  EXPECT_EQ(server_->stats().bytes_received, 10000u);
}

TEST_F(TcpPairTest, LossyLinkStillDeliversEverything) {
  Build();
  Rng rng(1234);
  drop_filter_ = [&rng](const Packet&, bool) { return rng.Bernoulli(0.05); };
  client_->Connect();
  sim_.RunFor(200 * kMillisecond);
  ASSERT_EQ(client_->state(), TcpState::kEstablished);

  constexpr uint64_t kBytes = 512 * 1024;
  client_->Send(kBytes);
  sim_.RunFor(20 * kSecond);

  EXPECT_EQ(server_->stats().bytes_received, kBytes);
  EXPECT_GT(client_->stats().retransmits, 0u);
}

TEST_F(TcpPairTest, SingleDropTriggersFastRetransmit) {
  Build();
  int data_segments_seen = 0;
  drop_filter_ = [&data_segments_seen](const Packet& p, bool to_server) {
    if (to_server && p.payload_bytes > 0) {
      ++data_segments_seen;
      return data_segments_seen == 5;  // drop exactly the 5th data segment
    }
    return false;
  };
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(256 * 1024);
  sim_.RunFor(5 * kSecond);

  EXPECT_EQ(server_->stats().bytes_received, 256u * 1024u);
  EXPECT_GE(client_->stats().fast_retransmits, 1u);
}

TEST_F(TcpPairTest, ReorderedSegmentsAreReassembled) {
  Build();
  // Swap adjacent data segments heading to the server by delaying every
  // second one an extra wire delay.
  int count = 0;
  drop_filter_ = nullptr;
  // Use a custom deliver path: hold one segment back.
  PacketPtr held;
  drop_filter_ = [this, &count, &held](const Packet& p, bool to_server) {
    if (!to_server || p.payload_bytes == 0) {
      return false;
    }
    ++count;
    if (count % 7 == 3) {
      // Capture and re-inject after the next segment (extra delay).
      auto copy = std::make_shared<Packet>(p);
      sim_.Schedule(3 * wire_delay_, [this, copy] { server_->OnSegment(*copy); });
      return true;  // "drop" the original: the copy arrives late
    }
    return false;
  };
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(128 * 1024);
  sim_.RunFor(5 * kSecond);

  EXPECT_EQ(server_->stats().bytes_received, 128u * 1024u);
  EXPECT_GT(server_->stats().ooo_segments, 0u);
}

TEST_F(TcpPairTest, ZeroWindowStallsAndReadReopens) {
  TcpParams p;
  p.rcv_wnd = 64 * 1024;
  Build(p);
  server_->SetAutoConsume(false);
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);

  constexpr uint64_t kBytes = 256 * 1024;  // 4x the receive window
  client_->Send(kBytes);
  sim_.RunFor(500 * kMillisecond);

  // Receiver window must have filled; sender stalls.
  EXPECT_GE(server_->unread_bytes(), 60u * 1024u);
  EXPECT_LT(client_->stats().bytes_acked, kBytes);
  const uint64_t acked_stalled = client_->stats().bytes_acked;

  // Drain the receive buffer in chunks; window updates restart the sender.
  for (int i = 0; i < 16; ++i) {
    server_->Read(32 * 1024);
    sim_.RunFor(200 * kMillisecond);
  }
  EXPECT_EQ(server_->stats().bytes_received, kBytes);
  EXPECT_EQ(client_->stats().bytes_acked, kBytes);
  EXPECT_GT(client_->stats().bytes_acked, acked_stalled);
}

TEST_F(TcpPairTest, BlackoutRecoversViaRto) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  ASSERT_EQ(client_->state(), TcpState::kEstablished);

  bool blackout = false;
  drop_filter_ = [&blackout](const Packet&, bool) { return blackout; };

  client_->Send(1 << 20);
  sim_.RunFor(200 * kMicrosecond);  // mid-transfer
  blackout = true;
  sim_.RunFor(300 * kMillisecond);
  blackout = false;
  sim_.RunFor(10 * kSecond);

  EXPECT_EQ(server_->stats().bytes_received, uint64_t{1} << 20);
  EXPECT_GT(client_->stats().timeouts, 0u);
}

TEST_F(TcpPairTest, RtoBackoffSequenceMatchesHandComputation) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  ASSERT_EQ(client_->state(), TcpState::kEstablished);
  // The handshake carries no data, so no RTT sample exists yet and the RTO
  // sits at its initial value — the hand computation below depends on it.
  ASSERT_EQ(client_->srtt(), 0);
  ASSERT_EQ(client_->rto(), params_.rto_initial);

  bool blackout = true;
  drop_filter_ = [&blackout](const Packet&, bool) { return blackout; };

  // One segment into a black hole. With rto_initial = 50ms, retransmissions
  // fire at +50, +150, +350, +750ms after the transmit: the timer doubles
  // 50 -> 100 -> 200 -> 400 as the backoff climbs 1, 2, 3, 4.
  client_->Send(100);
  sim_.RunFor(49 * kMillisecond);
  EXPECT_EQ(client_->rto_backoff(), 0);
  EXPECT_EQ(client_->stats().timeouts, 0u);
  sim_.RunFor(2 * kMillisecond);  // t = 51ms
  EXPECT_EQ(client_->rto_backoff(), 1);
  EXPECT_EQ(client_->stats().timeouts, 1u);
  sim_.RunFor(100 * kMillisecond);  // t = 151ms
  EXPECT_EQ(client_->rto_backoff(), 2);
  sim_.RunFor(200 * kMillisecond);  // t = 351ms
  EXPECT_EQ(client_->rto_backoff(), 3);
  sim_.RunFor(400 * kMillisecond);  // t = 751ms
  EXPECT_EQ(client_->rto_backoff(), 4);
  EXPECT_EQ(client_->stats().timeouts, 4u);

  // Lift the blackout. The fifth timeout (t = 1550ms) bumps the backoff to 5
  // and its retransmission finally goes through; the ACK advances snd_una —
  // but per RFC 6298 (5.7) that ACK is for a *retransmitted* segment
  // (Karn-ambiguous, no fresh sample), so the backoff must NOT reset. The
  // pre-fix code reset it on any advance.
  blackout = false;
  sim_.RunFor(810 * kMillisecond);
  EXPECT_EQ(client_->stats().timeouts, 5u);
  EXPECT_EQ(client_->stats().bytes_acked, 100u);
  EXPECT_EQ(client_->rto_backoff(), 5);
  EXPECT_EQ(client_->srtt(), 0);  // tainted sample was discarded

  // New, never-retransmitted data yields a fresh sample: backoff resets.
  client_->Send(100);
  sim_.RunFor(5 * kMillisecond);
  EXPECT_EQ(client_->stats().bytes_acked, 200u);
  EXPECT_EQ(client_->rto_backoff(), 0);
  EXPECT_GT(client_->srtt(), 0);
}

TEST_F(TcpPairTest, TlpProbeRepairsTailLossBeforeRto) {
  TcpParams params;
  params.tail_loss_probe = true;
  Build(params);
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);

  // Prime the RTT estimator (TLP only arms once srtt is known).
  client_->Send(1000);
  sim_.RunFor(5 * kMillisecond);
  ASSERT_GT(client_->srtt(), 0);
  ASSERT_EQ(client_->rto(), params_.rto_min);  // LAN RTT clamps to the floor

  // Drop the next data segment once: a lost tail no dupacks can repair.
  int to_drop = 1;
  drop_filter_ = [&to_drop](const Packet& p, bool to_server) {
    if (to_server && p.payload_bytes > 0 && to_drop > 0) {
      --to_drop;
      return true;
    }
    return false;
  };
  client_->Send(500);
  // The probe fires at PTO = max(2*srtt, 2ms) = 2ms — well before the 10ms
  // RTO — and retransmits the tail, so the transfer completes RTO-free.
  sim_.RunFor(5 * kMillisecond);
  EXPECT_EQ(client_->stats().tlp_probes, 1u);
  EXPECT_EQ(client_->stats().timeouts, 0u);
  EXPECT_EQ(server_->stats().bytes_received, 1500u);
}

TEST_F(TcpPairTest, TlpFiresOncePerEpisodeThenFallsBackToRto) {
  TcpParams params;
  params.tail_loss_probe = true;
  Build(params);
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(1000);
  sim_.RunFor(5 * kMillisecond);
  ASSERT_GT(client_->srtt(), 0);

  // Total blackout: the probe cannot help. Exactly one probe per episode,
  // then the real backed-off RTO takes over.
  bool blackout = true;
  drop_filter_ = [&blackout](const Packet&, bool) { return blackout; };
  client_->Send(500);
  sim_.RunFor(50 * kMillisecond);
  EXPECT_EQ(client_->stats().tlp_probes, 1u);
  EXPECT_GE(client_->stats().timeouts, 1u);

  blackout = false;
  sim_.RunFor(2 * kSecond);
  EXPECT_EQ(server_->stats().bytes_received, 1500u);
  EXPECT_EQ(client_->stats().tlp_probes, 1u);  // still one: RTO episode never re-probes
}

TEST_F(TcpPairTest, TailLossWithoutTlpWaitsForRto) {
  Build();  // tail_loss_probe defaults off
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(1000);
  sim_.RunFor(5 * kMillisecond);

  int to_drop = 1;
  drop_filter_ = [&to_drop](const Packet& p, bool to_server) {
    if (to_server && p.payload_bytes > 0 && to_drop > 0) {
      --to_drop;
      return true;
    }
    return false;
  };
  client_->Send(500);
  sim_.RunFor(50 * kMillisecond);
  EXPECT_EQ(client_->stats().tlp_probes, 0u);
  EXPECT_GE(client_->stats().timeouts, 1u);  // only the RTO could repair the tail
  EXPECT_EQ(server_->stats().bytes_received, 1500u);
}

TEST_F(TcpPairTest, RstAbortsPeer) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Abort();
  EXPECT_EQ(client_->state(), TcpState::kClosed);
  sim_.RunFor(5 * kMillisecond);
  EXPECT_EQ(server_->state(), TcpState::kClosed);
}

TEST_F(TcpPairTest, RetransmittedFinIsReAcked) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);

  // Drop the first FIN-ACK ack from client so server retransmits its FIN.
  client_->CloseSend();
  sim_.RunFor(20 * kMillisecond);
  server_->CloseSend();
  sim_.RunFor(2 * kSecond);
  EXPECT_EQ(client_->state(), TcpState::kClosed);
  EXPECT_EQ(server_->state(), TcpState::kClosed);
}

TEST_F(TcpPairTest, DelayedAckReducesPureAckCount) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(1 << 20);
  sim_.RunFor(2 * kSecond);

  // With delayed ACKs the server sends roughly one ACK per two segments.
  const uint64_t data_segs = client_->stats().segs_sent;
  const uint64_t acks = server_->stats().segs_sent;
  EXPECT_LT(acks, data_segs);
}

TEST_F(TcpPairTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t loss_seed) {
    Simulation sim;
    TimerWheel wheel(&sim);
    const FlowKey key{kClientIp, kServerIp, kClientPort, kServerPort};
    TcpParams params;
    std::unique_ptr<TcpConnection> a, b;
    Rng rng(loss_seed);
    auto wire = [&](PacketPtr p, TcpConnection** dst) {
      if (rng.Bernoulli(0.02)) {
        return;
      }
      sim.Schedule(40 * kMicrosecond, [p = std::move(p), dst] {
        if (*dst) (*dst)->OnSegment(*p);
      });
    };
    static TcpConnection* a_raw;
    static TcpConnection* b_raw;
    TcpConnection::Callbacks ca;
    ca.output = [&wire](PacketPtr p) { wire(std::move(p), &b_raw); };
    TcpConnection::Callbacks cb;
    cb.output = [&wire](PacketPtr p) { wire(std::move(p), &a_raw); };
    a = std::make_unique<TcpConnection>(&sim, &wheel, key, params, std::move(ca));
    b = std::make_unique<TcpConnection>(&sim, &wheel, key.Reversed(), params, std::move(cb));
    a_raw = a.get();
    b_raw = b.get();
    b->Listen();
    a->Connect();
    sim.RunFor(10 * kMillisecond);
    a->Send(200 * 1024);
    sim.RunFor(5 * kSecond);
    auto st = a->stats();
    a_raw = nullptr;
    b_raw = nullptr;
    return std::make_tuple(st.segs_sent, st.retransmits, b->stats().bytes_received);
  };
  EXPECT_EQ(run(77), run(77));
}

TEST_F(TcpPairTest, StatsCountersAreConsistent) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(100 * 1024);
  sim_.RunFor(2 * kSecond);

  const TcpStats& cs = client_->stats();
  EXPECT_EQ(cs.bytes_sent, 100u * 1024u);
  EXPECT_EQ(cs.bytes_acked, 100u * 1024u);
  EXPECT_GE(cs.segs_sent, (100u * 1024u) / params_.mss);
  EXPECT_EQ(cs.timeouts, 0u);
}

TEST_F(TcpPairTest, SackAdvertisesOutOfOrderRanges) {
  TcpParams p;
  p.sack = true;
  Build(p);
  // Capture ACKs heading back to the client and look for SACK blocks.
  int acks_with_sack = 0;
  drop_filter_ = [&acks_with_sack](const Packet& pkt, bool to_server) {
    if (to_server && pkt.payload_bytes > 0) {
      static int data_count = 0;
      ++data_count;
      if (data_count == 3) {
        return true;  // drop one mid-stream segment to open a hole
      }
    }
    if (!to_server && pkt.tcp.n_sack > 0) {
      ++acks_with_sack;
    }
    return false;
  };
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  client_->Send(64 * 1024);
  sim_.RunFor(2 * kSecond);
  EXPECT_GT(acks_with_sack, 0);
  EXPECT_EQ(server_->stats().bytes_received, 64u * 1024u);
}

TEST_F(TcpPairTest, SackRepairsMultipleLossesFasterThanReno) {
  // Drop several distinct segments of the same flight. NewReno repairs one
  // hole per round trip (or falls back to a timeout); SACK fills multiple
  // holes per RTT, so the transfer completes sooner with no more timeouts.
  struct Outcome {
    TcpStats stats;
    SimTime completed_at = 0;
  };
  auto run = [this](bool sack) {
    TcpParams p;
    p.sack = sack;
    Build(p);
    int data_count = 0;
    drop_filter_ = [&data_count](const Packet& pkt, bool to_server) {
      if (to_server && pkt.payload_bytes > 0) {
        ++data_count;
        return data_count == 20 || data_count == 24 || data_count == 28 || data_count == 32;
      }
      return false;
    };
    client_->Connect();
    sim_.RunFor(5 * kMillisecond);
    constexpr uint64_t kBytes = 256 * 1024;
    const SimTime started = sim_.Now();
    client_->Send(kBytes);
    Outcome o;
    while (client_->stats().bytes_acked < kBytes && sim_.Now() - started < 30 * kSecond) {
      sim_.RunFor(50 * kMicrosecond);  // fine-grained: recovery differences are RTT-scale
    }
    o.completed_at = sim_.Now() - started;  // transfer duration
    EXPECT_EQ(server_->stats().bytes_received, kBytes);
    o.stats = client_->stats();
    return o;
  };
  const Outcome reno = run(false);
  const Outcome sack = run(true);
  EXPECT_GT(sack.stats.sack_retransmits, 0u);
  EXPECT_LE(sack.stats.timeouts, reno.stats.timeouts);
  EXPECT_LT(sack.completed_at, reno.completed_at)
      << "SACK must finish the lossy transfer sooner than NewReno";
}

TEST_F(TcpPairTest, SackLossyLinkStillDeliversEverything) {
  TcpParams p;
  p.sack = true;
  Build(p);
  Rng rng(777);
  drop_filter_ = [&rng](const Packet&, bool) { return rng.Bernoulli(0.08); };
  client_->Connect();
  sim_.RunFor(500 * kMillisecond);
  ASSERT_EQ(client_->state(), TcpState::kEstablished);
  client_->Send(512 * 1024);
  sim_.RunFor(30 * kSecond);
  EXPECT_EQ(server_->stats().bytes_received, 512u * 1024u);
  EXPECT_EQ(client_->stats().bytes_acked, 512u * 1024u);
}

// Parameterized sweep: transfers of many sizes all complete exactly.
class TcpTransferSize : public TcpPairTest, public ::testing::WithParamInterface<uint64_t> {};

TEST_P(TcpTransferSize, TransfersExactly) {
  Build();
  client_->Connect();
  sim_.RunFor(5 * kMillisecond);
  const uint64_t bytes = GetParam();
  client_->Send(bytes);
  sim_.RunFor(10 * kSecond);
  EXPECT_EQ(server_->stats().bytes_received, bytes);
  EXPECT_EQ(client_->stats().bytes_acked, bytes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransferSize,
                         ::testing::Values(1, 100, 1460, 1461, 4096, 65536, 1000000, 1460 * 7,
                                           (1 << 21) + 13));

// Parameterized loss sweep: completion under increasing loss rates.
class TcpLossSweep : public TcpPairTest, public ::testing::WithParamInterface<int> {};

TEST_P(TcpLossSweep, CompletesUnderLoss) {
  Build();
  Rng rng(99 + static_cast<uint64_t>(GetParam()));
  const double loss = GetParam() / 100.0;
  drop_filter_ = [&rng, loss](const Packet&, bool) { return rng.Bernoulli(loss); };
  client_->Connect();
  sim_.RunFor(500 * kMillisecond);
  if (client_->state() != TcpState::kEstablished) {
    sim_.RunFor(2 * kSecond);  // handshake may need retries at high loss
  }
  ASSERT_EQ(client_->state(), TcpState::kEstablished);
  client_->Send(100 * 1024);
  sim_.RunFor(60 * kSecond);
  EXPECT_EQ(server_->stats().bytes_received, 100u * 1024u) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep, ::testing::Values(0, 1, 2, 5, 10, 15));

}  // namespace
}  // namespace newtos
