// Hand-computed RFC 6298 sequences for RttEst (src/net/rtt_estimator.h):
// EWMA arithmetic, clamping, Karn's rule, wraparound-safe sample completion,
// and the §5.7 backoff rules (double per timeout, reset only on a fresh
// non-retransmitted sample).

#include "src/net/rtt_estimator.h"

#include "gtest/gtest.h"
#include "src/sim/time.h"

namespace newtos {
namespace {

constexpr SimTime kRtoInitial = 50 * kMillisecond;
constexpr SimTime kRtoMin = 10 * kMillisecond;
constexpr SimTime kRtoMax = 4 * kSecond;

RttEst MakeEst() { return RttEst(kRtoInitial, kRtoMin, kRtoMax); }

TEST(RttEst, FirstSampleSeedsSrttAndHalvesVar) {
  RttEst est = MakeEst();
  EXPECT_EQ(est.rto(), kRtoInitial);
  est.Update(20 * kMillisecond);
  EXPECT_EQ(est.srtt(), 20 * kMillisecond);
  EXPECT_EQ(est.rttvar(), 10 * kMillisecond);
  EXPECT_EQ(est.rto(), 60 * kMillisecond);  // srtt + 4*rttvar
}

TEST(RttEst, EwmaSequenceMatchesHandComputation) {
  RttEst est = MakeEst();
  est.Update(20 * kMillisecond);  // srtt=20ms rttvar=10ms
  est.Update(28 * kMillisecond);
  // err=8ms; rttvar=(3*10+8)/4=9.5ms; srtt=(7*20+28)/8=21ms; rto=21+38=59ms.
  EXPECT_EQ(est.srtt(), 21 * kMillisecond);
  EXPECT_EQ(est.rttvar(), 9500 * kMicrosecond);
  EXPECT_EQ(est.rto(), 59 * kMillisecond);
  est.Update(12 * kMillisecond);
  // err=9ms; rttvar=(3*9.5+9)/4=9.375ms; srtt=(7*21+12)/8=19.875ms;
  // rto=19.875+37.5=57.375ms.
  EXPECT_EQ(est.srtt(), 19875 * kMicrosecond);
  EXPECT_EQ(est.rttvar(), 9375 * kMicrosecond);
  EXPECT_EQ(est.rto(), 57375 * kMicrosecond);
}

TEST(RttEst, RtoClampsToMinAndMax) {
  RttEst low = MakeEst();
  low.Update(1 * kMillisecond);  // srtt+4*rttvar = 3ms < rto_min
  EXPECT_EQ(low.rto(), kRtoMin);
  RttEst high = MakeEst();
  high.Update(2 * kSecond);      // srtt+4*rttvar = 6s > rto_max
  EXPECT_EQ(high.rto(), kRtoMax);
}

TEST(RttEst, FreshSampleCompletesAndResetsBackoff) {
  RttEst est = MakeEst();
  est.OnTimeout();
  est.OnTimeout();
  est.OnTimeout();
  EXPECT_EQ(est.backoff(), 3);
  est.StartSample(1000, 100 * kMicrosecond);
  EXPECT_TRUE(est.sample_pending());
  EXPECT_FALSE(est.OnAck(999, 200 * kMicrosecond));  // timed byte not covered
  EXPECT_TRUE(est.sample_pending());
  EXPECT_TRUE(est.OnAck(1000, 25100 * kMicrosecond));
  EXPECT_FALSE(est.sample_pending());
  EXPECT_EQ(est.srtt(), 25 * kMillisecond);
  EXPECT_EQ(est.backoff(), 0);  // §5.7: fresh sample un-backs-off
}

TEST(RttEst, KarnTaintedSampleIsDiscardedAndKeepsBackoff) {
  RttEst est = MakeEst();
  est.StartSample(500, 0);
  est.OnTimeout();
  est.OnRetransmit();
  EXPECT_FALSE(est.OnAck(500, 30 * kMillisecond));  // delivered, but ambiguous
  EXPECT_FALSE(est.sample_pending());
  EXPECT_EQ(est.srtt(), 0);        // no measurement folded in
  EXPECT_EQ(est.backoff(), 1);     // §5.7: retransmitted ACK must not reset
  EXPECT_EQ(est.rto(), kRtoInitial);
}

TEST(RttEst, BackoffDoublesAndSaturatesAtMax) {
  RttEst est = MakeEst();  // base rto 50ms
  const SimTime expected[] = {50 * kMillisecond,  100 * kMillisecond, 200 * kMillisecond,
                              400 * kMillisecond, 800 * kMillisecond, 1600 * kMillisecond,
                              3200 * kMillisecond, kRtoMax, kRtoMax};
  for (size_t i = 0; i < sizeof(expected) / sizeof(expected[0]); ++i) {
    EXPECT_EQ(est.BackoffedRto(), expected[i]) << "after " << i << " timeouts";
    est.OnTimeout();
  }
  est.ResetBackoff();
  EXPECT_EQ(est.BackoffedRto(), 50 * kMillisecond);
}

TEST(RttEst, SampleCompletionIsWraparoundSafe) {
  RttEst est = MakeEst();
  est.StartSample(0xFFFFFFF0u, 0);
  EXPECT_FALSE(est.OnAck(0xFFFFFFEFu, kMillisecond));  // just below: pending
  EXPECT_TRUE(est.OnAck(5u, 15 * kMillisecond));       // wrapped past: covered
  EXPECT_EQ(est.srtt(), 15 * kMillisecond);
}

TEST(RttEst, OnlyOneSampleAtATime) {
  RttEst est = MakeEst();
  EXPECT_FALSE(est.OnAck(100, kMillisecond));  // nothing pending: no-op
  est.StartSample(100, 0);
  EXPECT_TRUE(est.OnAck(100, 20 * kMillisecond));
  EXPECT_FALSE(est.OnAck(200, 40 * kMillisecond));  // consumed; must re-start
  EXPECT_EQ(est.srtt(), 20 * kMillisecond);
}

}  // namespace
}  // namespace newtos
