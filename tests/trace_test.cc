// Tracing subsystem tests: ring semantics, folded-stack aggregation, the
// disabled fast path, and the Chrome-trace exporter — whose output is pinned
// byte-for-byte against a golden so that accidental format drift (which
// would break saved Perfetto workflows and the byte-identical-export
// guarantee) fails loudly.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/steering.h"
#include "src/core/testbed.h"
#include "src/sim/simulation.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/folded_stack.h"
#include "src/trace/recorder.h"
#include "src/trace/sampler.h"
#include "src/trace/stack_trace.h"
#include "src/workload/iperf.h"

namespace newtos {
namespace {

// --- Recorder ring -----------------------------------------------------------

TEST(TraceRecorder, DisabledRecordIsANoOp) {
  TraceRecorder rec(16);
  const TrackId t = rec.RegisterTrack("t");
  const NameId n = rec.InternName("x");
  ASSERT_FALSE(rec.enabled());
  for (int i = 0; i < 100; ++i) {
    rec.Instant(i, t, n);
  }
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRecorder(1).capacity(), 1u);
  EXPECT_EQ(TraceRecorder(7).capacity(), 8u);
  EXPECT_EQ(TraceRecorder(8).capacity(), 8u);
  EXPECT_EQ(TraceRecorder(9).capacity(), 16u);
  EXPECT_EQ(TraceRecorder(0).capacity(), 1u);
}

TEST(TraceRecorder, WraparoundKeepsNewestAndCountsDropped) {
  TraceRecorder rec(8);
  const TrackId t = rec.RegisterTrack("t");
  const NameId n = rec.InternName("x");
  rec.set_enabled(true);
  for (int i = 0; i < 11; ++i) {
    rec.Counter(i, t, n, i);
  }
  EXPECT_EQ(rec.recorded(), 11u);
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.dropped(), 3u);

  // ForEach visits the surviving window (events 3..10) oldest-first.
  std::vector<int64_t> seen;
  rec.ForEach([&](const TraceEvent& e) { seen.push_back(e.value); });
  ASSERT_EQ(seen.size(), 8u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int64_t>(i + 3));
  }
}

TEST(TraceRecorder, ClearForgetsEventsButKeepsInterning) {
  TraceRecorder rec(8);
  const TrackId t = rec.RegisterTrack("t");
  const NameId n = rec.InternName("x");
  rec.set_enabled(true);
  rec.Instant(1, t, n);
  rec.Clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.InternName("x"), n) << "interned names must survive Clear()";
}

TEST(TraceRecorder, InternNameIsStable) {
  TraceRecorder rec(4);
  const NameId a = rec.InternName("alpha");
  const NameId b = rec.InternName("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.InternName("alpha"), a);
  EXPECT_EQ(rec.NameOf(a), "alpha");
  EXPECT_EQ(rec.NameOf(b), "beta");
}

// --- Folded stacks -----------------------------------------------------------

TEST(FoldedStacks, NestedSpansSplitSelfTime) {
  TraceRecorder rec(64);
  const TrackId t = rec.RegisterTrack("srv");
  const NameId outer = rec.InternName("outer");
  const NameId inner = rec.InternName("inner");
  rec.set_enabled(true);
  rec.SpanBegin(0, t, outer);
  rec.SpanBegin(100, t, inner);
  rec.SpanEnd(400, t, inner);
  rec.SpanEnd(1000, t, outer);

  FoldedStacks fs(rec);
  EXPECT_EQ(fs.unmatched(), 0u);
  ASSERT_TRUE(fs.stats().count("srv;outer"));
  ASSERT_TRUE(fs.stats().count("srv;outer;inner"));
  EXPECT_EQ(fs.stats().at("srv;outer").total, 700);  // 1000 inclusive - 300 child
  EXPECT_EQ(fs.stats().at("srv;outer;inner").total, 300);
}

TEST(FoldedStacks, CompleteEventsNestLikeSpans) {
  // The server burst encoding: parent complete first, children after, in
  // begin order. Self time must match the equivalent begin/end encoding.
  TraceRecorder rec(64);
  const TrackId t = rec.RegisterTrack("srv");
  const NameId burst = rec.InternName("burst");
  const NameId a = rec.InternName("a");
  const NameId b = rec.InternName("b");
  rec.set_enabled(true);
  rec.Complete(0, t, burst, 1000);
  rec.Complete(100, t, a, 300);
  rec.Complete(400, t, b, 200);

  FoldedStacks fs(rec);
  EXPECT_EQ(fs.unmatched(), 0u);
  EXPECT_EQ(fs.stats().at("srv;burst").total, 500);  // 1000 - 300 - 200
  EXPECT_EQ(fs.stats().at("srv;burst;a").total, 300);
  EXPECT_EQ(fs.stats().at("srv;burst;b").total, 200);
}

TEST(FoldedStacks, BackToBackCompletesDoNotNest) {
  // Sibling bursts: the second begins exactly where the first ends, so it
  // must be retired as a sibling, not stacked as a child.
  TraceRecorder rec(64);
  const TrackId t = rec.RegisterTrack("srv");
  const NameId burst = rec.InternName("burst");
  rec.set_enabled(true);
  rec.Complete(0, t, burst, 100);
  rec.Complete(100, t, burst, 100);
  rec.Complete(200, t, burst, 100);

  FoldedStacks fs(rec);
  EXPECT_EQ(fs.unmatched(), 0u);
  const StageStat& s = fs.stats().at("srv;burst");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.total, 300);
}

TEST(FoldedStacks, AsyncHopsAggregateByTrackAndName) {
  TraceRecorder rec(64);
  const TrackId t = rec.RegisterTrack("chan");
  const NameId hop = rec.InternName("in-flight");
  rec.set_enabled(true);
  rec.AsyncBegin(0, t, hop, 1);
  rec.AsyncBegin(50, t, hop, 2);  // overlapping hops: distinct pair ids
  rec.AsyncEnd(250, t, hop, 1);
  rec.AsyncEnd(400, t, hop, 2);

  FoldedStacks fs(rec);
  EXPECT_EQ(fs.unmatched(), 0u);
  const StageStat& s = fs.stats().at("chan;in-flight");
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.total, 250 + 350);
  EXPECT_EQ(s.min, 250);
  EXPECT_EQ(s.max, 350);
}

TEST(FoldedStacks, UnmatchedEventsAreCountedNotCrashed) {
  TraceRecorder rec(64);
  const TrackId t = rec.RegisterTrack("srv");
  const NameId n = rec.InternName("x");
  rec.set_enabled(true);
  rec.SpanEnd(100, t, n);         // end with no begin (fell off the ring)
  rec.AsyncEnd(200, t, n, 9);     // async end with no begin
  rec.SpanBegin(300, t, n);       // begin with no end (still open)

  FoldedStacks fs(rec);
  EXPECT_EQ(fs.unmatched(), 3u);
}

// --- Chrome-trace exporter ---------------------------------------------------

// One event of every kind, on a named ranked track. Pinned byte-for-byte:
// if this test fails because you *intended* to change the format, update the
// golden in the same commit — and remember saved traces and viewer recipes.
void FillGoldenRecorder(TraceRecorder& rec) {
  const TrackId t = rec.RegisterTrack("srv", 5);
  const NameId burst = rec.InternName("burst");
  const NameId msg = rec.InternName("PacketRx");
  const NameId crash = rec.InternName("crash");
  const NameId depth = rec.InternName("depth");
  rec.set_enabled(true);
  rec.Complete(1000000, t, burst, 500000);
  rec.Complete(1100000, t, msg, 300000, 42);
  rec.AsyncBegin(2000000, t, msg, 7);
  rec.AsyncEnd(2500000, t, msg, 7);
  rec.Instant(2600000, t, crash);
  rec.Counter(2700000, t, depth, 3);
  rec.SpanBegin(3000000, t, msg, 9);
  rec.SpanEnd(3200000, t, msg, 9);
}

constexpr const char* kGoldenChromeTrace =
    R"({"displayTimeUnit":"ms","traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"trace"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_sort_index","args":{"sort_index":0}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"srv"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_sort_index","args":{"sort_index":5}},
{"pid":1,"tid":1,"ts":1.000000,"ph":"X","name":"burst","dur":0.500000},
{"pid":1,"tid":1,"ts":1.100000,"ph":"X","name":"PacketRx","dur":0.300000,"args":{"flow":42}},
{"pid":1,"tid":1,"ts":2.000000,"ph":"b","cat":"hop","id":7,"name":"PacketRx"},
{"pid":1,"tid":1,"ts":2.500000,"ph":"e","cat":"hop","id":7,"name":"PacketRx"},
{"pid":1,"tid":1,"ts":2.600000,"ph":"i","s":"t","name":"crash"},
{"pid":1,"tid":1,"ts":2.700000,"ph":"C","name":"depth","args":{"value":3}},
{"pid":1,"tid":1,"ts":3.000000,"ph":"B","name":"PacketRx","args":{"flow":9}},
{"pid":1,"tid":1,"ts":3.200000,"ph":"E"}
]}
)";

TEST(ChromeTrace, MatchesGoldenBytes) {
  TraceRecorder rec(16);
  FillGoldenRecorder(rec);
  std::ostringstream out;
  ASSERT_TRUE(WriteChromeTrace(rec, out));
  EXPECT_EQ(out.str(), kGoldenChromeTrace);
}

TEST(ChromeTrace, ExportIsByteIdenticalAcrossRuns) {
  auto render = [] {
    TraceRecorder rec(16);
    FillGoldenRecorder(rec);
    std::ostringstream out;
    WriteChromeTrace(rec, out);
    return out.str();
  };
  EXPECT_EQ(render(), render());
}

TEST(ChromeTrace, FileExportMatchesStreamExport) {
  TraceRecorder rec(16);
  FillGoldenRecorder(rec);
  const std::string path = ::testing::TempDir() + "/trace_test_chrome.json";
  ASSERT_TRUE(WriteChromeTraceFile(rec, path));
  std::ifstream f(path, std::ios::binary);
  std::stringstream contents;
  contents << f.rdbuf();
  EXPECT_EQ(contents.str(), kGoldenChromeTrace);
  std::remove(path.c_str());
}

TEST(ChromeTrace, FileExportFailsCleanlyOnBadPath) {
  TraceRecorder rec(16);
  FillGoldenRecorder(rec);
  EXPECT_FALSE(WriteChromeTraceFile(rec, "/nonexistent-dir/trace.json"));
}

TEST(ChromeTrace, EscapesNamesAndNegativeTimestampsDoNotAppear) {
  TraceRecorder rec(16);
  const TrackId t = rec.RegisterTrack("a\"b\\c");
  const NameId n = rec.InternName("x\"y");
  rec.set_enabled(true);
  rec.Instant(5, t, n);
  std::ostringstream out;
  ASSERT_TRUE(WriteChromeTrace(rec, out));
  EXPECT_NE(out.str().find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(out.str().find("x\\\"y"), std::string::npos);
}

// --- Samplers ----------------------------------------------------------------

TEST(TraceSamplers, TicksEmitCountersAndStopCancels) {
  Simulation sim;
  TraceRecorder rec(1 << 10);
  TraceSamplers samplers(&sim, &rec);
  int64_t value = 0;
  samplers.Add(rec.RegisterTrack("t"), rec.InternName("v"), [&] { return value++; });
  rec.set_enabled(true);
  samplers.Start(kMillisecond);
  sim.RunFor(10 * kMillisecond + kMicrosecond);
  const uint64_t after_run = rec.recorded();
  EXPECT_GE(after_run, 10u);
  samplers.Stop();
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(rec.recorded(), after_run) << "Stop() must cancel the tick chain";

  // Every recorded event is a counter with the sampled sequence.
  int64_t expect = 0;
  rec.ForEach([&](const TraceEvent& e) {
    EXPECT_EQ(e.type, TraceEventType::kCounter);
    EXPECT_EQ(e.value, expect++);
  });
}

// --- StackTracer end-to-end --------------------------------------------------

TEST(StackTracer, TracedBulkRunRecordsBalancedSpans) {
  Testbed tb;
  DedicatedSlowPlan(*tb.stack(), 3'600'000 * kKhz, 3'600'000 * kKhz).Apply(tb.machine());
  StackTracer::Options topt;
  topt.ring_capacity = 1 << 18;
  StackTracer tracer(&tb.sim(), tb.stack(), topt);

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tracer.Enable();
  tb.sim().RunFor(2 * kMillisecond);
  tracer.Disable();

  EXPECT_GT(tracer.recorder().recorded(), 1000u);
  EXPECT_EQ(tracer.recorder().dropped(), 0u);

  // Every stage of the pipeline shows up in the folded profile, and hops
  // pair up (no unmatched beyond packets in flight at the enable boundary).
  FoldedStacks fs(tracer.recorder());
  EXPECT_LT(fs.unmatched(), 64u);
  bool saw_burst = false;
  bool saw_hop = false;
  for (const auto& [key, stat] : fs.stats()) {
    if (key.find(";burst") != std::string::npos) {
      saw_burst = true;
    }
    if (key.find("in-flight") != std::string::npos) {
      saw_hop = true;
    }
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_hop);
}

TEST(StackTracer, WiredButNeverEnabledRecordsNothing) {
  Testbed tb;
  StackTracer tracer(&tb.sim(), tb.stack());

  SocketApi* api = tb.stack()->CreateApp("iperf", tb.machine().core(0));
  IperfSender::Params sp;
  sp.dst = tb.peer_addr();
  IperfSender sender(api, sp);
  IperfPeerSink sink(&tb.peer());
  sender.Start();
  tb.sim().RunFor(20 * kMillisecond);

  EXPECT_EQ(tracer.recorder().recorded(), 0u);
}

}  // namespace
}  // namespace newtos
