#include "src/chan/spsc_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace newtos {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.TryPop(), std::optional<int>(1));
  EXPECT_EQ(ring.TryPop(), std::optional<int>(2));
  EXPECT_EQ(ring.TryPop(), std::nullopt);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.TryPop(), std::optional<int>(0));
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.TryPush(round));
    ASSERT_EQ(ring.TryPop(), std::optional<int>(round));
  }
}

TEST(SpscRing, FifoOrderPreserved) {
  SpscRing<int> ring(128);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ring.TryPop(), std::optional<int>(i));
  }
}

TEST(SpscRing, FrontPeeksWithoutConsuming) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  ring.TryPush(7);
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), 7);
  EXPECT_EQ(ring.TryPop(), std::optional<int>(7));
}

TEST(SpscRing, MoveOnlyTypesWork) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(5)));
  auto out = ring.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

TEST(SpscRing, TryEmplaceConstructsInPlace) {
  SpscRing<std::string> ring(4);
  EXPECT_TRUE(ring.TryEmplace("hello"));
  EXPECT_EQ(ring.TryPop(), std::optional<std::string>("hello"));
}

TEST(SpscRing, DestructorDrainsRemainingElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> cc) noexcept : c(std::move(cc)) { ++*c; }
    Probe(Probe&& o) noexcept : c(std::move(o.c)) {}
    ~Probe() {
      if (c) {
        --*c;
      }
    }
  };
  {
    SpscRing<Probe> ring(8);
    for (int i = 0; i < 5; ++i) {
      ring.TryPush(Probe(counter));
    }
    EXPECT_EQ(*counter, 5);
  }
  EXPECT_EQ(*counter, 0);  // all destroyed on ring teardown
}

TEST(SpscRing, SizeEstimates) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.EmptyConsumer());
  for (int i = 0; i < 5; ++i) {
    ring.TryPush(i);
  }
  EXPECT_EQ(ring.SizeProducer(), 5u);
  EXPECT_EQ(ring.SizeConsumer(), 5u);
  EXPECT_FALSE(ring.EmptyConsumer());
}

// Real two-thread stress: every token arrives exactly once, in order.
TEST(SpscRing, TwoThreadStressPreservesOrderAndCount) {
  constexpr uint64_t kN = 200'000;
  SpscRing<uint64_t> ring(256);
  uint64_t received = 0;
  uint64_t sum = 0;
  bool order_ok = true;

  std::thread consumer([&] {
    uint64_t expect = 0;
    while (expect < kN) {
      auto v = ring.TryPop();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      if (*v != expect) {
        order_ok = false;
        break;
      }
      sum += *v;
      ++expect;
      ++received;
    }
  });

  for (uint64_t i = 0; i < kN; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_TRUE(order_ok);
  EXPECT_EQ(received, kN);
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

// Stress with tiny capacity: maximum contention on the full/empty edges.
TEST(SpscRing, TinyRingStress) {
  constexpr uint64_t kN = 50'000;
  SpscRing<uint64_t> ring(1);
  uint64_t received = 0;
  std::thread consumer([&] {
    while (received < kN) {
      if (auto v = ring.TryPop()) {
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 0; i < kN; ++i) {
    while (!ring.TryPush(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(received, kN);
}

}  // namespace
}  // namespace newtos
