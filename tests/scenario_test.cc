// Scenario runner determinism: the same script and seed must reproduce the
// same bytes — across repeated runs, across lane counts for incast, and with
// tracing toggled on. One lossy-WAN script is golden-pinned end-to-end.

#include <gtest/gtest.h>

#include <string>

#include "src/scenario/parser.h"
#include "src/scenario/runner.h"
#include "src/trace/latency_decomp.h"

namespace newtos::scenario {
namespace {

Script Parse(const std::string& text) {
  Script s;
  ParseError err;
  EXPECT_TRUE(ParseScript(text, "inline.nsc", &s, &err)) << err.Format();
  return s;
}

Script Load(const std::string& rel) {
  Script s;
  ParseError err;
  EXPECT_TRUE(LoadScript(std::string(NEWTOS_SCENARIO_DIR) + "/" + rel, &s, &err))
      << err.Format();
  return s;
}

// A short lossy-WAN p2p scenario, cheap enough to run several times.
const char* kLossyP2p =
    "scenario det_lossy\n"
    "seed 9\n"
    "freq 3.6GHz\n"
    "warmup 20ms\n"
    "run_for 60ms\n"
    "burst 512KiB\n"
    "link rtt 4ms\n"
    "link loss 0.01 seed 42\n";

TEST(ScenarioRunnerTest, RepeatRunsAreBitIdentical) {
  const Script s = Parse(kLossyP2p);
  ScenarioRunner runner;
  const ScenarioOutcome a = runner.RunOne(s, s.freqs[0]);
  const ScenarioOutcome b = runner.RunOne(s, s.freqs[0]);
  EXPECT_EQ(a.cell.digest, b.cell.digest);
  EXPECT_EQ(a.cell.delivered, b.cell.delivered);
  EXPECT_EQ(a.window_events, b.window_events);
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].second, b.counters[i].second) << a.counters[i].first;
  }
  EXPECT_GT(a.Counter("retransmits"), 0u);
  EXPECT_GT(a.Counter("link_loss_drops"), 0u);
}

TEST(ScenarioRunnerTest, SeedChangesTheRun) {
  const Script a = Parse(kLossyP2p);
  Script b = a;
  b.seed = 10;
  ScenarioRunner runner;
  // A different script seed moves the loss pattern only via the fault plan;
  // the link loss seed is its own knob, so delivered bytes may match — but
  // the digest history almost surely differs once any fault is armed. Use a
  // channel fault to make the seed matter.
  Script fa = Parse(std::string(kLossyP2p) + "inject chan_drop ip prob 0.02\n");
  Script fb = fa;
  fb.seed = 10;
  const ScenarioOutcome ra = runner.RunOne(fa, fa.freqs[0]);
  const ScenarioOutcome rb = runner.RunOne(fb, fb.freqs[0]);
  EXPECT_NE(ra.cell.digest, rb.cell.digest);
}

TEST(ScenarioRunnerTest, TracingDoesNotPerturbTheRun) {
  const Script s = Parse(kLossyP2p);
  ScenarioRunner plain;
  bool trace_seen = false;
  RunnerOptions ro;
  ro.force_trace = true;
  ro.on_trace = [&trace_seen](const TraceRecorder& rec) {
    trace_seen = true;
    EXPECT_GT(rec.dropped() + rec.size(), 0u);
  };
  ScenarioRunner traced(std::move(ro));
  const ScenarioOutcome a = plain.RunOne(s, s.freqs[0]);
  const ScenarioOutcome b = traced.RunOne(s, s.freqs[0]);
  EXPECT_TRUE(trace_seen);
  EXPECT_EQ(a.cell.digest, b.cell.digest);
  EXPECT_EQ(a.cell.delivered, b.cell.delivered);
}

TEST(ScenarioRunnerTest, IncastDigestIsLaneCountInvariant) {
  const Script s = Load("wan/wan_incast.nsc");
  uint64_t digest1 = 0;
  uint64_t delivered1 = 0;
  for (int lanes : {1, 2, 4}) {
    RunnerOptions ro;
    ro.lanes_override = lanes;
    ScenarioRunner runner(std::move(ro));
    const ScenarioOutcome o = runner.RunOne(s, s.freqs[0]);
    EXPECT_TRUE(o.pass) << "lanes=" << lanes;
    if (lanes == 1) {
      digest1 = o.cell.digest;
      delivered1 = o.cell.delivered;
      EXPECT_NE(digest1, 0u);
    } else {
      EXPECT_EQ(o.cell.digest, digest1) << "lanes=" << lanes;
      EXPECT_EQ(o.cell.delivered, delivered1) << "lanes=" << lanes;
    }
  }
}

TEST(ScenarioRunnerTest, GoldenLossyWanScriptStillPins) {
  // wan_golden.nsc carries an `expect digest` pin of its own run; if an
  // engine change legitimately moves the stream history, update the script's
  // pinned digest consciously.
  const Script s = Load("wan/wan_golden.nsc");
  ScenarioRunner runner;
  const ScenarioOutcome o = runner.RunOne(s, s.freqs[0]);
  for (const ExpectResult& r : o.expects) {
    EXPECT_TRUE(r.pass) << "wan_golden.nsc:" << r.line << ": " << r.what;
  }
  EXPECT_TRUE(o.pass);
}

TEST(ScenarioRunnerTest, WindowedFaultFiresOnlyInsideWindow) {
  // The drop tap is armed for [30ms, 50ms) of an 80ms run: drops must be
  // observed, and the two halves of the run outside the window must deliver.
  const Script s = Parse(
      "scenario windowed\n"
      "seed 5\n"
      "freq 3.6GHz\n"
      "warmup 20ms\n"
      "run_for 60ms\n"
      "burst 512KiB\n"
      "at 30ms until 50ms inject chan_drop ip prob 0.05\n");
  ScenarioRunner runner;
  const ScenarioOutcome o = runner.RunOne(s, s.freqs[0]);
  EXPECT_GT(o.Counter("chan_drops"), 0u);
  EXPECT_TRUE(o.cell.integrity);
  EXPECT_TRUE(o.cell.progress);
  // Same script, window moved past the end of the run: no drops.
  Script quiet = s;
  quiet.injects[0].from = 81 * kMillisecond;
  quiet.injects[0].until = 82 * kMillisecond;
  const ScenarioOutcome q = runner.RunOne(quiet, quiet.freqs[0]);
  EXPECT_EQ(q.Counter("chan_drops"), 0u);
}

TEST(ScenarioRunnerTest, DvfsStepKeepsTheStreamAlive) {
  const Script s = Parse(
      "scenario step\n"
      "seed 5\n"
      "freq 3.6GHz\n"
      "warmup 20ms\n"
      "run_for 60ms\n"
      "burst 512KiB\n"
      "measure_at 40ms\n"
      "at 40ms set freq 1.2GHz\n");
  ScenarioRunner runner;
  const ScenarioOutcome a = runner.RunOne(s, s.freqs[0]);
  EXPECT_TRUE(a.cell.integrity);
  EXPECT_TRUE(a.cell.progress);  // delivery kept growing after the step
  const ScenarioOutcome b = runner.RunOne(s, s.freqs[0]);
  EXPECT_EQ(a.cell.digest, b.cell.digest);
  // The step costs throughput versus staying fast the whole run.
  Script flat = s;
  flat.freq_steps.clear();
  const ScenarioOutcome f = runner.RunOne(flat, flat.freqs[0]);
  EXPECT_GT(f.cell.delivered, a.cell.delivered);
}

TEST(ScenarioRunnerTest, LatencyDecompositionReportIsDeterministic) {
  const Script s = Parse(kLossyP2p);
  auto decompose = [&s] {
    LatencyDecomposer decomp;
    RunnerOptions ro;
    ro.force_trace = true;
    ro.on_trace = [&decomp](const TraceRecorder& rec) { decomp.Consume(rec); };
    ScenarioRunner runner(std::move(ro));
    runner.RunOne(s, s.freqs[0]);
    EXPECT_GT(decomp.episodes(), 0u);
    EXPECT_GT(decomp.hops(), decomp.episodes());  // multiple stages per packet
    std::ostringstream stages;
    std::ostringstream cdf;
    decomp.StageTable().WriteCsv(stages);
    decomp.CdfTable().WriteCsv(cdf);
    return stages.str() + "\n---\n" + cdf.str();
  };
  const std::string a = decompose();
  const std::string b = decompose();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ScenarioRunnerTest, FailingExpectFailsTheOutcome) {
  const Script s = Parse(
      "scenario fail\n"
      "seed 5\n"
      "freq 3.6GHz\n"
      "warmup 10ms\n"
      "run_for 30ms\n"
      "burst 64KiB\n"
      "expect counter crashes > 0\n"   // nothing crashes in a clean run
      "expect integrity\n");
  ScenarioRunner runner;
  const ScenarioOutcome o = runner.RunOne(s, s.freqs[0]);
  ASSERT_EQ(o.expects.size(), 2u);
  EXPECT_FALSE(o.expects[0].pass);
  EXPECT_EQ(o.expects[0].line, 7);
  EXPECT_TRUE(o.expects[1].pass);
  EXPECT_FALSE(o.pass);
}

TEST(ScenarioRunnerTest, DeliveredByDeadlineUsesTheSnapshot) {
  const Script s = Parse(
      "scenario deadline\n"
      "seed 5\n"
      "freq 3.6GHz\n"
      "warmup 10ms\n"
      "run_for 40ms\n"
      "burst 1MiB\n"
      "expect delivered >= 1 by 20ms\n"
      "expect delivered >= 1000GiB by 20ms\n");
  ScenarioRunner runner;
  const ScenarioOutcome o = runner.RunOne(s, s.freqs[0]);
  ASSERT_EQ(o.expects.size(), 2u);
  EXPECT_TRUE(o.expects[0].pass);
  EXPECT_FALSE(o.expects[1].pass);
}

}  // namespace
}  // namespace newtos::scenario
