#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace newtos {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundsAndHitsThem) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.UniformInt(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value in [3,9] appears
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(r.UniformInt(42, 42), 42);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateApproximatesP) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += r.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.Exponential(5.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.BoundedPareto(1.0, 1000.0, 1.2);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 1000.0 + 1e-6);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // Mean well above the median for alpha close to 1.
  Rng r(23);
  std::vector<double> xs;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(r.BoundedPareto(1.0, 10000.0, 1.1));
    sum += xs.back();
  }
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  const double median = xs[xs.size() / 2];
  EXPECT_GT(sum / static_cast<double>(xs.size()), 2.0 * median);
}

TEST(Rng, DiscretePicksProportionally) {
  Rng r(29);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    counts[r.Discrete(w)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRealRange) {
  Rng r(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.Uniform(-2.5, 7.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.5);
  }
}

TEST(Rng, ForHostIsAPureFunctionOfSeedAndHost) {
  // Same (seed, host) => same stream, no matter when or in what order the
  // hosts are instantiated — the property that keeps per-host streams
  // stable when hosts are repartitioned across simulation lanes.
  Rng a = Rng::ForHost(1234, 7);
  Rng c = Rng::ForHost(1234, 3);  // interleaved construction: no coupling
  Rng b = Rng::ForHost(1234, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
  (void)c;
}

TEST(Rng, ForHostSeparatesHostsAndSeeds) {
  // Different host ids (and different base seeds) give distinct streams,
  // including for adjacent hosts where additive seeding schemes collide.
  Rng h0 = Rng::ForHost(1234, 0);
  Rng h1 = Rng::ForHost(1234, 1);
  Rng other_seed = Rng::ForHost(1235, 0);
  int same01 = 0, same_seed = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x0 = h0.Next();
    if (x0 == h1.Next()) {
      ++same01;
    }
    if (x0 == other_seed.Next()) {
      ++same_seed;
    }
  }
  EXPECT_LT(same01, 2);
  EXPECT_LT(same_seed, 2);
}

TEST(Rng, HostSeedAvoidsLinearCollisions) {
  // (seed, host) pairs related by seed' = seed + k, host' = host - k must
  // not alias: the mix is non-linear in both arguments.
  EXPECT_NE(Rng::HostSeed(100, 5), Rng::HostSeed(101, 4));
  EXPECT_NE(Rng::HostSeed(100, 5), Rng::HostSeed(105, 0));
  EXPECT_NE(Rng::HostSeed(0, 0), Rng::HostSeed(1, 1));
}

}  // namespace
}  // namespace newtos
